"""Cluster serving benchmark: single-thread vs threaded vs sharded.

Measures cold ``GET /diff/{a}/{b}`` throughput over the same generated
corpus in three serving regimes:

* **single-thread** — one client, one single-process server: the
  baseline the paper's service layer was measured at;
* **threaded** — ``T`` client threads against one single-process
  server: request handling overlaps, but every DP still runs in one
  interpreter (the GIL bounds the speedup);
* **cluster** — the same ``T`` client threads against
  ``repro serve --workers W``: pair-sharded worker processes run DPs
  on separate cores behind the routing parent.

Each regime gets its own freshly generated store (identical seeds →
identical corpora, all caches cold) so the sweeps are comparable.
Also demonstrates the cluster's single-flight guarantee: ``K``
concurrent identical cold diffs against a fresh cluster perform
exactly **one** DP, proven from the merged ``/metrics`` scrape.

The issue's ≥2x cluster-vs-single criterion only holds on a multi-core
box; ``cpu_cores`` is recorded alongside the numbers so a 1-core CI
result reads honestly.  Emits ``benchmarks/results/BENCH_cluster.json``.

Scale with ``REPRO_BENCH_SCALE`` or pass ``--quick`` for CI smoke.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from _workloads import RESULTS_DIR, emit, scaled

from repro.client import RemoteWorkspace
from repro.cluster.server import ClusterServer
from repro.config import ReproConfig
from repro.io.store import WorkflowStore
from repro.service.server import DiffServer
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

PARAMS = ExecutionParams(
    prob_parallel=0.8,
    max_fork=4,
    prob_fork=0.7,
    max_loop=2,
    prob_loop=0.6,
)

WORKERS = 2
CLIENT_THREADS = 4
COALESCE_K = 8


def build_corpus(root: Path, n_runs: int) -> WorkflowStore:
    store = WorkflowStore(root)
    spec = protein_annotation()
    store.save_specification(spec)
    for seed in range(1, n_runs + 1):
        store.save_run(
            execute_workflow(spec, PARAMS, seed=seed, name=f"r{seed:03d}")
        )
    return store


def sweep_single(url: str, pairs) -> float:
    """Seconds for one client to fetch every pair's diff sequentially."""
    client = RemoteWorkspace(url)
    start = time.perf_counter()
    for a, b in pairs:
        client.diff(a, b, spec="PA")
    return time.perf_counter() - start


def sweep_threaded(url: str, pairs, threads: int) -> float:
    """Seconds for ``threads`` clients to fetch a partition each."""
    chunks = [pairs[i::threads] for i in range(threads)]
    errors = []
    barrier = threading.Barrier(threads + 1)

    def worker(chunk):
        client = RemoteWorkspace(url)
        try:
            barrier.wait(timeout=60)
            for a, b in chunk:
                client.diff(a, b, spec="PA")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    pool = [
        threading.Thread(target=worker, args=(chunk,))
        for chunk in chunks
    ]
    for thread in pool:
        thread.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def coalescing_proof(url: str, pair) -> dict:
    """Fire K identical cold diffs at once; count DPs from /metrics."""
    a, b = pair
    barrier = threading.Barrier(COALESCE_K)
    statuses = []
    lock = threading.Lock()

    def fire():
        barrier.wait(timeout=60)
        with urllib.request.urlopen(
            f"{url}/diff/{a}/{b}?spec=PA", timeout=120
        ) as reply:
            status = reply.status
            reply.read()
        with lock:
            statuses.append(status)

    pool = [threading.Thread(target=fire) for _ in range(COALESCE_K)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    with urllib.request.urlopen(
        f"{url}/metrics?format=json", timeout=60
    ) as reply:
        snapshot = json.loads(reply.read())
    dps = sum(
        sample["value"]
        for sample in snapshot["metrics"]
        .get("dp_invocations_total", {"samples": []})["samples"]
    )
    assert statuses == [200] * COALESCE_K, statuses
    return {"concurrent_requests": COALESCE_K, "dp_invocations": dps}


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    n_runs = scaled(6 if quick else 10, minimum=4)
    base = Path(tempfile.mkdtemp(prefix="bench-cluster-"))
    names = [f"r{seed:03d}" for seed in range(1, n_runs + 1)]
    pairs = [
        (a, b) for i, a in enumerate(names) for b in names[i + 1:]
    ]
    cores = os.cpu_count() or 1
    config = ReproConfig(backend="serial", log_format="off")

    results = {
        "corpus_runs": n_runs,
        "diff_requests": len(pairs),
        "cpu_cores": cores,
        "workers": WORKERS,
        "client_threads": CLIENT_THREADS,
    }
    lines = [
        f"Cluster serving (protein annotation, {n_runs} runs, "
        f"{len(pairs)} cold diff requests, {cores} cpu core(s))",
        f"{'regime':<16}{'seconds':>10}{'req/s':>10}",
    ]

    # Single-thread and threaded sweeps: one process each, own store.
    store = build_corpus(base / "single", n_runs)
    with DiffServer(store, config) as server:
        single_seconds = sweep_single(server.url, pairs)

    store = build_corpus(base / "threaded", n_runs)
    with DiffServer(store, config) as server:
        threaded_seconds = sweep_threaded(
            server.url, pairs, CLIENT_THREADS
        )

    # Cluster sweep: same client threads, sharded worker processes.
    # (Workers re-open the store from its path in their own processes.)
    build_corpus(base / "cluster", n_runs)
    with ClusterServer(
        base / "cluster", config, workers=WORKERS
    ) as cluster:
        cluster_seconds = sweep_threaded(
            cluster.url, pairs, CLIENT_THREADS
        )

    # Single-flight proof on a fresh (cold) cluster.
    build_corpus(base / "coalesce", 2)
    with ClusterServer(
        base / "coalesce", config, workers=WORKERS
    ) as cluster:
        coalescing = coalescing_proof(cluster.url, ("r001", "r002"))

    for regime, seconds in [
        ("single-thread", single_seconds),
        ("threaded", threaded_seconds),
        ("cluster", cluster_seconds),
    ]:
        rate = len(pairs) / seconds if seconds else float("inf")
        results[regime.replace("-", "_")] = {
            "seconds": seconds,
            "requests_per_second": rate,
        }
        lines.append(f"{regime:<16}{seconds:>10.4f}{rate:>10.1f}")

    results["coalescing"] = coalescing
    results["cluster_speedup_vs_single_thread"] = (
        single_seconds / cluster_seconds
        if cluster_seconds
        else float("inf")
    )
    lines.append(
        f"cluster is "
        f"{results['cluster_speedup_vs_single_thread']:.2f}x the "
        f"single-thread sweep ({WORKERS} workers on {cores} core(s))"
    )
    lines.append(
        f"coalescing: {coalescing['concurrent_requests']} concurrent "
        f"identical cold diffs performed "
        f"{coalescing['dp_invocations']:.0f} DP(s)"
    )

    # The single-flight guarantee is hardware-independent: exactly one
    # DP, however the threads interleaved.
    assert coalescing["dp_invocations"] == 1, coalescing

    emit("BENCH_cluster", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_cluster.json"
    out.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )
    print(f"\nwrote {out}")
    shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    main()
