"""HTTP diff-server benchmark: requests/sec for cold vs cached diffs.

Boots an in-process :class:`~repro.service.server.DiffServer` over a
generated protein-annotation corpus and measures ``GET /diff/{a}/{b}``
throughput from a :class:`~repro.client.RemoteWorkspace` in three
regimes:

* **cold** — empty caches: every request pays the full O(|E|³) DP plus
  the HTTP round trip;
* **warm** — the persistent script cache answers server-side: requests
  pay parsing/serialisation and the round trip, never a DP;
* **revalidated** — the client sends ``If-None-Match`` and the server
  304s off the fingerprint index: two ``stat`` calls and an empty body.

Also times a cold vs warm ``POST /matrix``, runs a **mixed workload**
(streaming ingestion on ``POST /stream/events`` interleaved with
``GET /diff`` read traffic, checking readers are not starved while a
run streams in), and reports the server's own counters as a
cross-check (cold DPs must equal the pair count; warm and revalidated
runs must add zero).  Emits ``benchmarks/results/BENCH_server.json``.

Scale with ``REPRO_BENCH_SCALE`` or pass ``--quick`` for CI smoke.
"""

from __future__ import annotations

import itertools
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from _workloads import RESULTS_DIR, emit, scaled, timed

from repro.client import RemoteWorkspace
from repro.config import ReproConfig
from repro.io.store import WorkflowStore
from repro.service.server import DiffServer
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

PARAMS = ExecutionParams(
    prob_parallel=0.8,
    max_fork=4,
    prob_fork=0.7,
    max_loop=2,
    prob_loop=0.6,
)


def build_corpus(root: Path, n_runs: int) -> WorkflowStore:
    store = WorkflowStore(root)
    spec = protein_annotation()
    store.save_specification(spec)
    for seed in range(1, n_runs + 1):
        store.save_run(
            execute_workflow(spec, PARAMS, seed=seed, name=f"r{seed:03d}")
        )
    return store


def sweep(client: RemoteWorkspace, pairs) -> float:
    """Seconds to fetch every pair's diff once, sequentially."""
    start = time.perf_counter()
    for a, b in pairs:
        client.diff(a, b, spec="PA")
    return time.perf_counter() - start


def mixed_workload(client: RemoteWorkspace, pairs, seed: int) -> dict:
    """Stream one run in while reading diffs between every event.

    Models the live-campaign scenario: ingestion traffic on
    ``POST /stream/events`` must not starve ``GET /diff`` readers.
    Returns the interleaved diff latencies alongside the streaming
    rate.
    """
    spec = client.specification("PA")
    run = execute_workflow(spec, PARAMS, seed=seed, name="mixed-in")
    labels = run.graph.labels()
    reads = itertools.cycle(pairs)
    diff_latencies = []
    events = 0

    def read_one():
        a, b = next(reads)
        started = time.perf_counter()
        client.diff(a, b, spec="PA")
        diff_latencies.append(time.perf_counter() - started)

    started = time.perf_counter()
    with client.stream("PA", "mixed-in", batch_size=8) as stream:
        for node in run.graph.nodes():
            stream.activity(node, labels[node])
            events += 1
            read_one()
        for src, dst, _key in run.graph.edges():
            stream.edge(src, dst)
            events += 1
            read_one()
        stream.close_run()
        events += 2  # run_open + run_close
    elapsed = time.perf_counter() - started
    diff_latencies.sort()
    return {
        "seconds": elapsed,
        "events": events,
        "events_per_second": events / elapsed if elapsed else 0.0,
        "interleaved_diffs": len(diff_latencies),
        "diff_p50_ms": 1000 * diff_latencies[len(diff_latencies) // 2],
        "diff_max_ms": 1000 * diff_latencies[-1],
    }


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    n_runs = scaled(6 if quick else 12, minimum=4)
    base = Path(tempfile.mkdtemp(prefix="bench-server-"))
    store = build_corpus(base / "corpus", n_runs)
    names = [f"r{seed:03d}" for seed in range(1, n_runs + 1)]
    pairs = [
        (a, b) for i, a in enumerate(names) for b in names[i + 1:]
    ]

    results = {"corpus_runs": n_runs, "diff_requests": len(pairs)}
    lines = [
        f"HTTP diff server (protein annotation, {n_runs} runs, "
        f"{len(pairs)} diff requests per sweep)",
        f"{'regime':<14}{'seconds':>10}{'req/s':>10}{'DPs':>6}",
    ]

    with DiffServer(
        store, ReproConfig(backend="serial", log_format="off")
    ) as server:
        fresh_client = RemoteWorkspace(server.url)

        cold_seconds = sweep(fresh_client, pairs)
        cold_dps = fresh_client.stats["computed_scripts"]

        # Same client: ETag memo → 304 revalidations, no payloads.
        revalidated_seconds = sweep(fresh_client, pairs)
        revalidated_304s = fresh_client.stats["server_not_modified"]

        # A new client (no ETag memo) against the warm server cache.
        warm_seconds = sweep(RemoteWorkspace(server.url), pairs)
        final = fresh_client.stats
        warm_dps = final["computed_scripts"] - cold_dps

        # Mixed workload: streaming ingest interleaved with warm reads.
        mixed = mixed_workload(
            RemoteWorkspace(server.url), pairs, seed=n_runs + 1
        )

        matrix_cold_store = build_corpus(base / "matrix", n_runs)
        with DiffServer(
            matrix_cold_store,
            ReproConfig(backend="serial", log_format="off"),
        ) as matrix_server:
            matrix_client = RemoteWorkspace(matrix_server.url)
            matrix_cold, _ = timed(matrix_client.matrix, spec="PA")
            matrix_warm, _ = timed(matrix_client.matrix, spec="PA")

    for regime, seconds, dps in [
        ("cold", cold_seconds, cold_dps),
        ("warm-cache", warm_seconds, warm_dps),
        ("revalidated", revalidated_seconds, 0),
    ]:
        rate = len(pairs) / seconds if seconds else float("inf")
        results[regime.replace("-", "_")] = {
            "seconds": seconds,
            "requests_per_second": rate,
            "dp_computations": dps,
        }
        lines.append(
            f"{regime:<14}{seconds:>10.4f}{rate:>10.1f}{dps:>6}"
        )

    results["matrix"] = {
        "cold_seconds": matrix_cold,
        "warm_seconds": matrix_warm,
    }
    results["mixed"] = mixed
    lines.append(
        f"mixed: {mixed['events']} stream events @ "
        f"{mixed['events_per_second']:.0f}/s with "
        f"{mixed['interleaved_diffs']} interleaved diffs "
        f"(p50 {mixed['diff_p50_ms']:.1f}ms, "
        f"max {mixed['diff_max_ms']:.1f}ms)"
    )
    results["revalidated_304s"] = revalidated_304s
    results["warm_speedup_vs_cold"] = (
        cold_seconds / warm_seconds if warm_seconds else float("inf")
    )
    lines.append(
        f"matrix: cold {matrix_cold:.4f}s, warm {matrix_warm:.4f}s"
    )
    lines.append(
        f"warm-cache sweep is {results['warm_speedup_vs_cold']:.1f}x "
        f"the cold sweep; {revalidated_304s} of {len(pairs)} "
        "revalidations answered 304"
    )

    # Cross-checks: the counters must tell the caching story exactly.
    assert cold_dps == len(pairs), (cold_dps, len(pairs))
    assert warm_dps == 0, warm_dps
    assert revalidated_304s == len(pairs), revalidated_304s

    emit("BENCH_server", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_server.json"
    out.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )
    print(f"\nwrote {out}")
    shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    main()
