"""DP kernel benchmark: the fast paths vs the pre-optimisation DP.

The baseline reproduces what every pair cost before the fast paths
landed: load the corpus, then — per pair — realign specifications,
build both :class:`DeletionTables` and the :class:`SpecCostTables`
from scratch, and fill the DP table *eagerly* over the full product of
homologous node pairs (the original ``_run`` loop).  The optimised
side is a cold :meth:`DiffService.distance_matrix`, which layers
fingerprint seeding, lazy demand-driven cells, the ``≡``-shortcut,
batch-shared tables and batch-shared origin interning — per kernel
(``python`` always, ``numpy`` when importable).

Every optimised matrix is asserted bit-identical to the baseline; the
speedup is reported per kernel and written to
``benchmarks/results/BENCH_dp.json`` so later PRs can track it.

``--quick`` shrinks the corpus for CI smoke runs; the full run uses
the 50-run corpus the acceptance numbers quote.  Scale further with
``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

from _workloads import RESULTS_DIR, emit, scaled

from repro.backends.base import SerialBackend
from repro.core.api import EditDistanceComputation, _align_specs
from repro.core.kernel import numpy_available
from repro.corpus.service import DiffService
from repro.costs.standard import UnitCost
from repro.io.store import WorkflowStore
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def build_corpus(root: Path, n_runs: int) -> WorkflowStore:
    store = WorkflowStore(root)
    spec = protein_annotation()
    store.save_specification(spec)
    for seed in range(1, n_runs + 1):
        store.save_run(
            execute_workflow(spec, PARAMS, seed=seed, name=f"r{seed:03d}")
        )
    return store


def _group_by_origin(tree):
    groups = {}
    for node in tree.iter_nodes("pre"):
        groups.setdefault(id(node.origin), []).append(node)
    return groups


def baseline_matrix(store: WorkflowStore, cost) -> "tuple[float, dict]":
    """The pre-optimisation evaluation: eager DP, fresh tables per pair.

    Mirrors the original computation faithfully — the ``_decide*``
    bodies are unchanged, so forcing every homologous product through
    ``decision`` with per-pair tables reproduces the old cost profile
    (and its exact float results, which the optimised paths must hit
    bit-for-bit).
    """
    start = time.perf_counter()
    spec = store.load_specification("PA")
    names = sorted(store.list_runs(spec.name))
    runs = {name: store.load_run(spec, name) for name in names}
    matrix = {}
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            run1, run2 = runs[a], runs[b]
            run2 = _align_specs(run1, run2)
            comp = EditDistanceComputation(
                run1.spec, run1.tree, run2.tree, cost
            )
            groups1 = _group_by_origin(run1.tree)
            groups2 = _group_by_origin(run2.tree)
            for spec_node in run1.spec.tree.iter_nodes("post"):
                for v1 in groups1.get(id(spec_node), []):
                    for v2 in groups2.get(id(spec_node), []):
                        comp.decision(v1, v2)
            matrix[(a, b)] = comp.distance
    return time.perf_counter() - start, matrix


def optimised_matrix(
    store: WorkflowStore, cost, kernel: str
) -> "tuple[float, dict]":
    """A cold service pricing the same corpus with all fast paths on."""
    start = time.perf_counter()
    service = DiffService(
        store, persistent=False, backend=SerialBackend(), kernel=kernel
    )
    matrix = service.distance_matrix("PA", cost=cost)
    return time.perf_counter() - start, matrix


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus for CI smoke runs",
    )
    args = parser.parse_args(argv)
    n_runs = scaled(12, minimum=6) if args.quick else scaled(50, minimum=50)

    base = Path(tempfile.mkdtemp(prefix="bench-dp-"))
    store = build_corpus(base, n_runs)
    cost = UnitCost()

    results = {
        "corpus_runs": n_runs,
        "pairs": n_runs * (n_runs - 1) // 2,
        "quick": args.quick,
        "numpy_available": numpy_available(),
    }
    lines = [
        f"DP kernel (protein annotation, {n_runs} runs, "
        f"{results['pairs']} pairs, UnitCost)",
        f"{'configuration':<44}{'seconds':>10}{'speedup':>9}",
    ]

    baseline_seconds, oracle = baseline_matrix(store, cost)
    results["baseline"] = {"seconds": baseline_seconds}
    lines.append(
        f"{'per-pair eager DP, fresh tables (pre-PR)':<44}"
        f"{baseline_seconds:>10.4f}{'1.00x':>9}"
    )

    kernels = ["python"]
    if numpy_available():
        kernels.append("numpy")
    for kernel in kernels:
        seconds, matrix = optimised_matrix(store, cost, kernel)
        if matrix != oracle:
            raise AssertionError(
                f"kernel {kernel!r} disagrees with the eager baseline"
            )
        speedup = baseline_seconds / seconds
        results[f"matrix_cold_{kernel}"] = {
            "seconds": seconds,
            "speedup": round(speedup, 2),
            "identical_to_baseline": True,
        }
        lines.append(
            f"{'cold distance_matrix, kernel=' + kernel:<44}"
            f"{seconds:>10.4f}{speedup:>8.2f}x"
        )

    emit("BENCH_dp", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_dp.json"
    out.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )
    print(f"\nwrote {out}")
    shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    main()
