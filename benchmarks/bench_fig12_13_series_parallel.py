"""Figs. 12 & 13: series vs parallel specifications.

The paper generates fork/loop-free specifications with series/parallel
composition ratios r ∈ {3, 1, 1/3} and |E| from 100 to 1000, draws run
pairs with prob_p = 0.95, and reports (Fig. 12) the differencing time and
(Fig. 13) the edit distance under unit cost, averaged over 200 samples.

Scaled reproduction (sizes 80-320 x REPRO_BENCH_SCALE, 3 samples).  The
preserved claims:

* Fig. 12 — series-heavy specifications are the expensive ones (the
  S-node deletion DP is the O(|E|³) part, vs linear work at P nodes);
* Fig. 13 — run pairs of series-heavy specifications are *closer* (fewer
  parallel branches means runs look alike, and long paths are cheap to
  delete under unit cost).
"""

import statistics

import pytest

from repro.core.api import diff_runs
from repro.core.kernel import numpy_available
from repro.costs.standard import UnitCost
from repro.workflow.execution import ExecutionParams
from repro.workflow.generators import random_run_pair, random_specification

from _workloads import emit, scaled, timed

RATIOS = [("r=3", 3.0), ("r=1", 1.0), ("r=1/3", 1.0 / 3.0)]
SIZES = [scaled(80), scaled(160), scaled(240), scaled(320)]
SAMPLES = 3
PARAMS = ExecutionParams(prob_parallel=0.95)


def sweep():
    """Per (ratio, size): mean seconds per kernel and mean distance.

    The numpy column stays ``None`` when numpy is absent; when present,
    both kernels must produce the same distance bit-for-bit (the numpy
    convolution is an alternative evaluation order proven, and here
    re-checked, to round identically).
    """
    with_numpy = numpy_available()
    rows = []
    for label, ratio in RATIOS:
        for size in SIZES:
            times = []
            numpy_times = []
            distances = []
            for sample in range(SAMPLES):
                spec = random_specification(
                    size, ratio, seed=hash((label, size, sample)) % 10_000
                )
                one, two = random_run_pair(
                    spec, PARAMS, seed=sample + 17
                )
                elapsed, result = timed(
                    diff_runs, one, two, cost=UnitCost()
                )
                times.append(elapsed)
                distances.append(result.distance)
                if with_numpy:
                    elapsed, vectorised = timed(
                        diff_runs, one, two,
                        cost=UnitCost(), kernel="numpy",
                    )
                    numpy_times.append(elapsed)
                    assert vectorised.distance == result.distance
            rows.append(
                (
                    label,
                    size,
                    statistics.mean(times),
                    statistics.mean(numpy_times) if numpy_times else None,
                    statistics.mean(distances),
                )
            )
    return rows


def test_fig12_13_series_vs_parallel(benchmark):
    rows = sweep()

    lines = [
        "Figs. 12/13: series vs parallel (unit cost, prob_p = 0.95)",
        f"{'ratio':7s} {'|E|':>5} {'seconds':>9} {'numpy':>9} {'distance':>9}",
    ]
    for label, size, seconds, numpy_seconds, distance in rows:
        numpy_cell = (
            f"{numpy_seconds:>9.4f}" if numpy_seconds is not None
            else f"{'n/a':>9}"
        )
        lines.append(
            f"{label:7s} {size:>5} {seconds:>9.4f} {numpy_cell} "
            f"{distance:>9.2f}"
        )
    emit("fig12_13", lines)

    largest = SIZES[-1]
    at_largest = {
        label: (seconds, distance)
        for label, size, seconds, _numpy_seconds, distance in rows
        if size == largest
    }
    # Fig. 12 claim: the series-heavy ratio is the slowest configuration
    # (S-node deletion DP); allow 20% sampling tolerance.
    assert at_largest["r=3"][0] >= 0.8 * at_largest["r=1/3"][0], (
        "series specifications should dominate the running time "
        f"(got {at_largest})"
    )
    # Fig. 13 claim: series runs are closer than parallel runs.
    assert at_largest["r=3"][1] <= at_largest["r=1/3"][1], (
        "series specifications should have smaller edit distances "
        f"(got {at_largest})"
    )
    # Time grows with size for every ratio.
    for label, _ in RATIOS:
        series = sorted(
            (size, seconds)
            for lbl, size, seconds, _numpy_seconds, _ in rows
            if lbl == label
        )
        assert series[0][1] <= series[-1][1] * 3

    # Benchmark the expensive corner: the series-heavy configuration.
    spec = random_specification(largest, 3.0, seed=1)
    one, two = random_run_pair(spec, PARAMS, seed=2)
    benchmark.pedantic(
        diff_runs,
        args=(one, two),
        kwargs={"cost": UnitCost()},
        rounds=3,
        iterations=1,
    )
