"""Streaming-ingestion benchmark: events/sec and time-to-first-flag.

Boots an in-process :class:`~repro.service.server.DiffServer` over a
generated protein-annotation corpus and measures:

* **ingest throughput** — events/sec streaming executed runs through
  ``POST /stream/events`` (HTTP, batched NDJSON) and through the
  in-process :meth:`Workspace.stream` transport (same codec, no
  socket).  The ``run_close`` step — validation plus pricing the
  newcomer against the corpus — is timed separately, since it pays
  the O(|E|³) differencing DPs that event ingestion never does;
* **time-to-first-divergence-flag** — wall-clock seconds and event
  count from ``run_open`` until the live label-surplus bound crosses
  the session threshold and the server flags the run as diverging
  (batch size 1: every event is one acknowledged round trip).

Cross-checks assert the hub's counters tell the same story.  Emits
``benchmarks/results/BENCH_stream.json``.

Scale with ``REPRO_BENCH_SCALE`` or pass ``--quick`` for CI smoke.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from _workloads import RESULTS_DIR, emit, scaled

from repro.client import RemoteWorkspace
from repro.config import ReproConfig
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation
from repro.service.server import DiffServer
from repro.workspace import Workspace

PARAMS = ExecutionParams(
    prob_parallel=0.8,
    max_fork=4,
    prob_fork=0.7,
    max_loop=2,
    prob_loop=0.6,
)

SPEC = "PA"


def build_corpus(root: Path, n_runs: int) -> Workspace:
    workspace = Workspace(root, ReproConfig(backend="serial"))
    workspace.register(protein_annotation())
    for seed in range(1, n_runs + 1):
        workspace.generate_run(
            f"r{seed:03d}", params=PARAMS, seed=seed
        )
    return workspace


def stream_runs(api, runs, prefix):
    """Stream each run; returns (events, ingest_seconds, close_seconds)."""
    events = 0
    ingest_seconds = 0.0
    close_seconds = 0.0
    for index, run in enumerate(runs):
        labels = run.graph.labels()
        started = time.perf_counter()
        with api.stream(SPEC, f"{prefix}{index}") as stream:
            for node in run.graph.nodes():
                stream.activity(node, labels[node])
            for src, dst, _key in run.graph.edges():
                stream.edge(src, dst)
            stream.flush()
            ingest_seconds += time.perf_counter() - started
            events += 1 + run.graph.num_nodes + run.graph.num_edges
            started = time.perf_counter()
            ack = stream.close_run()
            close_seconds += time.perf_counter() - started
            events += 1
            assert ack.status == "closed", ack.status
    return events, ingest_seconds, close_seconds


def time_to_first_flag(api, threshold=2.0):
    """Stream alien activities one ack'd event at a time until flagged."""
    started = time.perf_counter()
    with api.stream(
        SPEC, "diverging", threshold=threshold, batch_size=1
    ) as stream:
        for number in range(1, 1000):
            stream.activity(f"ex:alien{number}", "alien")
            status = stream.status()
            if status is not None and status.flagged:
                elapsed = time.perf_counter() - started
                assert status.flagged_at_seq is not None
                return number, elapsed
    raise AssertionError("divergence flag never fired")


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    n_corpus = scaled(4 if quick else 8, minimum=3)
    n_streamed = scaled(3 if quick else 6, minimum=2)
    base = Path(tempfile.mkdtemp(prefix="bench-stream-"))

    workspace = build_corpus(base / "corpus", n_corpus)
    spec = workspace.specification(SPEC)
    streamed = [
        execute_workflow(spec, PARAMS, seed=100 + i, name=f"s{i}")
        for i in range(2 * n_streamed)
    ]

    results = {"corpus_runs": n_corpus, "streamed_runs": n_streamed}
    lines = [
        f"streaming ingestion (protein annotation, {n_corpus} corpus "
        f"runs, {n_streamed} streamed runs per transport)",
        f"{'transport':<12}{'events':>8}{'ingest s':>10}"
        f"{'events/s':>10}{'close s':>9}",
    ]

    with DiffServer(
        workspace, ReproConfig(backend="serial", log_format="off")
    ) as server:
        remote = RemoteWorkspace(server.url)
        for transport, api, runs in [
            ("http", remote, streamed[:n_streamed]),
            ("inprocess", workspace, streamed[n_streamed:]),
        ]:
            events, ingest_s, close_s = stream_runs(
                api, runs, prefix=f"{transport}-"
            )
            rate = events / ingest_s if ingest_s else float("inf")
            results[transport] = {
                "events": events,
                "ingest_seconds": ingest_s,
                "events_per_second": rate,
                "close_seconds": close_s,
            }
            lines.append(
                f"{transport:<12}{events:>8}{ingest_s:>10.4f}"
                f"{rate:>10.0f}{close_s:>9.3f}"
            )

        flag_events, flag_seconds = time_to_first_flag(remote)
        results["first_flag"] = {
            "threshold": 2.0,
            "events_to_flag": flag_events,
            "seconds_to_flag": flag_seconds,
        }
        lines.append(
            f"time to first divergence flag: {flag_seconds:.4f}s "
            f"({flag_events} events, threshold 2.0, one ack per event)"
        )

        # Cross-check: the hub's own accounting must agree.
        summary = workspace.stream_hub.summary()
        assert summary.runs_closed == 2 * n_streamed, summary
        assert summary.flagged == 1, summary
        assert summary.open_sessions == 1, summary  # the flagged one

    emit("BENCH_stream", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_stream.json"
    out.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )
    print(f"\nwrote {out}")
    shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    main()
