"""Corpus service benchmark: cold vs warm cache, serial vs parallel.

Measures the :class:`repro.corpus.service.DiffService` on the paper's
generated workloads (the protein-annotation specification with varied
fork/loop behaviour):

* ``distance_matrix`` — cold cache serial, cold cache parallel, warm
  in-memory cache, and warm disk cache (fresh service instance);
* ``nearest_runs`` — cold and warm one-vs-many queries;
* ``add_run`` — incremental growth vs recomputing the full matrix.

Besides the usual printed table under ``benchmarks/results/``, the run
emits machine-readable ``benchmarks/results/BENCH_corpus.json`` so later
PRs can track the trajectory of these numbers.

Scale with ``REPRO_BENCH_SCALE`` (default corpus: 10 runs).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from _workloads import RESULTS_DIR, emit, scaled

from repro.corpus.service import DiffService
from repro.io.store import WorkflowStore
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def build_corpus(root: Path, n_runs: int) -> WorkflowStore:
    store = WorkflowStore(root)
    spec = protein_annotation()
    store.save_specification(spec)
    for seed in range(1, n_runs + 1):
        store.save_run(
            execute_workflow(spec, PARAMS, seed=seed, name=f"r{seed:03d}")
        )
    return store


def fresh_store(base: Path, tag: str, n_runs: int) -> WorkflowStore:
    """A corpus with no derived state (every service starts cold)."""
    root = base / tag
    if root.exists():
        shutil.rmtree(root)
    return build_corpus(root, n_runs)


def timed(func, *args, **kwargs):
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - start, result


def main() -> None:
    n_runs = scaled(10, minimum=4)
    base = Path(tempfile.mkdtemp(prefix="bench-corpus-"))
    results = {"corpus_runs": n_runs}
    lines = [
        "Corpus diff service (protein annotation, "
        f"{n_runs} runs, {n_runs * (n_runs - 1) // 2} pairs)",
        f"{'workload':<38}{'seconds':>10}{'DPs':>6}",
    ]

    def record(key: str, label: str, seconds: float, dps: int) -> None:
        results[key] = {"seconds": seconds, "computed_pairs": dps}
        lines.append(f"{label:<38}{seconds:>10.4f}{dps:>6}")

    # -- distance_matrix: cold serial vs cold parallel ------------------
    store = fresh_store(base, "serial", n_runs)
    serial = DiffService(store, max_workers=1)
    seconds, matrix = timed(serial.distance_matrix, "PA")
    record("matrix_cold_serial", "matrix, cold cache, serial",
           seconds, serial.computed_pairs)

    store = fresh_store(base, "parallel", n_runs)
    parallel = DiffService(store)
    seconds, parallel_matrix = timed(parallel.distance_matrix, "PA")
    record("matrix_cold_parallel", "matrix, cold cache, parallel",
           seconds, parallel.computed_pairs)
    assert parallel_matrix == matrix

    # -- distance_matrix: warm tiers ------------------------------------
    seconds, warm_matrix = timed(parallel.distance_matrix, "PA")
    record("matrix_warm_memory", "matrix, warm memory cache",
           seconds, 0)
    assert warm_matrix == matrix

    reopened = DiffService(store)
    seconds, disk_matrix = timed(reopened.distance_matrix, "PA")
    record("matrix_warm_disk", "matrix, warm disk cache (restart)",
           seconds, reopened.computed_pairs)
    assert disk_matrix == matrix

    # -- nearest_runs ----------------------------------------------------
    store = fresh_store(base, "nearest", n_runs)
    service = DiffService(store)
    seconds, _ = timed(service.nearest_runs, "PA", "r001")
    record("nearest_cold", "nearest_runs, cold cache",
           seconds, service.computed_pairs)
    before = service.computed_pairs
    seconds, _ = timed(service.nearest_runs, "PA", "r001")
    record("nearest_warm", "nearest_runs, warm cache",
           seconds, service.computed_pairs - before)

    # -- incremental add_run vs full recompute ---------------------------
    store = fresh_store(base, "add", n_runs)
    service = DiffService(store)
    service.distance_matrix("PA")
    before = service.computed_pairs
    spec = store.load_specification("PA")
    newcomer = execute_workflow(
        spec, PARAMS, seed=10_000, name="newcomer"
    )
    seconds, _ = timed(service.add_run, newcomer)
    record("add_run_incremental", "add_run (N new pairs only)",
           seconds, service.computed_pairs - before)

    cold_store = fresh_store(base, "addfull", n_runs)
    cold_store.save_run(newcomer)
    full = DiffService(cold_store)
    seconds, _ = timed(full.distance_matrix, "PA")
    record("add_run_full_recompute", "full recompute of grown corpus",
           seconds, full.computed_pairs)

    emit("BENCH_corpus", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_corpus.json"
    out.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )
    print(f"\nwrote {out}")
    shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    main()
