"""Execution-backend benchmark: serial vs thread vs process.

Times a **cold** ``distance_matrix`` (and a cold batch of edit
scripts) over a generated protein-annotation corpus on each
:mod:`repro.backends` implementation.  The edit-distance DP is pure
Python, so the thread backend can only overlap the I/O share of a
batch under the GIL; the process backend pickles ``(run, run, cost)``
payloads to worker processes and runs the DP itself on every core —
on a multi-core machine it is the one that should win wall-clock.
All backends must produce identical matrices (asserted here and in the
equivalence property suite).

Besides the printed table, the run emits machine-readable
``benchmarks/results/BENCH_backends.json`` recording per-backend
wall-clock, the DP counts, the host's CPU count, and whether the
process backend beat the thread backend (expected true for
``cpu_count > 1``; on a single-core host process workers add pickling
overhead with nothing to parallelise against).

Scale with ``REPRO_BENCH_SCALE`` (default corpus: 20 runs — the cold
matrix is 190 pairs) or pass ``--quick`` for CI smoke (8 runs).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
from pathlib import Path

from _workloads import RESULTS_DIR, emit, scaled, timed

from repro.backends.base import BACKEND_NAMES
from repro.corpus.service import DiffService
from repro.io.store import WorkflowStore
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

# Heavier runs than the corpus-service benchmark: the O(|E|³) DP must
# dominate per-pair pickling overhead, or the process backend's
# multi-core gains would be masked by serialisation cost.
PARAMS = ExecutionParams(
    prob_parallel=0.9,
    max_fork=5,
    prob_fork=0.8,
    max_loop=3,
    prob_loop=0.7,
)


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_corpus(root: Path, n_runs: int) -> WorkflowStore:
    store = WorkflowStore(root)
    spec = protein_annotation()
    store.save_specification(spec)
    for seed in range(1, n_runs + 1):
        store.save_run(
            execute_workflow(spec, PARAMS, seed=seed, name=f"r{seed:03d}")
        )
    return store


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    n_runs = scaled(8 if quick else 20, minimum=4)
    n_pairs = n_runs * (n_runs - 1) // 2
    cores = cpu_count()
    base = Path(tempfile.mkdtemp(prefix="bench-backends-"))
    store = build_corpus(base / "corpus", n_runs)
    script_pairs = [
        (f"r{a:03d}", f"r{a + 1:03d}") for a in range(1, n_runs)
    ]

    results = {
        "corpus_runs": n_runs,
        "matrix_pairs": n_pairs,
        "cpu_count": cores,
        "backends": {},
    }
    lines = [
        f"Execution backends (protein annotation, {n_runs} runs, "
        f"{n_pairs} cold pairs, {cores} cpu(s))",
        f"{'backend':<14}{'matrix s':>10}{'scripts s':>11}{'DPs':>6}",
    ]

    matrices = {}
    for name in BACKEND_NAMES:
        # persistent=False: every backend pays the full cold cost —
        # nothing is shared through the on-disk cache tiers.
        service = DiffService(store, persistent=False, backend=name)
        matrix_seconds, matrix = timed(
            service.distance_matrix, "PA"
        )
        matrices[name] = matrix
        script_service = DiffService(
            store, persistent=False, backend=name
        )
        script_seconds, _ = timed(
            script_service.edit_scripts, "PA", script_pairs
        )
        results["backends"][name] = {
            "matrix_seconds": matrix_seconds,
            "scripts_seconds": script_seconds,
            "computed_pairs": service.computed_pairs,
        }
        lines.append(
            f"{name:<14}{matrix_seconds:>10.4f}{script_seconds:>11.4f}"
            f"{service.computed_pairs:>6}"
        )

    for name in ("thread", "process"):
        assert matrices[name] == matrices["serial"], (
            f"{name} backend disagrees with serial"
        )
    lines.append("all backends produced identical matrices")

    thread_s = results["backends"]["thread"]["matrix_seconds"]
    process_s = results["backends"]["process"]["matrix_seconds"]
    results["process_beats_thread"] = process_s < thread_s
    results["process_speedup_vs_thread"] = (
        thread_s / process_s if process_s else float("inf")
    )
    lines.append(
        f"process vs thread on the cold matrix: "
        f"{thread_s / process_s:.2f}x "
        + (
            "(process wins)"
            if process_s < thread_s
            else f"(thread wins — expected on {cores} cpu(s): the DP "
            "has no second core to run on, so process pays pickling "
            "for nothing)"
        )
    )

    emit("BENCH_backends", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_backends.json"
    out.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )
    print(f"\nwrote {out}")
    shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    main()
