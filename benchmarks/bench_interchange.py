"""Interchange benchmark: PROV-JSON export, import, and SP-ization.

Measures the three interchange paths over growing workloads:

* **export** — rendering generated runs (forks/loops included) to
  PROV-JSON with an embedded plan;
* **import (exact)** — re-importing those documents through the
  embedded-plan path, including full run re-validation;
* **import (normalize)** — ingesting foreign random PROV documents,
  including the SP test and — for the non-SP share — layered
  SP-ization with forced-serialisation accounting;
* **ingest** — ``DiffService.add_prov_document`` end to end, i.e.
  import plus fingerprinting plus incremental corpus distances.

Emits ``benchmarks/results/BENCH_interchange.json`` (+ ``.txt``).
``--quick`` shrinks the sweep for CI smoke runs; ``REPRO_BENCH_SCALE``
grows it.
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import tempfile
from pathlib import Path

from _workloads import RESULTS_DIR, emit, scaled, timed

from repro.corpus.service import DiffService
from repro.interchange import export_run_json, import_document
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import (
    random_prov_document,
    random_specification,
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.5,
    max_loop=2,
    prob_loop=0.5,
)


def bench_roundtrip(spec_edges: int, n_runs: int, seed: int) -> dict:
    spec = random_specification(
        spec_edges,
        1.0,
        num_forks=2,
        num_loops=1,
        seed=seed,
        name=f"bench-{spec_edges}",
    )
    runs = [
        execute_workflow(spec, PARAMS, seed=seed + i, name=f"r{i}")
        for i in range(n_runs)
    ]

    export_times, import_times, sizes = [], [], []
    for run in runs:
        elapsed, text = timed(export_run_json, run)
        export_times.append(elapsed)
        sizes.append(len(text))
        elapsed, result = timed(import_document, text)
        import_times.append(elapsed)
        assert result.run.equivalent(run)
    return {
        "spec_edges": spec_edges,
        "runs": n_runs,
        "mean_run_edges": statistics.mean(r.num_edges for r in runs),
        "mean_doc_bytes": statistics.mean(sizes),
        "export_ms": 1000 * statistics.mean(export_times),
        "import_exact_ms": 1000 * statistics.mean(import_times),
    }


def bench_normalize(n_activities: int, n_docs: int, seed: int) -> dict:
    times, non_sp, forced = [], 0, 0
    for index in range(n_docs):
        doc = random_prov_document(
            n_activities, 0.3, seed=seed + index
        )
        elapsed, result = timed(
            import_document, doc, "r", "ext"
        )
        times.append(elapsed)
        if not result.report.was_series_parallel:
            non_sp += 1
            forced += len(result.report.forced_serializations)
    return {
        "activities": n_activities,
        "documents": n_docs,
        "import_normalize_ms": 1000 * statistics.mean(times),
        "non_sp_share": non_sp / n_docs,
        "forced_serialisations_total": forced,
    }


def bench_ingest(n_docs: int, n_activities: int, seed: int) -> dict:
    root = Path(tempfile.mkdtemp(prefix="bench-interchange-"))
    try:
        service = DiffService(root / "store")
        # One derived spec, many runs: export/import a base document,
        # then add generated variants so distances actually compute.
        base = random_prov_document(n_activities, 0.3, seed=seed)
        elapsed_first, (result, _) = timed(
            service.add_prov_document, base, "doc0", "ext"
        )
        times = [elapsed_first]
        for index in range(1, n_docs):
            run = execute_workflow(
                result.spec,
                ExecutionParams(prob_parallel=0.6),
                seed=seed + index,
                name=f"doc{index}",
            )
            text = export_run_json(run)
            elapsed, _ = timed(
                service.add_prov_document, text, f"doc{index}"
            )
            times.append(elapsed)
        return {
            "documents": n_docs,
            "activities": n_activities,
            "ingest_total_s": sum(times),
            "ingest_mean_ms": 1000 * statistics.mean(times),
            "computed_pairs": service.computed_pairs,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizes"
    )
    args = parser.parse_args()

    if args.quick:
        roundtrip_sweep = [(10, 5), (20, 5)]
        normalize_sweep = [(8, 10), (16, 10)]
        ingest_docs, ingest_acts = 6, 10
    else:
        roundtrip_sweep = [
            (scaled(10), 20),
            (scaled(25), 20),
            (scaled(50), 10),
        ]
        normalize_sweep = [
            (scaled(10), 50),
            (scaled(25), 50),
            (scaled(50), 25),
        ]
        ingest_docs, ingest_acts = scaled(15), scaled(20)

    results = {
        "roundtrip": [
            bench_roundtrip(edges, runs, seed=edges)
            for edges, runs in roundtrip_sweep
        ],
        "normalize": [
            bench_normalize(acts, docs, seed=acts)
            for acts, docs in normalize_sweep
        ],
        "ingest": bench_ingest(ingest_docs, ingest_acts, seed=99),
    }

    lines = ["BENCH_interchange", ""]
    lines.append(
        f"{'spec edges':>10} {'run edges':>10} {'doc bytes':>10} "
        f"{'export ms':>10} {'import ms':>10}"
    )
    for row in results["roundtrip"]:
        lines.append(
            f"{row['spec_edges']:>10} {row['mean_run_edges']:>10.1f} "
            f"{row['mean_doc_bytes']:>10.0f} {row['export_ms']:>10.2f} "
            f"{row['import_exact_ms']:>10.2f}"
        )
    lines.append("")
    lines.append(
        f"{'activities':>10} {'docs':>6} {'norm ms':>10} "
        f"{'non-SP':>7} {'forced':>7}"
    )
    for row in results["normalize"]:
        lines.append(
            f"{row['activities']:>10} {row['documents']:>6} "
            f"{row['import_normalize_ms']:>10.2f} "
            f"{row['non_sp_share']:>7.0%} "
            f"{row['forced_serialisations_total']:>7}"
        )
    ingest = results["ingest"]
    lines.append("")
    lines.append(
        f"ingest: {ingest['documents']} documents in "
        f"{ingest['ingest_total_s']:.2f}s "
        f"({ingest['ingest_mean_ms']:.1f} ms/doc, "
        f"{ingest['computed_pairs']} distance pairs)"
    )
    emit("BENCH_interchange", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_interchange.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )


if __name__ == "__main__":
    main()
