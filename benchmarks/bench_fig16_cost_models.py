"""Fig. 16: influence of the cost model on the produced edit script.

The paper's last experiment uses the Fig. 17(b) specification — a fork
connecting u and v by 10 parallel paths, the i-th of length i² — with
maxF = 5, probF = 1 and prob_p = 0.5, so each run holds exactly 5 fork
copies over random path subsets.  For ε from 0 to 1 it computes the
minimum-cost script under γ(l) = l^ε, re-prices that script under the
unit (ε = 0) and length (ε = 1) models, and reports the average and
worst-case percent error versus the respective optima over 100 pairs.

Paper numbers: the length-optimal script averages 14% (worst 50%) error
under unit cost; the unit-optimal script averages 16% (worst 64%) under
length cost; intermediate ε trade the two off monotonically.

Scaled reproduction: 6 paths (lengths 1..36), 12 pairs, ε ∈
{0, 0.25, 0.5, 0.75, 1}.
"""

import statistics

import pytest

from repro.core.api import diff_runs
from repro.costs.standard import PowerCost
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import fig17b_specification

from _workloads import emit, scaled

NUM_PATHS = 6
PAIRS = scaled(12, minimum=4)
EPSILONS = [0.0, 0.25, 0.5, 0.75, 1.0]
PARAMS = ExecutionParams(prob_parallel=0.5, max_fork=5, prob_fork=1.0)


def reprice(operations, cost) -> float:
    return sum(
        cost.path_cost(op.length, op.source_label, op.sink_label)
        for op in operations
    )


def sweep():
    spec = fig17b_specification(NUM_PATHS)
    unit = PowerCost(0.0)
    length = PowerCost(1.0)
    errors = {eps: {"unit": [], "length": []} for eps in EPSILONS}
    for pair_index in range(PAIRS):
        one = execute_workflow(spec, PARAMS, seed=2 * pair_index)
        two = execute_workflow(spec, PARAMS, seed=2 * pair_index + 1)
        unit_optimum = diff_runs(one, two, cost=unit).distance
        length_optimum = diff_runs(one, two, cost=length).distance
        for eps in EPSILONS:
            script = diff_runs(one, two, cost=PowerCost(eps)).script
            as_unit = reprice(script.operations, unit)
            as_length = reprice(script.operations, length)
            if unit_optimum > 0:
                errors[eps]["unit"].append(
                    100.0 * (as_unit - unit_optimum) / unit_optimum
                )
            if length_optimum > 0:
                errors[eps]["length"].append(
                    100.0 * (as_length - length_optimum) / length_optimum
                )
    return errors


def test_fig16_cost_model_errors(benchmark):
    errors = sweep()

    lines = [
        "Fig. 16: percent error of minimum-cost scripts re-priced under "
        "the unit and length models",
        f"{'ε':>5} {'avg unit-err%':>14} {'max unit-err%':>14} "
        f"{'avg len-err%':>13} {'max len-err%':>13}",
    ]
    summary = {}
    for eps in EPSILONS:
        unit_errors = errors[eps]["unit"] or [0.0]
        length_errors = errors[eps]["length"] or [0.0]
        summary[eps] = (
            statistics.mean(unit_errors),
            max(unit_errors),
            statistics.mean(length_errors),
            max(length_errors),
        )
        lines.append(
            f"{eps:>5.2f} {summary[eps][0]:>14.1f} {summary[eps][1]:>14.1f} "
            f"{summary[eps][2]:>13.1f} {summary[eps][3]:>13.1f}"
        )
    emit("fig16", lines)

    # The ε-optimal script is exact under its own model...
    assert summary[0.0][0] == pytest.approx(0.0, abs=1e-9)
    assert summary[1.0][2] == pytest.approx(0.0, abs=1e-9)
    # ... and the cross-model errors are non-trivial at the extremes
    # (the paper reports 14-16% averages; shapes, not magnitudes, are the
    # claim at this scale).
    assert summary[1.0][0] > 0.0, "length-optimal script should err under unit"
    assert summary[0.0][2] > 0.0, "unit-optimal script should err under length"
    # Monotone trade-off across ε (allowing small sampling noise).
    assert summary[1.0][0] >= summary[0.0][0] - 1e-9
    assert summary[0.0][2] >= summary[1.0][2] - 1e-9

    # Benchmark one full diff on this workload.
    spec = fig17b_specification(NUM_PATHS)
    one = execute_workflow(spec, PARAMS, seed=100)
    two = execute_workflow(spec, PARAMS, seed=101)
    benchmark.pedantic(
        diff_runs,
        args=(one, two),
        kwargs={"cost": PowerCost(0.5)},
        rounds=3,
        iterations=1,
    )
