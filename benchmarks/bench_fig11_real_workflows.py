"""Fig. 11: differencing time vs total run edges, real workflows.

The paper varies the total edge count of a run pair from 200 to 2000 per
specification and reports the time to compute the minimum-cost edit script
(unit cost, averages over 100 sample pairs; XML parse time omitted — here
runs are generated in memory, so there is nothing to omit).

Scaled reproduction: totals 200-1200 (x ``REPRO_BENCH_SCALE``), 3 sample
pairs per point.  The claims preserved are the *shape*: time grows
polynomially with the total edge count, every workflow pair of <= 200
edges diffs in well under a second, and the loop-heavy PGAQ is among the
slowest — as in the paper.
"""

import statistics

import pytest

from repro.core.api import diff_runs
from repro.costs.standard import UnitCost
from repro.workflow.real_workflows import all_real_workflows

from _workloads import emit, run_pair_with_total_edges, scaled, timed

TOTALS = [scaled(200), scaled(400), scaled(800), scaled(1200)]
SAMPLES = 3


def sweep():
    rows = []
    specs = all_real_workflows()
    for name, spec in specs.items():
        for total in TOTALS:
            times = []
            achieved = []
            for sample in range(SAMPLES):
                pair = run_pair_with_total_edges(
                    spec, total, seed=hash((name, total, sample)) % 10_000
                )
                elapsed, result = timed(
                    diff_runs, pair[0], pair[1], cost=UnitCost()
                )
                times.append(elapsed)
                achieved.append(pair[0].num_edges + pair[1].num_edges)
            rows.append(
                (
                    name,
                    total,
                    int(statistics.mean(achieved)),
                    statistics.mean(times),
                )
            )
    return rows


def test_fig11_scaling(benchmark):
    rows = sweep()

    lines = [
        "Fig. 11: execution time vs total edges in two runs "
        "(unit cost, script included)",
        f"{'workflow':9s} {'target':>7} {'edges':>6} {'seconds':>9}",
    ]
    for name, total, achieved, seconds in rows:
        lines.append(
            f"{name:9s} {total:>7} {achieved:>6} {seconds:>9.4f}"
        )
    emit("fig11", lines)

    # Shape assertions: polynomial growth (larger runs take longer on
    # average), and practical speed at the paper's "typical" size.
    by_workflow = {}
    for name, total, achieved, seconds in rows:
        by_workflow.setdefault(name, []).append((achieved, seconds))
    for name, series in by_workflow.items():
        series.sort()
        assert series[0][1] <= series[-1][1] * 3, (
            f"{name}: time did not grow with size"
        )
    small_times = [s for _, t, a, s in rows if a <= 220]
    assert small_times and max(small_times) < 5.0  # paper: <1s at 200 edges (Java)

    # Benchmark one representative point (PA at the largest total).
    spec = all_real_workflows()["PA"]
    pair = run_pair_with_total_edges(spec, TOTALS[-1], seed=7)
    benchmark.pedantic(
        diff_runs,
        args=(pair[0], pair[1]),
        kwargs={"cost": UnitCost()},
        rounds=3,
        iterations=1,
    )
