"""Table I: characteristics of the six real workflow specifications.

Regenerates the exact table of Section VIII-A from the reconstructed
specifications and benchmarks specification construction (graph build +
canonical tree + Algorithm 1 + validation).
"""

import pytest

from repro.workflow.real_workflows import TABLE_I, all_real_workflows

from _workloads import emit


def test_table1_characteristics(benchmark):
    specs = benchmark.pedantic(
        all_real_workflows, rounds=3, iterations=1
    )

    header = f"{'WORKFLOW':9s} {'|V|':>4} {'|E|':>4} {'|F|':>4} {'||F||':>6} {'|L|':>4} {'||L||':>6}"
    lines = ["Table I: characteristics of real workflow specifications", header]
    for name in ("PA", "EMBOSS", "SAXPF", "MB", "PGAQ", "BAIDD"):
        stats = specs[name].characteristics()
        lines.append(
            f"{name:9s} {stats['|V|']:>4} {stats['|E|']:>4} "
            f"{stats['|F|']:>4} {stats['||F||']:>6} "
            f"{stats['|L|']:>4} {stats['||L||']:>6}"
        )
        assert stats == TABLE_I[name], name
    emit("table1", lines)
