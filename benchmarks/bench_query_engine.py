"""Query-engine benchmark: indexed search vs brute-force scan.

Builds a corpus of protein-annotation runs, then measures the paper's
motivating corpus queries ("which runs dropped the annotation module?")
three ways:

* **ingest** — the one-time cost of computing, caching, and indexing
  every pairwise edit script (``QueryEngine.build``);
* **indexed** — the same predicate evaluated through the persistent
  inverted index by a *fresh* service (cold process, warm store:
  fingerprints, scripts, and postings all come from ``<store>/index/``);
* **scan** — the brute-force baseline that re-loads every run from XML
  and regenerates every edit script per query.

Both paths must return identical results; the emitted
``benchmarks/results/BENCH_query.json`` records the timings, the
speedup, and the equality check.  ``--quick`` shrinks the corpus for CI
smoke runs; ``REPRO_BENCH_SCALE`` grows it.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

from _workloads import RESULTS_DIR, emit, scaled

from repro.core.edit_script import PATH_DELETION
from repro.corpus.service import DiffService
from repro.io.store import WorkflowStore
from repro.query.engine import QueryEngine
from repro.query.predicates import Q
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)

#: The headline query: runs that dropped an annotation step, non-trivially.
PREDICATE = (
    Q.op_kind(PATH_DELETION)
    & Q.touches("getGOAnnot", "getBrendaAnnot")
    & Q.cost(min=2.0)
)


def build_corpus(root: Path, n_runs: int) -> WorkflowStore:
    store = WorkflowStore(root)
    spec = protein_annotation()
    store.save_specification(spec)
    for seed in range(1, n_runs + 1):
        store.save_run(
            execute_workflow(spec, PARAMS, seed=seed, name=f"r{seed:03d}")
        )
    return store


def timed(func, *args, **kwargs):
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - start, result


def doc_payload(doc):
    return (
        doc.run_a,
        doc.run_b,
        doc.distance,
        tuple(op.to_dict().items() for op in doc.operations),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus for CI smoke runs (12 runs instead of 50)",
    )
    args = parser.parse_args()
    n_runs = scaled(12, minimum=6) if args.quick else scaled(50, minimum=50)
    n_pairs = n_runs * (n_runs - 1) // 2

    base = Path(tempfile.mkdtemp(prefix="bench-query-"))
    store = build_corpus(base / "corpus", n_runs)

    results = {
        "corpus_runs": n_runs,
        "pairs": n_pairs,
        "predicate": PREDICATE.describe(),
        "quick": args.quick,
    }
    lines = [
        f"Query engine (protein annotation, {n_runs} runs, "
        f"{n_pairs} pairs)",
        f"predicate: {PREDICATE.describe()}",
        f"{'workload':<42}{'seconds':>10}",
    ]

    def record(key: str, label: str, seconds: float, **extra) -> None:
        results[key] = dict({"seconds": seconds}, **extra)
        lines.append(f"{label:<42}{seconds:>10.4f}")

    # -- ingest: one-time diff+cache+index over every pair ----------------
    ingest_service = DiffService(store)
    ingest_engine = QueryEngine(ingest_service)
    seconds, covered = timed(ingest_engine.build, "PA")
    assert covered == n_pairs
    record(
        "ingest", "ingest (diff + cache + index, cold)",
        seconds, computed_scripts=ingest_service.computed_scripts,
    )

    # -- indexed query: fresh service, warm store -------------------------
    indexed_service = DiffService(store)
    indexed_engine = QueryEngine(indexed_service)
    seconds, indexed_docs = timed(
        lambda: list(indexed_engine.select("PA", PREDICATE))
    )
    record(
        "query_indexed_cold_process",
        "indexed query (fresh service, warm store)",
        seconds,
        matches=len(indexed_docs),
        computed_scripts=indexed_service.computed_scripts,
    )
    assert indexed_service.computed_scripts == 0

    seconds, warm_docs = timed(
        lambda: list(indexed_engine.select("PA", PREDICATE))
    )
    record(
        "query_indexed_warm",
        "indexed query (warm memory)",
        seconds,
        matches=len(warm_docs),
    )
    indexed_seconds = results["query_indexed_cold_process"]["seconds"]

    # -- aggregation over the index ---------------------------------------
    seconds, _ = timed(indexed_engine.churn, "PA")
    record("churn_indexed", "module-churn ranking (indexed)", seconds)

    # -- brute-force scan --------------------------------------------------
    scan_engine = QueryEngine(DiffService(store, persistent=False))
    seconds, scanned_docs = timed(
        lambda: list(scan_engine.scan("PA", PREDICATE))
    )
    record(
        "query_scan",
        "brute-force scan (re-diff every pair)",
        seconds,
        matches=len(scanned_docs),
    )

    identical = [doc_payload(d) for d in indexed_docs] == [
        doc_payload(d) for d in scanned_docs
    ]
    speedup = results["query_scan"]["seconds"] / max(
        indexed_seconds, 1e-9
    )
    results["identical_results"] = identical
    results["speedup_indexed_vs_scan"] = speedup
    lines.append("")
    lines.append(
        f"indexed vs scan: {speedup:.0f}x speedup, "
        f"identical results: {identical}"
    )
    assert identical, "indexed query diverged from brute-force scan"
    assert speedup >= 10, (
        f"indexed query only {speedup:.1f}x faster than the scan "
        "baseline (expected >= 10x)"
    )

    emit("BENCH_query", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_query.json"
    out.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )
    print(f"\nwrote {out}")
    shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    main()
