"""Ablation A1: Hungarian vs non-crossing matching (explains Fig. 14).

The paper attributes the fork/loop running-time gap to the children
matching step: fork copies are paired with the Hungarian algorithm while
ordered loop iterations use the O(n·m) non-crossing DP.  This ablation
times both matchers head-to-head on identical cost matrices of growing
size, and cross-checks our Hungarian implementation against SciPy.
"""

import random
import statistics

import pytest

from repro.matching.hungarian import match_children, solve_assignment
from repro.matching.noncrossing import noncrossing_match

from _workloads import emit, scaled, timed

SIZES = [scaled(10), scaled(20), scaled(40), scaled(80)]
SAMPLES = 3


def make_instance(size, seed):
    rng = random.Random(seed)
    pair = [
        [rng.uniform(0, 10) for _ in range(size)] for _ in range(size)
    ]
    deletes = [rng.uniform(0, 10) for _ in range(size)]
    inserts = [rng.uniform(0, 10) for _ in range(size)]
    return pair, deletes, inserts


def sweep():
    rows = []
    for size in SIZES:
        hungarian_times = []
        noncrossing_times = []
        for sample in range(SAMPLES):
            pair, deletes, inserts = make_instance(size, sample)
            cost_fn = lambda i, j: pair[i][j]
            elapsed, _ = timed(match_children, cost_fn, deletes, inserts)
            hungarian_times.append(elapsed)
            elapsed, _ = timed(
                noncrossing_match, cost_fn, deletes, inserts
            )
            noncrossing_times.append(elapsed)
        rows.append(
            (
                size,
                statistics.mean(hungarian_times),
                statistics.mean(noncrossing_times),
            )
        )
    return rows


def test_matching_ablation(benchmark):
    rows = sweep()
    lines = [
        "Ablation A1: Hungarian (forks) vs non-crossing DP (loops)",
        f"{'n':>5} {'hungarian(s)':>13} {'noncrossing(s)':>15} {'ratio':>7}",
    ]
    for size, hungarian, noncrossing in rows:
        ratio = hungarian / noncrossing if noncrossing else float("inf")
        lines.append(
            f"{size:>5} {hungarian:>13.5f} {noncrossing:>15.5f} "
            f"{ratio:>7.1f}"
        )
    emit("ablation_matching", lines)

    # The asymptotic gap that drives Fig. 14: at the largest size the
    # Hungarian matcher costs strictly more than the alignment DP.
    largest = rows[-1]
    assert largest[1] > largest[2]

    # Cross-check optimality against SciPy on one instance.
    scipy_optimize = pytest.importorskip("scipy.optimize")
    rng = random.Random(5)
    size = SIZES[-1]
    matrix = [
        [rng.uniform(0, 10) for _ in range(size)] for _ in range(size)
    ]
    total, _ = solve_assignment(matrix)
    r, c = scipy_optimize.linear_sum_assignment(matrix)
    assert total == pytest.approx(
        sum(matrix[i][j] for i, j in zip(r, c))
    )

    pair, deletes, inserts = make_instance(SIZES[-1], 9)
    benchmark.pedantic(
        match_children,
        args=(lambda i, j: pair[i][j], deletes, inserts),
        rounds=3,
        iterations=1,
    )
