"""Ablation A2: the S-node deletion DP is the series-side bottleneck.

Fig. 12's explanation: reducing a subtree rooted at an S node needs the
knapsack-style convolution (O(|E|³) overall), while P/F/L nodes take the
minimum over children in linear time.  This ablation times
:class:`~repro.core.deletion.DeletionTables` on runs of pure-series vs
pure-parallel specifications of equal edge count.
"""

import statistics

import pytest

from repro.core.deletion import DeletionTables
from repro.costs.standard import UnitCost
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_specification

from _workloads import emit, scaled, timed

SIZES = [scaled(100), scaled(200), scaled(400)]
SAMPLES = 3
PARAMS = ExecutionParams(prob_parallel=0.95)


def sweep():
    rows = []
    for size in SIZES:
        for label, ratio in (("series", 6.0), ("parallel", 1.0 / 6.0)):
            times = []
            for sample in range(SAMPLES):
                spec = random_specification(
                    size, ratio, seed=hash((label, size, sample)) % 9999
                )
                run = execute_workflow(spec, PARAMS, seed=sample)
                elapsed, _ = timed(
                    DeletionTables, run.tree, UnitCost()
                )
                times.append(elapsed)
            rows.append((label, size, statistics.mean(times)))
    return rows


def test_deletion_dp_ablation(benchmark):
    rows = sweep()
    lines = [
        "Ablation A2: subtree-deletion tables, series vs parallel runs",
        f"{'shape':9s} {'|E|':>5} {'seconds':>10}",
    ]
    for label, size, seconds in rows:
        lines.append(f"{label:9s} {size:>5} {seconds:>10.5f}")
    emit("ablation_deletion", lines)

    by_shape = {}
    for label, size, seconds in rows:
        by_shape.setdefault(label, []).append((size, seconds))
    largest = SIZES[-1]
    series_time = dict(by_shape["series"])[largest]
    parallel_time = dict(by_shape["parallel"])[largest]
    # The S-node convolution makes series runs the expensive shape.
    assert series_time >= parallel_time

    spec = random_specification(largest, 6.0, seed=3)
    run = execute_workflow(spec, PARAMS, seed=3)
    benchmark.pedantic(
        DeletionTables, args=(run.tree, UnitCost()), rounds=3, iterations=1
    )
