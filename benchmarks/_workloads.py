"""Shared workload helpers for the benchmark suite.

The paper's evaluation ran a Java implementation on a 2008 Pentium IV with
runs of up to 2000 edges and 100-200 samples per point.  This pure-Python
reproduction scales the sweeps down (sizes and sample counts) while
keeping every workload *shape* identical; set the environment variable
``REPRO_BENCH_SCALE`` (default ``1.0``) to grow or shrink the sweeps.

Every benchmark writes its printed table to ``benchmarks/results/`` so the
figures can be compared against the paper after a run (EXPERIMENTS.md
records one such run).
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def scaled(value: int, minimum: int = 1) -> int:
    """Scale a sweep size by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(value * SCALE)))


def emit(name: str, lines: List[str]) -> None:
    """Print a results table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf8")


def timed(func: Callable, *args, **kwargs) -> Tuple[float, object]:
    """(elapsed seconds, result) of one call."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - start, result


def run_pair_with_total_edges(
    spec: WorkflowSpecification,
    target_total: int,
    seed: int,
    tolerance: float = 0.25,
    max_attempts: int = 40,
) -> Tuple[WorkflowRun, WorkflowRun]:
    """Generate a run pair whose total edge count approximates a target.

    Mirrors Fig. 11's x-axis ("total number of edges in two runs"): fork
    and loop replication factors are searched until the pair lands within
    ``tolerance`` of ``target_total``.
    """
    base_edges = 2 * spec.num_edges
    factor = max(1, round(target_total / max(1, base_edges)))
    best: Optional[Tuple[WorkflowRun, WorkflowRun]] = None
    best_gap = float("inf")
    for attempt in range(max_attempts):
        params = ExecutionParams(
            prob_parallel=0.95,
            max_fork=max(1, factor),
            prob_fork=0.7,
            max_loop=max(1, factor),
            prob_loop=0.7,
        )
        one = execute_workflow(
            spec, params, seed=seed * 1000 + attempt * 2, name="a"
        )
        two = execute_workflow(
            spec, params, seed=seed * 1000 + attempt * 2 + 1, name="b"
        )
        total = one.num_edges + two.num_edges
        gap = abs(total - target_total) / target_total
        if gap < best_gap:
            best_gap = gap
            best = (one, two)
        if gap <= tolerance:
            return one, two
        if total < target_total:
            factor += 1
        elif factor > 1:
            factor -= 1
    assert best is not None
    return best
