"""Ablation A3: where the differencing time goes.

Splits one real-workflow diff into its pipeline stages — annotated-tree
construction (Algorithms 2/5), deletion tables (Algorithm 3), the
edit-distance DP (Algorithms 4/6), and script generation (Lemma 5.1) —
and reports the share of each.  Confirms the paper's complexity analysis:
the matching/DP stage dominates while tree construction stays near-linear.
"""

import statistics

import pytest

from repro.core.deletion import DeletionTables
from repro.core.edit_distance import EditDistanceComputation
from repro.core.edit_script import generate_script
from repro.costs.standard import UnitCost
from repro.sptree.annotate_run import annotate_run_tree
from repro.workflow.real_workflows import pgaq

from _workloads import emit, run_pair_with_total_edges, scaled, timed

TOTAL_EDGES = scaled(900)
SAMPLES = 3


def sweep():
    spec = pgaq()
    cost = UnitCost()
    stage_times = {"annotate": [], "deletion": [], "dp": [], "script": []}
    for sample in range(SAMPLES):
        one, two = run_pair_with_total_edges(
            spec, TOTAL_EDGES, seed=sample + 1
        )
        elapsed, tree1 = timed(annotate_run_tree, spec, one.graph)
        elapsed2, tree2 = timed(annotate_run_tree, spec, two.graph)
        stage_times["annotate"].append(elapsed + elapsed2)

        elapsed, _ = timed(DeletionTables, tree1, cost)
        elapsed2, _ = timed(DeletionTables, tree2, cost)
        stage_times["deletion"].append(elapsed + elapsed2)

        elapsed, computation = timed(
            EditDistanceComputation, spec, tree1, tree2, cost
        )
        stage_times["dp"].append(elapsed)

        elapsed, _ = timed(generate_script, computation)
        stage_times["script"].append(elapsed)
    return {
        stage: statistics.mean(values)
        for stage, values in stage_times.items()
    }


def test_pipeline_split(benchmark):
    shares = sweep()
    total = sum(shares.values())
    lines = [
        f"Ablation A3: pipeline time split (PGAQ, ~{TOTAL_EDGES} total edges)",
        f"{'stage':10s} {'seconds':>10} {'share':>7}",
    ]
    for stage in ("annotate", "deletion", "dp", "script"):
        lines.append(
            f"{stage:10s} {shares[stage]:>10.5f} "
            f"{100 * shares[stage] / total:>6.1f}%"
        )
    emit("ablation_pipeline", lines)

    # At scale the superlinear DP stage (matchings over homologous
    # pairs) outgrows near-linear tree construction, per Section V-D.
    assert shares["dp"] >= shares["annotate"] * 0.5

    spec = pgaq()
    one, two = run_pair_with_total_edges(spec, TOTAL_EDGES, seed=11)
    tree1 = annotate_run_tree(spec, one.graph)
    tree2 = annotate_run_tree(spec, two.graph)
    benchmark.pedantic(
        EditDistanceComputation,
        args=(spec, tree1, tree2, UnitCost()),
        rounds=3,
        iterations=1,
    )
