"""Figs. 14 & 15: forks vs loops.

The paper fixes a 100-edge specification (r = 0.5) annotated with 5 forks
and 5 loops, sets prob_p = 1 and maxF = maxL = 20, and sweeps the fork /
loop probability from 0 to 1, comparing three run-pair kinds:

* Fork vs Fork — both runs replicate forks only;
* Fork vs Loop — one of each;
* Loop vs Loop — both runs iterate loops only.

Fig. 14 (time): fork-heavy pairs are by far the most expensive — fork
copies are paired with a minimum-cost bipartite (Hungarian) matching and
every copy pair needs a recursive mapping cost, whereas ordered loop
iterations use the cheaper non-crossing DP, and mixed pairs produce tiny
matching instances (fork copies never match loop copies).  Fig. 15
(distance): FF and LL distances drop to **zero** as the probability
reaches one (every fork/loop replicates exactly its maximum, so the runs
coincide), while the FL distance grows monotonically.

Scaled reproduction: 60-edge spec (r = 1 so enough series runs exist for
*balanced* fork/loop elements — see
``balanced_fork_loop_specification``), maxF = maxL = 10, probabilities
{0.2, 0.5, 0.8, 1.0}, 3 samples per point.
"""

import statistics

import pytest

from repro.core.api import diff_runs
from repro.costs.standard import UnitCost
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import balanced_fork_loop_specification

from _workloads import emit, scaled, timed

SPEC_EDGES = scaled(60)
MAX_COPIES = 10
PROBABILITIES = [0.2, 0.5, 0.8, 1.0]
SAMPLES = 3
KINDS = ["Fork vs Fork", "Fork vs Loop", "Loop vs Loop"]


def make_spec(sample):
    return balanced_fork_loop_specification(
        SPEC_EDGES, 1.0, num_forks=5, num_loops=5, seed=sample
    )


def fork_params(probability):
    return ExecutionParams(
        prob_parallel=1.0,
        max_fork=MAX_COPIES,
        prob_fork=probability,
        max_loop=1,
        prob_loop=0.0,
    )


def loop_params(probability):
    return ExecutionParams(
        prob_parallel=1.0,
        max_fork=1,
        prob_fork=0.0,
        max_loop=MAX_COPIES,
        prob_loop=probability,
    )


def run_kind(spec, kind, probability, seed):
    if kind == "Fork vs Fork":
        params = (fork_params(probability), fork_params(probability))
    elif kind == "Loop vs Loop":
        params = (loop_params(probability), loop_params(probability))
    else:
        params = (fork_params(probability), loop_params(probability))
    one = execute_workflow(spec, params[0], seed=seed)
    two = execute_workflow(spec, params[1], seed=seed + 5000)
    return one, two


def sweep():
    rows = []
    for kind in KINDS:
        for probability in PROBABILITIES:
            times = []
            distances = []
            totals = []
            for sample in range(SAMPLES):
                spec = make_spec(sample)
                one, two = run_kind(
                    spec, kind, probability, seed=sample * 31 + 3
                )
                elapsed, result = timed(
                    diff_runs, one, two, cost=UnitCost(), with_script=False
                )
                times.append(elapsed)
                distances.append(result.distance)
                totals.append(one.num_edges + two.num_edges)
            rows.append(
                (
                    kind,
                    probability,
                    statistics.mean(times),
                    statistics.mean(distances),
                    int(statistics.mean(totals)),
                )
            )
    return rows


def test_fig14_15_fork_vs_loop(benchmark):
    rows = sweep()

    lines = [
        "Figs. 14/15: fork vs loop (unit cost, prob_p = 1, "
        f"maxF = maxL = {MAX_COPIES}, balanced elements)",
        f"{'kind':14s} {'prob':>5} {'seconds':>9} {'distance':>9} "
        f"{'edges':>6}",
    ]
    for kind, probability, seconds, distance, total in rows:
        lines.append(
            f"{kind:14s} {probability:>5.1f} {seconds:>9.4f} "
            f"{distance:>9.2f} {total:>6}"
        )
    emit("fig14_15", lines)

    table = {
        (kind, probability): (seconds, distance)
        for kind, probability, seconds, distance, _ in rows
    }
    # Fig. 14 claims at full replication: fork-fork pairing dominates.
    assert table[("Fork vs Fork", 1.0)][0] >= table[("Loop vs Loop", 1.0)][0]
    assert table[("Fork vs Fork", 1.0)][0] >= table[("Fork vs Loop", 1.0)][0]
    # Fig. 15 claims: FF and LL distances vanish at probability 1 (every
    # fork/loop replicates exactly MAX_COPIES, so the runs coincide)...
    assert table[("Fork vs Fork", 1.0)][1] == 0.0
    assert table[("Loop vs Loop", 1.0)][1] == 0.0
    # ... while mixed pairs keep growing with the probability.
    assert (
        table[("Fork vs Loop", 1.0)][1]
        >= table[("Fork vs Loop", 0.2)][1]
    )
    assert table[("Fork vs Loop", 1.0)][1] > 0.0

    # Benchmark the expensive corner: fork-vs-fork at probability 1.
    spec = make_spec(0)
    one, two = run_kind(spec, "Fork vs Fork", 1.0, seed=77)
    benchmark.pedantic(
        diff_runs,
        args=(one, two),
        kwargs={"cost": UnitCost(), "with_script": False},
        rounds=3,
        iterations=1,
    )
