"""Observability overhead: instrumented vs bare request throughput.

Boots two in-process diff servers over identical warm corpora — one
with the metrics registry enabled (the production default), one with
``metrics=False`` (every instrument a no-op) — and measures the
warm-cache ``GET /diff/{a}/{b}`` sweep plus a ``GET /healthz`` hammer
against both.  Logging is off in both regimes so the delta isolates
the cost of the instruments themselves: per-route counters, latency
histogram buckets, cache/DP counters, and the lock-wait monitor.

The acceptance budget is **< 3% overhead** on the warm sweep (the
regime where instrument cost is largest relative to useful work — cold
sweeps bury it under the O(|E|³) DP).  The run cross-checks the
instrumented server's counters against ground truth: the scrape must
account for every request the benchmark made.

Emits ``benchmarks/results/BENCH_obs.json``.  Scale with
``REPRO_BENCH_SCALE`` or pass ``--quick`` for CI smoke.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from _workloads import RESULTS_DIR, emit, scaled

from bench_server import build_corpus
from repro.client import RemoteWorkspace
from repro.config import ReproConfig
from repro.obs.promcheck import parse_exposition
from repro.service.server import DiffServer


def sweep_diffs(client: RemoteWorkspace, pairs) -> float:
    start = time.perf_counter()
    for a, b in pairs:
        client.diff(a, b, spec="PA")
    return time.perf_counter() - start


def hammer_healthz(client: RemoteWorkspace, n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        client.healthz()
    return time.perf_counter() - start


def measure(base: Path, n_runs: int, pairs, repeats: int,
            healthz_n: int) -> dict:
    """Interleaved A/B: both servers up, sweeps alternate per repeat.

    Alternation cancels slow environmental drift (allocator state, CPU
    frequency, page cache) that a sequential A-then-B comparison folds
    into the regime delta.
    """
    chunk = max(1, healthz_n // repeats)
    with DiffServer(
        build_corpus(base / "on", n_runs),
        ReproConfig(backend="serial", log_format="off", metrics=True),
    ) as on_server, DiffServer(
        build_corpus(base / "off", n_runs),
        ReproConfig(backend="serial", log_format="off", metrics=False),
    ) as off_server:
        regimes = {
            "instrumented": {
                "server": on_server, "diff_seconds": 0.0,
                "healthz_seconds": 0.0,
            },
            "bare": {
                "server": off_server, "diff_seconds": 0.0,
                "healthz_seconds": 0.0,
            },
        }
        for regime in regimes.values():
            warmup = RemoteWorkspace(regime["server"].url)
            for a, b in pairs:  # pay every DP before the clock starts
                warmup.diff(a, b, spec="PA")
            # No ETag memo: timed sweeps transfer full bodies.
            regime["client"] = RemoteWorkspace(regime["server"].url)
        for _ in range(repeats):
            for regime in regimes.values():
                regime["diff_seconds"] += sweep_diffs(
                    regime["client"], pairs
                )
            for regime in regimes.values():
                regime["healthz_seconds"] += hammer_healthz(
                    regime["client"], chunk
                )

        results = {}
        for name, regime in regimes.items():
            results[name] = {
                "metrics": name == "instrumented",
                "diff_requests": len(pairs) * repeats,
                "diff_seconds": regime["diff_seconds"],
                "diff_rps": (
                    len(pairs) * repeats / regime["diff_seconds"]
                ),
                "healthz_requests": chunk * repeats,
                "healthz_seconds": regime["healthz_seconds"],
                "healthz_rps": chunk * repeats
                / regime["healthz_seconds"],
            }

        # Ground truth: the scrape accounts for every request made.
        client = regimes["instrumented"]["client"]
        text = client._request("GET", "/metrics")[2].decode("utf8")
        families = parse_exposition(text)
        counted = sum(
            value
            for _, _, value in families["server_requests_total"][
                "samples"
            ]
        )
        expected = (
            len(pairs)  # warm-up sweep
            + len(pairs) * repeats  # timed sweeps
            + chunk * repeats
        )
        assert counted == expected, (counted, expected)
        results["instrumented"]["scrape_counted_requests"] = counted
    return results


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    n_runs = scaled(6 if quick else 10, minimum=4)
    repeats = scaled(3 if quick else 6, minimum=1)
    healthz_n = scaled(200 if quick else 600, minimum=50)
    names = [f"r{seed:03d}" for seed in range(1, n_runs + 1)]
    pairs = [
        (a, b) for i, a in enumerate(names) for b in names[i + 1:]
    ]
    base = Path(tempfile.mkdtemp(prefix="bench-obs-"))

    measured = measure(base, n_runs, pairs, repeats, healthz_n)
    instrumented, bare = measured["instrumented"], measured["bare"]

    def overhead(key: str) -> float:
        return (
            instrumented[key] / bare[key] - 1.0
        ) * 100.0

    results = {
        "corpus_runs": n_runs,
        "instrumented": instrumented,
        "bare": bare,
        "diff_overhead_pct": overhead("diff_seconds"),
        "healthz_overhead_pct": overhead("healthz_seconds"),
    }
    lines = [
        f"Observability overhead (warm diff sweep x{repeats}, "
        f"{len(pairs)} pairs; {healthz_n} healthz)",
        f"{'regime':<14}{'diff req/s':>12}{'healthz req/s':>15}",
        f"{'metrics on':<14}{instrumented['diff_rps']:>12.1f}"
        f"{instrumented['healthz_rps']:>15.1f}",
        f"{'metrics off':<14}{bare['diff_rps']:>12.1f}"
        f"{bare['healthz_rps']:>15.1f}",
        f"overhead: diff {results['diff_overhead_pct']:+.2f}%, "
        f"healthz {results['healthz_overhead_pct']:+.2f}% "
        "(budget < 3%)",
    ]

    emit("BENCH_obs", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_obs.json"
    out.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n",
        encoding="utf8",
    )
    print(f"\nwrote {out}")
    shutil.rmtree(base, ignore_errors=True)


if __name__ == "__main__":
    main()
