"""BENCH_scale: the 10³–10⁴-run corpus harness as a regression gate.

Builds a seeded realistic corpus (``repro.scale``: pipeline fan-out /
fan-in families, adversarial non-SP shapes, bounded-mutation drift,
heterogeneous mixes — all entering through the real import path) into
a scratch store, then drives the three workloads that matter: bulk
ingest throughput, cold/warm distance-matrix time, and indexed query
latency.  Emits ``benchmarks/results/BENCH_scale.json`` and compares
it against the committed baseline with the ratio thresholds in
``repro.scale.gate``.

Modes::

    python benchmarks/bench_scale.py --quick   # 1k corpus, trimmed drivers
    python benchmarks/bench_scale.py           # 1000 runs (the gate)
    python benchmarks/bench_scale.py --full    # 10000 runs

The gate starts advisory: findings print but exit code stays 0 unless
``REPRO_SCALE_GATE=hard``.  ``--store DIR`` reuses a directory across
invocations (the build is resumable); default is a temp dir.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _workloads import RESULTS_DIR, emit  # noqa: E402

from repro import ReproConfig, Workspace  # noqa: E402
from repro.scale.build import BuildPlan, CorpusBuilder  # noqa: E402
from repro.scale.drivers import (  # noqa: E402
    DriverConfig,
    drive_workloads,
)
from repro.scale.gate import evaluate_gate, gate_mode  # noqa: E402

BASELINE = RESULTS_DIR / "BENCH_scale.json"


def measure(
    runs: int, store: Path, seed: int, quick: bool = False
) -> dict:
    workspace = Workspace(
        store, ReproConfig(backend="thread", persistent=True)
    )
    plan = BuildPlan(runs=runs, seed=seed)
    started = time.perf_counter()
    build = CorpusBuilder(workspace, plan).build()
    drivers = drive_workloads(
        workspace,
        DriverConfig(
            seed=seed,
            probe_runs=16 if quick else 32,
            query_repeats=5 if quick else 15,
        ),
    )
    report = {
        "benchmark": "scale",
        "corpus_runs": runs,
        "seed": seed,
        "cpu_cores": multiprocessing.cpu_count(),
        "total_seconds": round(time.perf_counter() - started, 2),
        "build": build.to_dict(),
    }
    report.update(drivers)
    return report


def render(report: dict) -> list:
    build = report["build"]
    ingest = report["ingest"]
    matrix = report["matrix"]
    query = report["query"]
    stats = report["stats"]
    return [
        f"Scale harness ({report['corpus_runs']} planned runs, seed "
        f"{report['seed']}, {report['cpu_cores']} cpu core(s))",
        f"{'workload':<22}{'value':>14}",
        f"{'build runs/s':<22}{build['runs_per_second']:>14g}",
        f"{'build imported':<22}{build['imported']:>14d}",
        f"{'build skipped':<22}{build['skipped']:>14d}",
        f"{'forced-serial ratio':<22}"
        f"{build['forced_serialization_ratio']:>14g}",
        f"{'ingest runs/s':<22}{ingest['runs_per_second']:>14g}",
        f"{'matrix cold s':<22}{matrix['cold_seconds']:>14g}",
        f"{'matrix warm s':<22}{matrix['warm_seconds']:>14g}",
        f"{'query p50 ms':<22}{query['p50_ms']:>14g}",
        f"{'query p95 ms':<22}{query['p95_ms']:>14g}",
        f"{'dp skipped by bound':<22}"
        f"{stats['dp_skipped_by_bound']:>14d}",
        f"{'dp skip ratio':<22}{stats['dp_skip_ratio']:>14g}",
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="same 1k corpus, trimmed driver repeats (CI budget)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="10k-run corpus (the 10^4 point; takes a while)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="override corpus size"
    )
    parser.add_argument("--seed", type=int, default=20090329)
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="reuse this store directory (resumable) instead of a "
        "temp dir",
    )
    parser.add_argument(
        "--no-commit",
        action="store_true",
        help="print the report without rewriting the baseline",
    )
    args = parser.parse_args()
    # --quick keeps the 1k corpus (the committed-baseline point, so
    # the gate still compares like with like) but trims the driver
    # repeats to stay minutes-bounded in CI.
    if args.runs is not None:
        runs = args.runs
    elif args.full:
        runs = 10_000
    else:
        runs = 1_000

    baseline = None
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text(encoding="utf8"))

    scratch = args.store is None
    store = args.store or Path(
        tempfile.mkdtemp(prefix="bench-scale-")
    )
    try:
        report = measure(runs, store, args.seed, quick=args.quick)
    finally:
        if scratch:
            shutil.rmtree(store, ignore_errors=True)

    emit("BENCH_scale", render(report))

    findings = []
    if baseline is not None:
        if baseline.get("corpus_runs") != runs:
            print(
                f"\nbaseline is {baseline.get('corpus_runs')} runs, "
                f"this pass is {runs}: gate skipped"
            )
        else:
            findings = evaluate_gate(report, baseline)
            for finding in findings:
                print(f"GATE: {finding.render()}")
            if not findings:
                print("\ngate: all thresholds green vs baseline")

    if not args.no_commit:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf8",
        )
        print(f"wrote {BASELINE}")

    if findings and gate_mode() == "hard":
        print(
            f"\n{len(findings)} hard gate failure(s) "
            "(REPRO_SCALE_GATE=hard)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
