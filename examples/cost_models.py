"""Cost-model sensitivity: how ε changes the minimum-cost edit script.

Reproduces the intuition of Fig. 17: under the power cost family
``γ(l) = l^ε``, different exponents prefer different scripts — the unit
model (ε = 0) minimises operation *count*, the length model (ε = 1)
minimises touched *edges*, and intermediates trade the two off.

The script builds the Fig. 17(b)-style specification (a fork over parallel
paths of very different lengths), generates a fixed pair of runs, and
reports, for each ε, the distance, the number of operations, and the total
path length edited — plus the percent error of each script when re-priced
under the other models (the quantity plotted in Fig. 16).

Run with:  python examples/cost_models.py
"""

from repro import (
    ExecutionParams,
    PowerCost,
    WorkflowSpecification,
    execute_workflow,
)
from repro.core.api import diff_runs
from repro.workflow.generators import fig17b_specification


def build_specification() -> WorkflowSpecification:
    """Fig. 17(b): a fork connecting u and v by parallel paths of length i².

    The fork wraps the whole graph, so each fork copy carries a random
    subset of the parallel paths (prob_parallel = 0.5) — matching copies
    under different ε then trades path count against path length.
    """
    return fig17b_specification(num_paths=6, squared=True)


def reprice(operations, cost) -> float:
    """Price an existing script under a different cost model."""
    return sum(
        cost.path_cost(op.length, op.source_label, op.sink_label)
        for op in operations
    )


def main() -> None:
    spec = build_specification()
    params = ExecutionParams(
        prob_parallel=0.5, max_fork=5, prob_fork=1.0
    )  # exactly 5 fork copies, each with ~half of the paths (§VIII-D)
    run1 = execute_workflow(spec, params, seed=1, name="run1")
    run2 = execute_workflow(spec, params, seed=2, name="run2")
    print(f"spec: {spec}")
    print(f"runs: {run1.num_edges} vs {run2.num_edges} edges")
    print()

    epsilons = [0.0, 0.25, 0.5, 0.75, 1.0]
    unit, length = PowerCost(0.0), PowerCost(1.0)

    header = (
        f"{'ε':>5} {'distance':>9} {'ops':>4} {'edges':>6} "
        f"{'unit-err%':>10} {'length-err%':>12}"
    )
    print(header)
    print("-" * len(header))
    unit_optimum = diff_runs(run1, run2, cost=unit).distance
    length_optimum = diff_runs(run1, run2, cost=length).distance
    for epsilon in epsilons:
        result = diff_runs(run1, run2, cost=PowerCost(epsilon))
        ops = result.script.operations
        as_unit = reprice(ops, unit)
        as_length = reprice(ops, length)
        unit_error = 100.0 * (as_unit - unit_optimum) / unit_optimum
        length_error = (
            100.0 * (as_length - length_optimum) / length_optimum
        )
        print(
            f"{epsilon:5.2f} {result.distance:9.3f} {len(ops):4d} "
            f"{sum(op.length for op in ops):6d} "
            f"{unit_error:10.1f} {length_error:12.1f}"
        )
    print()
    print(
        "Reading: the ε=1 script re-priced under unit cost exceeds the\n"
        "unit optimum (and vice versa) — different cost models pick\n"
        "genuinely different minimum-cost scripts (Fig. 16/17)."
    )


if __name__ == "__main__":
    main()
