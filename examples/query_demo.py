"""Querying a corpus of diffs: the provenance diff query engine.

Builds a corpus of protein-annotation runs, then asks the questions the
paper's PDiffView scenarios motivate but its one-pair-at-a-time viewer
cannot answer:

* which pairs of runs dropped an annotation module?
* how does the corpus edit, overall (operation-kind histogram)?
* which modules churn the most?
* where do two groups of executions diverge?

Run with:  python examples/query_demo.py
"""

import tempfile
import time

from repro import ExecutionParams, Q
from repro.pdiffview.session import PDiffViewSession
from repro.workflow.real_workflows import protein_annotation


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="query-") as root:
        session = PDiffViewSession(root)
        session.register_specification(protein_annotation())

        varied = ExecutionParams(
            prob_parallel=0.7,
            max_fork=3,
            prob_fork=0.6,
            max_loop=2,
            prob_loop=0.6,
        )
        for seed in range(1, 11):
            session.generate_run("PA", f"run{seed:02d}", varied, seed=seed)
        print("corpus:", ", ".join(session.runs("PA")))
        print()

        # "Which runs dropped the GO annotation module, non-trivially?"
        # — a composable predicate, evaluated through the inverted
        # index.  The first query pays the pairwise diffs once (they
        # are cached and indexed as they are computed); repeats are
        # pure index reads.
        predicate = (
            Q.op_kind("path-deletion")
            & Q.touches("getGOAnnot")
            & Q.cost(min=2.0)
        )
        start = time.perf_counter()
        docs = session.query("PA", predicate)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        session.query("PA", predicate)
        warm = time.perf_counter() - start
        print(f"query: {predicate.describe()}")
        print(f"  cold {cold * 1e3:.1f} ms (diff + index build), "
              f"warm {warm * 1e3:.1f} ms (indexed)")
        for doc in docs[:5]:
            print(f"  {doc}")
        print()

        engine = session.query_engine

        # How does this corpus edit, overall?
        print("operation-kind histogram:")
        for kind, count in sorted(engine.histogram("PA").items()):
            print(f"  {kind}: {count}")
        print()

        # Which modules churn the most across all diffs?
        print("module churn (top 5):")
        for entry in engine.churn("PA")[:5]:
            print(
                f"  {entry.label}: {entry.operations} ops, "
                f"cost {entry.total_cost:g} across {entry.pairs} pairs"
            )
        print()

        # Where do the first five executions diverge from the last five?
        report = engine.divergence(
            "PA",
            [f"run{i:02d}" for i in range(1, 6)],
            [f"run{i:02d}" for i in range(6, 11)],
        )
        print("group divergence (run01-05 vs run06-10):")
        for line in report.summary_lines():
            print(f"  {line}")
        print()

        # Everything is persistent: a fresh session over the same store
        # answers the same query from the on-disk index, zero diffs.
        fresh = PDiffViewSession(root)
        start = time.perf_counter()
        fresh.query("PA", predicate)
        restart = time.perf_counter() - start
        print(
            f"fresh session, same store: query in {restart * 1e3:.1f} ms "
            f"({fresh.diff_service.computed_scripts} scripts recomputed)"
        )


if __name__ == "__main__":
    main()
