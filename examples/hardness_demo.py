"""Theorem 1 demonstration: why general workflows are hard to diff.

Builds the paper's reduction from balanced bipartite clique to the
workflow difference problem on the four-node forbidden-minor
specification, and shows both directions empirically on small instances:
the minimum edit cost hits the threshold Γ = (m − ℓ²) + 4(n − ℓ) exactly
when an ℓ×ℓ biclique exists, and exceeds it by ≥ 2 otherwise.

Also shows the flip side: the same graphs are *not* series-parallel, so
they fall outside the class the polynomial algorithm covers — the paper's
boundary is tight (the forbidden minor has just four nodes).

Run with:  python examples/hardness_demo.py
"""

import random

from repro.graphs.homomorphism import check_valid_run
from repro.hardness.reduction import (
    BipartiteInstance,
    build_run1,
    build_run2,
    forbidden_minor_specification,
    reduction_gap,
)
from repro.sptree.canonical import is_series_parallel


def random_instance(n, ell, density, seed):
    rng = random.Random(seed)
    edges = frozenset(
        (x, y)
        for x in range(n)
        for y in range(n)
        if rng.random() < density
    )
    if not edges:
        edges = frozenset({(0, 0)})
    return BipartiteInstance(n=n, edges=edges, ell=ell)


def main() -> None:
    spec = forbidden_minor_specification()
    print("the four-node specification of Theorem 1:")
    for u, v, _ in spec.edges():
        print(f"  {u} -> {v}")
    print(f"series-parallel? {is_series_parallel(spec)}")
    print()

    print(f"{'n':>3} {'ell':>4} {'m':>4} {'Γ':>5} {'min-cost':>9} "
          f"{'biclique':>9} {'claim':>7}")
    for seed in range(10):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        ell = rng.randint(1, n)
        instance = random_instance(n, ell, rng.uniform(0.3, 0.95), seed)

        # The reduction's runs are valid runs of the 4-node spec under the
        # general model (labels map onto s, v1, v2, t).
        check_valid_run(build_run1(instance), spec)
        check_valid_run(build_run2(instance), spec)

        cost, threshold, exists = reduction_gap(instance)
        claim_holds = (
            cost <= threshold if exists else cost >= threshold + 2
        )
        print(
            f"{n:>3} {ell:>4} {instance.m:>4} {threshold:>5} "
            f"{cost:>9} {str(exists):>9} {'OK' if claim_holds else 'FAIL':>7}"
        )
    print()
    print(
        "Every row's 'claim' confirms Theorem 1: deciding whether the\n"
        "edit distance meets Γ decides bipartite clique, so differencing\n"
        "general (non-series-parallel) workflows is NP-hard."
    )


if __name__ == "__main__":
    main()
