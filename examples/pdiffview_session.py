"""A full PDiffView session: store, generate, import/export, step (§VII).

Walks the prototype's workflow end to end: register the six real
specifications, generate runs into the file-backed store, export/import a
run as XML, diff two runs and step through the edit script operation by
operation — the text-mode equivalent of Fig. 10.

Run with:  python examples/pdiffview_session.py
"""

import tempfile

from repro import ExecutionParams, LengthCost, all_real_workflows
from repro.io.xml_io import run_from_xml, run_to_xml
from repro.pdiffview.session import PDiffViewSession


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="pdiffview-") as root:
        session = PDiffViewSession(root)

        # Register all six Table I specifications.
        for spec in all_real_workflows().values():
            session.register_specification(spec)
        print("stored specifications:", ", ".join(session.specifications()))
        print()

        # Generate a few EMBOSS runs with different behaviours.
        varied = ExecutionParams(
            prob_parallel=0.6,
            max_fork=3,
            prob_fork=0.7,
            max_loop=3,
            prob_loop=0.7,
        )
        session.generate_run("EMBOSS", "baseline", varied, seed=100)
        session.generate_run("EMBOSS", "rerun", varied, seed=200)
        print("stored EMBOSS runs:", ", ".join(session.runs("EMBOSS")))
        print()

        # Export a run to XML and re-import it under a new name.
        spec = session.specification("EMBOSS")
        baseline = session.run("EMBOSS", "baseline")
        xml_text = run_to_xml(baseline)
        print(f"exported 'baseline' ({len(xml_text)} bytes of XML)")
        clone = run_from_xml(xml_text, spec)
        clone.name = "baseline-imported"
        session.import_run(clone)
        print("after import:", ", ".join(session.runs("EMBOSS")))
        print()

        # Diff and step through the script like the GUI's step buttons.
        view = session.diff(
            "EMBOSS", "baseline", "rerun", cost=LengthCost()
        )
        print(view.panes())
        print()
        print(view.overview(max_operations=10))
        print()
        print("stepping through the first three operations:")
        for _ in range(3):
            line = view.step_forward()
            if line is None:
                break
            state = view.state_after_cursor()
            print(line)
            print(
                f"        intermediate run now has {state.num_nodes} "
                f"nodes / {state.num_edges} edges"
            )


if __name__ == "__main__":
    main()
