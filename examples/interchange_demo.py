"""Importing external provenance: PROV-JSON/OPM interchange tour.

Run with::

    PYTHONPATH=src python examples/interchange_demo.py

Walks the full interchange story: a foreign PROV-JSON document (with a
non-series-parallel dependency graph) is imported and SP-ized with an
explicit report, grown into a small corpus, diffed and queried like any
native workflow, and finally round-tripped back out as PROV-JSON.
"""

import json
import tempfile
from pathlib import Path

from repro import ExecutionParams, Q, execute_workflow
from repro.corpus.service import DiffService
from repro.query.engine import QueryEngine

# A provenance document as another system might emit it: entity-mediated
# dataflow plus direct activity ordering.  `stage` and `analyze2` are
# incomparable, but the crossing `analyze1 -> analyze2` dependency makes
# the graph non-series-parallel — the interesting import case.
FOREIGN_DOC = {
    "prefix": {"ex": "urn:example:"},
    "activity": {
        "ingest": {"prov:label": "ingest"},
        "stage": {"prov:label": "stage"},
        "analyze1": {"prov:label": "analyze1"},
        "analyze2": {"prov:label": "analyze2"},
        "publish": {"prov:label": "publish"},
    },
    "entity": {"raw": {}, "staged": {}},
    "wasGeneratedBy": {
        "_:g1": {"prov:entity": "raw", "prov:activity": "ingest"},
        "_:g2": {"prov:entity": "staged", "prov:activity": "stage"},
    },
    "used": {
        "_:u1": {"prov:activity": "stage", "prov:entity": "raw"},
        "_:u2": {"prov:activity": "analyze1", "prov:entity": "raw"},
        "_:u3": {"prov:activity": "analyze2", "prov:entity": "raw"},
        "_:u4": {"prov:activity": "publish", "prov:entity": "staged"},
    },
    "wasInformedBy": {
        "_:i1": {"prov:informed": "analyze2", "prov:informant": "analyze1"},
        "_:i2": {"prov:informed": "publish", "prov:informant": "analyze1"},
        "_:i3": {"prov:informed": "publish", "prov:informant": "analyze2"},
    },
}


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="interchange-demo-"))
    service = DiffService(root / "store")

    print("== 1. Import a foreign (non-SP) PROV document ==")
    result, distances = service.add_prov_document(
        FOREIGN_DOC, run_name="monday", spec_name="pipeline"
    )
    print(f"origin: {result.origin}")
    for line in result.report.summary_lines():
        print(f"  {line}")
    print(f"run: {result.run!r}")

    print()
    print("== 2. Grow a corpus on the derived specification ==")
    sparse = ExecutionParams(prob_parallel=0.5)
    for index, seed in enumerate((7, 21, 35), start=1):
        run = execute_workflow(
            result.spec, sparse, seed=seed, name=f"variant-{index}"
        )
        new_pairs = service.add_run(run)
        print(
            f"added {run.name}: "
            + ", ".join(
                f"d(.., {a})={value:g}"
                for (a, _), value in sorted(new_pairs.items())
            )
        )

    print()
    print("== 3. Query the imported corpus like any native one ==")
    engine = QueryEngine(service)
    deletions = Q.op_kind("path-deletion")
    for doc in engine.select("pipeline", deletions):
        print(f"  {doc}")
    print(f"histogram: {engine.histogram('pipeline')}")

    print()
    print("== 4. Round-trip back out as PROV-JSON ==")
    from repro import export_run_json, import_document

    text = export_run_json(result.run)
    reimported = import_document(text, run_name="copy")
    print(f"re-import origin: {reimported.origin}")
    print(f"equivalent to original: {result.run.equivalent(reimported.run)}")
    document = json.loads(text)
    print(
        f"document sections: {sorted(document)} "
        f"({len(document['activity'])} activities, "
        f"{len(document['entity'])} entities)"
    )


if __name__ == "__main__":
    main()
