"""Quickstart: diff two runs of a small SP-workflow.

Builds the paper's running example (Fig. 2), executes it twice with
different fork/loop behaviour, computes the edit distance and prints the
minimum-cost edit script.

Run with:  python examples/quickstart.py
"""

from repro import (
    ExecutionParams,
    FlowNetwork,
    UnitCost,
    WorkflowSpecification,
    diff_runs,
    execute_workflow,
)


def build_specification() -> WorkflowSpecification:
    """Fig. 2(a): 1 -> 2 -> {3|4|5} -> 6 -> 7 with forks and a loop."""
    graph = FlowNetwork(name="fig2")
    for node in "1234567":
        graph.add_node(node)
    graph.add_edge("1", "2")
    for mid in "345":
        graph.add_edge("2", mid)
        graph.add_edge(mid, "6")
    graph.add_edge("6", "7")
    return WorkflowSpecification(
        graph,
        forks=[["2", "3", "6"], ["2", "4", "6"], ["2", "5", "6"]],
        loops=[("2", "6")],  # iterate the search section until converged
        name="fig2",
    )


def main() -> None:
    spec = build_specification()
    print(f"specification: {spec}")
    print(spec.tree.pretty())
    print()

    params = ExecutionParams(
        prob_parallel=0.7,   # each branch taken with probability 0.7
        max_fork=3,          # forks replicate up to 3 copies
        prob_fork=0.6,
        max_loop=3,          # loops run up to 3 iterations
        prob_loop=0.6,
    )
    run1 = execute_workflow(spec, params, seed=7, name="monday")
    run2 = execute_workflow(spec, params, seed=8, name="friday")
    print(f"run1: {run1}")
    print(f"run2: {run2}")
    print()

    result = diff_runs(run1, run2, cost=UnitCost())
    print(result.summary())
    for index, op in enumerate(result.script.operations, start=1):
        print(f"  {index:2d}. {op}")
    print()

    corr = result.correspondence()
    print(f"matched instances: {len(corr.matched)}")
    print(f"only in {run1.name}: {sorted(map(str, corr.left_only))}")
    print(f"only in {run2.name}: {sorted(map(str, corr.right_only))}")


if __name__ == "__main__":
    main()
