"""Quickstart: a Workspace over the paper's running example.

Builds the Fig. 2 specification, opens a :class:`repro.Workspace` on a
temporary store, generates three runs with different fork/loop
behaviour, and walks the unified API: ``diff`` (typed outcome),
``matrix`` (cached all-pairs distances), and ``view`` (the interactive
PDiffView panes).

Run with:  python examples/quickstart.py
"""

import tempfile

from repro import (
    ExecutionParams,
    FlowNetwork,
    ReproConfig,
    UnitCost,
    Workspace,
    WorkflowSpecification,
)


def build_specification() -> WorkflowSpecification:
    """Fig. 2(a): 1 -> 2 -> {3|4|5} -> 6 -> 7 with forks and a loop."""
    graph = FlowNetwork(name="fig2")
    for node in "1234567":
        graph.add_node(node)
    graph.add_edge("1", "2")
    for mid in "345":
        graph.add_edge("2", mid)
        graph.add_edge(mid, "6")
    graph.add_edge("6", "7")
    return WorkflowSpecification(
        graph,
        forks=[["2", "3", "6"], ["2", "4", "6"], ["2", "5", "6"]],
        loops=[("2", "6")],  # iterate the search section until converged
        name="fig2",
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        # One config wires everything: cost model, execution backend,
        # parallelism, caches.  backend="process" runs cold batches on
        # every core; "serial" and "thread" are drop-in equivalents.
        ws = Workspace(
            root, ReproConfig(cost=UnitCost(), backend="thread")
        )
        ws.register(build_specification())
        print(f"workspace: {ws}")
        print()

        params = ExecutionParams(
            prob_parallel=0.7,   # each branch taken with probability 0.7
            max_fork=3,          # forks replicate up to 3 copies
            prob_fork=0.6,
            max_loop=3,          # loops run up to 3 iterations
            prob_loop=0.6,
        )
        for seed, name in ((7, "monday"), (8, "friday"), (9, "sunday")):
            run = ws.generate_run(name, params=params, seed=seed)
            print(f"generated {run}")
        print()

        # One pair: a typed DiffOutcome with the full edit script.
        outcome = ws.diff("monday", "friday")
        print(outcome)
        for index, op in enumerate(outcome.operations, start=1):
            print(f"  {index:2d}. {op}")
        print()

        # All pairs: answered through the persistent distance cache
        # (a second call performs zero edit-distance DPs).
        print("distance matrix:")
        for (a, b), distance in sorted(ws.matrix().items()):
            print(f"  delta({a}, {b}) = {distance:g}")
        print()

        # The PDiffView surface: step through operations interactively.
        view = ws.view("monday", "friday")
        print(view.overview(max_operations=5))


if __name__ == "__main__":
    main()
