"""Operating the diff server: request IDs, /metrics, graceful stop.

Boots an instrumented :class:`~repro.service.DiffServer`, generates a
little corpus, makes a few requests (one with a caller-chosen
``X-Request-Id``), then scrapes ``/metrics`` in both faces — Prometheus
text exposition (validated with the in-repo checker,
:func:`repro.obs.promcheck.parse_exposition`) and JSON — and finishes
with a graceful drain.  This is the same sequence a production probe
or CI health check performs.
"""

import json
import tempfile
import urllib.request

from repro import DiffServer, RemoteWorkspace, ReproConfig
from repro.obs.promcheck import parse_exposition
from repro.workflow.execution import ExecutionParams
from repro.workflow.real_workflows import protein_annotation

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def fetch(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return dict(response.headers), response.read()


def main() -> None:
    store = tempfile.mkdtemp(prefix="metrics-scrape-")
    config = ReproConfig(backend="serial", log_format="off")
    server = DiffServer(store, config).start()
    print(f"diff server listening at {server.url}")

    remote = RemoteWorkspace(server.url)
    remote.register(protein_annotation())
    for day, seed in (("monday", 1), ("tuesday", 2)):
        remote.generate_run(day, params=PARAMS, seed=seed)
    remote.diff("monday", "tuesday")

    # Every response carries a correlation ID — mint or propagate.
    headers, _ = fetch(server.url + "/healthz")
    print(f"server-minted request id: {headers['X-Request-Id']}")
    headers, _ = fetch(
        server.url + "/healthz",
        headers={"X-Request-Id": "probe-0001"},
    )
    print(f"caller-chosen id echoed:  {headers['X-Request-Id']}")

    # The Prometheus face, validated like CI validates it.
    headers, body = fetch(server.url + "/metrics")
    families = parse_exposition(body.decode("utf8"))
    print(f"scrape content type: {headers['Content-Type']}")
    print(f"metric families exported: {len(families)}")
    requests_total = sum(
        value
        for _, _, value in families["server_requests_total"]["samples"]
    )
    print(f"server_requests_total: {requests_total:.0f}")

    # The JSON face of the same registry.
    _, body = fetch(server.url + "/metrics?format=json")
    payload = json.loads(body)
    cache = payload["metrics"]["cache_lookups_total"]["samples"]
    for sample in sorted(
        cache, key=lambda s: (s["labels"]["cache"], s["labels"]["result"])
    ):
        labels = sample["labels"]
        print(
            f"cache_lookups_total cache={labels['cache']} "
            f"result={labels['result']}: {sample['value']:.0f}"
        )

    # Graceful drain: stop accepting, let in-flight requests finish.
    server.stop(drain_timeout=5)
    print("server drained and stopped")


if __name__ == "__main__":
    main()
