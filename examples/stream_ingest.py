"""Streaming ingestion: a run enters the corpus while it executes.

Boots a :class:`~repro.service.DiffServer` over a small
protein-annotation corpus, then streams two "live" runs into it over
HTTP as append-only event sequences (``run_open`` / ``activity`` /
``edge`` / ``run_close``):

* a **conforming** run — an executed run of the registered
  specification, streamed event by event; on ``run_close`` the server
  validates it and prices it against the corpus exactly as an import
  would;
* a **diverging** run — one that starts executing modules the
  specification has never seen.  The server maintains a label-surplus
  lower bound against every corpus run as events arrive, and flags the
  run as diverging **before** its ``run_close`` — the monitoring
  scenario: kill a runaway campaign while it is still burning CPU.

Also shows the live session view (``GET /stream/live``, what
``repro tail`` renders) and the resume contract: every batch is
acknowledged with the contiguous applied prefix, so a client that
loses its connection replays from the last ack and nothing is
ingested twice.
"""

import tempfile

from repro import DiffServer, RemoteWorkspace, ReproConfig, Workspace, protein_annotation
from repro.workflow.execution import ExecutionParams, execute_workflow

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def main() -> None:
    root = tempfile.mkdtemp(prefix="stream-ingest-")
    workspace = Workspace(root, ReproConfig(backend="serial"))
    workspace.register(protein_annotation())
    for seed in (1, 2, 3):
        workspace.generate_run(f"r{seed:02d}", params=PARAMS, seed=seed)

    with DiffServer(workspace) as server:
        print(f"diff server listening at {server.url}")
        remote = RemoteWorkspace(server.url)
        spec = remote.specification("PA")

        # -- a conforming run, streamed while it "executes" ------------
        run = execute_workflow(spec, PARAMS, seed=9, name="live-ok")
        labels = run.graph.labels()
        with remote.stream("PA", "live-ok", threshold=6.0) as stream:
            for node in run.graph.nodes():
                stream.activity(node, labels[node])
            for src, dst, _key in run.graph.edges():
                stream.edge(src, dst)
            status = stream.status()
            print(
                f"live-ok mid-stream: {status.activities} activities, "
                f"nearest corpus run {status.nearest_run} "
                f"(bound {status.nearest_bound:g}), flagged: "
                f"{status.flagged}"
            )
            ack = stream.close_run()
        print(
            f"live-ok closed: priced against "
            f"{len(ack.result.new_pairs)} corpus runs"
        )
        for (a, b), distance in sorted(ack.result.new_pairs.items()):
            print(f"  delta({a}, {b}) = {distance:g}")

        # -- a diverging run, flagged before it closes -----------------
        with remote.stream("PA", "live-bad", threshold=2.0) as stream:
            for step in range(1, 6):
                stream.activity(f"ex:rogue{step}", "rogueModule")
                status = stream.status()  # one acked batch per event
                marker = "⚑ DIVERGING" if status.flagged else "ok"
                print(
                    f"live-bad event {step}: bound "
                    f"{status.nearest_bound:g} vs threshold "
                    f"{status.threshold:g} -> {marker}"
                )
                if status.flagged:
                    break
            assert status.flagged and status.flagged_at_seq is not None
            print(
                "flagged at seq "
                f"{status.flagged_at_seq}, before run_close — the "
                "campaign can be killed while it still runs"
            )
            # The run never closes: nothing half-ingested is visible.
            print(f"runs on the server: {remote.runs(spec='PA')}")

        # The abandoned session is still visible live (and resumable).
        for status in remote.stream_live():
            print(
                f"open session {status.session!r}: run "
                f"{status.run_name!r}, seq {status.seq}, "
                f"flagged: {status.flagged}"
            )


if __name__ == "__main__":
    main()
