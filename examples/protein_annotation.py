"""The paper's motivating scenario: comparing protein-annotation runs.

Reproduces the Section I narrative on the PA workflow of Fig. 1: a
scientist runs the same in-silico experiment twice — once the reciprocal
best-hit loop converges after one BLAST round with aggressive fan-out,
once it needs several rounds — and asks *where* the two analyses differ.

The script diffs the two provenance graphs, prints the edit script, and
uses PDiffView's module clustering to zoom into the composite module with
the largest change (the BLAST search section).

Run with:  python examples/protein_annotation.py
"""

from repro import ExecutionParams, UnitCost, protein_annotation
from repro.core.api import diff_runs
from repro.pdiffview.clustering import (
    Cluster,
    ModuleHierarchy,
    clustered_diff_profile,
    collapse_run_graph,
)
from repro.pdiffview.render import render_graph, render_script
from repro.workflow.execution import execute_workflow


def main() -> None:
    spec = protein_annotation()
    print(f"specification {spec.name}: {spec.characteristics()}")
    print()

    # Monday's experiment: wide BLAST fan-out, loop converges immediately.
    wide = execute_workflow(
        spec,
        ExecutionParams(
            prob_parallel=1.0, max_fork=3, prob_fork=0.9, max_loop=1
        ),
        seed=11,
        name="wide-fanout",
    )
    # Friday's experiment: narrow fan-out but three best-hit rounds.
    iterated = execute_workflow(
        spec,
        ExecutionParams(
            prob_parallel=0.8, max_fork=1, max_loop=3, prob_loop=0.9
        ),
        seed=23,
        name="iterated",
    )
    print(f"{wide.name}: {wide.statistics()}")
    print(f"{iterated.name}: {iterated.statistics()}")
    print()

    result = diff_runs(wide, iterated, cost=UnitCost())
    print(render_script(result, max_operations=15))
    print()

    # Cluster modules into composite stages and rank them by change.
    hierarchy = ModuleHierarchy(
        spec,
        [
            Cluster(
                name="similarity-search",
                labels=[
                    "FastaFormat",
                    "BlastSwP",
                    "BlastTrEMBL",
                    "BlastPIR",
                    "collectTop1Compare",
                ],
            ),
            Cluster(
                name="domain-annotation",
                labels=[
                    "getDomAnnot",
                    "extractDomSeq",
                    "getGOAnnot",
                    "getBrendaAnnot",
                ],
            ),
            Cluster(name="io", labels=["getProteinSeq", "exportAnnotSeq"]),
        ],
    )
    print("change per composite module (zoom level 1):")
    for change in clustered_diff_profile(result, hierarchy, level=1):
        print(
            f"  {change.composite:20s} cost={change.cost:6.2f} "
            f"ops={change.operations:3d} "
            f"+{change.inserted_edges}/-{change.deleted_edges} edges"
        )
    print()

    print("zoomed-out view of the 'wide-fanout' run:")
    print(render_graph(collapse_run_graph(wide.graph, hierarchy, level=1)))


if __name__ == "__main__":
    main()
