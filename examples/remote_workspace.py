"""Workspace-as-a-service: the same API, local or over HTTP.

Boots a :class:`~repro.service.DiffServer` in-process (the programmatic
``repro serve``), then drives it with a
:class:`~repro.client.RemoteWorkspace` — the drop-in implementation of
the :class:`~repro.api_types.WorkspaceAPI` protocol.  Everything the
quickstart does locally happens here over the wire: registering a
specification, uploading runs, pricing diffs (ETag-revalidated on
repeat), distance matrices, and declarative queries.
"""

import tempfile

from repro import (
    DiffServer,
    QueryFilter,
    RemoteWorkspace,
    ReproConfig,
    Workspace,
    WorkspaceAPI,
    protein_annotation,
)
from repro.workflow.execution import ExecutionParams

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def main() -> None:
    store = tempfile.mkdtemp(prefix="remote-workspace-")
    with DiffServer(store, ReproConfig(backend="serial")) as server:
        print(f"diff server listening at {server.url}")

        remote = RemoteWorkspace(server.url)
        print(f"implements WorkspaceAPI: {isinstance(remote, WorkspaceAPI)}")

        # Everything happens over the wire: the spec travels as XML,
        # runs travel as PROV-JSON with their embedded plan.
        remote.register(protein_annotation())
        for day, seed in (("monday", 1), ("tuesday", 2), ("friday", 5)):
            remote.generate_run(day, params=PARAMS, seed=seed)
        print(f"runs on the server: {remote.runs()}")

        outcome = remote.diff("monday", "tuesday")
        print(outcome)
        again = remote.diff("monday", "tuesday")  # 304-revalidated
        print(
            "repeat fetch identical:",
            again.to_dict() == outcome.to_dict(),
        )

        matrix = remote.matrix()
        for (a, b), distance in sorted(matrix.items()):
            print(f"  delta({a}, {b}) = {distance:g}")

        page = remote.query_page(
            QueryFilter(kinds=("path-deletion",)), limit=2
        )
        print(
            f"deletion diffs: {page.total_matches} total, "
            f"first page of {len(page.items)}"
        )

        # The local Workspace over the same store agrees bit-for-bit.
        local = Workspace(store, ReproConfig(backend="serial"))
        same = local.diff("monday", "tuesday").to_dict() == outcome.to_dict()
        print(f"local workspace agrees bit-for-bit: {same}")

        counters = remote.stats
        print(
            f"server handled {counters['server_requests']} requests, "
            f"{counters['computed_scripts']} diffs computed, "
            f"{counters['server_not_modified']} revalidated"
        )


if __name__ == "__main__":
    main()
