"""Provenance differencing with data annotations (Section I).

The paper's end goal: understanding why two data products differ.  This
example simulates provenance capture for two runs of the PA workflow — the
second run both *executes differently* (an extra BLAST round) and *uses a
changed parameter* — then layers the data differences on top of the
structural diff: parameter annotations on matched nodes, data annotations
on matched edges, and the structurally unmatched invocations.

Run with:  python examples/provenance_capture.py
"""

from repro import ExecutionParams, UnitCost, protein_annotation
from repro.core.api import diff_runs
from repro.provenance.annotate_diff import annotate_data_differences
from repro.provenance.capture import capture_provenance
from repro.workflow.execution import execute_workflow


def main() -> None:
    spec = protein_annotation()
    base_params = ExecutionParams(
        prob_parallel=1.0, max_fork=2, prob_fork=0.8, max_loop=1
    )
    rerun_params = ExecutionParams(
        prob_parallel=1.0, max_fork=2, prob_fork=0.8, max_loop=2,
        prob_loop=1.0,
    )

    original = execute_workflow(spec, base_params, seed=5, name="original")
    rerun = execute_workflow(spec, rerun_params, seed=5, name="rerun")

    # Capture provenance; the rerun drifted some parameter settings.
    original_prov = capture_provenance(original, seed=1, parameter_drift=0.0)
    rerun_prov = capture_provenance(rerun, seed=1, parameter_drift=0.15)

    result = diff_runs(original, rerun, cost=UnitCost())
    print(result.summary())
    print()

    data_diff = annotate_data_differences(result, original_prov, rerun_prov)

    print("parameter changes on matched module invocations:")
    for annotation in data_diff.parameter_annotations[:8]:
        names = ", ".join(name for name, _, _ in annotation.changed)
        print(
            f"  {annotation.module:22s} {annotation.node1} ~ "
            f"{annotation.node2}: {names}"
        )
    if not data_diff.parameter_annotations:
        print("  (none)")
    print()

    print("data products that changed on matched edges:")
    for annotation in data_diff.data_annotations[:8]:
        u, v, _ = annotation.edge1
        print(
            f"  {u} -> {v}: {annotation.digest1[:8]}… became "
            f"{annotation.digest2[:8]}…"
        )
    if not data_diff.data_annotations:
        print("  (none)")
    print()

    print(
        "invocations only in the original run:",
        sorted(map(str, data_diff.unmatched_invocations_1)) or "(none)",
    )
    print(
        "invocations only in the rerun:",
        sorted(map(str, data_diff.unmatched_invocations_2)) or "(none)",
    )


if __name__ == "__main__":
    main()
