"""The corpus diff service: cached, parallel, incremental differencing.

Builds a small corpus of protein-annotation runs, then exercises the
:class:`repro.corpus.service.DiffService` workloads the paper's
conclusions call for: the all-pairs distance matrix (cold vs warm
cache), nearest-run queries, incremental corpus growth, and the
medoid / outlier analytics that reveal which executions cluster
together and which differ from the majority.

Run with:  python examples/corpus_service.py
"""

import tempfile
import time

from repro import ExecutionParams, execute_workflow
from repro.corpus.service import DiffService
from repro.pdiffview.session import PDiffViewSession
from repro.workflow.real_workflows import protein_annotation


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="corpus-") as root:
        session = PDiffViewSession(root)
        session.register_specification(protein_annotation())

        varied = ExecutionParams(
            prob_parallel=0.7,
            max_fork=3,
            prob_fork=0.6,
            max_loop=2,
            prob_loop=0.6,
        )
        for seed in range(1, 9):
            session.generate_run("PA", f"run{seed}", varied, seed=seed)
        print("corpus:", ", ".join(session.runs("PA")))
        print()

        # Cold call: every pair is an O(|E|^3) DP.  Warm call: pure
        # cache hits — zero DPs, served from the fingerprint-keyed
        # two-tier cache under <root>/index/.
        service = session.diff_service
        start = time.perf_counter()
        matrix = service.distance_matrix("PA")
        cold = time.perf_counter() - start
        start = time.perf_counter()
        service.distance_matrix("PA")
        warm = time.perf_counter() - start
        print(
            f"distance matrix over {len(matrix)} pairs: "
            f"cold {cold * 1e3:.1f} ms, warm {warm * 1e3:.2f} ms "
            f"({service.stats['computed_pairs']} DPs total)"
        )
        print()

        # Which execution is most representative?  Which differ most?
        name, mean = service.medoid("PA")
        print(f"medoid run: {name} (mean distance {mean:.2f})")
        print("top outliers:")
        for outlier, distance in service.outliers("PA", top=3):
            print(f"  {outlier}: mean distance {distance:.2f}")
        print()

        # Nearest neighbours of one run (one-vs-many, never N^2 work).
        print("nearest to run1:")
        for other, distance in service.nearest_runs("PA", "run1", k=3):
            print(f"  {other}: {distance:g}")
        print()

        # Incremental growth: only the 8 new pairs are computed.
        before = service.computed_pairs
        newcomer = execute_workflow(
            session.specification("PA"), varied, seed=99, name="run99"
        )
        new_pairs = service.add_run(newcomer)
        print(
            f"add_run('run99'): {len(new_pairs)} new pairs, "
            f"{service.computed_pairs - before} DPs"
        )

        # A brand-new service over the same store starts warm from disk.
        reopened = DiffService(session.store)
        start = time.perf_counter()
        reopened.distance_matrix("PA")
        restart = time.perf_counter() - start
        print(
            f"fresh service, same store: full matrix in "
            f"{restart * 1e3:.2f} ms with {reopened.computed_pairs} DPs"
        )


if __name__ == "__main__":
    main()
