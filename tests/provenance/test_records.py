"""Unit tests for the provenance record types."""

from repro.provenance.records import (
    DataProduct,
    ModuleInvocation,
    ProvenanceDocument,
)


class TestRecords:
    def test_data_product_equality(self):
        one = DataProduct("d1", "abc", 10)
        two = DataProduct("d1", "abc", 10)
        assert one == two
        assert hash(one) == hash(two)

    def test_invocation_parameter_dict(self):
        invocation = ModuleInvocation(
            node="3a",
            module="3",
            parameters=(("p1", "x"), ("p2", "y")),
        )
        assert invocation.parameter_dict() == {"p1": "x", "p2": "y"}

    def test_document_lookups(self):
        document = ProvenanceDocument(run_name="r")
        invocation = ModuleInvocation("3a", "3", ())
        product = DataProduct("d", "fff")
        document.invocations["3a"] = invocation
        document.products[("3a", "6a", 0)] = product
        assert document.invocation("3a") is invocation
        assert document.invocation("zz") is None
        assert document.product(("3a", "6a", 0)) is product
        assert document.product(("x", "y", 0)) is None
        assert document.num_invocations == 1
        assert document.num_products == 1
