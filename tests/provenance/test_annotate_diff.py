"""Tests for data-difference annotations over a structural diff."""

import pytest

from repro.core.api import diff_runs
from repro.provenance.annotate_diff import annotate_data_differences
from repro.provenance.capture import capture_provenance


class TestAnnotations:
    def test_no_parameter_differences_without_drift(
        self, fig2_r1, fig2_r2
    ):
        diff = diff_runs(fig2_r1, fig2_r2)
        prov1 = capture_provenance(fig2_r1, seed=1, parameter_drift=0.0)
        prov2 = capture_provenance(fig2_r2, seed=2, parameter_drift=0.0)
        result = annotate_data_differences(diff, prov1, prov2)
        assert result.num_parameter_changes == 0
        # Data differences may still appear downstream of *structural*
        # differences (the fan-in of module 6 differs between the runs) —
        # exactly the propagation behaviour real provenance would show.
        for annotation in result.data_annotations:
            assert annotation.edge1[0].startswith(("6", "7"))

    def test_drift_produces_annotations(self, fig2_r1, fig2_r2):
        diff = diff_runs(fig2_r1, fig2_r2)
        prov1 = capture_provenance(fig2_r1, seed=1, parameter_drift=0.0)
        prov2 = capture_provenance(fig2_r2, seed=1, parameter_drift=1.0)
        result = annotate_data_differences(diff, prov1, prov2)
        assert result.num_parameter_changes > 0
        assert result.num_data_changes > 0

    def test_annotation_structure(self, fig2_r1, fig2_r2):
        diff = diff_runs(fig2_r1, fig2_r2)
        prov1 = capture_provenance(fig2_r1, seed=1, parameter_drift=0.0)
        prov2 = capture_provenance(fig2_r2, seed=1, parameter_drift=1.0)
        result = annotate_data_differences(diff, prov1, prov2)
        annotation = result.parameter_annotations[0]
        assert annotation.module == fig2_r1.graph.label(annotation.node1)
        name, value1, value2 = annotation.changed[0]
        assert value1 != value2
        assert name.startswith(annotation.module)

    def test_unmatched_instances_reported(self, fig2_r1, fig2_r2):
        diff = diff_runs(fig2_r1, fig2_r2)
        prov1 = capture_provenance(fig2_r1, seed=1)
        prov2 = capture_provenance(fig2_r2, seed=1)
        result = annotate_data_differences(diff, prov1, prov2)
        assert "3b" in result.unmatched_invocations_1
        assert "5a" in result.unmatched_invocations_2

    def test_identical_runs_have_no_structural_unmatched(self, fig2_r1):
        diff = diff_runs(fig2_r1, fig2_r1)
        prov = capture_provenance(fig2_r1, seed=1)
        result = annotate_data_differences(diff, prov, prov)
        assert result.unmatched_invocations_1 == []
        assert result.unmatched_invocations_2 == []
        assert result.num_parameter_changes == 0
