"""Tests for simulated provenance capture."""

import pytest

from repro.provenance.capture import capture_provenance
from repro.workflow.execution import ExecutionParams, execute_workflow


@pytest.fixture(scope="module")
def run(fig2_spec):
    return execute_workflow(fig2_spec, seed=1, name="captured")


class TestCapture:
    def test_every_node_has_invocation(self, run):
        document = capture_provenance(run, seed=0)
        assert set(document.invocations) == set(run.graph.nodes())

    def test_every_edge_has_product(self, run):
        document = capture_provenance(run, seed=0)
        assert set(document.products) == set(run.graph.edges())
        assert document.num_products == run.num_edges

    def test_deterministic_without_drift(self, run):
        one = capture_provenance(run, seed=1, parameter_drift=0.0)
        two = capture_provenance(run, seed=2, parameter_drift=0.0)
        for node in run.graph.nodes():
            assert (
                one.invocations[node].parameters
                == two.invocations[node].parameters
            )

    def test_drift_changes_parameters(self, run):
        baseline = capture_provenance(run, seed=1, parameter_drift=0.0)
        drifted = capture_provenance(run, seed=1, parameter_drift=1.0)
        changed = sum(
            baseline.invocations[n].parameters
            != drifted.invocations[n].parameters
            for n in run.graph.nodes()
        )
        assert changed == run.num_nodes

    def test_digests_propagate_downstream(self, run):
        baseline = capture_provenance(run, seed=1, parameter_drift=0.0)
        drifted = capture_provenance(run, seed=1, parameter_drift=1.0)
        sink_edges = run.graph.in_edges(run.graph.sink())
        for edge in sink_edges:
            assert (
                baseline.products[edge].content_digest
                != drifted.products[edge].content_digest
            )

    def test_invocation_metadata(self, run):
        document = capture_provenance(run, seed=0)
        source = run.graph.source()
        invocation = document.invocations[source]
        assert invocation.module == run.graph.label(source)
        assert len(invocation.parameters) == 3
        assert invocation.duration > 0

    def test_parameter_dict(self, run):
        document = capture_provenance(run, seed=0)
        invocation = next(iter(document.invocations.values()))
        assert invocation.parameter_dict() == dict(invocation.parameters)
