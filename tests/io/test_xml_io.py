"""Tests for XML serialisation of specifications and runs."""

import pytest

from repro.errors import ReproError
from repro.io.xml_io import (
    run_from_xml,
    run_to_xml,
    specification_from_xml,
    specification_to_xml,
)
from repro.workflow.real_workflows import all_real_workflows


class TestSpecificationRoundTrip:
    def test_fig2(self, fig2_spec):
        text = specification_to_xml(fig2_spec)
        restored = specification_from_xml(text)
        assert restored.name == fig2_spec.name
        assert restored.graph.structurally_equal(fig2_spec.graph)
        assert restored.characteristics() == fig2_spec.characteristics()
        assert restored.tree.equivalent(fig2_spec.tree)

    @pytest.mark.parametrize("name", ["PA", "EMBOSS", "PGAQ"])
    def test_real_workflows(self, name):
        spec = all_real_workflows()[name]
        restored = specification_from_xml(specification_to_xml(spec))
        assert restored.characteristics() == spec.characteristics()

    def test_wrong_root_tag(self):
        with pytest.raises(ReproError, match="specification"):
            specification_from_xml("<other/>")

    def test_missing_nodes_section(self):
        with pytest.raises(ReproError, match="nodes"):
            specification_from_xml("<specification name='x'/>")


class TestRunRoundTrip:
    def test_r1(self, fig2_spec, fig2_r1):
        text = run_to_xml(fig2_r1)
        restored = run_from_xml(text, fig2_spec)
        assert restored.name == "R1"
        assert restored.graph.structurally_equal(fig2_r1.graph)
        assert restored.tree.equivalent(fig2_r1.tree)

    def test_loop_run(self, fig2_spec, fig2_r3):
        restored = run_from_xml(run_to_xml(fig2_r3), fig2_spec)
        assert restored.equivalent(fig2_r3)

    def test_spec_name_mismatch(self, fig2_spec, fig2_r1):
        from tests.conftest import build_fig2_spec

        other = build_fig2_spec()
        other.name = "different"
        with pytest.raises(ReproError, match="stored for"):
            run_from_xml(run_to_xml(fig2_r1), other)

    def test_wrong_root_tag(self, fig2_spec):
        with pytest.raises(ReproError, match="run"):
            run_from_xml("<specification/>", fig2_spec)

    def test_invalid_run_rejected_on_load(self, fig2_spec):
        bad = """
        <run name='bad' spec='fig2'>
          <nodes>
            <node id='1a' label='1'/>
            <node id='7a' label='7'/>
          </nodes>
          <edges><edge source='1a' target='7a' key='0'/></edges>
        </run>
        """
        from repro.errors import InvalidRunError

        with pytest.raises(InvalidRunError):
            run_from_xml(bad, fig2_spec)
