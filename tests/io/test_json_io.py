"""Tests for JSON serialisation."""

import json

import pytest

from repro.errors import ReproError
from repro.io.json_io import (
    run_from_json,
    run_to_json,
    specification_from_json,
    specification_to_json,
)


class TestSpecification:
    def test_roundtrip(self, fig2_spec):
        text = specification_to_json(fig2_spec)
        restored = specification_from_json(text)
        assert restored.characteristics() == fig2_spec.characteristics()
        assert restored.tree.equivalent(fig2_spec.tree)

    def test_payload_shape(self, fig2_spec):
        payload = json.loads(specification_to_json(fig2_spec))
        assert payload["kind"] == "specification"
        assert len(payload["graph"]["nodes"]) == 7
        assert len(payload["forks"]) == 4

    def test_wrong_kind(self):
        with pytest.raises(ReproError):
            specification_from_json(json.dumps({"kind": "nope"}))


class TestRun:
    def test_roundtrip(self, fig2_spec, fig2_r2):
        restored = run_from_json(run_to_json(fig2_r2), fig2_spec)
        assert restored.equivalent(fig2_r2)
        assert restored.name == "R2"

    def test_spec_mismatch(self, fig2_spec, fig2_r1):
        payload = json.loads(run_to_json(fig2_r1))
        payload["spec"] = "someone-else"
        with pytest.raises(ReproError, match="stored for"):
            run_from_json(json.dumps(payload), fig2_spec)

    def test_wrong_kind(self, fig2_spec):
        with pytest.raises(ReproError):
            run_from_json(json.dumps({"kind": "spec"}), fig2_spec)


class TestCrossFormat:
    def test_xml_and_json_agree(self, fig2_spec):
        from repro.io.xml_io import (
            specification_from_xml,
            specification_to_xml,
        )

        via_xml = specification_from_xml(specification_to_xml(fig2_spec))
        via_json = specification_from_json(
            specification_to_json(fig2_spec)
        )
        assert via_xml.tree.equivalent(via_json.tree)
