"""Tests for the file-backed workflow store."""

import pytest

from repro.errors import ReproError
from repro.io.store import WorkflowStore, _safe_name
from repro.workflow.execution import execute_workflow
from repro.workflow.real_workflows import protein_annotation


class TestSafeNames:
    def test_alphanumerics_kept(self):
        assert _safe_name("PA-2024_v1.xml") == "PA-2024_v1.xml"

    def test_specials_replaced_with_hash_suffix(self):
        mangled = _safe_name("a b/c")
        assert mangled.startswith("a_b_c~")
        assert len(mangled) == len("a_b_c~") + 8

    def test_mangled_names_cannot_collide(self):
        # Regression: "a/b" and "a_b" used to both map to "a_b.xml",
        # letting one entry silently overwrite the other.
        assert _safe_name("a/b") != _safe_name("a_b")
        assert _safe_name("a/b") != _safe_name("a b")
        assert _safe_name("a_b") == "a_b"

    def test_deterministic(self):
        assert _safe_name("a/b") == _safe_name("a/b")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            _safe_name("")


class TestStore:
    def test_save_and_load_specification(self, tmp_path):
        store = WorkflowStore(tmp_path)
        spec = protein_annotation()
        path = store.save_specification(spec)
        assert path.exists()
        restored = store.load_specification("PA")
        assert restored.characteristics() == spec.characteristics()

    def test_list_specifications(self, tmp_path, fig2_spec):
        store = WorkflowStore(tmp_path)
        store.save_specification(fig2_spec)
        store.save_specification(protein_annotation())
        assert store.list_specifications() == ["PA", "fig2"]

    def test_missing_specification(self, tmp_path):
        store = WorkflowStore(tmp_path)
        with pytest.raises(ReproError, match="no stored"):
            store.load_specification("ghost")

    def test_save_and_load_run(self, tmp_path, fig2_spec, fig2_r1):
        store = WorkflowStore(tmp_path)
        store.save_run(fig2_r1)
        restored = store.load_run(fig2_spec, "R1")
        assert restored.equivalent(fig2_r1)

    def test_list_runs(self, tmp_path, fig2_spec, fig2_r1, fig2_r2):
        store = WorkflowStore(tmp_path)
        store.save_run(fig2_r1)
        store.save_run(fig2_r2)
        assert store.list_runs("fig2") == ["R1", "R2"]
        assert store.list_runs("unknown") == []

    def test_missing_run(self, tmp_path, fig2_spec):
        store = WorkflowStore(tmp_path)
        with pytest.raises(ReproError, match="no stored run"):
            store.load_run(fig2_spec, "ghost")

    def test_overwrite_is_atomic_replace(self, tmp_path, fig2_spec):
        store = WorkflowStore(tmp_path)
        run_a = execute_workflow(fig2_spec, seed=1, name="same")
        run_b = execute_workflow(fig2_spec, seed=2, name="same")
        store.save_run(run_a)
        store.save_run(run_b)
        restored = store.load_run(fig2_spec, "same")
        assert restored.equivalent(run_b)
        # No temp files left behind.
        leftovers = list(tmp_path.rglob(".tmp-*"))
        assert leftovers == []


class TestCollidingNames:
    def test_colliding_run_names_both_survive(self, tmp_path, fig2_spec):
        # Regression for the _safe_name collision hazard: without the
        # hash suffix, the second save silently overwrote the first.
        store = WorkflowStore(tmp_path)
        slashed = execute_workflow(fig2_spec, seed=1, name="a/b")
        underscored = execute_workflow(fig2_spec, seed=2, name="a_b")
        store.save_run(slashed)
        store.save_run(underscored)
        assert sorted(store.list_runs("fig2")) == ["a/b", "a_b"]
        assert store.load_run(fig2_spec, "a/b").equivalent(slashed)
        assert store.load_run(fig2_spec, "a_b").equivalent(underscored)

    def test_listing_reports_original_names(self, tmp_path, fig2_spec):
        store = WorkflowStore(tmp_path)
        run = execute_workflow(fig2_spec, seed=3, name="day 1/am")
        store.save_run(run)
        assert store.list_runs("fig2") == ["day 1/am"]
        assert store.load_run(fig2_spec, "day 1/am").equivalent(run)

    def test_lost_sidecar_entries_remain_loadable(self, tmp_path, fig2_spec):
        # If a .name sidecar is lost, listings fall back to raw file
        # stems; those stems must still round-trip through load_run.
        store = WorkflowStore(tmp_path)
        run = execute_workflow(fig2_spec, seed=4, name="a/b")
        store.save_run(run)
        (sidecar,) = (tmp_path / "runs" / "fig2").glob("*.name")
        sidecar.unlink()
        (listed,) = store.list_runs("fig2")
        assert listed.startswith("a_b~")  # the raw mangled stem
        assert store.load_run(fig2_spec, listed).equivalent(run)

    def test_spec_with_special_name_roundtrips(self, tmp_path):
        from repro.workflow.real_workflows import protein_annotation
        from repro.workflow.specification import WorkflowSpecification

        store = WorkflowStore(tmp_path)
        base = protein_annotation()
        spec = WorkflowSpecification(
            base.graph, forks=(), loops=(), name="PA v2/beta"
        )
        store.save_specification(spec)
        assert store.list_specifications() == ["PA v2/beta"]
        restored = store.load_specification("PA v2/beta")
        assert restored.characteristics() == spec.characteristics()


class TestIndexArea:
    def test_run_path_matches_save_location(self, tmp_path, fig2_spec, fig2_r1):
        store = WorkflowStore(tmp_path)
        saved = store.save_run(fig2_r1)
        assert store.run_path("fig2", "R1") == saved

    def test_index_roundtrip(self, tmp_path):
        store = WorkflowStore(tmp_path)
        assert store.load_index("fingerprints") is None
        payload = {"PA": {"r01": {"fingerprint": "ab", "size": 1}}}
        path = store.save_index("fingerprints", payload)
        assert path.parent == store.index_dir
        assert store.load_index("fingerprints") == payload

    def test_corrupt_index_treated_as_missing(self, tmp_path):
        store = WorkflowStore(tmp_path)
        (store.index_dir / "broken.json").write_text("[oops", encoding="utf8")
        assert store.load_index("broken") is None
