"""Tests for the file-backed workflow store."""

import pytest

from repro.errors import ReproError
from repro.io.store import WorkflowStore, _safe_name
from repro.workflow.execution import execute_workflow
from repro.workflow.real_workflows import protein_annotation


class TestSafeNames:
    def test_alphanumerics_kept(self):
        assert _safe_name("PA-2024_v1.xml") == "PA-2024_v1.xml"

    def test_specials_replaced(self):
        assert _safe_name("a b/c") == "a_b_c"

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            _safe_name("")


class TestStore:
    def test_save_and_load_specification(self, tmp_path):
        store = WorkflowStore(tmp_path)
        spec = protein_annotation()
        path = store.save_specification(spec)
        assert path.exists()
        restored = store.load_specification("PA")
        assert restored.characteristics() == spec.characteristics()

    def test_list_specifications(self, tmp_path, fig2_spec):
        store = WorkflowStore(tmp_path)
        store.save_specification(fig2_spec)
        store.save_specification(protein_annotation())
        assert store.list_specifications() == ["PA", "fig2"]

    def test_missing_specification(self, tmp_path):
        store = WorkflowStore(tmp_path)
        with pytest.raises(ReproError, match="no stored"):
            store.load_specification("ghost")

    def test_save_and_load_run(self, tmp_path, fig2_spec, fig2_r1):
        store = WorkflowStore(tmp_path)
        store.save_run(fig2_r1)
        restored = store.load_run(fig2_spec, "R1")
        assert restored.equivalent(fig2_r1)

    def test_list_runs(self, tmp_path, fig2_spec, fig2_r1, fig2_r2):
        store = WorkflowStore(tmp_path)
        store.save_run(fig2_r1)
        store.save_run(fig2_r2)
        assert store.list_runs("fig2") == ["R1", "R2"]
        assert store.list_runs("unknown") == []

    def test_missing_run(self, tmp_path, fig2_spec):
        store = WorkflowStore(tmp_path)
        with pytest.raises(ReproError, match="no stored run"):
            store.load_run(fig2_spec, "ghost")

    def test_overwrite_is_atomic_replace(self, tmp_path, fig2_spec):
        store = WorkflowStore(tmp_path)
        run_a = execute_workflow(fig2_spec, seed=1, name="same")
        run_b = execute_workflow(fig2_spec, seed=2, name="same")
        store.save_run(run_a)
        store.save_run(run_b)
        restored = store.load_run(fig2_spec, "same")
        assert restored.equivalent(run_b)
        # No temp files left behind.
        leftovers = list(tmp_path.rglob(".tmp-*"))
        assert leftovers == []
