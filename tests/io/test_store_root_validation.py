"""WorkflowStore roots must be real paths — never object reprs.

Guards the bug that once committed a
``benchmarks/<repro.io.store.WorkflowStore object at 0x...>/``
directory: an object passed where a path belonged was silently
str()-ed into a repr-named directory.
"""

import os
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.io.store import WorkflowStore


class TestRootValidation:
    def test_accepts_str(self, tmp_path):
        store = WorkflowStore(str(tmp_path / "s"))
        assert store.root == tmp_path / "s"

    def test_accepts_pathlike(self, tmp_path):
        assert WorkflowStore(tmp_path / "s").root == tmp_path / "s"

        class CustomPath:
            def __init__(self, path):
                self._path = path

            def __fspath__(self):
                return str(self._path)

        store = WorkflowStore(CustomPath(tmp_path / "custom"))
        assert store.root == tmp_path / "custom"

    @pytest.mark.parametrize(
        "bad", [None, 7, ["dir"], {"root": "dir"}]
    )
    def test_rejects_non_paths(self, bad):
        with pytest.raises(ReproError, match="must be a path"):
            WorkflowStore(bad)

    def test_rejects_store_instance(self, tmp_path):
        """The exact historical failure: a store passed as a root."""
        store = WorkflowStore(tmp_path / "s")
        cwd = os.getcwd()
        with pytest.raises(ReproError, match="WorkflowStore"):
            WorkflowStore(store)
        # And nothing repr-named appeared anywhere plausible.
        for base in (Path(cwd), tmp_path):
            assert not [
                p
                for p in base.iterdir()
                if "object at 0x" in p.name
            ]
