"""Serialisation of runs with implicit loop edges and fork multi-edges."""

import pytest

from repro.core.api import edit_distance
from repro.io.json_io import run_from_json, run_to_json
from repro.io.xml_io import run_from_xml, run_to_xml
from repro.workflow.execution import ExecutionParams, execute_workflow


class TestLoopRuns:
    def test_back_edges_survive_xml(self, fig2_spec, fig2_r3):
        restored = run_from_xml(run_to_xml(fig2_r3), fig2_spec)
        back_edges = [
            (u, v)
            for u, v, _ in restored.graph.edges()
            if (
                restored.graph.label(u),
                restored.graph.label(v),
            )
            == ("6", "2")
        ]
        assert back_edges == [("6a", "2b")]
        assert restored.equivalent(fig2_r3)

    def test_distance_preserved_after_roundtrip(
        self, fig2_spec, fig2_r1, fig2_r3
    ):
        direct = edit_distance(fig2_r1, fig2_r3)
        r1 = run_from_xml(run_to_xml(fig2_r1), fig2_spec)
        r3 = run_from_json(run_to_json(fig2_r3), fig2_spec)
        assert edit_distance(r1, r3) == pytest.approx(direct)


class TestMultiEdgeRuns:
    def test_fork_multi_edges_survive(self, fig2_spec):
        # A run where a single-edge fork would produce parallel edges is
        # not possible on fig2 (branches have length 2); use a generated
        # deep-fork run instead.
        from repro.workflow.generators import fig17b_specification

        spec = fig17b_specification(3)
        params = ExecutionParams(
            prob_parallel=0.5, max_fork=4, prob_fork=1.0
        )
        run = execute_workflow(spec, params, seed=4)
        multi = [
            pair
            for pair, count in run.graph.edge_multiset().items()
            if count > 1
        ]
        restored = run_from_xml(run_to_xml(run), spec)
        assert restored.graph.edge_multiset() == run.graph.edge_multiset()
        assert restored.equivalent(run)

    def test_keys_disambiguate_in_json(self):
        from repro.workflow.generators import random_specification
        from repro.workflow.generators import random_run_pair

        spec = random_specification(12, 0.2, seed=9)  # multi-edge heavy
        one, _ = random_run_pair(spec, seed=1)
        restored = run_from_json(run_to_json(one), spec)
        assert restored.graph.num_edges == one.graph.num_edges
        assert restored.equivalent(one)
