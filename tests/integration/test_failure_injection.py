"""Failure injection: every malformed input dies with the right error.

A library living at the bottom of a provenance stack must fail loudly and
precisely; these tests sweep malformed graphs, specifications, runs, cost
models and scripts through the public API and pin down the exception
types (all subclasses of :class:`repro.ReproError`).
"""

import pytest

from repro import (
    CostModelError,
    EditScriptError,
    FlowNetwork,
    GraphStructureError,
    InvalidRunError,
    NotSeriesParallelError,
    ReproError,
    SpecificationError,
    UnitCost,
    WorkflowRun,
    WorkflowSpecification,
)
from repro.core.api import diff_runs
from repro.graphs.spgraph import diamond_graph, path_graph


class TestGraphFailures:
    def test_all_errors_are_repro_errors(self):
        for exc in (
            GraphStructureError,
            NotSeriesParallelError,
            SpecificationError,
            InvalidRunError,
            CostModelError,
            EditScriptError,
        ):
            assert issubclass(exc, ReproError)

    def test_two_sink_graph(self):
        graph = FlowNetwork()
        for node in "sab":
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("s", "b")
        with pytest.raises(GraphStructureError, match="sink"):
            graph.sink()

    def test_self_loop_breaks_acyclicity(self):
        graph = path_graph(["a", "b", "c"])
        graph.add_edge("b", "b")
        assert not graph.is_acyclic()
        with pytest.raises(GraphStructureError):
            WorkflowSpecification(graph)


class TestSpecificationFailures:
    def test_diamond_rejected_with_residual(self):
        with pytest.raises(NotSeriesParallelError) as excinfo:
            WorkflowSpecification(diamond_graph())
        assert excinfo.value.residual_edges

    def test_crossing_forks_rejected(self):
        graph = path_graph(list("abcd"))
        with pytest.raises(SpecificationError, match="laminar"):
            WorkflowSpecification(
                graph,
                forks=[
                    [("a", "b", 0), ("b", "c", 0)],
                    [("b", "c", 0), ("c", "d", 0)],
                ],
            )

    def test_fork_equals_loop_rejected(self):
        graph = path_graph(list("abc"))
        with pytest.raises(SpecificationError, match="duplicate"):
            WorkflowSpecification(
                graph,
                forks=[[("a", "b", 0)]],
                loops=[[("a", "b", 0)]],
            )

    def test_loop_on_branch_rejected(self, fig2_spec):
        graph = fig2_spec.graph.copy()
        with pytest.raises(SpecificationError, match="complete"):
            WorkflowSpecification(
                graph, loops=[[("2", "3", 0), ("3", "6", 0)]]
            )


class TestRunFailures:
    def test_empty_run(self, fig2_spec):
        with pytest.raises(InvalidRunError):
            WorkflowRun(fig2_spec, FlowNetwork(name="empty"))

    def test_label_not_in_spec(self, fig2_spec):
        graph = FlowNetwork()
        graph.add_node("1a", "1")
        graph.add_node("xx", "99")
        graph.add_edge("1a", "xx")
        with pytest.raises(InvalidRunError, match="99"):
            WorkflowRun(fig2_spec, graph)

    def test_reversed_edge(self, fig2_spec):
        graph = FlowNetwork()
        graph.add_node("7a", "7")
        graph.add_node("6a", "6")
        graph.add_edge("7a", "6a")
        with pytest.raises(InvalidRunError):
            WorkflowRun(fig2_spec, graph)

    def test_partial_series_execution(self, fig2_spec):
        # Run stops at module 6 (sink must map to 7).
        graph = FlowNetwork()
        for node, label in {
            "1a": "1",
            "2a": "2",
            "3a": "3",
            "6a": "6",
        }.items():
            graph.add_node(node, label)
        graph.add_edge("1a", "2a")
        graph.add_edge("2a", "3a")
        graph.add_edge("3a", "6a")
        with pytest.raises(InvalidRunError, match="sink"):
            WorkflowRun(fig2_spec, graph)

    def test_two_loop_back_edges_in_a_row(self, fig2_spec):
        graph = FlowNetwork()
        for node, label in {
            "1a": "1",
            "2a": "2",
            "3a": "3",
            "6a": "6",
            "2b": "2",
            "6b": "6",
            "7a": "7",
        }.items():
            graph.add_node(node, label)
        graph.add_edge("1a", "2a")
        graph.add_edge("2a", "3a")
        graph.add_edge("3a", "6a")
        graph.add_edge("6a", "2b")  # back edge ...
        graph.add_edge("2b", "6b")  # ... but (2,6) is not a spec edge
        graph.add_edge("6b", "7a")
        with pytest.raises(InvalidRunError):
            WorkflowRun(fig2_spec, graph)


class TestCostModelFailures:
    def test_superlinear_epsilon(self):
        from repro.costs.standard import PowerCost

        with pytest.raises(CostModelError):
            PowerCost(2.0)

    def test_diffing_with_negative_callable(self, fig2_r1, fig2_r2):
        from repro.costs.standard import CallableCost

        bad = CallableCost(lambda l, a, b: -1.0)
        with pytest.raises(CostModelError):
            diff_runs(fig2_r1, fig2_r2, cost=bad, with_script=False)


class TestScriptFailures:
    def test_compact_script_requires_script(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, with_script=False)
        with pytest.raises(ReproError, match="with_script"):
            result.compact_script()

    def test_snapshots_require_recording(self, fig2_r1, fig2_r2):
        from repro.pdiffview.session import DiffView

        result = diff_runs(fig2_r1, fig2_r2)
        view = DiffView(result)
        with pytest.raises(ReproError, match="record_intermediates"):
            view.state_after_cursor()
