"""End-to-end checks of every worked example in the paper."""

import pytest

from repro.core.api import diff_runs, edit_distance
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.graphs.flow_network import FlowNetwork
from repro.sptree.annotate_run import annotate_run_tree
from repro.sptree.nodes import NodeType
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


class TestFig6Trees:
    """Section IV: the annotated trees of Figs. 6(b)-(d)."""

    def test_spec_tree_node_census(self, fig2_spec):
        counts = {}
        for node in fig2_spec.tree.iter_nodes("pre"):
            counts[node.kind] = counts.get(node.kind, 0) + 1
        # Fig. 6(b) plus the loop node of §VI: 8 Q leaves, 4 S nodes
        # (root chain + three branches), 1 P node, 4 F nodes, 1 L node.
        assert counts[NodeType.Q] == 8
        assert counts[NodeType.S] == 4
        assert counts[NodeType.P] == 1
        assert counts[NodeType.F] == 4
        assert counts[NodeType.L] == 1

    def test_t1_census(self, fig2_r1):
        counts = {}
        for node in fig2_r1.tree.iter_nodes("pre"):
            counts[node.kind] = counts.get(node.kind, 0) + 1
        # Fig. 6(c): 8 Q leaves, root F with one copy, three S chains
        # (outer + two branch copies + one branch copy), P, two true Fs.
        assert counts[NodeType.Q] == 8
        assert counts[NodeType.F] == 3
        assert counts[NodeType.P] == 1

    def test_t2_root_fork_two_copies(self, fig2_r2):
        assert fig2_r2.tree.kind is NodeType.F
        assert fig2_r2.tree.degree == 2


class TestExample52:
    """Example 5.2: the bipartite matching at the root F pair."""

    def test_distance_is_four(self, fig2_r1, fig2_r2):
        assert edit_distance(fig2_r1, fig2_r2, UnitCost()) == 4.0

    def test_matching_structure(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, cost=UnitCost())
        decision = result.computation.decision(
            fig2_r1.tree, fig2_r2.tree
        )
        # v5 matched to one of R2's copies; the other copy is inserted.
        assert len(decision.matched) == 1
        matched_copy = decision.matched[0][1]
        # The matched R2 copy must be the one sharing instances 2a/6a
        # (γ(M(v5,v6)) = 2 beats γ(M(v5,v3)) = 3 + cheaper insert).
        assert matched_copy.source == "1a"

    def test_x_values_from_fig9(self, fig2_spec, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, cost=UnitCost())
        comp = result.computation
        v5 = fig2_r1.tree.children[0]
        assert comp.deletions1.x(v5) == 3.0  # X_T1(v5) = 3
        copies = list(fig2_r2.tree.children)
        xs = sorted(comp.deletions2.x(c) for c in copies)
        assert xs == [2.0, 3.0]  # X_T2(v3) = 2, X_T2(v6) = 3


class TestFig3Script:
    """Fig. 3 / Fig. 7: the concrete minimum-cost script R1 -> R2."""

    def test_script_shape(self, fig2_spec, fig2_r1, fig2_r2):
        result = diff_runs(
            fig2_r1, fig2_r2, cost=UnitCost(), validate_intermediates=True
        )
        script = result.script
        assert len(script) == 4
        # One deletion of a (2,3,6) branch; three insertions.
        deletions = [
            op for op in script.operations if op.kind == "path-deletion"
        ]
        assert len(deletions) == 1
        assert deletions[0].path_labels == ("2", "3", "6")
        insertions = [
            op for op in script.operations if op.kind == "path-insertion"
        ]
        lengths = sorted(op.length for op in insertions)
        assert lengths == [2, 2, 4]  # two branches + the whole second copy

    def test_intermediates_stay_valid(self, fig2_spec, fig2_r1, fig2_r2):
        result = diff_runs(
            fig2_r1, fig2_r2, cost=UnitCost(), validate_intermediates=True
        )
        for graph in result.script.intermediate_graphs:
            annotate_run_tree(fig2_spec, graph)


class TestExample62:
    """Example 6.2: deleting the second loop iteration of R3."""

    def test_two_operations(self, fig2_spec, fig2_r3, fig2_r1):
        from tests.conftest import build_run

        target = build_run(
            fig2_spec,
            "first-iteration-only",
            {
                "1a": "1",
                "2a": "2",
                "3a": "3",
                "4a": "4",
                "4b": "4",
                "6a": "6",
                "7a": "7",
            },
            [
                ("1a", "2a"),
                ("2a", "3a"),
                ("3a", "6a"),
                ("2a", "4a"),
                ("4a", "6a"),
                ("2a", "4b"),
                ("4b", "6a"),
                ("6a", "7a"),
            ],
        )
        result = diff_runs(
            fig2_r3, target, cost=UnitCost(), validate_intermediates=True
        )
        assert result.distance == 2.0
        kinds = sorted(op.kind for op in result.script.operations)
        assert kinds == ["path-contraction", "path-deletion"]
        contraction = next(
            op
            for op in result.script.operations
            if op.kind == "path-contraction"
        )
        # The contracted iteration is an elementary path 2 -> x -> 6.
        assert contraction.length == 2
        assert contraction.source_label == "2"
        assert contraction.sink_label == "6"


class TestFig17aCostRegimes:
    """Fig. 17(a): different ε pick different minimum-cost scripts."""

    @pytest.fixture(scope="class")
    def seesaw(self):
        # Specification: two branches between 1 and 5 (via 2-3 and via 4),
        # then two branches between 5 and 6 — runs R1/R2 mirror Fig 17(a)'s
        # trade-off between deleting long and short paths.
        graph = FlowNetwork(name="fig17a")
        for node in "123456":
            graph.add_node(node)
        graph.add_edge("1", "2")
        graph.add_edge("2", "3")
        graph.add_edge("3", "5")
        graph.add_edge("1", "4")
        graph.add_edge("4", "5")
        graph.add_edge("5", "6")
        return WorkflowSpecification(graph, name="fig17a")

    def run_both(self, spec):
        from tests.conftest import build_run

        both = build_run(
            spec,
            "both",
            {
                "1a": "1",
                "2a": "2",
                "3a": "3",
                "4a": "4",
                "5a": "5",
                "6a": "6",
            },
            [
                ("1a", "2a"),
                ("2a", "3a"),
                ("3a", "5a"),
                ("1a", "4a"),
                ("4a", "5a"),
                ("5a", "6a"),
            ],
        )
        long_only = build_run(
            spec,
            "long",
            {"1a": "1", "2a": "2", "3a": "3", "5a": "5", "6a": "6"},
            [
                ("1a", "2a"),
                ("2a", "3a"),
                ("3a", "5a"),
                ("5a", "6a"),
            ],
        )
        return both, long_only

    def test_unit_cost_one_operation(self, seesaw):
        both, long_only = self.run_both(seesaw)
        # Deleting the short branch is a single operation.
        assert edit_distance(both, long_only, UnitCost()) == 1.0

    def test_length_cost_counts_edges(self, seesaw):
        both, long_only = self.run_both(seesaw)
        assert edit_distance(both, long_only, LengthCost()) == 2.0

    def test_intermediate_epsilon(self, seesaw):
        both, long_only = self.run_both(seesaw)
        expected = 2.0 ** 0.5
        assert edit_distance(
            both, long_only, PowerCost(0.5)
        ) == pytest.approx(expected)
