"""End-to-end pipeline checks over the six real workflows."""

import pytest

from repro.baselines.naive import naive_diff
from repro.core.api import diff_runs
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.io.xml_io import run_from_xml, run_to_xml
from repro.sptree.annotate_run import annotate_run_tree
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import all_real_workflows

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.5,
    max_loop=2,
    prob_loop=0.5,
)


@pytest.mark.parametrize("name", sorted(all_real_workflows()))
class TestRealWorkflowPipelines:
    def test_full_diff_pipeline(self, name):
        spec = all_real_workflows()[name]
        one = execute_workflow(spec, PARAMS, seed=1, name="one")
        two = execute_workflow(spec, PARAMS, seed=2, name="two")
        result = diff_runs(
            one, two, cost=UnitCost(), validate_intermediates=True
        )
        assert result.script.total_cost == pytest.approx(result.distance)
        assert result.mapping.cost == pytest.approx(result.distance)
        assert result.script.final_tree.structure_key() == (
            two.tree.structure_key()
        )
        for graph in result.script.intermediate_graphs:
            annotate_run_tree(spec, graph)

    def test_serialisation_roundtrip_preserves_distance(self, name):
        spec = all_real_workflows()[name]
        one = execute_workflow(spec, PARAMS, seed=3, name="one")
        two = execute_workflow(spec, PARAMS, seed=4, name="two")
        direct = diff_runs(one, two, with_script=False).distance
        one2 = run_from_xml(run_to_xml(one), spec)
        two2 = run_from_xml(run_to_xml(two), spec)
        via_xml = diff_runs(one2, two2, with_script=False).distance
        assert via_xml == pytest.approx(direct)


class TestCostModelMonotonicity:
    def test_unit_cost_counts_operations(self):
        spec = all_real_workflows()["PA"]
        one = execute_workflow(spec, PARAMS, seed=5)
        two = execute_workflow(spec, PARAMS, seed=6)
        result = diff_runs(one, two, cost=UnitCost())
        assert result.distance == len(result.script)

    def test_length_cost_counts_edges(self):
        spec = all_real_workflows()["PA"]
        one = execute_workflow(spec, PARAMS, seed=5)
        two = execute_workflow(spec, PARAMS, seed=6)
        result = diff_runs(one, two, cost=LengthCost())
        assert result.distance == pytest.approx(
            sum(op.length for op in result.script.operations)
        )

    def test_unit_never_exceeds_length(self):
        spec = all_real_workflows()["EMBOSS"]
        for seed in range(4):
            one = execute_workflow(spec, PARAMS, seed=seed)
            two = execute_workflow(spec, PARAMS, seed=seed + 50)
            unit = diff_runs(one, two, cost=UnitCost(), with_script=False)
            length = diff_runs(
                one, two, cost=LengthCost(), with_script=False
            )
            assert unit.distance <= length.distance + 1e-9


class TestNaiveBaselineComparison:
    def test_naive_flags_repetition_on_forked_runs(self):
        spec = all_real_workflows()["BAIDD"]
        params = ExecutionParams(
            prob_parallel=1.0, max_fork=3, prob_fork=1.0
        )
        one = execute_workflow(spec, params, seed=1)
        two = execute_workflow(spec, params, seed=2)
        assert not naive_diff(one, two).is_exact

    def test_naive_is_exact_for_dataflow_runs(self):
        spec = all_real_workflows()["MB"]
        params = ExecutionParams(
            prob_parallel=1.0, max_fork=1, prob_fork=0.0
        )
        one = execute_workflow(spec, params, seed=1)
        two = execute_workflow(spec, params, seed=2)
        diff = naive_diff(one, two)
        assert diff.is_exact
        assert diff.is_identical  # full execution both times
