"""API hygiene: documentation coverage and performance guards."""

import inspect
import time

import pytest

import repro


def public_members(module):
    for name in getattr(module, "__all__", dir(module)):
        if name.startswith("_"):
            continue
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


class TestDocumentation:
    def test_top_level_exports_are_documented(self):
        for name, member in public_members(repro):
            assert inspect.getdoc(member), f"{name} lacks a docstring"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graphs.flow_network",
            "repro.graphs.spgraph",
            "repro.graphs.decomposition",
            "repro.graphs.homomorphism",
            "repro.sptree.nodes",
            "repro.sptree.canonical",
            "repro.sptree.annotate_spec",
            "repro.sptree.annotate_run",
            "repro.sptree.validate",
            "repro.workflow.specification",
            "repro.workflow.run",
            "repro.workflow.execution",
            "repro.workflow.generators",
            "repro.workflow.real_workflows",
            "repro.costs.base",
            "repro.costs.standard",
            "repro.costs.validation",
            "repro.matching.hungarian",
            "repro.matching.noncrossing",
            "repro.core.deletion",
            "repro.core.spec_costs",
            "repro.core.edit_distance",
            "repro.core.mapping",
            "repro.core.edit_script",
            "repro.core.apply",
            "repro.core.api",
            "repro.core.postprocess",
            "repro.baselines.naive",
            "repro.baselines.exhaustive",
            "repro.hardness.reduction",
            "repro.provenance.records",
            "repro.provenance.capture",
            "repro.provenance.annotate_diff",
            "repro.pdiffview.render",
            "repro.pdiffview.clustering",
            "repro.pdiffview.session",
            "repro.io.xml_io",
            "repro.io.json_io",
            "repro.io.store",
        ],
    )
    def test_module_and_public_classes_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert inspect.getdoc(module), f"{module_name} lacks a docstring"
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(member, "__module__", None) != module_name:
                continue
            if inspect.isclass(member) or inspect.isfunction(member):
                assert inspect.getdoc(member), (
                    f"{module_name}.{name} lacks a docstring"
                )

    def test_public_methods_documented(self):
        from repro.core.api import DiffResult
        from repro.graphs.flow_network import FlowNetwork
        from repro.sptree.nodes import SPTree
        from repro.workflow.specification import WorkflowSpecification

        for cls in (FlowNetwork, SPTree, WorkflowSpecification, DiffResult):
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                assert inspect.getdoc(member), (
                    f"{cls.__name__}.{name} lacks a docstring"
                )


class TestPerformanceGuards:
    def test_medium_diff_stays_interactive(self, fig2_spec):
        """A ~200-total-edge diff should stay well under a second
        (regression guard for the O(|E|³) pipeline's constants)."""
        from repro import ExecutionParams, diff_runs, execute_workflow

        params = ExecutionParams(
            prob_parallel=0.9,
            max_fork=6,
            prob_fork=0.8,
            max_loop=4,
            prob_loop=0.8,
        )
        one = execute_workflow(fig2_spec, params, seed=1)
        two = execute_workflow(fig2_spec, params, seed=2)
        start = time.perf_counter()
        diff_runs(one, two)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"diff took {elapsed:.2f}s"

    def test_annotation_is_fast(self):
        from repro.sptree.annotate_run import annotate_run_tree
        from repro import ExecutionParams, execute_workflow
        from repro.workflow.real_workflows import pgaq

        spec = pgaq()
        params = ExecutionParams(
            prob_parallel=1.0, max_fork=4, prob_fork=0.9,
            max_loop=4, prob_loop=0.9,
        )
        run = execute_workflow(spec, params, seed=1)
        start = time.perf_counter()
        annotate_run_tree(spec, run.graph)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, (
            f"annotating {run.num_edges} edges took {elapsed:.2f}s"
        )
