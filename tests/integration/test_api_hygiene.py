"""API hygiene: exports, documentation coverage and performance guards."""

import inspect
import time
import warnings

import pytest

import repro

#: Legacy entry points served through the deprecation shims; accessing
#: them from the top level warns by design (see test_deprecation.py).
LEGACY_NAMES = sorted(repro._DEPRECATED)


def resolve_export(name):
    """``getattr(repro, name)`` with shim warnings silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return getattr(repro, name)


def public_members(module):
    for name in getattr(module, "__all__", dir(module)):
        if name.startswith("_"):
            continue
        member = resolve_export(name)
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


class TestAllConsistency:
    """Every ``__all__`` name is importable, documented, and accounted
    for: either a live export or a legacy name covered by the
    deprecation-shim suite."""

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert resolve_export(name) is not None, name

    def test_every_export_is_documented(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            member = resolve_export(name)
            if inspect.ismodule(member):
                continue
            assert inspect.getdoc(member), f"{name} lacks a docstring"

    def test_no_stray_public_attributes(self):
        """Public attributes of the package are all declared exports
        (modules imported as submodule side effects are exempt, as are
        the legacy shims — public but kept out of star imports)."""
        declared = set(repro.__all__) | set(LEGACY_NAMES)
        for name in dir(repro):
            if name.startswith("_"):
                continue
            if inspect.ismodule(resolve_export(name)):
                continue
            assert name in declared, f"undeclared public name {name}"

    def test_legacy_names_stay_accessible_but_out_of_star_import(self):
        """The shims remain importable by name until removal, but a
        star import must not drag deprecated names (and their
        warnings) into Workspace-only code."""
        for name in LEGACY_NAMES:
            assert name not in repro.__all__
            assert resolve_export(name) is not None

    def test_star_import_is_warning_free(self):
        """``from repro import *`` resolves every __all__ name without
        touching a shim."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            namespace = {}
            exec("from repro import *", namespace)
        assert "Workspace" in namespace
        assert "diff_runs" not in namespace

    def test_dir_covers_lazy_names(self):
        for name in LEGACY_NAMES:
            assert name in dir(repro)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_export


class TestDocumentation:
    def test_top_level_exports_are_documented(self):
        for name, member in public_members(repro):
            assert inspect.getdoc(member), f"{name} lacks a docstring"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graphs.flow_network",
            "repro.graphs.spgraph",
            "repro.graphs.decomposition",
            "repro.graphs.homomorphism",
            "repro.sptree.nodes",
            "repro.sptree.canonical",
            "repro.sptree.annotate_spec",
            "repro.sptree.annotate_run",
            "repro.sptree.validate",
            "repro.workflow.specification",
            "repro.workflow.run",
            "repro.workflow.execution",
            "repro.workflow.generators",
            "repro.workflow.real_workflows",
            "repro.costs.base",
            "repro.costs.standard",
            "repro.costs.validation",
            "repro.matching.hungarian",
            "repro.matching.noncrossing",
            "repro.core.deletion",
            "repro.core.spec_costs",
            "repro.core.edit_distance",
            "repro.core.mapping",
            "repro.core.edit_script",
            "repro.core.apply",
            "repro.core.api",
            "repro.core.postprocess",
            "repro.baselines.naive",
            "repro.baselines.exhaustive",
            "repro.hardness.reduction",
            "repro.provenance.records",
            "repro.provenance.capture",
            "repro.provenance.annotate_diff",
            "repro.pdiffview.render",
            "repro.pdiffview.clustering",
            "repro.pdiffview.session",
            "repro.io.xml_io",
            "repro.io.json_io",
            "repro.io.store",
            "repro.workspace",
            "repro.config",
            "repro.backends.base",
            "repro.backends.work",
            "repro.api_types",
            "repro.client",
            "repro.service.app",
            "repro.service.server",
        ],
    )
    def test_module_and_public_classes_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert inspect.getdoc(module), f"{module_name} lacks a docstring"
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(member, "__module__", None) != module_name:
                continue
            if inspect.isclass(member) or inspect.isfunction(member):
                assert inspect.getdoc(member), (
                    f"{module_name}.{name} lacks a docstring"
                )

    def test_public_methods_documented(self):
        from repro.core.api import DiffResult
        from repro.graphs.flow_network import FlowNetwork
        from repro.sptree.nodes import SPTree
        from repro.workflow.specification import WorkflowSpecification

        for cls in (FlowNetwork, SPTree, WorkflowSpecification, DiffResult):
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                assert inspect.getdoc(member), (
                    f"{cls.__name__}.{name} lacks a docstring"
                )


class TestPerformanceGuards:
    def test_medium_diff_stays_interactive(self, fig2_spec):
        """A ~200-total-edge diff should stay well under a second
        (regression guard for the O(|E|³) pipeline's constants)."""
        from repro import ExecutionParams, execute_workflow
        from repro.core.api import diff_runs

        params = ExecutionParams(
            prob_parallel=0.9,
            max_fork=6,
            prob_fork=0.8,
            max_loop=4,
            prob_loop=0.8,
        )
        one = execute_workflow(fig2_spec, params, seed=1)
        two = execute_workflow(fig2_spec, params, seed=2)
        start = time.perf_counter()
        diff_runs(one, two)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"diff took {elapsed:.2f}s"

    def test_annotation_is_fast(self):
        from repro.sptree.annotate_run import annotate_run_tree
        from repro import ExecutionParams, execute_workflow
        from repro.workflow.real_workflows import pgaq

        spec = pgaq()
        params = ExecutionParams(
            prob_parallel=1.0, max_fork=4, prob_fork=0.9,
            max_loop=4, prob_loop=0.9,
        )
        run = execute_workflow(spec, params, seed=1)
        start = time.perf_counter()
        annotate_run_tree(spec, run.graph)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, (
            f"annotating {run.num_edges} edges took {elapsed:.2f}s"
        )
