"""Cross-cost-model consistency properties of the edit distance."""

import pytest

from repro.core.api import diff_runs, edit_distance
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import (
    fig17b_specification,
    random_specification,
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def run_pairs(count=4):
    pairs = []
    for seed in range(count):
        spec = random_specification(
            14, 1.0, num_forks=2, num_loops=1, seed=seed
        )
        one = execute_workflow(spec, PARAMS, seed=seed)
        two = execute_workflow(spec, PARAMS, seed=seed + 100)
        pairs.append((one, two))
    return pairs


class TestEpsilonMonotonicity:
    def test_distance_nondecreasing_in_epsilon(self):
        """γ(l) = l^ε is pointwise nondecreasing in ε (l >= 1), so the
        minimum script cost is nondecreasing in ε."""
        epsilons = [0.0, 0.25, 0.5, 0.75, 1.0]
        for one, two in run_pairs():
            distances = [
                edit_distance(one, two, PowerCost(eps))
                for eps in epsilons
            ]
            for before, after in zip(distances, distances[1:]):
                assert before <= after + 1e-9

    def test_unit_bounds_below_length(self):
        for one, two in run_pairs():
            unit = edit_distance(one, two, UnitCost())
            length = edit_distance(one, two, LengthCost())
            assert unit <= length + 1e-9

    def test_zero_distance_is_model_independent(self):
        spec = random_specification(12, 1.0, num_forks=1, seed=3)
        run = execute_workflow(spec, PARAMS, seed=5)
        for eps in (0.0, 0.5, 1.0, -1.0):
            assert edit_distance(run, run, PowerCost(eps)) == 0.0


class TestScriptRepricing:
    def test_own_model_script_is_optimal(self):
        """A script optimal under ε re-priced under ε equals the
        distance; re-priced under another model it can only be >= that
        model's optimum."""
        spec = fig17b_specification(4)
        params = ExecutionParams(
            prob_parallel=0.5, max_fork=4, prob_fork=1.0
        )
        one = execute_workflow(spec, params, seed=1)
        two = execute_workflow(spec, params, seed=2)
        models = [UnitCost(), PowerCost(0.5), LengthCost()]
        optima = {
            model.name: diff_runs(one, two, cost=model).distance
            for model in models
        }
        for producing in models:
            script = diff_runs(one, two, cost=producing).script
            for pricing in models:
                repriced = sum(
                    pricing.path_cost(
                        op.length, op.source_label, op.sink_label
                    )
                    for op in script.operations
                )
                assert repriced >= optima[pricing.name] - 1e-9
                if pricing.name == producing.name:
                    assert repriced == pytest.approx(
                        optima[pricing.name]
                    )

    def test_negative_epsilon_prefers_long_paths(self):
        """Under ε < 0 longer paths are cheaper to edit, flipping the
        Fig. 17(a) preference."""
        from repro.graphs.flow_network import FlowNetwork
        from repro.workflow.run import WorkflowRun
        from repro.workflow.specification import WorkflowSpecification

        graph = FlowNetwork(name="seesaw")
        for node in ("s", "m1", "m2", "t"):
            graph.add_node(node)
        graph.add_edge("s", "t")
        graph.add_edge("s", "m1")
        graph.add_edge("m1", "m2")
        graph.add_edge("m2", "t")
        spec = WorkflowSpecification(graph, name="seesaw")

        def run_of(name, with_short, with_long):
            g = FlowNetwork(name=name)
            g.add_node("s0", "s")
            g.add_node("t0", "t")
            if with_short:
                g.add_edge("s0", "t0")
            if with_long:
                g.add_node("m1a", "m1")
                g.add_node("m2a", "m2")
                g.add_edge("s0", "m1a")
                g.add_edge("m1a", "m2a")
                g.add_edge("m2a", "t0")
            return WorkflowRun(spec, g, name=name)

        both = run_of("both", True, True)
        short_only = run_of("short", True, False)
        long_only = run_of("long", False, True)
        # Deleting the long branch costs 3^ε, the short one 1^ε = 1.
        eps = -1.0
        to_short = edit_distance(both, short_only, PowerCost(eps))
        to_long = edit_distance(both, long_only, PowerCost(eps))
        assert to_short == pytest.approx(3.0 ** eps)
        assert to_long == pytest.approx(1.0)
        assert to_short < to_long  # flipped vs ε >= 0
