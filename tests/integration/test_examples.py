"""Smoke tests: every example script runs to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} produced no output"
