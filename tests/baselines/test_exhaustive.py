"""Tests for the exhaustive exact differencing oracle."""

import pytest

from repro.baselines.exhaustive import (
    enumerate_branch_free_fragments,
    exact_edit_distance,
)
from repro.core.api import edit_distance
from repro.costs.standard import LengthCost, UnitCost
from repro.errors import ReproError
from repro.workflow.execution import ExecutionParams
from repro.workflow.generators import random_run_pair, random_specification


class TestFragments:
    def test_fig2_root_fragments(self, fig2_spec):
        fragments = enumerate_branch_free_fragments(fig2_spec.tree)
        # Three source-sink path shapes (one per blast branch), all with
        # the same labels except the middle module.
        assert len(fragments) == 3
        for fragment in fragments:
            assert fragment.is_branch_free()
            assert fragment.leaf_count() == 4

    def test_limit_respected(self, fig2_spec):
        fragments = enumerate_branch_free_fragments(
            fig2_spec.tree, limit=2
        )
        assert len(fragments) == 2


class TestOracle:
    def test_identity_is_zero(self, fig2_r1):
        assert exact_edit_distance(fig2_r1, fig2_r1) == 0.0

    def test_paper_example(self, fig2_r1, fig2_r2):
        assert exact_edit_distance(fig2_r1, fig2_r2, UnitCost()) == 4.0

    def test_matches_polynomial_algorithm(self):
        spec = random_specification(
            6, 1.0, num_forks=1, num_loops=1, seed=4
        )
        params = ExecutionParams(
            prob_parallel=0.7,
            max_fork=2,
            prob_fork=0.5,
            max_loop=2,
            prob_loop=0.5,
        )
        for seed in range(4):
            one, two = random_run_pair(spec, params, seed=seed)
            if max(one.num_edges, two.num_edges) > 12:
                continue
            expected = edit_distance(one, two, UnitCost())
            actual = exact_edit_distance(
                one, two, UnitCost(), extra_leaves=2
            )
            assert actual == pytest.approx(expected)

    def test_length_cost(self, fig2_r1, fig2_r2):
        assert exact_edit_distance(
            fig2_r1, fig2_r2, LengthCost()
        ) == pytest.approx(10.0)

    def test_state_cap_raises(self, fig2_r1, fig2_r2):
        with pytest.raises(ReproError, match="state cap"):
            exact_edit_distance(
                fig2_r1, fig2_r2, UnitCost(), max_states=1
            )
