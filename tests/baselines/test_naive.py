"""Tests for the naive dataflow differencing baseline."""

import pytest

from repro.baselines.naive import naive_diff
from repro.graphs.flow_network import FlowNetwork
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

from tests.conftest import build_run


@pytest.fixture(scope="module")
def dataflow_spec():
    graph = FlowNetwork(name="dataflow")
    for node in "sabt":
        graph.add_node(node)
    graph.add_edge("s", "a")
    graph.add_edge("s", "b")
    graph.add_edge("a", "t")
    graph.add_edge("b", "t")
    return WorkflowSpecification(graph, name="dataflow")


class TestDataflowModel:
    def test_identical_runs(self, dataflow_spec):
        run = build_run(
            dataflow_spec,
            "full",
            {"s1": "s", "a1": "a", "b1": "b", "t1": "t"},
            [("s1", "a1"), ("s1", "b1"), ("a1", "t1"), ("b1", "t1")],
        )
        diff = naive_diff(run, run)
        assert diff.is_exact
        assert diff.is_identical

    def test_branch_difference(self, dataflow_spec):
        via_a = build_run(
            dataflow_spec,
            "via-a",
            {"s1": "s", "a1": "a", "t1": "t"},
            [("s1", "a1"), ("a1", "t1")],
        )
        via_b = build_run(
            dataflow_spec,
            "via-b",
            {"s1": "s", "b1": "b", "t1": "t"},
            [("s1", "b1"), ("b1", "t1")],
        )
        diff = naive_diff(via_a, via_b)
        assert diff.is_exact
        assert diff.nodes_only_in_1 == ["a"]
        assert diff.nodes_only_in_2 == ["b"]
        assert diff.symmetric_difference_size == 2 + 4

    def test_repeated_labels_flagged_inexact(self, fig2_r1, fig2_r2):
        diff = naive_diff(fig2_r1, fig2_r2)
        assert not diff.is_exact  # labels repeat: pairing is ambiguous

    def test_multiset_semantics(self, fig2_r1, fig2_r2):
        diff = naive_diff(fig2_r1, fig2_r2)
        # R1 has two instances of 3, R2 one: one extra "3" on the left.
        assert diff.nodes_only_in_1.count("3") == 1
        # R2 has 2, 4, 5, 6 extras.
        assert "5" in diff.nodes_only_in_2

    def test_edge_multiset(self, fig2_r1, fig2_r2):
        diff = naive_diff(fig2_r1, fig2_r2)
        assert ("2", "3") in diff.edges_only_in_1
        assert ("2", "5") in diff.edges_only_in_2
