"""Property test: indexed query results ≡ brute-force scan results.

The correctness contract of the query subsystem: for any generated
corpus, any cacheable cost model, and any predicate drawn from the ``Q``
grammar, :meth:`QueryEngine.select` (script cache + inverted-index
pruning) returns **exactly** what :meth:`QueryEngine.scan` computes by
re-diffing every stored pair from XML — same pairs in the same order,
same distances, same operation sequences — cold, warm, and warm across
a service restart.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.service import DiffService
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.core.edit_script import OPERATION_KINDS
from repro.io.store import WorkflowStore
from repro.query.engine import QueryEngine
from repro.query.predicates import Q
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_specification

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)

COSTS = [UnitCost(), LengthCost(), PowerCost(0.5)]


def predicates(draw):
    """One predicate drawn from the ``Q`` grammar (depth <= 2)."""
    leaves = [
        Q.everything(),
        Q.op_kind(draw(st.sampled_from(OPERATION_KINDS))),
        Q.touches(f"m{draw(st.integers(min_value=1, max_value=12))}"),
        Q.cost(min=draw(st.floats(min_value=0.0, max_value=6.0))),
        Q.cost(max=draw(st.floats(min_value=0.0, max_value=6.0))),
        Q.op_count(min=draw(st.integers(min_value=0, max_value=6))),
    ]
    first = draw(st.sampled_from(leaves))
    second = draw(st.sampled_from(leaves))
    combinator = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if combinator == "and":
        return first & second
    if combinator == "or":
        return first | second
    if combinator == "not":
        return ~first
    return first


def doc_payload(doc):
    """Full-detail projection: pair, distance, every operation field."""
    return (
        doc.run_a,
        doc.run_b,
        doc.distance,
        tuple(op.to_dict()["kind"] for op in doc.operations),
        tuple(
            (op.cost, op.length, op.source_label, op.sink_label,
             op.path_labels, op.note)
            for op in doc.operations
        ),
    )


@given(data=st.data())
@SETTINGS
def test_indexed_query_equals_brute_force_scan(tmp_path_factory, data):
    spec_seed = data.draw(st.integers(min_value=0, max_value=40))
    run_seed = data.draw(st.integers(min_value=0, max_value=1000))
    n_runs = data.draw(st.integers(min_value=2, max_value=5))
    cost = COSTS[
        data.draw(st.integers(min_value=0, max_value=len(COSTS) - 1))
    ]
    predicate = predicates(data.draw)

    root = tmp_path_factory.mktemp("query-corpus")
    store = WorkflowStore(root)
    spec = random_specification(
        10 + spec_seed % 6,
        1.0,
        num_forks=spec_seed % 3,
        num_loops=spec_seed % 2,
        seed=spec_seed,
        name="rand",
    )
    store.save_specification(spec)
    for offset in range(n_runs):
        store.save_run(
            execute_workflow(
                spec, PARAMS, seed=run_seed + offset, name=f"run{offset}"
            )
        )

    engine = QueryEngine(DiffService(store))
    expected = [doc_payload(d) for d in engine.scan(
        "rand", predicate, cost=cost
    )]

    # Cold: the first indexed query computes, caches, and indexes.
    cold = [doc_payload(d) for d in engine.select(
        "rand", predicate, cost=cost
    )]
    assert cold == expected

    # Warm: the same engine answers from memory.
    warm = [doc_payload(d) for d in engine.select(
        "rand", predicate, cost=cost
    )]
    assert warm == expected

    # Restart: a fresh service answers from the persisted cache/index
    # without a single new diff.
    reopened = QueryEngine(DiffService(store))
    restarted = [doc_payload(d) for d in reopened.select(
        "rand", predicate, cost=cost
    )]
    assert restarted == expected
    assert reopened.service.computed_scripts == 0

    # Aggregations agree between the two evaluation paths as well.
    from repro.query.aggregate import module_churn, op_kind_histogram

    assert op_kind_histogram(
        engine.select("rand", predicate, cost=cost)
    ) == op_kind_histogram(engine.scan("rand", predicate, cost=cost))
    assert module_churn(
        engine.select("rand", predicate, cost=cost)
    ) == module_churn(engine.scan("rand", predicate, cost=cost))
