"""The ``repro`` console script: diff, matrix, query subcommands."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDiff:
    def test_prints_distance_and_ops(self, pa_store, capsys):
        code, out, _ = run_cli(
            capsys, "diff", str(pa_store.root), "PA", "r01", "r02",
            "--ops",
        )
        assert code == 0
        assert "delta(r01, r02)" in out
        assert "UnitCost" in out
        assert "path-" in out  # at least one rendered operation

    def test_json_output_roundtrips(self, pa_store, capsys):
        code, out, _ = run_cli(
            capsys, "diff", str(pa_store.root), "PA", "r01", "r02",
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["run_a"] == "r01"
        assert payload["distance"] == sum(
            op["cost"] for op in payload["operations"]
        )

    def test_cost_model_flag(self, pa_store, capsys):
        code, out, _ = run_cli(
            capsys, "diff", str(pa_store.root), "PA", "r01", "r02",
            "--cost", "power:0.5",
        )
        assert code == 0
        assert "PowerCost" in out

    def test_missing_run_is_a_clean_error(self, pa_store, capsys):
        code, _, err = run_cli(
            capsys, "diff", str(pa_store.root), "PA", "r01", "nope"
        )
        assert code == 1  # ReproError → 1; usage errors → 2 (argparse)
        assert "no stored run" in err

    def test_missing_store_rejected_by_argparse(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["diff", str(tmp_path / "absent"), "PA", "a", "b"])

    def test_bad_cost_model_rejected(self, pa_store, capsys):
        with pytest.raises(SystemExit):
            main([
                "diff", str(pa_store.root), "PA", "r01", "r02",
                "--cost", "quadratic",
            ])


class TestMatrix:
    def test_table_lists_every_run(self, pa_store, capsys):
        code, out, _ = run_cli(
            capsys, "matrix", str(pa_store.root), "PA"
        )
        assert code == 0
        for name in ("r01", "r02", "r03", "r04", "r05"):
            assert name in out

    def test_json_has_all_pairs(self, pa_store, capsys):
        code, out, _ = run_cli(
            capsys, "matrix", str(pa_store.root), "PA", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert len(payload["distances"]) == 10


class TestQuery:
    def test_filters_and_aggregates(self, pa_store, capsys):
        code, out, _ = run_cli(
            capsys, "query", str(pa_store.root), "PA",
            "--kind", "path-deletion",
            "--min-cost", "1",
            "--histogram", "--churn",
        )
        assert code == 0
        assert "matching pair(s)" in out
        assert "operation kinds:" in out
        assert "module churn:" in out

    def test_json_matches_are_selectable(self, pa_store, capsys):
        code, out, _ = run_cli(
            capsys, "query", str(pa_store.root), "PA",
            "--min-cost", "2", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["predicate"] == "cost(min=2)"
        assert all(
            match["distance"] >= 2 for match in payload["matches"]
        )

    def test_limit_truncates_display_not_aggregates(
        self, pa_store, capsys
    ):
        code, out, _ = run_cli(
            capsys, "query", str(pa_store.root), "PA",
            "--limit", "1", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert len(payload["matches"]) == 1
        assert payload["total_matches"] == 10

        full = run_cli(
            capsys, "query", str(pa_store.root), "PA", "--histogram"
        )[1]
        limited = run_cli(
            capsys, "query", str(pa_store.root), "PA",
            "--limit", "1", "--histogram",
        )[1]
        # The histogram covers the full match set either way.
        section = lambda text: text.split("operation kinds:")[1]
        assert section(limited) == section(full)
        assert "10 matching pair(s)" in limited
        assert "(showing 1)" in limited

    def test_unfiltered_query_lists_all_pairs(self, pa_store, capsys):
        code, out, _ = run_cli(
            capsys, "query", str(pa_store.root), "PA", "--json"
        )
        assert code == 0
        assert len(json.loads(out)["matches"]) == 10

    def test_second_invocation_is_warm(self, pa_store, capsys):
        run_cli(capsys, "query", str(pa_store.root), "PA", "--json")
        # The second process-equivalent reads answer from the store's
        # persisted caches: no scripts are recomputed.
        from repro.corpus.service import DiffService

        service = DiffService(pa_store)
        service.edit_script("PA", "r01", "r02")
        assert service.computed_scripts == 0


class TestEntryPoint:
    def test_console_script_is_declared(self):
        from pathlib import Path

        text = Path(__file__).resolve().parents[2].joinpath(
            "pyproject.toml"
        ).read_text(encoding="utf8")
        assert '[project.scripts]' in text
        assert 'repro = "repro.cli:main"' in text

    def test_module_is_runnable(self, pa_store, capsys):
        # `python -m repro.cli` uses the same main(); exercised here
        # in-process to keep the suite fast.
        assert main(["matrix", str(pa_store.root), "PA"]) == 0
        capsys.readouterr()
