"""Predicate semantics and index candidate generation."""

import pytest

from repro.corpus.script_cache import encode_script
from repro.corpus.script_index import ScriptIndex
from repro.core.edit_script import (
    PATH_CONTRACTION,
    PATH_DELETION,
    PATH_EXPANSION,
    PATH_INSERTION,
    PathOperation,
)
from repro.errors import ReproError
from repro.io.store import WorkflowStore
from repro.query.engine import ScriptDoc
from repro.query.predicates import MatchAll, Q


def op(kind=PATH_INSERTION, path=("A", "X", "B"), cost=1.0):
    return PathOperation(
        kind=kind,
        cost=cost,
        length=len(path) - 1,
        source_label=path[0],
        sink_label=path[-1],
        path_labels=tuple(path),
    )


def doc(distance, operations):
    return ScriptDoc("S", "a", "b", None, distance, operations)


DOC_SMALL = doc(1.0, [op()])
DOC_BIG = doc(
    6.0,
    [
        op(kind=PATH_DELETION, path=("A", "Y", "B"), cost=2.0),
        op(kind=PATH_EXPANSION, path=("C", "D"), cost=4.0),
    ],
)
DOC_EMPTY = doc(0.0, [])


class TestMatching:
    def test_match_all(self):
        assert MatchAll().matches(DOC_EMPTY)
        assert Q.everything().matches(DOC_BIG)

    def test_op_kind(self):
        assert Q.op_kind(PATH_INSERTION).matches(DOC_SMALL)
        assert not Q.op_kind(PATH_INSERTION).matches(DOC_BIG)
        assert Q.op_kind(PATH_DELETION, PATH_CONTRACTION).matches(DOC_BIG)

    def test_op_kind_validates(self):
        with pytest.raises(ReproError):
            Q.op_kind("path-tpyo")
        with pytest.raises(ReproError):
            Q.op_kind()

    def test_touches_includes_terminals(self):
        assert Q.touches("X").matches(DOC_SMALL)
        assert Q.touches("A").matches(DOC_SMALL)
        assert not Q.touches("Z").matches(DOC_SMALL)
        with pytest.raises(ReproError):
            Q.touches()

    def test_cost_bounds(self):
        assert Q.cost(min=2.0).matches(DOC_BIG)
        assert not Q.cost(min=2.0).matches(DOC_SMALL)
        assert Q.cost(max=1.0).matches(DOC_SMALL)
        assert Q.cost(min=1.0, max=6.0).matches(DOC_BIG)
        with pytest.raises(ReproError):
            Q.cost()
        with pytest.raises(ReproError):
            Q.cost(min=3.0, max=1.0)

    def test_op_count_bounds(self):
        assert Q.op_count(min=2).matches(DOC_BIG)
        assert not Q.op_count(min=1).matches(DOC_EMPTY)
        assert Q.op_count(max=0).matches(DOC_EMPTY)
        with pytest.raises(ReproError):
            Q.op_count()

    def test_combinators(self):
        both = Q.op_kind(PATH_DELETION) & Q.cost(min=5.0)
        assert both.matches(DOC_BIG)
        assert not both.matches(DOC_SMALL)
        either = Q.op_kind(PATH_INSERTION) | Q.cost(min=5.0)
        assert either.matches(DOC_SMALL)
        assert either.matches(DOC_BIG)
        assert not either.matches(DOC_EMPTY)
        assert (~Q.op_kind(PATH_INSERTION)).matches(DOC_BIG)
        assert not (~Q.everything()).matches(DOC_SMALL)

    def test_describe_is_readable(self):
        predicate = (
            Q.op_kind(PATH_DELETION)
            & Q.touches("getGOAnnot")
            & Q.cost(min=2.0)
        )
        text = predicate.describe()
        assert "op_kind(path-deletion)" in text
        assert "touches(getGOAnnot)" in text
        assert "cost(min=2)" in text
        assert repr(~Q.cost(max=3.0)) == "~cost(max=3)"


class TestCandidates:
    @pytest.fixture
    def populated(self, tmp_path):
        index = ScriptIndex(WorkflowStore(tmp_path), persistent=False)
        index.add(
            "small", encode_script(1.0, [op()])
        )
        index.add(
            "big",
            encode_script(
                6.0,
                [
                    op(kind=PATH_DELETION, path=("A", "Y", "B"), cost=2.0),
                    op(kind=PATH_EXPANSION, path=("C", "D"), cost=4.0),
                ],
            ),
        )
        return index

    def test_primitive_candidates(self, populated):
        assert Q.op_kind(PATH_INSERTION).candidates(populated) == {"small"}
        assert Q.touches("Y").candidates(populated) == {"big"}
        assert Q.touches("A").candidates(populated) == {"small", "big"}
        assert Q.cost(min=2.0).candidates(populated) == {"big"}
        assert Q.op_count(min=2).candidates(populated) == {"big"}

    def test_and_intersects(self, populated):
        predicate = Q.touches("A") & Q.cost(min=2.0)
        assert predicate.candidates(populated) == {"big"}

    def test_or_unions_and_poisons(self, populated):
        predicate = Q.op_kind(PATH_INSERTION) | Q.cost(min=2.0)
        assert predicate.candidates(populated) == {"small", "big"}
        # A non-prunable arm forces the whole OR to full scan.
        assert (Q.op_kind(PATH_INSERTION) | ~Q.cost(min=2.0)).candidates(
            populated
        ) is None

    def test_not_and_matchall_never_prune(self, populated):
        assert (~Q.cost(min=2.0)).candidates(populated) is None
        assert MatchAll().candidates(populated) is None
        # ... but AND with a prunable sibling still prunes.
        predicate = ~Q.cost(min=2.0) & Q.op_kind(PATH_INSERTION)
        assert predicate.candidates(populated) == {"small"}

    def test_candidates_are_conservative(self, populated):
        """Every candidate set is a superset of the true matches."""
        docs = {"small": DOC_SMALL, "big": DOC_BIG}
        predicates = [
            Q.op_kind(PATH_DELETION),
            Q.touches("A", "D"),
            Q.cost(min=0.5, max=4.0),
            Q.op_count(max=1),
            Q.op_kind(PATH_EXPANSION) & Q.cost(min=2.0),
            Q.touches("Y") | Q.cost(max=1.0),
        ]
        for predicate in predicates:
            candidates = predicate.candidates(populated)
            matches = {
                key for key, d in docs.items() if predicate.matches(d)
            }
            assert candidates is None or matches <= candidates
