"""The query engine: select vs scan, pruning, aggregations, session."""

import pytest

from repro.core.edit_script import PATH_DELETION, PATH_INSERTION
from repro.corpus.service import DiffService
from repro.costs.standard import CallableCost, LengthCost
from repro.errors import ReproError
from repro.pdiffview.session import PDiffViewSession
from repro.query.aggregate import module_churn, op_kind_histogram
from repro.query.engine import QueryEngine
from repro.query.predicates import Q
from repro.workflow.execution import execute_workflow


def doc_payload(doc):
    """A comparable projection of one ScriptDoc (full op detail)."""
    return (
        doc.run_a,
        doc.run_b,
        doc.distance,
        tuple(
            (op.kind, op.cost, op.length, op.source_label,
             op.sink_label, op.path_labels)
            for op in doc.operations
        ),
    )


class TestSelectEqualsScan:
    def test_unfiltered(self, engine):
        selected = [doc_payload(d) for d in engine.select("PA")]
        scanned = [doc_payload(d) for d in engine.scan("PA")]
        assert selected == scanned
        assert len(selected) == 10  # 5 runs -> 10 pairs

    def test_filtered(self, engine):
        predicate = Q.op_kind(PATH_DELETION) & Q.cost(min=2.0)
        selected = [
            doc_payload(d) for d in engine.select("PA", predicate)
        ]
        scanned = [doc_payload(d) for d in engine.scan("PA", predicate)]
        assert selected == scanned

    def test_run_subset(self, engine):
        runs = ["r01", "r03", "r05"]
        selected = [
            doc_payload(d) for d in engine.select("PA", runs=runs)
        ]
        scanned = [doc_payload(d) for d in engine.scan("PA", runs=runs)]
        assert selected == scanned
        assert {(d[0], d[1]) for d in selected} == {
            ("r01", "r03"), ("r01", "r05"), ("r03", "r05"),
        }

    def test_length_cost(self, engine):
        cost = LengthCost()
        selected = [
            doc_payload(d) for d in engine.select("PA", cost=cost)
        ]
        scanned = [doc_payload(d) for d in engine.scan("PA", cost=cost)]
        assert selected == scanned

    def test_uncacheable_cost_model(self, engine):
        cost = CallableCost(lambda l, a, b: 1.0, name="flat")
        predicate = Q.cost(min=1.0)
        selected = [
            doc_payload(d)
            for d in engine.select("PA", predicate, cost=cost)
        ]
        scanned = [
            doc_payload(d)
            for d in engine.scan("PA", predicate, cost=cost)
        ]
        assert selected == scanned
        # Nothing was persisted for the uncacheable model.
        assert len(engine.service.script_cache) == 0


class TestIncrementalityAndPruning:
    def test_first_query_computes_each_pair_once(
        self, engine, diff_counter
    ):
        list(engine.select("PA"))
        assert diff_counter["count"] == 10
        list(engine.select("PA", Q.cost(min=0.0)))
        assert diff_counter["count"] == 10  # warm: zero new diffs

    def test_build_front_loads_the_diffs(self, engine, diff_counter):
        assert engine.build("PA") == 10
        assert diff_counter["count"] == 10
        list(engine.select("PA"))
        assert diff_counter["count"] == 10

    def test_warm_restart_runs_zero_diffs(self, pa_store, diff_counter):
        QueryEngine(DiffService(pa_store)).build("PA")
        before = diff_counter["count"]
        reopened = QueryEngine(DiffService(pa_store))
        matches = list(reopened.select("PA", Q.cost(min=1.0)))
        assert diff_counter["count"] == before
        assert matches  # the corpus is not degenerate

    def test_pruning_skips_script_loads(self, pa_store):
        QueryEngine(DiffService(pa_store)).build("PA")
        service = DiffService(pa_store)
        engine = QueryEngine(service)
        # A label absent from every script: candidates prune to nothing,
        # so no script is ever read from the cache.
        assert list(engine.select("PA", Q.touches("no-such-module"))) == []
        stats = service.stats
        assert stats["script_memory_hits"] == 0
        assert stats["script_disk_hits"] == 0

    def test_add_run_extends_the_queryable_corpus(
        self, engine, pa_store, varied_params
    ):
        list(engine.select("PA"))
        spec = pa_store.load_specification("PA")
        newcomer = execute_workflow(
            spec, varied_params, seed=77, name="r99"
        )
        engine.service.add_run(newcomer)
        docs = list(engine.select("PA"))
        assert len(docs) == 15  # 6 runs -> 15 pairs
        assert {d.pair for d in docs} >= {
            ("r01", "r99"), ("r05", "r99"),
        }

    def test_duplicate_runs_rejected(self, engine):
        with pytest.raises(ReproError):
            list(engine.select("PA", runs=["r01", "r01"]))


class TestAggregations:
    def test_histogram_matches_manual_count(self, engine):
        docs = list(engine.select("PA"))
        manual = {}
        for doc in docs:
            for op in doc.operations:
                manual[op.kind] = manual.get(op.kind, 0) + 1
        assert engine.histogram("PA") == manual == op_kind_histogram(docs)

    def test_churn_ranks_by_total_cost(self, engine):
        ranking = engine.churn("PA")
        assert ranking
        costs = [entry.total_cost for entry in ranking]
        assert costs == sorted(costs, reverse=True)
        # Interior attribution only: terminals of every op are excluded
        # unless they appear as another op's interior.
        docs = list(engine.select("PA"))
        interiors = {
            label
            for doc in docs
            for op in doc.operations
            for label in op.interior_labels
        }
        assert {entry.label for entry in ranking} == interiors

    def test_churn_respects_predicate(self, engine):
        full = {e.label for e in engine.churn("PA")}
        filtered = module_churn(
            engine.select("PA", Q.op_kind(PATH_INSERTION))
        )
        assert {e.label for e in filtered} <= full | set()

    def test_divergence_report(self, engine):
        report = engine.divergence(
            "PA", ["r01", "r02"], ["r03", "r04", "r05"]
        )
        cross = engine.service.distances(
            "PA",
            [(a, b) for a in ["r01", "r02"] for b in ["r03", "r04", "r05"]],
        )
        assert report.mean_cross == pytest.approx(
            sum(cross.values()) / 6
        )
        expected = report.mean_cross - (
            report.mean_within_a + report.mean_within_b
        ) / 2
        assert report.divergence == pytest.approx(expected)
        assert report.summary_lines()
        assert report.churn  # cross scripts touch at least one module

    def test_divergence_validates_groups(self, engine):
        with pytest.raises(ReproError):
            engine.divergence("PA", [], ["r01"])
        with pytest.raises(ReproError):
            engine.divergence("PA", ["r01"], ["r01", "r02"])

    def test_single_run_groups_have_zero_within_mean(self, engine):
        report = engine.divergence("PA", ["r01"], ["r02"])
        assert report.mean_within_a == 0.0
        assert report.mean_within_b == 0.0
        assert report.mean_cross > 0.0


class TestSessionEntryPoint:
    def test_session_query_matches_engine(self, pa_store):
        session = PDiffViewSession(pa_store.root)
        predicate = Q.cost(min=1.0)
        docs = session.query("PA", predicate)
        assert docs == list(
            session.query_engine.select("PA", predicate)
        )
        assert all(doc.distance >= 1.0 for doc in docs)

    def test_session_engine_shares_the_service(self, pa_store):
        session = PDiffViewSession(pa_store.root)
        assert session.query_engine.service is session.diff_service
