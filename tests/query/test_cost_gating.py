"""Cost-ceiling gating: predicates prune DPs through lower bounds.

A predicate with a cost ceiling (``Q.cost(max=...)`` and conjunctions
containing one) lets :meth:`QueryEngine.select` discard pairs whose
never-overestimating lower bound already exceeds the ceiling — before
pricing them.  The gate must be invisible in the results (``select``
still agrees with the brute-force ``scan``) and visible in the work
(cold gated pairs are neither diffed nor indexed, and land on the
``dp_skipped_by_bound`` counter).
"""

import pytest

from repro.core import api as core_api
from repro.costs.standard import LengthCost
from repro.query.predicates import MatchAll, Q

from tests.query.conftest import populate_store


@pytest.fixture
def dp_counter(monkeypatch):
    """Count every edit-distance DP construction, however reached."""
    counter = {"count": 0}
    original = core_api.EditDistanceComputation

    class CountingComputation(original):
        def __init__(self, *args, **kwargs):
            counter["count"] += 1
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(
        core_api, "EditDistanceComputation", CountingComputation
    )
    return counter


class TestCostCeiling:
    def test_cost_max_is_the_ceiling(self):
        assert Q.cost(max=3.0).cost_ceiling() == 3.0
        assert Q.cost(min=1.0).cost_ceiling() is None

    def test_conjunction_takes_the_tightest(self):
        combined = Q.cost(max=5.0) & Q.cost(max=2.0) & Q.op_count(min=1)
        assert combined.cost_ceiling() == 2.0

    def test_disjunction_needs_every_branch_capped(self):
        capped = Q.cost(max=2.0) | Q.cost(max=5.0)
        assert capped.cost_ceiling() == 5.0
        uncapped = Q.cost(max=2.0) | Q.op_count(min=1)
        assert uncapped.cost_ceiling() is None

    def test_negation_and_others_have_none(self):
        assert (~Q.cost(max=2.0)).cost_ceiling() is None
        assert MatchAll().cost_ceiling() is None
        assert Q.op_count(max=3).cost_ceiling() is None


class TestSelectGating:
    def test_unreachable_ceiling_skips_every_cold_dp(
        self, engine, diff_counter, dp_counter
    ):
        # LengthCost bounds equal the leaf-profile delta — strictly
        # positive for any two distinct varied runs — so a ceiling
        # of 0.0 gates every cold pair before any DP runs.
        results = list(
            engine.select(
                "PA", Q.cost(max=0.0), cost=LengthCost()
            )
        )
        assert results == []
        assert diff_counter["count"] == 0
        assert dp_counter["count"] == 0
        assert engine.service.dp_skipped_by_bound > 0

    def test_gated_select_agrees_with_scan(self, engine):
        cost = LengthCost()
        # A mid-range ceiling: some pairs gate, some survive.
        distances = sorted(
            engine.service.lower_bounds(
                "PA",
                [
                    (a, b)
                    for i, a in enumerate(engine.service.runs("PA"))
                    for b in engine.service.runs("PA")[i + 1:]
                ],
                cost,
            ).values()
        )
        ceiling = distances[len(distances) // 2]
        predicate = Q.cost(max=ceiling)
        selected = [
            (doc.pair, doc.distance, doc.op_count)
            for doc in engine.select("PA", predicate, cost=cost)
        ]
        scanned = [
            (doc.pair, doc.distance, doc.op_count)
            for doc in engine.scan("PA", predicate, cost=cost)
        ]
        assert selected == scanned

    def test_warm_pairs_do_not_count_as_skips(self, engine):
        cost = LengthCost()
        # Price everything first: the corpus is fully warm.
        engine.build("PA", cost=cost)
        before = engine.service.dp_skipped_by_bound
        list(engine.select("PA", Q.cost(max=0.0), cost=cost))
        # Gated pairs were already indexed; nothing was avoided.
        assert engine.service.dp_skipped_by_bound == before

    def test_uncapped_predicates_price_everything(
        self, engine, diff_counter
    ):
        names = engine.service.runs("PA")
        expected_pairs = len(names) * (len(names) - 1) // 2
        results = list(engine.select("PA", Q.op_count(min=0)))
        assert len(results) == expected_pairs
        assert diff_counter["count"] == expected_pairs
        assert engine.service.dp_skipped_by_bound == 0
