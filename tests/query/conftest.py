"""Shared fixtures for the query-engine tests."""

from __future__ import annotations

import pytest

from repro.core import api as core_api
from repro.corpus.service import DiffService
from repro.io.store import WorkflowStore
from repro.query.engine import QueryEngine
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def populate_store(root, n_runs: int) -> WorkflowStore:
    """A store holding the PA spec and ``n_runs`` varied runs r01..rNN."""
    store = WorkflowStore(root)
    spec = protein_annotation()
    store.save_specification(spec)
    for seed in range(1, n_runs + 1):
        run = execute_workflow(spec, VARIED, seed=seed, name=f"r{seed:02d}")
        store.save_run(run)
    return store


@pytest.fixture
def pa_store(tmp_path) -> WorkflowStore:
    """A 5-run corpus (10 pairs — big enough for pruning to matter)."""
    return populate_store(tmp_path, 5)


@pytest.fixture
def service(pa_store) -> DiffService:
    return DiffService(pa_store)


@pytest.fixture
def engine(service) -> QueryEngine:
    return QueryEngine(service)


@pytest.fixture
def diff_counter(monkeypatch):
    """Count every full diff (script generation) however reached."""
    counter = {"count": 0}
    original = core_api.diff_runs

    def counting(*args, **kwargs):
        counter["count"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(core_api, "diff_runs", counting)
    # The backend worker module resolved diff_runs at import time (the
    # service's batch script generation runs through it).
    import repro.backends.work as backend_work

    monkeypatch.setattr(backend_work, "diff_runs", counting)
    import repro.query.engine as query_engine

    monkeypatch.setattr(query_engine, "diff_runs", counting)
    return counter


@pytest.fixture
def varied_params() -> ExecutionParams:
    return VARIED
