"""The inverted script index: terms, buckets, persistence, merging."""

import pytest

from repro.corpus.script_cache import encode_script
from repro.corpus.script_index import (
    INDEX_NAME,
    INDEX_NAMESPACE,
    INDEX_VERSION,
    ScriptIndex,
    cost_bucket,
    script_terms,
)
from repro.core.edit_script import PathOperation
from repro.io.store import WorkflowStore


def op(kind="path-insertion", path=("A", "X", "B"), cost=1.0):
    return PathOperation(
        kind=kind,
        cost=cost,
        length=len(path) - 1,
        source_label=path[0],
        sink_label=path[-1],
        path_labels=tuple(path),
    )


@pytest.fixture
def store(tmp_path):
    return WorkflowStore(tmp_path)


class TestCostBuckets:
    def test_bucket_layout(self):
        assert cost_bucket(0.0) == 0
        assert cost_bucket(0.99) == 0
        assert cost_bucket(1.0) == 1
        assert cost_bucket(1.99) == 1
        assert cost_bucket(2.0) == 2
        assert cost_bucket(3.99) == 2
        assert cost_bucket(4.0) == 3
        assert cost_bucket(1024.0) == 11

    def test_monotone(self):
        values = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 100.0]
        buckets = [cost_bucket(v) for v in values]
        assert buckets == sorted(buckets)


class TestTermExtraction:
    def test_terms_cover_kinds_labels_and_bucket(self):
        record = encode_script(
            3.0,
            [op(), op(kind="path-deletion", path=("B", "C"))],
        )
        terms = script_terms(record)
        assert "kind:path-insertion" in terms
        assert "kind:path-deletion" in terms
        assert {"label:A", "label:X", "label:B", "label:C"} <= terms
        assert "cost:2" in terms

    def test_empty_script_still_gets_a_cost_term(self):
        assert script_terms(encode_script(0.0, [])) == {"cost:0"}


class TestScriptIndex:
    def test_add_and_candidates(self, store):
        index = ScriptIndex(store)
        index.add("k1", encode_script(1.0, [op()]))
        index.add(
            "k2",
            encode_script(5.0, [op(kind="path-deletion", path=("C", "D"))]),
        )
        assert index.has("k1") and index.has("k2")
        assert len(index) == 2
        assert index.candidates_for_kinds(["path-insertion"]) == {"k1"}
        assert index.candidates_for_labels(["C"]) == {"k2"}
        assert index.candidates_for_labels(["X", "D"]) == {"k1", "k2"}
        assert index.candidates_for_cost(2.0, None) == {"k2"}
        assert index.candidates_for_cost(None, 1.5) == {"k1"}
        assert index.candidates_for_cost(0.5, 8.0) == {"k1", "k2"}
        assert index.candidates_for_op_count(1, 1) == {"k1", "k2"}

    def test_add_is_idempotent(self, store):
        index = ScriptIndex(store)
        record = encode_script(1.0, [op()])
        index.add("k", record)
        index.add("k", encode_script(99.0, [op(kind="path-deletion")]))
        assert index.doc("k") == (1.0, 1)
        assert index.candidates_for_kinds(["path-deletion"]) == set()

    def test_flush_and_reload(self, store):
        index = ScriptIndex(store)
        index.add("k", encode_script(2.0, [op()]))
        index.flush()
        path = store.index_path(INDEX_NAME, namespace=INDEX_NAMESPACE)
        assert path.exists()
        reloaded = ScriptIndex(store)
        assert reloaded.has("k")
        assert reloaded.doc("k") == (2.0, 1)
        assert reloaded.candidates_for_labels(["X"]) == {"k"}

    def test_flush_merges_concurrent_writers(self, store):
        one = ScriptIndex(store)
        two = ScriptIndex(store)
        one.add("a", encode_script(1.0, [op()]))
        one.flush()
        two.add("b", encode_script(2.0, [op(path=("P", "Q"))]))
        two.flush()
        merged = ScriptIndex(store)
        assert merged.keys() == {"a", "b"}

    def test_unknown_version_ignored(self, store):
        store.save_index(
            INDEX_NAME,
            {"version": INDEX_VERSION + 1, "postings": {}, "docs": {}},
            namespace=INDEX_NAMESPACE,
        )
        assert len(ScriptIndex(store)) == 0

    def test_corrupt_payload_ignored(self, store):
        path = store.index_path(INDEX_NAME, namespace=INDEX_NAMESPACE)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{broken", encoding="utf8")
        index = ScriptIndex(store)
        assert len(index) == 0
        index.add("k", encode_script(1.0, [op()]))
        index.flush()
        assert ScriptIndex(store).has("k")

    def test_non_persistent_index_never_writes(self, store):
        index = ScriptIndex(store, persistent=False)
        index.add("k", encode_script(1.0, [op()]))
        index.flush()
        assert not store.index_path(
            INDEX_NAME, namespace=INDEX_NAMESPACE
        ).exists()


class TestStoreNamespaces:
    def test_namespaced_indexes_are_isolated(self, store):
        store.save_index("postings", {"top": 1})
        store.save_index("postings", {"nested": 2}, namespace="query")
        assert store.load_index("postings") == {"top": 1}
        assert store.load_index("postings", namespace="query") == {
            "nested": 2
        }
        assert store.list_indexes(namespace="query") == ["postings"]
        assert "postings" in store.list_indexes()

    def test_missing_namespace_lists_empty(self, store):
        assert store.list_indexes(namespace="nope") == []
