"""Edit-script serialisation, the script cache, and service accounting."""

import json

import pytest

from repro.core.edit_script import (
    SCRIPT_SCHEMA_VERSION,
    PathOperation,
    operations_from_payload,
    operations_to_payload,
)
from repro.corpus.script_cache import (
    ScriptCache,
    decode_script,
    encode_script,
)
from repro.corpus.service import DiffService
from repro.errors import EditScriptError


def make_op(kind="path-insertion", cost=1.0, note=""):
    return PathOperation(
        kind=kind,
        cost=cost,
        length=2,
        source_label="A",
        sink_label="B",
        path_labels=("A", "X", "B"),
        note=note,
    )


class TestPathOperationSerialisation:
    def test_roundtrip(self):
        op = make_op(note="unstable swap")
        assert PathOperation.from_dict(op.to_dict()) == op

    def test_payload_roundtrip_preserves_order(self):
        ops = [make_op(), make_op(kind="path-deletion", cost=2.5)]
        assert operations_from_payload(operations_to_payload(ops)) == ops

    def test_payload_is_json_safe(self):
        op = make_op()
        assert json.loads(json.dumps(op.to_dict())) == op.to_dict()

    def test_malformed_payload_raises(self):
        with pytest.raises(EditScriptError):
            PathOperation.from_dict({"kind": "path-insertion"})
        with pytest.raises(EditScriptError):
            operations_from_payload("not-a-list")

    def test_interior_labels_strip_terminals(self):
        assert make_op().interior_labels == ("X",)
        direct = PathOperation(
            kind="path-insertion",
            cost=1.0,
            length=1,
            source_label="A",
            sink_label="B",
            path_labels=("A", "B"),
        )
        assert direct.interior_labels == ()


class TestScriptRecordCodec:
    def test_roundtrip(self):
        ops = [make_op(), make_op(kind="path-contraction")]
        record = decode_script(encode_script(3.5, ops))
        assert record is not None
        assert record.distance == 3.5
        assert record.operations == ops
        assert record.op_count == 2

    def test_unknown_version_rejected(self):
        raw = encode_script(1.0, [make_op()])
        raw["v"] = SCRIPT_SCHEMA_VERSION + 1
        assert decode_script(raw) is None

    def test_malformed_record_rejected(self):
        assert decode_script({"v": SCRIPT_SCHEMA_VERSION}) is None
        assert decode_script("nope") is None
        raw = encode_script(1.0, [make_op()])
        raw["ops"] = [{"kind": "path-insertion"}]  # missing fields
        assert decode_script(raw) is None

    def test_summary_mentions_breakdown(self):
        record = decode_script(encode_script(2.0, [make_op(), make_op()]))
        assert "2 path-insertion" in record.summary()
        empty = decode_script(encode_script(0.0, []))
        assert "empty script" in empty.summary()


class TestScriptCache:
    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "scripts.json"
        raw = encode_script(2.0, [make_op()])
        warm = ScriptCache(path=path)
        warm.put("k", raw)
        warm.flush()
        cold = ScriptCache(path=path)
        assert cold.get("k") == raw
        assert cold.stats.disk_hits == 1

    def test_rejects_invalid_put(self):
        cache = ScriptCache(path=None)
        with pytest.raises(EditScriptError):
            cache.put("k", {"not": "a record"})

    def test_invalid_disk_entries_are_misses(self, tmp_path):
        path = tmp_path / "scripts.json"
        good = encode_script(1.0, [make_op()])
        stale = dict(good, v=SCRIPT_SCHEMA_VERSION + 9)
        path.write_text(
            json.dumps({"good": good, "stale": stale}), encoding="utf8"
        )
        cache = ScriptCache(path=path)
        assert cache.get("good") == good
        assert cache.get("stale") is None


class TestServiceScriptAccounting:
    """Satellite: hit/miss counters for the edit-script cache."""

    def test_cold_compute_counts_misses_and_puts(self, service):
        service.edit_script("PA", "r01", "r02")
        stats = service.stats
        assert stats["computed_scripts"] == 1
        assert stats["script_misses"] == 1
        assert stats["script_puts"] == 1
        assert stats["script_memory_hits"] == 0
        assert stats["indexed_scripts"] == 1

    def test_warm_read_is_a_memory_hit(self, service):
        service.edit_script("PA", "r01", "r02")
        service.edit_script("PA", "r01", "r02")
        stats = service.stats
        assert stats["computed_scripts"] == 1
        assert stats["script_memory_hits"] == 1

    def test_restart_reads_from_disk(self, pa_store):
        DiffService(pa_store).edit_script("PA", "r01", "r02")
        reopened = DiffService(pa_store)
        reopened.edit_script("PA", "r01", "r02")
        stats = reopened.stats
        assert stats["computed_scripts"] == 0
        assert stats["script_disk_hits"] == 1
        assert stats["indexed_scripts"] == 1

    def test_script_seeds_distance_cache(self, service):
        record = service.edit_script("PA", "r01", "r02")
        assert service.computed_pairs == 0
        distance = service.distance("PA", "r01", "r02")
        # Served from the seeded distance cache — still zero DPs.
        assert service.computed_pairs == 0
        assert distance == record.distance

    def test_distance_counters_untouched_by_script_prefix(self, service):
        service.distance_matrix("PA")
        stats = service.stats
        assert stats["computed_pairs"] == 10
        assert stats["script_puts"] == 0

    def test_scripts_are_directed(self, service):
        forward = service.edit_script("PA", "r01", "r02")
        backward = service.edit_script("PA", "r02", "r01")
        assert service.stats["computed_scripts"] == 2
        assert forward.distance == backward.distance
        kinds = lambda record: sorted(
            op.kind for op in record.operations
        )
        swap = {
            "path-insertion": "path-deletion",
            "path-deletion": "path-insertion",
            "path-expansion": "path-contraction",
            "path-contraction": "path-expansion",
        }
        assert kinds(backward) == sorted(
            swap[k] for k in kinds(forward)
        )

    def test_ephemeral_service_writes_nothing(self, pa_store):
        service = DiffService(pa_store, persistent=False)
        service.edit_script("PA", "r01", "r02")
        assert not (pa_store.root / "index" / "query").exists()
