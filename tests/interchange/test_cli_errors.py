"""CLI failure paths: nonzero exits, clear messages, never a traceback.

``repro diff`` / ``query`` / ``import`` are exercised in a subprocess
against a missing store, corrupted index files, corrupted catalog XML,
and malformed PROV documents.  Corrupted *index* files are derived data
and recover silently (documented store behaviour); everything else must
fail with a stable nonzero exit code (1 for ReproErrors, 2 for usage
errors) and a one-line diagnostic on stderr.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.pdiffview.session import PDiffViewSession

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")
GOLDEN = Path(__file__).parent / "golden"


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *map(str, argv)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    return proc.returncode, proc.stdout, proc.stderr


def assert_clean_failure(code, err):
    assert code != 0
    assert "Traceback" not in err
    assert err.strip(), "expected a diagnostic on stderr"


@pytest.fixture()
def populated_store(tmp_path, fig2_spec):
    session = PDiffViewSession(tmp_path / "store")
    session.register_specification(fig2_spec)
    session.generate_run("fig2", "a", seed=1)
    session.generate_run("fig2", "b", seed=2)
    return session.store


@pytest.mark.parametrize(
    "argv",
    [
        ("diff", "{store}", "fig2", "a", "b"),
        ("matrix", "{store}", "fig2"),
        ("query", "{store}", "fig2"),
        ("export", "{store}", "fig2", "a"),
    ],
)
def test_missing_store_is_a_clean_argparse_error(tmp_path, argv):
    missing = tmp_path / "does-not-exist"
    code, _, err = run_cli(
        *(arg.format(store=missing) for arg in argv)
    )
    assert_clean_failure(code, err)
    assert "does not exist" in err


def test_import_into_missing_document_is_clean(tmp_path):
    code, _, err = run_cli(
        "import", tmp_path / "fresh-store", tmp_path / "absent.json"
    )
    assert_clean_failure(code, err)
    assert "does not exist" in err


@pytest.mark.parametrize(
    "payload",
    [
        "{definitely not json",
        json.dumps({"activity": {"a": {}}, "used": {"_:u": {}}}),
        json.dumps(
            {
                "activity": {"a": {}, "b": {}},
                "wasInformedBy": {
                    "_:1": {"prov:informed": "b", "prov:informant": "a"},
                    "_:2": {"prov:informed": "a", "prov:informant": "b"},
                },
            }
        ),
        json.dumps({"agent": {"someone": {}}}),
    ],
    ids=["not-json", "missing-endpoint", "cyclic", "no-activities"],
)
def test_malformed_prov_documents_fail_cleanly(tmp_path, payload):
    document = tmp_path / "doc.json"
    document.write_text(payload, encoding="utf8")
    code, _, err = run_cli("import", tmp_path / "store", document)
    assert_clean_failure(code, err)
    assert err.startswith("error:")


@pytest.mark.parametrize(
    "garbage",
    ["{not json at all", json.dumps({"entries": "wrong-shape"}),
     json.dumps([1, 2, 3])],
    ids=["invalid-json", "wrong-schema", "non-object"],
)
def test_corrupt_index_files_recover_without_tracebacks(
    populated_store, garbage
):
    # Derived data under index/ is rebuilt on demand: corruption must
    # neither crash nor poison the answers.
    index_dir = populated_store.index_dir
    (index_dir / "fingerprints.json").write_text(garbage, "utf8")
    (index_dir / "distances.json").write_text(garbage, "utf8")
    query_dir = index_dir / "query"
    query_dir.mkdir(exist_ok=True)
    for name in ("scripts.json", "postings.json"):
        (query_dir / name).write_text(garbage, "utf8")

    code, out, err = run_cli(
        "diff", populated_store.root, "fig2", "a", "b"
    )
    assert (code, err) == (0, "")
    assert "delta(a, b)" in out

    code, out, err = run_cli("query", populated_store.root, "fig2")
    assert (code, err) == (0, "")
    assert "matching pair" in out


def test_corrupt_run_xml_fails_cleanly(populated_store):
    run_path = populated_store.run_path("fig2", "b")
    run_path.write_text("<run name='b' spec='fig2'><nodes>", "utf8")
    code, _, err = run_cli(
        "diff", populated_store.root, "fig2", "a", "b"
    )
    assert_clean_failure(code, err)
    assert "malformed run XML" in err


def test_corrupt_spec_xml_fails_cleanly(populated_store):
    spec_path = populated_store.root / "specs" / "fig2.xml"
    spec_path.write_text("<specification", "utf8")
    code, _, err = run_cli(
        "query", populated_store.root, "fig2"
    )
    assert_clean_failure(code, err)
    assert "malformed specification XML" in err


def test_import_then_query_happy_path_in_subprocess(tmp_path):
    # The positive control for the suite: a foreign non-SP document
    # imports, a second import of its re-export lands beside it, and
    # the query engine answers over both.
    store = tmp_path / "store"
    code, out, err = run_cli(
        "import", store, GOLDEN / "non_sp_minor.json",
        "--name", "first", "--spec-name", "ext",
    )
    assert (code, err) == (0, ""), err
    assert "SP-ized" in out

    code, out, err = run_cli(
        "export", store, "ext", "first", "-o", tmp_path / "out.json"
    )
    assert code == 0
    code, out, err = run_cli(
        "import", store, tmp_path / "out.json", "--name", "second",
        "--json",
    )
    assert (code, err) == (0, ""), err
    payload = json.loads(out)
    assert payload["origin"] == "embedded-plan"
    assert payload["new_pairs"] == {"first|second": 0.0}

    code, out, err = run_cli("query", store, "ext", "--json")
    assert (code, err) == (0, ""), err
    assert json.loads(out)["total_matches"] == 1
