"""Interchange wired through store, corpus service, session and query.

Covers the acceptance path end-to-end: a checked-in non-series-parallel
PROV fixture is SP-ized, ingested via ``DiffService.add_prov_document``,
grown into a small corpus, and queried through the PR 2 query engine.
"""

import json
from pathlib import Path

import pytest

from repro.corpus.service import DiffService
from repro.errors import ReproError
from repro.interchange import export_run_json, import_document
from repro.pdiffview.session import PDiffViewSession
from repro.query.engine import QueryEngine
from repro.query.predicates import Q
from repro.workflow.execution import ExecutionParams, execute_workflow

GOLDEN = Path(__file__).parent / "golden"
SPARSE = ExecutionParams(prob_parallel=0.4)


def test_store_ingest_prov_persists_spec_and_run(tmp_path):
    store_root = tmp_path / "store"
    from repro.io.store import WorkflowStore

    store = WorkflowStore(store_root)
    result = store.ingest_prov(
        GOLDEN / "opm_pipeline.json", run_name="r1", spec_name="opm"
    )
    assert store.has_specification("opm")
    assert store.list_runs("opm") == ["r1"]
    reloaded = store.load_run(store.load_specification("opm"), "r1")
    assert reloaded.equivalent(result.run)


def test_non_sp_fixture_ingested_and_queryable_end_to_end(tmp_path):
    service = DiffService(tmp_path / "corpus")
    result, distances = service.add_prov_document(
        GOLDEN / "non_sp_minor.json", run_name="imported"
    )
    assert result.origin == "normalized"
    assert not result.report.was_series_parallel
    assert result.report.forced_serializations
    assert distances == {}  # first run of its specification

    # Grow the corpus with native runs of the derived specification:
    # the imported document now behaves like any other workflow.
    spec = result.spec
    for index, seed in enumerate((3, 8)):
        run = execute_workflow(
            spec, SPARSE, seed=seed, name=f"generated-{index}"
        )
        service.add_run(run)
    assert len(service.runs(spec.name)) == 3

    # Query engine over the imported corpus: indexed select agrees with
    # the brute-force scan, and predicates resolve over the imported
    # run's labels.
    engine = QueryEngine(service)
    selected = list(engine.select(spec.name))
    scanned = list(engine.scan(spec.name))
    assert [(d.pair, d.distance) for d in selected] == [
        (d.pair, d.distance) for d in scanned
    ]
    assert len(selected) == 3
    deletions = list(
        engine.select(spec.name, Q.op_kind("path-deletion"))
    )
    assert all(
        any(op.kind == "path-deletion" for op in doc.operations)
        for doc in deletions
    )
    # The imported run participates in at least one matching pair.
    assert any("imported" in doc.pair for doc in selected)


def test_session_import_export_prov_round_trip(tmp_path, fig2_spec):
    session = PDiffViewSession(tmp_path / "session")
    session.register_specification(fig2_spec)
    session.generate_run("fig2", "native", seed=11)

    text = session.export_prov("fig2", "native")
    result = session.import_prov(text, name="reimported")
    assert result.origin == "embedded-plan"
    assert set(session.runs("fig2")) == {"native", "reimported"}
    view = session.diff("fig2", "native", "reimported")
    assert view.diff.distance == 0.0

    # Exported text parses as PROV-JSON with the expected sections.
    document = json.loads(text)
    assert set(document) >= {
        "activity",
        "entity",
        "used",
        "wasGeneratedBy",
    }


def test_imported_runs_flow_into_fingerprints_and_caches(tmp_path):
    service = DiffService(tmp_path / "corpus")
    result, _ = service.add_prov_document(
        GOLDEN / "base.json", run_name="base"
    )
    service.add_prov_document(
        GOLDEN / "fork_twice.json", run_name="forked"
    )
    spec_name = result.spec.name
    fingerprints = service.fingerprints(spec_name)
    assert set(fingerprints) == {"base", "forked"}

    matrix = service.distance_matrix(spec_name)
    assert matrix[("base", "forked")] == 4.0

    # A brand-new service over the same store answers warm.
    reopened = DiffService(tmp_path / "corpus")
    assert reopened.distance_matrix(spec_name) == matrix
    assert reopened.computed_pairs == 0


def test_conflicting_spec_names_are_refused(tmp_path):
    service = DiffService(tmp_path / "corpus")
    service.add_prov_document(
        GOLDEN / "opm_pipeline.json", run_name="r1", spec_name="clash"
    )
    with pytest.raises(ReproError, match="different specification"):
        service.add_prov_document(
            GOLDEN / "non_sp_minor.json", run_name="r2", spec_name="clash"
        )


def test_exported_edit_script_document_is_valid_prov(fig2_r1, fig2_r2):
    from repro.core.api import diff_runs
    from repro.interchange import export_script_document, parse_prov_json

    result = diff_runs(fig2_r1, fig2_r2)
    document = export_script_document(
        result.script.operations,
        result.distance,
        "R1",
        "R2",
        spec_name="fig2",
    )
    doc = parse_prov_json(document)
    # One activity per operation, chained in order.
    assert len(doc.activities) == len(result.script.operations)
    chain = doc.relations_of("wasInformedBy")
    assert len(chain) == len(result.script.operations) - 1
    derivations = doc.relations_of("wasDerivedFrom")
    assert len(derivations) == 1
    assert derivations[0].attributes["repro:distance"] == result.distance


def test_import_document_round_trips_across_stores(tmp_path):
    # Export from one store, import into a fresh one: the embedded plan
    # carries everything across.
    first = DiffService(tmp_path / "one")
    result, _ = first.add_prov_document(
        GOLDEN / "loop_twice.json", run_name="origin"
    )
    text = export_run_json(result.run)

    second = DiffService(tmp_path / "two")
    moved, _ = second.add_prov_document(text, run_name="moved")
    assert moved.run.equivalent(result.run)
    assert second.runs(moved.spec.name) == ["moved"]


def test_qualified_activity_ids_survive_the_exact_round_trip():
    # A normalised import keeps qualified PROV ids (``ex:step``) as run
    # node ids; re-importing the export must strip exactly the writer's
    # ``run:`` prefix — not everything up to the last colon, which
    # would corrupt ``ex:step`` to ``step`` and collide it with
    # ``other:step``.
    doc = {
        "activity": {"ex:step": {}, "other:step": {}, "ex:merge": {}},
        "wasInformedBy": {
            "_:1": {
                "prov:informed": "ex:merge",
                "prov:informant": "ex:step",
            },
            "_:2": {
                "prov:informed": "ex:merge",
                "prov:informant": "other:step",
            },
        },
    }
    first = import_document(doc, run_name="q", spec_name="qualified")
    again = import_document(export_run_json(first.run))
    assert again.origin == "embedded-plan"
    assert first.run.equivalent(again.run)
    assert set(again.run.graph.nodes()) == set(first.run.graph.nodes())


def test_store_and_session_refuse_conflicting_spec_overwrite(tmp_path):
    diamond = {
        "activity": {"a": {}, "b": {}, "c": {}, "d": {}},
        "wasInformedBy": {
            "_:1": {"prov:informed": "b", "prov:informant": "a"},
            "_:2": {"prov:informed": "c", "prov:informant": "a"},
            "_:3": {"prov:informed": "d", "prov:informant": "b"},
            "_:4": {"prov:informed": "d", "prov:informant": "c"},
        },
    }
    chain = {
        "activity": {"x": {}, "y": {}},
        "wasInformedBy": {
            "_:1": {"prov:informed": "y", "prov:informant": "x"}
        },
    }
    session = PDiffViewSession(tmp_path / "s")
    session.import_prov(diamond, name="monday")
    with pytest.raises(ReproError, match="different specification"):
        session.import_prov(chain, name="tuesday")
    # The original spec and run are untouched.
    assert session.runs("imported") == ["monday"]
    assert session.run("imported", "monday").num_nodes == 4
    # Re-importing the *same* content under the name is fine.
    session.import_prov(diamond, name="wednesday")
    assert set(session.runs("imported")) == {"monday", "wednesday"}


def test_import_document_rejects_garbage_early():
    from repro.errors import InterchangeError

    with pytest.raises(InterchangeError):
        import_document("{broken json")
    with pytest.raises(InterchangeError):
        import_document({"activity": {"a": {}}, "used": {"_:u": {}}})
