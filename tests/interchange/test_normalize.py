"""Unit tests for SP-ization of foreign provenance graphs."""

import pytest

from repro.errors import InterchangeError
from repro.graphs.decomposition import is_series_parallel
from repro.interchange.normalize import normalize_document
from repro.interchange.prov_json import parse_prov_json


def informed(edges) -> dict:
    """A PROV document from explicit activity dependency edges."""
    activities = {}
    for a, b in edges:
        activities.setdefault(a, {})
        activities.setdefault(b, {})
    return {
        "activity": activities,
        "wasInformedBy": {
            f"_:{i}": {"prov:informed": b, "prov:informant": a}
            for i, (a, b) in enumerate(edges)
        },
    }


def normalize(edges, **kwargs):
    return normalize_document(
        parse_prov_json(informed(edges)), **kwargs
    )


def dependencies(run):
    """Transitive order relation over the run graph's nodes."""
    graph = run.graph
    pairs = set()
    for node in graph.nodes():
        for other in graph._reachable_from(node) - {node}:
            pairs.add((node, other))
    return pairs


def test_sp_document_kept_verbatim():
    result = normalize(
        [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")], name="diamond"
    )
    report = result.report
    assert report.was_series_parallel
    assert report.exact
    assert report.synthetic_source is None
    assert report.synthetic_sink is None
    assert result.run.num_nodes == 4
    assert result.run.num_edges == 4
    assert result.spec.name == "diamond"


def test_multiple_sources_and_sinks_get_synthetic_terminals():
    result = normalize([("a", "c"), ("b", "c"), ("c", "d"), ("c", "e")])
    report = result.report
    assert report.synthetic_source == "__source__"
    assert report.synthetic_sink == "__sink__"
    graph = result.run.graph
    assert graph.source() == "__source__"
    assert graph.sink() == "__sink__"
    # Original dependencies all survive.
    deps = dependencies(result.run)
    for pair in [("a", "c"), ("b", "c"), ("c", "d"), ("c", "e")]:
        assert pair in deps


def test_single_isolated_activity_is_wrapped():
    result = normalize_document(
        parse_prov_json({"activity": {"only": {}}})
    )
    graph = result.run.graph
    assert list(graph.nodes()) == ["__source__", "only", "__sink__"]
    assert result.report.synthetic_source == "__source__"


def test_non_sp_n_graph_serialises_exactly():
    # The forbidden minor: its order relation is already total, so
    # SP-ization needs no forced serialisations — just the chain.
    result = normalize(
        [("s", "v1"), ("s", "v2"), ("v1", "v2"), ("v1", "t"), ("v2", "t")]
    )
    report = result.report
    assert not report.was_series_parallel
    assert report.exact  # dependency relation preserved exactly
    assert report.forced_serializations == []
    assert [u for u, _, _ in result.run.graph.edges()] == ["s", "v1", "v2"]


#: A short parallel branch (u) beside the four-node forbidden minor
#: (w1, w2): non-SP overall, with (u, w2) incomparable but landing on
#: different longest-path layers — the forced-serialisation case.
NON_SP_WITH_INCOMPARABLE = [
    ("s", "u"),
    ("u", "t"),
    ("s", "w1"),
    ("s", "w2"),
    ("w1", "w2"),
    ("w1", "t"),
    ("w2", "t"),
]


def test_non_sp_with_incomparable_pairs_reports_forced_serialisations():
    result = normalize(NON_SP_WITH_INCOMPARABLE)
    report = result.report
    assert not report.was_series_parallel
    assert report.forced_serializations == [("u", "w2")]
    # Every original dependency survives; every forced pair is ordered.
    deps = dependencies(result.run)
    for pair in NON_SP_WITH_INCOMPARABLE:
        assert pair in deps
    for a, b in report.forced_serializations:
        assert (a, b) in deps
    # The result graph really is series-parallel and a valid run.
    assert is_series_parallel(result.run.graph)


def test_junctions_are_inserted_between_branching_layers():
    # Two parallel pairs in sequence force a junction.
    edges = [
        ("s", "a"),
        ("s", "b"),
        ("a", "c"),
        ("a", "d"),
        ("b", "c"),
        ("b", "d"),
        ("c", "t"),
        ("d", "t"),
        ("a", "t"),  # breaks series-parallelism
    ]
    result = normalize(edges)
    assert not result.report.was_series_parallel
    assert result.report.junctions
    for junction in result.report.junctions:
        assert junction in result.run.graph


def test_duplicate_labels_are_renamed_and_reported():
    doc = parse_prov_json(
        {
            "activity": {
                "x:align": {},
                "y:align": {},
                "z:merge": {},
            },
            "wasInformedBy": {
                "_:1": {
                    "prov:informed": "z:merge",
                    "prov:informant": "x:align",
                },
                "_:2": {
                    "prov:informed": "z:merge",
                    "prov:informant": "y:align",
                },
            },
        }
    )
    result = normalize_document(doc)
    assert result.report.renamed_labels == {"y:align": "align~2"}
    labels = set(result.run.graph.labels().values())
    assert {"align", "align~2", "merge"} <= labels


def test_cyclic_documents_are_rejected():
    with pytest.raises(InterchangeError, match="cyclic"):
        normalize([("a", "b"), ("b", "c"), ("c", "a")])


def test_report_round_trips_to_dict_and_summarises():
    result = normalize(NON_SP_WITH_INCOMPARABLE)
    payload = result.report.to_dict()
    assert payload["was_series_parallel"] is False
    assert payload["forced_serializations"]
    lines = result.report.summary_lines()
    assert any("forced serialisations" in line for line in lines)


def test_activity_named_like_synthetic_does_not_collide():
    result = normalize(
        [("__source__", "a"), ("b", "a"), ("a", "c"), ("a", "d")]
    )
    graph = result.run.graph
    # Two sources (__source__, b) demand a synthetic; it must not fuse
    # with the user's activity of the same name.
    assert result.report.synthetic_source == "__source__~2"
    assert "__source__" in graph
    assert "__source__~2" in graph
