"""Unit tests for the PROV-JSON/OPM document model and parser."""

import json

import pytest

from repro.errors import InterchangeError
from repro.interchange.prov_json import (
    ProvDocument,
    activity_label,
    document_to_json,
    document_to_mapping,
    load_prov_source,
    local_name,
    parse_prov_json,
)


def minimal_doc() -> dict:
    return {
        "activity": {"ex:a": {"prov:label": "align"}, "ex:b": {}},
        "entity": {"ex:d1": {}},
        "wasGeneratedBy": {
            "_:g1": {"prov:entity": "ex:d1", "prov:activity": "ex:a"}
        },
        "used": {
            "_:u1": {"prov:activity": "ex:b", "prov:entity": "ex:d1"}
        },
    }


def test_parse_prov_json_accepts_text_and_mapping():
    as_dict = parse_prov_json(minimal_doc())
    as_text = parse_prov_json(json.dumps(minimal_doc()))
    assert as_dict.activities == as_text.activities
    assert as_dict.dependency_pairs() == as_text.dependency_pairs()


def test_dependency_via_entity_join():
    doc = parse_prov_json(minimal_doc())
    assert doc.dependency_pairs() == [("ex:a", "ex:b")]


def test_dependency_via_was_informed_by():
    doc = parse_prov_json(
        {
            "activity": {"a": {}, "b": {}},
            "wasInformedBy": {
                "_:i1": {"prov:informed": "b", "prov:informant": "a"}
            },
        }
    )
    assert doc.dependency_pairs() == [("a", "b")]


def test_opm_dialect_sections_and_roles():
    doc = parse_prov_json(
        {
            "process": {"p1": {}, "p2": {}, "p3": {}},
            "artifact": {"art1": {}},
            "wasTriggeredBy": {
                "_:t1": {"effect": "p2", "cause": "p1"}
            },
            "wasGeneratedBy": {
                "_:g1": {"effect": "art1", "cause": "p2"}
            },
            "used": {"_:u1": {"effect": "p3", "cause": "art1"}},
        }
    )
    assert set(doc.activities) == {"p1", "p2", "p3"}
    assert "art1" in doc.entities
    assert doc.dependency_pairs() == [("p1", "p2"), ("p2", "p3")]


def test_dependency_pairs_dedupe_and_drop_self_loops():
    doc = parse_prov_json(
        {
            "activity": {"a": {}, "b": {}},
            "wasInformedBy": {
                "_:1": {"prov:informed": "b", "prov:informant": "a"},
                "_:2": {"prov:informed": "b", "prov:informant": "a"},
                "_:3": {"prov:informed": "a", "prov:informant": "a"},
            },
        }
    )
    assert doc.dependency_pairs() == [("a", "b")]


def test_referenced_but_undeclared_activities_are_known():
    doc = parse_prov_json(
        {
            "wasInformedBy": {
                "_:1": {"prov:informed": "late", "prov:informant": "early"}
            }
        }
    )
    assert doc.activity_ids() == ["early", "late"]


def test_activity_label_preference_order():
    doc = ProvDocument(
        activities={
            "ex:x": {"repro:label": "ours", "prov:label": "theirs"},
            "ex:y": {"prov:label": "theirs"},
            "ex:z": {},
            "ex:w": {"prov:label": {"$": "typed", "type": "xsd:string"}},
        }
    )
    assert activity_label(doc, "ex:x") == "ours"
    assert activity_label(doc, "ex:y") == "theirs"
    assert activity_label(doc, "ex:z") == "z"
    assert activity_label(doc, "ex:w") == "typed"
    assert local_name("no-prefix") == "no-prefix"


@pytest.mark.parametrize(
    "broken",
    [
        "{not json",
        "[]",
        '"just a string"',
        {"activity": []},
        {"activity": {"a": {}}, "used": {"_:u": {"prov:activity": "a"}}},
        {"activity": {"a": {}}, "used": "nope"},
        {},
        {"agent": {"who": {}}},
    ],
)
def test_malformed_documents_raise_interchange_error(broken):
    with pytest.raises(InterchangeError):
        parse_prov_json(broken)


def test_serialisation_is_deterministic_and_reparseable():
    doc = parse_prov_json(minimal_doc())
    text = document_to_json(doc)
    assert text == document_to_json(parse_prov_json(text))
    rebuilt = parse_prov_json(json.loads(text))
    assert rebuilt.dependency_pairs() == doc.dependency_pairs()
    mapping = document_to_mapping(doc)
    assert set(mapping) >= {"activity", "entity", "used"}


def test_load_prov_source_paths_and_errors(tmp_path):
    path = tmp_path / "doc.json"
    path.write_text(json.dumps(minimal_doc()), encoding="utf8")
    assert load_prov_source(path).dependency_pairs() == [("ex:a", "ex:b")]
    assert load_prov_source(str(path)).dependency_pairs() == [
        ("ex:a", "ex:b")
    ]
    with pytest.raises(InterchangeError):
        load_prov_source(tmp_path / "missing.json")
    with pytest.raises(InterchangeError):
        load_prov_source(str(tmp_path / "missing.json"))
