"""Golden-corpus regression suite for the interchange subsystem.

Six checked-in PROV-JSON fixtures under ``golden/`` — four exports of
Fig. 2 runs (embedded plan), one OPM-dialect pipeline, one
non-series-parallel document — with committed expectations for their
normalised runs and for the edit-script costs between the fixture
pairs that share a specification.  Any change to the importer, the
normaliser, the differ, or the export format that alters observable
behaviour shows up here as a diff against ``expected.json``.
"""

import json
from pathlib import Path

import pytest

from repro.corpus.service import DiffService
from repro.interchange import import_document
from repro.costs.standard import LengthCost, UnitCost

GOLDEN = Path(__file__).parent / "golden"
EXPECTED = json.loads((GOLDEN / "expected.json").read_text("utf8"))
COSTS = {"unit": UnitCost, "length": LengthCost}

_TOLERANCE = 1e-9


@pytest.mark.parametrize("name", sorted(EXPECTED["fixtures"]))
def test_fixture_normalises_as_committed(name):
    want = EXPECTED["fixtures"][name]
    result = import_document(
        GOLDEN / f"{name}.json", run_name=name, spec_name=want["spec"]
    )
    assert result.origin == want["origin"]
    assert result.run.num_nodes == want["nodes"]
    assert result.run.num_edges == want["edges"]
    assert (
        result.report.was_series_parallel == want["series_parallel"]
    )
    assert (
        len(result.report.forced_serializations)
        == want["forced_serializations"]
    )


@pytest.fixture(scope="module")
def golden_corpus(tmp_path_factory):
    """All embedded-plan fixtures ingested into one corpus store."""
    root = tmp_path_factory.mktemp("golden-corpus")
    service = DiffService(root)
    for name, want in sorted(EXPECTED["fixtures"].items()):
        if want["origin"] != "embedded-plan":
            continue
        result, _ = service.add_prov_document(
            GOLDEN / f"{name}.json", run_name=name
        )
        assert result.spec.name == want["spec"]
    return service


@pytest.mark.parametrize(
    "pair",
    EXPECTED["pairs"],
    ids=[f"{p['a']}-vs-{p['b']}-{p['cost']}" for p in EXPECTED["pairs"]],
)
def test_fixture_pair_costs_match_committed(golden_corpus, pair):
    spec_name = EXPECTED["fixtures"][pair["a"]]["spec"]
    record = golden_corpus.edit_script(
        spec_name, pair["a"], pair["b"], cost=COSTS[pair["cost"]]()
    )
    assert abs(record.distance - pair["distance"]) <= _TOLERANCE
    assert len(record.operations) == pair["operations"]


def test_non_sp_fixture_reports_the_expected_forced_pair():
    result = import_document(
        GOLDEN / "non_sp_minor.json", run_name="nsm"
    )
    assert result.report.forced_serializations == [
        ("stage", "analyze2")
    ]
