"""Property tests: the interchange layer's round-trip guarantees.

Two directions, per the subsystem's contract:

* ``import(export(run)) == run`` (modulo instance renaming — i.e. the
  paper's ``≡``) for arbitrary generated runs, forks and loops
  included, because exports embed their specification as a
  ``prov:Plan``;
* ``export(import(doc))`` *preserves the dependency relation* for
  arbitrary foreign PROV documents: every activity ordering implied by
  the source document still holds in the re-exported document, and for
  series-parallel inputs nothing else was added.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.fingerprint import run_fingerprint, spec_fingerprint
from repro.interchange import (
    export_run_document,
    export_run_json,
    import_document,
    parse_prov_json,
)
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import (
    random_prov_document,
    random_specification,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


@given(
    spec_seed=st.integers(min_value=0, max_value=60),
    run_seed=st.integers(min_value=0, max_value=2000),
)
@SETTINGS
def test_import_export_is_identity_up_to_renaming(spec_seed, run_seed):
    spec = random_specification(
        8 + spec_seed % 8,
        1.0,
        num_forks=spec_seed % 3,
        num_loops=spec_seed % 2,
        seed=spec_seed,
        name="prop",
    )
    run = execute_workflow(spec, PARAMS, seed=run_seed, name="original")
    text = export_run_json(run)

    result = import_document(text)
    assert result.origin == "embedded-plan"
    assert result.report.exact

    # ≡: equal up to instance renaming and P/F reordering …
    assert run.equivalent(result.run)
    # … and the content fingerprints (spec-scoped) agree, so the corpus
    # layer treats original and re-import as the same run.
    spec_digest = spec_fingerprint(spec)
    assert spec_fingerprint(result.spec) == spec_digest
    assert run_fingerprint(run, spec_digest) == run_fingerprint(
        result.run, spec_fingerprint(result.spec)
    )
    # Export is deterministic: same run, byte-identical document.
    assert export_run_json(run) == text


def activity_order(doc_mapping) -> set:
    """Transitive activity order relation of a PROV document."""
    doc = parse_prov_json(doc_mapping)
    succ = {}
    for a, b in doc.dependency_pairs():
        succ.setdefault(a, set()).add(b)
    order = set()

    def reach(start):
        seen = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in succ.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    for activity in doc.activity_ids():
        for other in reach(activity):
            order.add((activity, other))
    return order


@given(
    doc_seed=st.integers(min_value=0, max_value=2000),
    size=st.integers(min_value=1, max_value=10),
    density=st.sampled_from([0.15, 0.35, 0.6]),
    opm=st.booleans(),
)
@SETTINGS
def test_export_import_preserves_dependency_relation(
    doc_seed, size, density, opm
):
    doc = random_prov_document(
        size, density, seed=doc_seed, opm_dialect=opm
    )
    original_order = activity_order(doc)

    result = import_document(doc, run_name="ext", spec_name="ext")
    # Re-export *without* the plan so the second import exercises the
    # foreign-document path again, over the normalised activity ids.
    reexported = export_run_document(result.run, include_spec=False)
    roundtripped_order = activity_order(reexported)

    renames = {
        activity: f"run:{node}"
        for activity, node in result.activity_nodes.items()
    }
    for upstream, downstream in original_order:
        assert (
            renames[upstream],
            renames[downstream],
        ) in roundtripped_order

    # For already-SP documents the embedding is exact: no forced
    # serialisations, and the original activities gained no new
    # pairwise orderings.
    if result.report.was_series_parallel:
        assert result.report.exact
        original_ids = set(renames.values())
        for upstream, downstream in roundtripped_order:
            if upstream in original_ids and downstream in original_ids:
                assert (
                    _unrename(upstream, renames),
                    _unrename(downstream, renames),
                ) in original_order


def _unrename(renamed: str, renames: dict) -> str:
    for original, new in renames.items():
        if new == renamed:
            return original
    raise AssertionError(f"unknown renamed activity {renamed!r}")


@given(doc_seed=st.integers(min_value=0, max_value=500))
@SETTINGS
def test_second_import_of_reexport_is_equivalent(doc_seed):
    """import ∘ export is idempotent once a document has been embedded."""
    doc = random_prov_document(8, 0.4, seed=doc_seed)
    first = import_document(doc, run_name="ext", spec_name="ext")
    second = import_document(
        export_run_json(first.run), run_name="ext-again"
    )
    assert second.origin == "embedded-plan"
    assert first.run.equivalent(second.run)
    assert spec_fingerprint(first.spec) == spec_fingerprint(second.spec)
