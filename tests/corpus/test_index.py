"""The persistent fingerprint index: reuse, invalidation, memoisation."""

from repro.corpus.fingerprint import run_fingerprint
from repro.corpus.index import FingerprintIndex
from repro.workflow.execution import execute_workflow


class TestFingerprintIndex:
    def test_fingerprint_matches_direct_computation(self, pa_store):
        index = FingerprintIndex(pa_store)
        spec = pa_store.load_specification("PA")
        run = pa_store.load_run(spec, "r01")
        assert index.fingerprint(spec, "r01") == run_fingerprint(run)

    def test_entries_persist_across_instances(self, pa_store):
        spec = pa_store.load_specification("PA")
        first = FingerprintIndex(pa_store)
        digest = first.fingerprint(spec, "r01")
        first.flush()
        second = FingerprintIndex(pa_store)
        assert second.cached_entry_count("PA") == 1
        assert second.fingerprint(spec, "r01") == digest

    def test_persisted_entry_skips_the_parser(self, pa_store, monkeypatch):
        spec = pa_store.load_specification("PA")
        first = FingerprintIndex(pa_store)
        digest = first.fingerprint(spec, "r01")
        first.flush()

        def explode(*args, **kwargs):  # any XML parse fails the test
            raise AssertionError("run was re-parsed despite a valid index")

        second = FingerprintIndex(pa_store)
        monkeypatch.setattr(pa_store, "load_run", explode)
        assert second.fingerprint(spec, "r01") == digest

    def test_overwritten_run_is_reindexed(self, pa_store, varied_params):
        spec = pa_store.load_specification("PA")
        index = FingerprintIndex(pa_store)
        before = index.fingerprint(spec, "r01")
        replacement = execute_workflow(
            spec, varied_params, seed=77, name="r01"
        )
        pa_store.save_run(replacement)
        after = index.fingerprint(spec, "r01")
        assert after == run_fingerprint(replacement)
        assert after != before

    def test_load_run_memoises(self, pa_store):
        spec = pa_store.load_specification("PA")
        index = FingerprintIndex(pa_store)
        first = index.load_run(spec, "r02")
        assert index.load_run(spec, "r02") is first

    def test_fallback_loaded_runs_still_get_valid_stamps(self, pa_store):
        # A run only reachable via the literal-stem fallback (lost
        # .name sidecar) must still index with a freshness stamp, or it
        # would be re-parsed on every query.
        spec = pa_store.load_specification("PA")
        run = pa_store.load_run(spec, "r01")
        run.name = "r one/odd"
        pa_store.save_run(run)
        (sidecar,) = (pa_store.root / "runs" / "PA").glob("*.name")
        stem = sidecar.name[: -len(".name")]
        sidecar.unlink()

        index = FingerprintIndex(pa_store)
        digest = index.fingerprint(spec, stem)
        entry = index._entries["PA"]["runs"][stem]
        assert entry["fingerprint"] == digest
        assert "mtime_ns" in entry and "size" in entry

    def test_forget_drops_entry(self, pa_store):
        spec = pa_store.load_specification("PA")
        index = FingerprintIndex(pa_store)
        index.fingerprint(spec, "r01")
        assert index.cached_entry_count("PA") == 1
        index.forget("PA", "r01")
        assert index.cached_entry_count("PA") == 0
