"""Matrix analytics: medoid, outliers, k-NN, symmetric lookups."""

import pytest

from repro.corpus.analytics import (
    k_nearest,
    matrix_names,
    mean_distances,
    medoid,
    outliers,
    pair_distance,
)
from repro.errors import ReproError

# A hand-built symmetric matrix over four runs: "d" is far from all,
# "a"/"b" are close, "c" sits in between.
MATRIX = {
    ("a", "b"): 1.0,
    ("a", "c"): 2.0,
    ("a", "d"): 8.0,
    ("b", "c"): 2.0,
    ("b", "d"): 8.0,
    ("c", "d"): 9.0,
}


class TestLookups:
    def test_matrix_names(self):
        assert matrix_names(MATRIX) == ["a", "b", "c", "d"]

    def test_pair_distance_accepts_either_order(self):
        assert pair_distance(MATRIX, "a", "b") == 1.0
        assert pair_distance(MATRIX, "b", "a") == 1.0
        assert pair_distance(MATRIX, "a", "a") == 0.0

    def test_missing_pair_rejected(self):
        with pytest.raises(ReproError, match="no entry"):
            pair_distance(MATRIX, "a", "z")


class TestMeans:
    def test_mean_distances(self):
        means = mean_distances(MATRIX)
        assert means["a"] == pytest.approx((1.0 + 2.0 + 8.0) / 3)
        assert means["d"] == pytest.approx((8.0 + 8.0 + 9.0) / 3)

    def test_singleton_population(self):
        assert mean_distances(MATRIX, names=["a"]) == {"a": 0.0}

    def test_population_restriction(self):
        means = mean_distances(MATRIX, names=["a", "b"])
        assert means == {"a": 1.0, "b": 1.0}


class TestMedoid:
    def test_picks_minimal_mean(self):
        name, mean = medoid(MATRIX)
        means = mean_distances(MATRIX)
        assert means[name] == pytest.approx(min(means.values()))
        assert mean == pytest.approx(means[name])

    def test_tie_breaks_lexicographically(self):
        tied = {("x", "y"): 3.0}
        assert medoid(tied)[0] == "x"

    def test_empty_corpus_rejected(self):
        with pytest.raises(ReproError, match="empty corpus"):
            medoid({}, names=[])


class TestOutliers:
    def test_head_is_most_distant_run(self):
        ranked = outliers(MATRIX)
        assert ranked[0][0] == "d"
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)

    def test_top_truncates(self):
        assert outliers(MATRIX, top=1) == outliers(MATRIX)[:1]


class TestKNearest:
    def test_orders_ascending_and_excludes_self(self):
        neighbours = k_nearest(MATRIX, "a")
        assert [n for n, _ in neighbours] == ["b", "c", "d"]
        assert k_nearest(MATRIX, "a", k=1) == [("b", 1.0)]

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="not part of the matrix"):
            k_nearest(MATRIX, "z")
