"""Content-addressed fingerprints: canonical, order-independent, stable."""

import pytest

from repro.corpus.fingerprint import (
    cost_model_key,
    pair_key,
    run_fingerprint,
    spec_fingerprint,
)
from repro.costs.standard import (
    CallableCost,
    LabelWeightedCost,
    PowerCost,
    UnitCost,
)
from repro.graphs.flow_network import FlowNetwork
from repro.io.xml_io import run_from_xml, run_to_xml
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def relabelled_copy(spec, run, prefix="x"):
    """The same run with renamed instance ids and reversed edge order."""
    graph = FlowNetwork(name=run.graph.name)
    mapping = {node: f"{prefix}{node}" for node in run.graph.nodes()}
    for node in reversed(list(run.graph.nodes())):
        graph.add_node(mapping[node], run.graph.label(node))
    for u, v, _ in reversed(list(run.graph.edges())):
        graph.add_edge(mapping[u], mapping[v])
    return WorkflowRun(spec, graph, name=run.name)


class TestRunFingerprints:
    def test_equivalent_runs_share_a_fingerprint(self, fig2_spec, fig2_r1):
        permuted = relabelled_copy(fig2_spec, fig2_r1)
        assert fig2_r1.equivalent(permuted)
        assert run_fingerprint(fig2_r1) == run_fingerprint(permuted)

    def test_distinct_runs_differ(self, fig2_spec, fig2_r1, fig2_r2):
        assert not fig2_r1.equivalent(fig2_r2)
        assert run_fingerprint(fig2_r1) != run_fingerprint(fig2_r2)

    def test_stable_across_xml_roundtrip(self, fig2_spec, fig2_r1):
        restored = run_from_xml(run_to_xml(fig2_r1), fig2_spec)
        assert run_fingerprint(restored) == run_fingerprint(fig2_r1)

    def test_spec_digest_shortcut_matches(self, fig2_spec, fig2_r1):
        digest = spec_fingerprint(fig2_spec)
        assert run_fingerprint(fig2_r1, digest) == run_fingerprint(fig2_r1)


class TestSpecFingerprints:
    def test_independent_of_name_and_insertion_order(self):
        def build(name, node_order):
            graph = FlowNetwork(name=name)
            for node in node_order:
                graph.add_node(node)
            graph.add_edge("s", "a")
            graph.add_edge("s", "b")
            graph.add_edge("a", "t")
            graph.add_edge("b", "t")
            return WorkflowSpecification(graph, name=name)

        one = build("one", ["s", "a", "b", "t"])
        two = build("two", ["t", "b", "a", "s"])
        assert spec_fingerprint(one) == spec_fingerprint(two)

    def test_structure_changes_digest(self, fig2_spec):
        graph = FlowNetwork(name="chain")
        for node in "sat":
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("a", "t")
        chain = WorkflowSpecification(graph, name="chain")
        assert spec_fingerprint(chain) != spec_fingerprint(fig2_spec)


class TestCostModelKeys:
    def test_power_family_keys_include_epsilon(self):
        assert cost_model_key(PowerCost(0.5)) != cost_model_key(
            PowerCost(0.25)
        )
        # UnitCost is PowerCost(0): identical pricing, one cache key.
        assert cost_model_key(UnitCost()) == cost_model_key(PowerCost(0.0))

    def test_power_keys_keep_full_float_precision(self):
        # :g formatting would collide these two epsilons.
        assert cost_model_key(PowerCost(0.12345678)) != cost_model_key(
            PowerCost(0.12345679)
        )

    def test_label_weighted_keys_include_weights(self):
        a = LabelWeightedCost(UnitCost(), {("x", "y"): 2.0})
        b = LabelWeightedCost(UnitCost(), {("x", "y"): 3.0})
        assert cost_model_key(a) != cost_model_key(b)
        assert cost_model_key(a) == cost_model_key(
            LabelWeightedCost(UnitCost(), {("x", "y"): 2.0})
        )

    def test_callable_cost_is_uncacheable(self):
        model = CallableCost(lambda l, a, b: float(l), name="f")
        assert cost_model_key(model) is None

    def test_caching_is_opt_in_for_custom_models(self):
        # A parameterised subclass that does not override cache_key
        # must never be cached: equal names with different pricing
        # would poison the persistent cache.
        from repro.costs.base import CostModel

        class ThresholdCost(CostModel):
            def __init__(self, weight):
                self.weight = weight

            def path_cost(self, length, source_label, sink_label):
                return self.weight * length

        assert cost_model_key(ThresholdCost(1.0)) is None

    def test_label_weighted_over_uncacheable_base_is_uncacheable(self):
        base = CallableCost(lambda l, a, b: float(l), name="f")
        assert cost_model_key(LabelWeightedCost(base, {})) is None


class TestPairKeys:
    def test_symmetric(self):
        assert pair_key("aa", "bb", "UnitCost") == pair_key(
            "bb", "aa", "UnitCost"
        )

    def test_cost_model_separates_entries(self):
        assert pair_key("aa", "bb", "UnitCost") != pair_key(
            "aa", "bb", "LengthCost"
        )
