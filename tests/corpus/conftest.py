"""Shared fixtures for the corpus subsystem tests."""

from __future__ import annotations

import pytest

from repro.core import api as core_api
from repro.io.store import WorkflowStore
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def populate_store(root, n_runs: int) -> WorkflowStore:
    """A store holding the PA spec and ``n_runs`` varied runs r01..rNN."""
    store = WorkflowStore(root)
    spec = protein_annotation()
    store.save_specification(spec)
    for seed in range(1, n_runs + 1):
        run = execute_workflow(spec, VARIED, seed=seed, name=f"r{seed:02d}")
        store.save_run(run)
    return store


@pytest.fixture
def varied_params() -> ExecutionParams:
    return VARIED


@pytest.fixture
def pa_store(tmp_path) -> WorkflowStore:
    """A 5-run corpus (kept small; the 12-run corpus has its own test)."""
    return populate_store(tmp_path, 5)


@pytest.fixture
def corpus_factory(tmp_path):
    """Build an ``n``-run PA corpus store under a fresh directory."""

    def build(n_runs: int) -> WorkflowStore:
        return populate_store(tmp_path / f"corpus{n_runs}", n_runs)

    return build


@pytest.fixture
def dp_counter(monkeypatch):
    """Count every edit-distance DP construction, however reached.

    Wraps :class:`repro.core.api.EditDistanceComputation` (the module
    global both ``diff_runs`` and ``distance_only`` resolve at call
    time), so the counter observes *all* distance computations — the
    "zero diff_runs invocations" spy the acceptance criteria call for.
    """
    counter = {"count": 0}
    original = core_api.EditDistanceComputation

    class CountingComputation(original):
        def __init__(self, *args, **kwargs):
            counter["count"] += 1
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(
        core_api, "EditDistanceComputation", CountingComputation
    )
    return counter
