"""The two-tier distance cache: LRU behaviour, persistence, merging."""

import json

import pytest

from repro.corpus.cache import DistanceCache, LRUCache


class TestLRUCache:
    def test_get_and_put(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1.0)
        assert cache.get("a") == 1.0
        assert cache.get("missing") is None
        assert len(cache) == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0  # refresh "a"; "b" is now LRU
        cache.put("c", 3.0)
        assert cache.get("b") is None
        assert cache.get("a") == 1.0
        assert cache.get("c") == 3.0

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("a", 9.0)  # refresh, not insert
        cache.put("c", 3.0)
        assert cache.get("a") == 9.0
        assert cache.get("b") is None

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class TestDistanceCache:
    def test_memory_only_roundtrip(self):
        cache = DistanceCache(path=None)
        assert cache.get("k") is None
        cache.put("k", 4.0)
        assert cache.get("k") == 4.0
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1
        cache.flush()  # no-op without a path
        assert cache.stats.flushes == 0

    def test_zero_distance_is_a_hit(self):
        cache = DistanceCache(path=None)
        cache.put("k", 0.0)
        assert cache.get("k") == 0.0
        assert cache.stats.memory_hits == 1

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "distances.json"
        warm = DistanceCache(path=path)
        warm.put("k", 7.5)
        warm.flush()
        cold = DistanceCache(path=path)
        assert cold.get("k") == 7.5
        assert cold.stats.disk_hits == 1
        # The disk hit was promoted into the hot tier.
        assert cold.get("k") == 7.5
        assert cold.stats.memory_hits == 1

    def test_unflushed_writes_are_still_readable(self, tmp_path):
        cache = DistanceCache(path=tmp_path / "d.json", maxsize=1)
        cache.put("a", 1.0)
        cache.put("b", 2.0)  # evicts "a" from the hot tier pre-flush
        assert cache.get("a") == 1.0  # served from the dirty buffer

    def test_corrupt_disk_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "distances.json"
        path.write_text("{not json", encoding="utf8")
        cache = DistanceCache(path=path)
        assert cache.get("k") is None
        cache.put("k", 1.0)
        cache.flush()
        assert json.loads(path.read_text(encoding="utf8")) == {"k": 1.0}

    def test_flush_merges_concurrent_writers(self, tmp_path):
        path = tmp_path / "distances.json"
        one = DistanceCache(path=path)
        two = DistanceCache(path=path)
        one.put("a", 1.0)
        one.flush()
        two.put("b", 2.0)
        two.flush()
        merged = DistanceCache(path=path)
        assert merged.get("a") == 1.0
        assert merged.get("b") == 2.0

    def test_len_counts_all_tiers(self, tmp_path):
        path = tmp_path / "distances.json"
        first = DistanceCache(path=path)
        first.put("a", 1.0)
        first.flush()
        second = DistanceCache(path=path)
        second.put("b", 2.0)
        assert len(second) == 2

    def test_len_counts_memory_only_entries(self):
        cache = DistanceCache(path=None)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert len(cache) == 2
