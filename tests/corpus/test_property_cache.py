"""Property test: warm-cache distances ≡ fresh ``diff_runs`` distances.

The cache-correctness contract of the corpus subsystem: for any
generated corpus and any cacheable cost model, every distance the
service answers — cold, warm (memory tier), warm across a restart
(disk tier), and after an incremental ``add_run`` — equals a fresh
``diff_runs`` computation on the same stored runs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import diff_runs
from repro.corpus.service import DiffService
from repro.io.store import WorkflowStore
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_specification

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)

COSTS = [UnitCost(), LengthCost(), PowerCost(0.5)]


def fresh_matrix(store, spec, names, cost):
    """The seed algorithm: nested fresh diff_runs over the stored runs."""
    runs = {name: store.load_run(spec, name) for name in names}
    return {
        (a, b): diff_runs(
            runs[a], runs[b], cost=cost, with_script=False
        ).distance
        for i, a in enumerate(names)
        for b in names[i + 1 :]
    }


@given(
    spec_seed=st.integers(min_value=0, max_value=40),
    run_seed=st.integers(min_value=0, max_value=1000),
    cost_index=st.integers(min_value=0, max_value=len(COSTS) - 1),
)
@SETTINGS
def test_warm_cache_equals_fresh_computation(
    tmp_path_factory, spec_seed, run_seed, cost_index
):
    cost = COSTS[cost_index]
    root = tmp_path_factory.mktemp("corpus")
    store = WorkflowStore(root)
    spec = random_specification(
        10 + spec_seed % 6,
        1.0,
        num_forks=spec_seed % 3,
        num_loops=spec_seed % 2,
        seed=spec_seed,
        name="rand",
    )
    store.save_specification(spec)
    names = []
    for offset in range(3):
        name = f"run{offset}"
        run = execute_workflow(
            spec, PARAMS, seed=run_seed + offset, name=name
        )
        store.save_run(run)
        names.append(name)

    expected = fresh_matrix(store, spec, names, cost)

    service = DiffService(store)
    cold = service.distance_matrix("rand", cost=cost)
    warm = service.distance_matrix("rand", cost=cost)
    assert cold == expected
    assert warm == expected

    # Disk tier: a brand-new service answers identically.
    reopened = DiffService(store)
    assert reopened.distance_matrix("rand", cost=cost) == expected
    assert reopened.computed_pairs == 0

    # Incremental update: the grown corpus still matches from-scratch.
    extra = execute_workflow(
        spec, PARAMS, seed=run_seed + 7919, name="extra"
    )
    new_pairs = service.add_run(extra, cost=cost)
    assert set(new_pairs) == {(name, "extra") for name in names}
    grown_names = service.runs("rand")
    grown_expected = fresh_matrix(store, spec, grown_names, cost)
    assert service.distance_matrix("rand", cost=cost) == grown_expected
