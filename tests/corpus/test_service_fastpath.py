"""The DiffService fast paths: seeding, dedup, pruning, counters.

Regression coverage for the hot-path fixes and the bound/triangle
pruning layers:

* ≡-equivalent pairs (equal fingerprints) seed the distance cache
  under the canonical pair key — historically the short-circuit
  bypassed the cache, so the zero never persisted;
* uncacheable cost models dedupe a batch by the *unordered* name pair
  — ``(a, b)`` and ``(b, a)`` cost one DP, not two;
* pruned ``nearest_runs``/``medoid``/``outliers`` return answers
  bit-identical to the unpruned evaluation while the
  ``dp_skipped_by_bound``/``dp_pruned_by_triangle`` counters record
  the DPs they avoided.
"""

import pytest

from repro.corpus.fingerprint import cost_model_key, pair_key
from repro.corpus.service import DiffService
from repro.corpus.analytics import medoid as medoid_of
from repro.corpus.analytics import outliers as outliers_of
from repro.costs.standard import (
    CallableCost,
    LengthCost,
    UnitCost,
)
from repro.io.store import WorkflowStore
from repro.workflow.execution import execute_workflow
from repro.workflow.real_workflows import protein_annotation

from tests.corpus.conftest import VARIED, populate_store


def _with_duplicate(root, n_runs):
    """A PA corpus plus ``r01dup`` — byte-for-byte the same run as r01."""
    store = populate_store(root, n_runs)
    spec = protein_annotation()
    dup = execute_workflow(spec, VARIED, seed=1, name="r01dup")
    store.save_run(dup)
    return store


class TestEquivalentPairSeeding:
    def test_zero_persists_under_the_canonical_key(self, tmp_path):
        store = _with_duplicate(tmp_path, 2)
        service = DiffService(store)
        cost = UnitCost()
        assert service.distance("PA", "r01", "r01dup", cost) == 0.0
        fingerprints = service.fingerprints(
            "PA", ["r01", "r01dup"]
        )
        assert fingerprints["r01"] == fingerprints["r01dup"]
        key = pair_key(
            fingerprints["r01"],
            fingerprints["r01dup"],
            cost_model_key(cost),
        )
        # The short-circuit now seeds the cache: a direct key probe
        # (another process, warm analytics) finds the zero.
        assert service.cache.peek(key) == 0.0
        # And the seed survived the flush — a brand-new service over
        # the same store sees it without recomputing anything.
        reopened = DiffService(store)
        assert reopened.cache.get(key) == 0.0

    def test_seeding_counts_a_lookup(self, tmp_path):
        store = _with_duplicate(tmp_path, 2)
        service = DiffService(store, persistent=False)
        before = service.cache.stats.lookups
        service.distance("PA", "r01", "r01dup")
        assert service.cache.stats.lookups > before

    def test_no_dp_runs_for_equivalent_pairs(self, tmp_path, dp_counter):
        store = _with_duplicate(tmp_path, 2)
        service = DiffService(store, persistent=False)
        assert service.distance("PA", "r01", "r01dup") == 0.0
        assert dp_counter["count"] == 0


class TestUncacheableDedup:
    def test_symmetric_orderings_cost_one_dp(self, tmp_path, dp_counter):
        store = populate_store(tmp_path, 2)
        service = DiffService(store, persistent=False)
        cost = CallableCost(lambda l, a, b: float(l), name="custom")
        assert cost_model_key(cost) is None
        values = service.distances(
            "PA",
            [("r01", "r02"), ("r02", "r01")],
            cost,
        )
        assert dp_counter["count"] == 1
        assert values[("r01", "r02")] == values[("r02", "r01")]


class TestPrunedNearestRuns:
    def test_duplicate_anchor_prunes_everything(
        self, tmp_path, dp_counter
    ):
        # r01dup is ≡ r01, so the k=1 threshold is 0.0 before any DP;
        # every other candidate's packing bound exceeds it.
        store = _with_duplicate(tmp_path, 4)
        service = DiffService(store, persistent=False)
        result = service.nearest_runs(
            "PA", "r01", k=1, cost=LengthCost()
        )
        assert result == [("r01dup", 0.0)]
        assert dp_counter["count"] == 0
        assert service.dp_skipped_by_bound > 0

    def test_pruned_ranking_matches_oracle(self, tmp_path):
        store = _with_duplicate(tmp_path, 5)
        cost = LengthCost()
        # Oracle: unpruned (k=None prices every candidate).
        oracle_service = DiffService(store, persistent=False)
        oracle = oracle_service.nearest_runs(
            "PA", "r02", cost=cost
        )
        for k in (1, 2, 4):
            pruned_service = DiffService(store, persistent=False)
            # Warm a couple of pairs so the prune has a threshold.
            pruned_service.distances(
                "PA",
                [("r02", "r01"), ("r02", "r03")],
                cost,
            )
            pruned = pruned_service.nearest_runs(
                "PA", "r02", k=k, cost=cost
            )
            assert pruned == oracle[:k]  # bit-identical head

    def test_k_wider_than_corpus_is_unpruned(self, tmp_path):
        store = populate_store(tmp_path, 3)
        service = DiffService(store, persistent=False)
        full = service.nearest_runs("PA", "r01")
        wide = service.nearest_runs(
            "PA", "r01", k=10
        )
        assert wide == full
        assert service.dp_skipped_by_bound == 0


class TestPrunedAnalytics:
    def test_medoid_matches_full_matrix(self, tmp_path):
        store = _with_duplicate(tmp_path, 5)
        cost = UnitCost()
        oracle_service = DiffService(store, persistent=False)
        names = oracle_service.runs("PA")
        matrix = oracle_service.distance_matrix(
            "PA", cost=cost
        )
        expected = medoid_of(matrix, names=names)

        pruned_service = DiffService(store, persistent=False)
        # Warm one row so triangle pivots exist.
        pruned_service.nearest_runs(
            "PA", "r01", cost=cost
        )
        assert (
            pruned_service.medoid("PA", cost=cost)
            == expected
        )

    def test_outliers_match_full_matrix(self, tmp_path):
        store = _with_duplicate(tmp_path, 5)
        cost = UnitCost()
        oracle_service = DiffService(store, persistent=False)
        names = oracle_service.runs("PA")
        matrix = oracle_service.distance_matrix(
            "PA", cost=cost
        )
        for top in (1, 2, 3):
            expected = outliers_of(matrix, names=names, top=top)
            pruned_service = DiffService(store, persistent=False)
            pruned_service.nearest_runs(
                "PA", "r01", cost=cost
            )
            assert (
                pruned_service.outliers(
                    "PA", cost=cost, top=top
                )
                == expected
            )

    def test_unsupported_cost_falls_back(self, tmp_path):
        store = populate_store(tmp_path, 3)
        service = DiffService(store, persistent=False)
        cost = CallableCost(lambda l, a, b: float(l), name="custom")
        name, mean = service.medoid("PA", cost=cost)
        matrix = service.distances(
            "PA",
            [("r01", "r02"), ("r01", "r03"), ("r02", "r03")],
            cost,
        )
        assert (name, mean) == medoid_of(
            matrix, names=["r01", "r02", "r03"]
        )


class TestCounters:
    def test_counters_surface_in_stats(self, tmp_path):
        store = _with_duplicate(tmp_path, 4)
        service = DiffService(store, persistent=False)
        counters = service.stats_counters
        assert counters["dp_skipped_by_bound"] == 0
        assert counters["dp_pruned_by_triangle"] == 0
        service.nearest_runs(
            "PA", "r01", k=1, cost=LengthCost()
        )
        counters = service.stats_counters
        assert counters["dp_skipped_by_bound"] > 0

    def test_warm_path_reports_nonzero_skips(self, tmp_path):
        """The acceptance criterion: nonzero ``dp_skipped_by_bound``
        on a warm-cache path."""
        store = _with_duplicate(tmp_path, 5)
        cost = LengthCost()
        service = DiffService(store)
        # Warm a neighbourhood, then ask a pruned query.
        service.distances(
            "PA",
            [("r01", "r02"), ("r01", "r03")],
            cost,
        )
        service.nearest_runs(
            "PA", "r01", k=1, cost=cost
        )
        assert service.stats_counters["dp_skipped_by_bound"] > 0

    def test_lower_bounds_api_is_sound(self, tmp_path):
        store = populate_store(tmp_path, 3)
        service = DiffService(store, persistent=False)
        pairs = [("r01", "r02"), ("r01", "r03"), ("r02", "r03")]
        cost = LengthCost()
        bounds = service.lower_bounds(
            "PA", pairs, cost
        )
        exact = service.distances("PA", pairs, cost)
        for pair in pairs:
            assert bounds[pair] <= exact[pair]
