"""DiffService: caching, parallelism, incremental updates, delegation."""

import pytest

from repro.core.api import diff_runs
from repro.corpus.service import DiffService
from repro.costs.standard import CallableCost, LengthCost, UnitCost
from repro.errors import ReproError
from repro.graphs.flow_network import FlowNetwork
from repro.pdiffview.session import PDiffViewSession
from repro.workflow.execution import execute_workflow
from repro.workflow.real_workflows import protein_annotation
from repro.workflow.run import WorkflowRun


@pytest.fixture
def service(pa_store) -> DiffService:
    return DiffService(pa_store)


class TestDistanceMatrix:
    def test_matches_fresh_diff_runs(self, service, pa_store):
        spec = pa_store.load_specification("PA")
        matrix = service.distance_matrix("PA")
        for (a, b), value in matrix.items():
            fresh = diff_runs(
                pa_store.load_run(spec, a),
                pa_store.load_run(spec, b),
                with_script=False,
            ).distance
            assert value == pytest.approx(fresh)

    def test_key_order_matches_seed_implementation(self, service):
        names = service.runs("PA")
        expected = [
            (a, b) for i, a in enumerate(names) for b in names[i + 1 :]
        ]
        assert list(service.distance_matrix("PA")) == expected

    def test_warm_call_does_zero_dp_work(self, service, dp_counter):
        service.distance_matrix("PA")
        cold = dp_counter["count"]
        assert cold == 10  # C(5, 2) distinct pairs
        warm = service.distance_matrix("PA")
        assert dp_counter["count"] == cold
        assert warm == service.distance_matrix("PA")

    def test_twelve_run_corpus_warm_cache_is_dp_free(
        self, corpus_factory, dp_counter
    ):
        """The acceptance criterion: 12 runs, warm call, zero DPs."""
        store = corpus_factory(12)
        service = DiffService(store)
        cold = service.distance_matrix("PA")
        assert len(cold) == 66  # C(12, 2)
        computed = dp_counter["count"]
        warm = service.distance_matrix("PA")
        assert warm == cold
        assert dp_counter["count"] == computed  # zero new DP invocations
        # A fresh service over the same store stays warm via the disk tier.
        reopened = DiffService(store)
        assert reopened.distance_matrix("PA") == cold
        assert dp_counter["count"] == computed
        assert reopened.computed_pairs == 0

    def test_warm_across_service_instances(self, pa_store, dp_counter):
        first = DiffService(pa_store)
        matrix = first.distance_matrix("PA")
        cold = dp_counter["count"]
        second = DiffService(pa_store)  # fresh memory, disk tier warm
        assert second.distance_matrix("PA") == matrix
        assert dp_counter["count"] == cold
        assert second.computed_pairs == 0

    def test_parallel_matches_serial(self, pa_store):
        serial = DiffService(pa_store, max_workers=1, persistent=False)
        parallel = DiffService(pa_store, max_workers=4, persistent=False)
        assert serial.distance_matrix("PA") == parallel.distance_matrix(
            "PA"
        )

    def test_ephemeral_service_never_touches_disk(self, pa_store):
        service = DiffService(pa_store, persistent=False)
        service.distance_matrix("PA")
        service.nearest_runs("PA", "r01")
        assert not (pa_store.root / "index").exists()

    def test_distinct_cost_models_cached_separately(
        self, service, dp_counter
    ):
        service.distance_matrix("PA", cost=UnitCost())
        unit_only = dp_counter["count"]
        service.distance_matrix("PA", cost=LengthCost())
        assert dp_counter["count"] == 2 * unit_only
        service.distance_matrix("PA", cost=LengthCost())
        assert dp_counter["count"] == 2 * unit_only

    def test_uncacheable_cost_model_always_computes(
        self, service, dp_counter
    ):
        hops = CallableCost(lambda l, a, b: 1.0, name="hops")
        service.distance_matrix("PA", cost=hops)
        first = dp_counter["count"]
        assert first == 10
        service.distance_matrix("PA", cost=hops)
        assert dp_counter["count"] == 2 * first


class TestSinglePairQueries:
    def test_distance_roundtrip(self, service, pa_store):
        spec = pa_store.load_specification("PA")
        fresh = diff_runs(
            pa_store.load_run(spec, "r01"),
            pa_store.load_run(spec, "r02"),
            with_script=False,
        ).distance
        assert service.distance("PA", "r01", "r02") == pytest.approx(fresh)
        assert service.distance("PA", "r02", "r01") == pytest.approx(fresh)

    def test_self_distance_is_zero_without_dp(self, service, dp_counter):
        assert service.distance("PA", "r01", "r01") == 0.0
        assert dp_counter["count"] == 0

    def test_equivalent_runs_short_circuit(
        self, tmp_path, fig2_spec, fig2_r1, dp_counter
    ):
        service = DiffService(tmp_path / "store")
        service.store.save_specification(fig2_spec)
        # An instance-renamed copy of R1: equivalent, so distance 0
        # straight from the fingerprints — no DP at all.
        graph = FlowNetwork(name="twin")
        for node in fig2_r1.graph.nodes():
            graph.add_node(f"x{node}", fig2_r1.graph.label(node))
        for u, v, _ in fig2_r1.graph.edges():
            graph.add_edge(f"x{u}", f"x{v}")
        twin = WorkflowRun(fig2_spec, graph, name="twin")
        service.store.save_run(fig2_r1)
        service.store.save_run(twin)
        assert service.distance("fig2", "R1", "twin") == 0.0
        assert dp_counter["count"] == 0


class TestNearestRuns:
    def test_orders_by_ascending_distance(self, service):
        neighbours = service.nearest_runs("PA", "r01")
        assert len(neighbours) == 4
        distances = [d for _, d in neighbours]
        assert distances == sorted(distances)
        top2 = service.nearest_runs("PA", "r01", k=2)
        assert top2 == neighbours[:2]

    def test_computes_only_one_row(self, service, dp_counter):
        service.nearest_runs("PA", "r01")
        assert dp_counter["count"] <= 4  # never the full 10-pair matrix

    def test_unknown_run_rejected(self, service):
        with pytest.raises(ReproError, match="no stored run"):
            service.nearest_runs("PA", "ghost")


class TestAddRun:
    def test_add_computes_exactly_n_new_pairs(
        self, service, pa_store, dp_counter, varied_params
    ):
        service.distance_matrix("PA")
        cold = dp_counter["count"]
        spec = pa_store.load_specification("PA")
        new = execute_workflow(spec, varied_params, seed=99, name="r99")
        pairs = service.add_run(new)
        assert set(pairs) == {(f"r{i:02d}", "r99") for i in range(1, 6)}
        assert dp_counter["count"] == cold + 5  # exactly N new pairs
        # The grown matrix is fully warm: no further DP work.
        grown = service.distance_matrix("PA")
        assert len(grown) == 15
        assert dp_counter["count"] == cold + 5

    def test_add_persists_the_run(self, service, pa_store, varied_params):
        spec = pa_store.load_specification("PA")
        new = execute_workflow(spec, varied_params, seed=42, name="extra")
        service.add_run(new)
        assert "extra" in pa_store.list_runs("PA")
        restored = pa_store.load_run(spec, "extra")
        assert restored.equivalent(new)

    def test_add_rejects_conflicting_spec_with_same_name(
        self, service, varied_params
    ):
        from repro.workflow.specification import WorkflowSpecification

        stripped = WorkflowSpecification(
            protein_annotation().graph, forks=(), loops=(), name="PA"
        )
        run = execute_workflow(stripped, varied_params, seed=1, name="x")
        with pytest.raises(ReproError, match="different specification"):
            service.add_run(run)
        assert "x" not in service.runs("PA")

    def test_add_into_empty_store_persists_the_spec(
        self, tmp_path, varied_params
    ):
        # Incrementally built corpora must be readable by other
        # processes: the first add_run stores the specification too.
        service = DiffService(tmp_path / "store")
        spec = protein_annotation()
        for seed in (1, 2):
            run = execute_workflow(
                spec, varied_params, seed=seed, name=f"r{seed}"
            )
            service.add_run(run)
        reopened = DiffService(tmp_path / "store")
        assert len(reopened.distance_matrix("PA")) == 1
        assert reopened.computed_pairs == 0  # cache carried over too


class TestAnalyticsQueries:
    def test_medoid_minimises_mean_distance(self, service):
        from repro.corpus.analytics import mean_distances

        name, mean = service.medoid("PA")
        matrix = service.distance_matrix("PA")
        means = mean_distances(matrix, names=service.runs("PA"))
        assert mean == pytest.approx(min(means.values()))
        assert means[name] == pytest.approx(mean)

    def test_outliers_rank_descending(self, service):
        ranked = service.outliers("PA")
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)
        assert service.outliers("PA", top=2) == ranked[:2]

    def test_stats_expose_counters(self, service):
        service.distance_matrix("PA")
        assert service.stats["computed_pairs"] == 10
        service.distance_matrix("PA")
        assert service.stats["memory_hits"] >= 10


class TestSessionDelegation:
    def test_session_matrix_identical_to_seed_algorithm(
        self, tmp_path, varied_params
    ):
        session = PDiffViewSession(tmp_path)
        session.register_specification(protein_annotation())
        for name, seed in (("a", 1), ("b", 2), ("c", 3), ("d", 4)):
            session.generate_run("PA", name, varied_params, seed=seed)
        matrix = session.distance_matrix("PA")

        # The seed implementation, verbatim: a sequential nested loop of
        # fresh diff_runs calls over the stored runs.
        names = session.runs("PA")
        runs = {name: session.run("PA", name) for name in names}
        expected = {}
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                expected[(a, b)] = diff_runs(
                    runs[a], runs[b], cost=UnitCost(), with_script=False
                ).distance
        assert matrix == expected

    def test_reregistered_spec_invalidates_fingerprints(
        self, tmp_path, varied_params
    ):
        # Re-registering a structurally different spec under the same
        # name must not serve runs or fingerprints minted under the
        # old content.
        from repro.workflow.specification import WorkflowSpecification

        session = PDiffViewSession(tmp_path)
        base = protein_annotation()
        session.register_specification(base)
        session.generate_run("PA", "a", varied_params, seed=1)
        session.generate_run("PA", "b", varied_params, seed=2)
        old_matrix = session.distance_matrix("PA")
        assert len(old_matrix) == 1

        # Same name, different annotation families (no forks/loops).
        stripped = WorkflowSpecification(
            base.graph, forks=(), loops=(), name="PA"
        )
        session.register_specification(stripped)
        session.generate_run("PA", "a", seed=3)
        session.generate_run("PA", "b", seed=4)
        matrix = session.distance_matrix("PA")
        fresh = diff_runs(
            session.run("PA", "a"),
            session.run("PA", "b"),
            with_script=False,
        ).distance
        assert matrix[("a", "b")] == pytest.approx(fresh)

    def test_session_sees_runs_saved_after_first_query(
        self, tmp_path, varied_params
    ):
        session = PDiffViewSession(tmp_path)
        session.register_specification(protein_annotation())
        session.generate_run("PA", "a", varied_params, seed=1)
        session.generate_run("PA", "b", varied_params, seed=2)
        assert len(session.distance_matrix("PA")) == 1
        session.generate_run("PA", "c", varied_params, seed=3)
        assert len(session.distance_matrix("PA")) == 3

    def test_session_exposes_nearest_runs(self, tmp_path, varied_params):
        session = PDiffViewSession(tmp_path)
        session.register_specification(protein_annotation())
        for name, seed in (("a", 1), ("b", 2), ("c", 3)):
            session.generate_run("PA", name, varied_params, seed=seed)
        neighbours = session.nearest_runs("PA", "a")
        assert len(neighbours) == 2
        matrix = session.distance_matrix("PA")
        for other, distance in neighbours:
            key = ("a", other) if ("a", other) in matrix else (other, "a")
            assert matrix[key] == pytest.approx(distance)
