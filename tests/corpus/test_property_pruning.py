"""Property: pruned queries are bit-identical to the unpruned oracle.

For random corpora, random warm subsets, every backend, and every
bound-supporting cost model, the pruned ``nearest_runs`` head and the
pruned ``medoid``/``outliers`` answers must equal — ``==`` on floats —
what a cold, unpruned evaluation computes.  Pruning may only skip work
whose absence is unobservable in the results.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends.base import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.corpus.analytics import medoid as medoid_of
from repro.corpus.analytics import outliers as outliers_of
from repro.corpus.service import DiffService
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.io.store import WorkflowStore
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_specification

SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)

COSTS = [UnitCost(), LengthCost(), PowerCost(0.5)]

BACKENDS = [
    lambda: SerialBackend(),
    lambda: ThreadBackend(2),
    lambda: ProcessBackend(2),
]


def build_corpus(root, spec_seed, run_seed, n_runs):
    store = WorkflowStore(root)
    spec = random_specification(
        10 + spec_seed % 6,
        1.0,
        num_forks=spec_seed % 3,
        num_loops=spec_seed % 2,
        seed=spec_seed,
        name="rand",
    )
    store.save_specification(spec)
    for offset in range(n_runs):
        store.save_run(
            execute_workflow(
                spec, PARAMS, seed=run_seed + offset,
                name=f"run{offset}",
            )
        )
    return store


@given(
    spec_seed=st.integers(min_value=0, max_value=40),
    run_seed=st.integers(min_value=0, max_value=1000),
    cost_index=st.integers(min_value=0, max_value=len(COSTS) - 1),
    backend_index=st.integers(min_value=0, max_value=len(BACKENDS) - 1),
    k=st.integers(min_value=1, max_value=3),
    warm=st.integers(min_value=0, max_value=3),
)
@SETTINGS
def test_pruned_queries_match_unpruned_oracle(
    tmp_path_factory, spec_seed, run_seed, cost_index, backend_index,
    k, warm,
):
    cost = COSTS[cost_index]
    root = tmp_path_factory.mktemp("pruned-eq")
    store = build_corpus(root, spec_seed, run_seed, n_runs=5)

    # The oracle: a cold serial service, no pruning anywhere.
    oracle = DiffService(store, persistent=False)
    names = oracle.runs("rand")
    anchor = names[0]
    matrix = oracle.distance_matrix("rand", cost=cost)
    full_ranking = oracle.nearest_runs("rand", anchor, cost=cost)
    expected_medoid = medoid_of(matrix, names=names)
    expected_outliers = outliers_of(matrix, names=names, top=k)

    # The candidate: warmed with `warm` anchor pairs, then pruned.
    service = DiffService(
        store, persistent=False, backend=BACKENDS[backend_index]()
    )
    others = [name for name in names if name != anchor]
    if warm:
        service.distances(
            "rand",
            [(anchor, other) for other in others[:warm]],
            cost,
        )
    assert (
        service.nearest_runs("rand", anchor, k=k, cost=cost)
        == full_ranking[:k]
    )
    assert service.medoid("rand", cost=cost) == expected_medoid
    assert (
        service.outliers("rand", cost=cost, top=k)
        == expected_outliers
    )
