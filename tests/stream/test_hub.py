"""StreamHub protocol semantics: sequencing, resume, close, analytics.

The contract under test: contiguous sequence numbers, idempotent
replay, resume-by-``run_open``, nothing visible before ``run_close``,
and a failed close that is cleanly retryable.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ConflictError,
    NotFoundError,
    StreamProtocolError,
)
from repro.interchange.prov_json import parse_prov_json
from repro.stream.events import (
    ActivityEvent,
    EdgeEvent,
    RunClose,
    RunOpen,
    events_from_document,
)
from repro.workflow.generators import random_prov_document


def _small_stream(session, spec="trace", run="r1", **open_kwargs):
    """open + 3 activities + 2 edges + close, contiguous seqs."""
    return [
        RunOpen(
            session=session, spec_name=spec, run_name=run, **open_kwargs
        ),
        ActivityEvent(session=session, seq=2, node="ex:a", label="a"),
        ActivityEvent(session=session, seq=3, node="ex:b", label="b"),
        ActivityEvent(session=session, seq=4, node="ex:c", label="c"),
        EdgeEvent(session=session, seq=5, src="ex:a", dst="ex:b"),
        EdgeEvent(session=session, seq=6, src="ex:a", dst="ex:c"),
        RunClose(session=session, seq=7),
    ]


# -- sequencing ---------------------------------------------------------
def test_whole_stream_in_one_batch_closes_the_run(empty_ws):
    hub = empty_ws.stream_hub
    ack = hub.apply_batch(_small_stream("s1"))
    assert ack.status == "closed"
    assert ack.acked_seq == 7
    assert ack.result is not None
    assert ack.result.origin == "stream"
    assert "trace" in empty_ws.specifications()
    assert "r1" in empty_ws.runs(spec="trace")
    summary = hub.summary()
    assert summary.open_sessions == 0
    assert summary.sessions_opened == 1
    assert summary.runs_closed == 1
    assert summary.events_ingested == 7


def test_out_of_order_seq_is_rejected_and_does_not_advance(empty_ws):
    hub = empty_ws.stream_hub
    events = _small_stream("s1")
    hub.apply(events[0])
    with pytest.raises(StreamProtocolError, match="expected 2"):
        hub.apply(events[2])  # seq 3 skips ahead
    assert hub.summary().rejected_frames == 1
    # seq 2 is still the expected next frame.
    ack = hub.apply(events[1])
    assert ack.acked_seq == 2


def test_duplicate_frames_are_acknowledged_idempotently(empty_ws):
    hub = empty_ws.stream_hub
    events = _small_stream("s1")
    hub.apply_batch(events[:3])
    replay = hub.apply(events[2])  # seq 3, already applied
    assert replay.duplicates == 1
    assert replay.acked_seq == 3
    assert replay.status == "open"
    assert hub.summary().duplicates == 1
    # The duplicate did not double-ingest the activity.
    assert replay.live.activities == 2


def test_batch_must_address_one_session(empty_ws):
    hub = empty_ws.stream_hub
    with pytest.raises(StreamProtocolError, match="one session"):
        hub.apply_batch(
            [
                RunOpen(session="s1", spec_name="t", run_name="r"),
                RunOpen(session="s2", spec_name="t", run_name="r"),
            ]
        )
    with pytest.raises(StreamProtocolError, match="empty"):
        hub.apply_batch([])


def test_event_without_open_session_is_rejected(empty_ws):
    with pytest.raises(StreamProtocolError, match="run_open first"):
        empty_ws.stream_hub.apply(
            ActivityEvent(session="ghost", seq=2, node="ex:a")
        )


def test_failed_batch_keeps_the_applied_prefix(empty_ws):
    hub = empty_ws.stream_hub
    events = _small_stream("s1")
    bad = events[:3] + [
        ActivityEvent(session="s1", seq=9, node="ex:z")
    ]
    with pytest.raises(StreamProtocolError, match="expected 4"):
        hub.apply_batch(bad)
    # The prefix (open + 2 activities) survived: resume from seq 4.
    ack = hub.apply_batch(events[3:])
    assert ack.status == "closed"
    assert ack.acked_seq == 7


# -- resume -------------------------------------------------------------
def test_run_open_replay_resumes_a_live_session(empty_ws):
    hub = empty_ws.stream_hub
    events = _small_stream("s1")
    hub.apply_batch(events[:4])
    # A reconnecting client replays run_open plus its unacked tail.
    ack = hub.apply_batch([events[0]] + events[2:5])
    assert ack.resumed is True
    assert ack.duplicates == 2  # seqs 3 and 4 replayed
    assert ack.acked_seq == 5
    assert hub.summary().resumed == 1


def test_run_open_replay_with_different_payload_conflicts(empty_ws):
    hub = empty_ws.stream_hub
    hub.apply(RunOpen(session="s1", spec_name="t", run_name="r"))
    with pytest.raises(ConflictError, match="different run_open"):
        hub.apply(
            RunOpen(session="s1", spec_name="t", run_name="other")
        )


def test_closed_session_replays_its_final_ack(empty_ws):
    hub = empty_ws.stream_hub
    events = _small_stream("s1")
    final = hub.apply_batch(events)
    # Replaying the close (e.g. the final ack was lost) returns the
    # cached result instead of re-ingesting.
    replay = hub.apply(events[-1])
    assert replay.status == "closed"
    assert replay.duplicates == 1
    assert replay.result is not None
    assert replay.result.to_dict() == final.result.to_dict()
    # Replaying the identical run_open is equally idempotent.
    reopen = hub.apply(events[0])
    assert reopen.status == "closed"
    assert reopen.resumed is True
    # But the session id cannot be reused for a different run...
    with pytest.raises(ConflictError, match="already used"):
        hub.apply(
            RunOpen(session="s1", spec_name="t", run_name="other")
        )
    # ...and frames beyond the final seq have nowhere to go.
    with pytest.raises(StreamProtocolError, match="closed"):
        hub.apply(ActivityEvent(session="s1", seq=8, node="ex:z"))


# -- visibility ---------------------------------------------------------
def test_half_ingested_run_is_invisible_until_close(empty_ws):
    hub = empty_ws.stream_hub
    events = _small_stream("s1")
    hub.apply_batch(events[:-1])  # everything but run_close
    assert empty_ws.specifications() == []
    assert hub.summary().open_sessions == 1
    hub.apply(events[-1])
    assert "trace" in empty_ws.specifications()
    assert empty_ws.runs(spec="trace") == ["r1"]


def test_failed_close_is_retryable_and_leaves_no_trace(corpus_ws, spec_name):
    hub = corpus_ws.stream_hub
    runs_before = corpus_ws.runs(spec=spec_name)
    # A derive-mode stream aimed at the registered spec name: its
    # derived specification fingerprint cannot match, so add_run
    # conflicts at close.
    events = _small_stream(
        "bad-close", spec=spec_name, run="hub-x1", mode="derive"
    )
    hub.apply_batch(events[:-1])
    with pytest.raises(ConflictError):
        hub.apply(events[-1])
    # The close failed cleanly: nothing entered the corpus, the
    # session is still open at the same seq, and the close can be
    # retried (failing the same way, not with a sequence error).
    assert corpus_ws.runs(spec=spec_name) == runs_before
    assert hub.summary().open_sessions == 1
    assert hub.summary().runs_closed == 0
    with pytest.raises(ConflictError):
        hub.apply(events[-1])


# -- modes and conflicts at open ----------------------------------------
def test_auto_mode_resolves_by_spec_registration(corpus_ws, empty_ws, spec_name):
    ack = corpus_ws.stream_hub.apply(
        RunOpen(session="m1", spec_name=spec_name, run_name="hub-m1")
    )
    assert ack.live.mode == "validated"
    ack = empty_ws.stream_hub.apply(
        RunOpen(session="m2", spec_name="nope", run_name="r")
    )
    assert ack.live.mode == "derive"


def test_validated_mode_requires_a_registered_spec(empty_ws):
    with pytest.raises(NotFoundError, match="no stored specification"):
        empty_ws.stream_hub.apply(
            RunOpen(
                session="m3",
                spec_name="nope",
                run_name="r",
                mode="validated",
            )
        )


def test_run_name_collision_is_refused_at_open(corpus_ws, spec_name):
    with pytest.raises(ConflictError, match="already exists"):
        corpus_ws.stream_hub.apply(
            RunOpen(session="m4", spec_name=spec_name, run_name="r01")
        )


# -- online analytics ---------------------------------------------------
def test_live_bounds_flag_a_diverging_run_before_close(corpus_ws, spec_name):
    hub = corpus_ws.stream_hub
    flags_before = hub.summary().flagged
    hub.apply(
        RunOpen(
            session="div1",
            spec_name=spec_name,
            run_name="hub-div1",
            threshold=1.5,
        )
    )
    # Stream activities whose labels no corpus run has ever executed:
    # every one raises the label-surplus bound to *all* corpus runs.
    acks = [
        hub.apply(
            ActivityEvent(
                session="div1",
                seq=seq,
                node=f"ex:alien{seq}",
                label="alien",
            )
        )
        for seq in (2, 3, 4)
    ]
    assert acks[0].live.flagged is False
    assert acks[-1].live.flagged is True
    assert acks[-1].live.flagged_at_seq is not None
    assert acks[-1].live.flagged_at_seq <= 4  # before any run_close
    assert acks[-1].live.nearest_run is not None
    assert acks[-1].live.nearest_bound > 1.5
    assert hub.summary().flagged == flags_before + 1


def test_live_view_lists_open_sessions_with_bounds(corpus_ws, spec_name):
    hub = corpus_ws.stream_hub
    text = random_prov_document(
        num_activities=6, edge_probability=0.4, seed=3
    )
    doc = parse_prov_json(text)
    events = events_from_document(
        doc, "live1", "foreign", "hub-live1", mode="derive"
    )
    hub.apply_batch(events[:-1])
    statuses = {s.session: s for s in hub.live()}
    assert "live1" in statuses
    status = statuses["live1"]
    assert status.mode == "derive"
    assert status.activities == 6
    assert status.sp_report  # partial SP-ization report is live
    assert "was_series_parallel" in status.sp_report
    # Foreign spec: no corpus view, bounds disarmed but well-formed.
    assert status.nearest_run is None
    assert status.outlier_score == 0.0


def test_summary_counters_agree_with_metrics(empty_ws):
    hub = empty_ws.stream_hub
    hub.apply_batch(_small_stream("s1"))
    with pytest.raises(StreamProtocolError):
        hub.apply(ActivityEvent(session="ghost", seq=2, node="ex:a"))
    summary = hub.summary()
    snapshot = empty_ws.metrics.snapshot()

    def total(name):
        return sum(
            sample["value"]
            for sample in snapshot[name]["samples"]
        )

    assert total("stream_sessions_opened_total") == (
        summary.sessions_opened
    )
    assert total("stream_runs_closed_total") == summary.runs_closed
    assert total("stream_events_total") == summary.events_ingested
    assert total("stream_rejected_frames_total") == (
        summary.rejected_frames
    )
    assert total("stream_open_sessions") == summary.open_sessions
