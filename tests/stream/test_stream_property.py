"""The streaming bit-identity property.

Event-streamed ingestion must be indistinguishable from whole-document
import: same normalised run (node-for-node, edge-for-edge), same
derived specification, same forced-serialisation report, same pairwise
corpus distances.  Exercised over random foreign documents (routinely
non-series-parallel, with fan-outs and fan-ins) via Hypothesis, and
over executed runs of a real specification (forks and loops) in
validated mode.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ReproConfig
from repro.corpus.fingerprint import run_fingerprint, spec_fingerprint
from repro.interchange.prov_json import activity_label, parse_prov_json
from repro.stream.events import events_from_document
from repro.workflow.execution import execute_workflow
from repro.workflow.generators import random_prov_document
from repro.workspace import Workspace

from _fixture import SPEC_NAME, VARIED, build_corpus  # noqa: E402

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_dirs = itertools.count(1)


def _fresh_ws(tmp_path_factory) -> Workspace:
    return Workspace(
        tmp_path_factory.mktemp(f"prop-ws{next(_dirs)}"),
        ReproConfig(backend="serial"),
    )


def _assert_bit_identical(run_a, run_b):
    """Node-for-node, edge-for-edge, label-for-label equality."""
    assert list(run_a.graph.nodes()) == list(run_b.graph.nodes())
    assert run_a.graph.labels() == run_b.graph.labels()
    assert list(run_a.graph.edges()) == list(run_b.graph.edges())
    assert run_fingerprint(run_a) == run_fingerprint(run_b)


@SETTINGS
@given(
    num_activities=st.integers(min_value=2, max_value=14),
    edge_probability=st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_streamed_run_is_bit_identical_to_whole_import(
    tmp_path_factory, num_activities, edge_probability, seed
):
    text = random_prov_document(
        num_activities=num_activities,
        edge_probability=edge_probability,
        seed=seed,
    )
    doc = parse_prov_json(text)

    ws_stream = _fresh_ws(tmp_path_factory)
    with ws_stream.stream("S", "r", batch_size=3) as stream:
        for node in doc.activity_ids():
            stream.activity(node, activity_label(doc, node))
        for src, dst in doc.dependency_pairs():
            stream.edge(src, dst)
        ack = stream.close_run()

    ws_whole = _fresh_ws(tmp_path_factory)
    summary = ws_whole.import_prov(text, name="r", spec_name="S")

    run_a = ws_stream.run("r", spec="S")
    run_b = ws_whole.run("r", spec="S")
    _assert_bit_identical(run_a, run_b)
    assert spec_fingerprint(
        ws_stream.specification("S")
    ) == spec_fingerprint(ws_whole.specification("S"))
    assert ack.result.report == summary.report.to_dict()
    assert ack.result.nodes == run_b.graph.num_nodes
    assert ack.result.edges == run_b.graph.num_edges


@SETTINGS
@given(
    num_activities=st.integers(min_value=2, max_value=10),
    edge_probability=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_streamed_distances_match_whole_import_distances(
    tmp_path_factory, num_activities, edge_probability, seed
):
    """Derive-mode close prices the newcomer exactly like import_prov."""
    text = random_prov_document(
        num_activities=num_activities,
        edge_probability=edge_probability,
        seed=seed,
    )
    doc = parse_prov_json(text)

    ws_stream = _fresh_ws(tmp_path_factory)
    ws_stream.import_prov(text, name="r1", spec_name="S")
    events = events_from_document(
        doc, "prop-d", "S", "r2", mode="derive"
    )
    ack = ws_stream.stream_hub.apply_batch(events)

    ws_whole = _fresh_ws(tmp_path_factory)
    ws_whole.import_prov(text, name="r1", spec_name="S")
    _, distances = ws_whole.import_prov(
        text, name="r2", spec_name="S", diff=True
    )

    assert ack.result.new_pairs == dict(distances)
    _assert_bit_identical(
        ws_stream.run("r2", spec="S"), ws_whole.run("r2", spec="S")
    )


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_validated_stream_prices_forks_and_loops_identically(
    corpus_root, tmp_path_factory, seed
):
    """Streaming an executed run (forks, loops) in validated mode yields
    the same corpus distances as adding the run directly."""
    mirror_root = tmp_path_factory.mktemp("stream-mirror")
    ws_stream = Workspace(corpus_root, ReproConfig(backend="serial"))
    ws_direct = build_corpus(mirror_root)

    # Keep the two corpora in lock-step across the parametrized seeds:
    # earlier seeds' runs are already in both stores (same names, same
    # fingerprints), so the distance sets stay comparable.
    for prior in (11, 12, 13):
        if prior == seed:
            break
        name = f"pr{prior}"
        if name not in ws_direct.runs(spec=SPEC_NAME):
            run = execute_workflow(
                ws_direct.specification(SPEC_NAME),
                VARIED,
                seed=prior,
                name=name,
            )
            ws_direct.service.add_run(
                run, cost=ws_direct.config.cost
            )

    name = f"pr{seed}"
    run = execute_workflow(
        ws_direct.specification(SPEC_NAME), VARIED, seed=seed, name=name
    )

    with ws_stream.stream(SPEC_NAME, name) as stream:
        labels = run.graph.labels()
        for node in run.graph.nodes():
            stream.activity(str(node), labels[node])
        for src, dst, _key in run.graph.edges():
            stream.edge(str(src), str(dst))
        ack = stream.close_run()
    assert ack.status == "closed"
    assert ack.result.run_name == name

    direct_distances = ws_direct.service.add_run(
        run, cost=ws_direct.config.cost
    )

    assert ack.result.new_pairs == dict(direct_distances)
    _assert_bit_identical(
        ws_stream.run(name, spec=SPEC_NAME),
        ws_direct.run(name, spec=SPEC_NAME),
    )
