"""Fixtures for the streaming suite.

Reuses the deterministic service-suite corpus (``tests/service/
_fixture.py``) for the analytics tests that need registered
specifications and stored runs; protocol-level tests build tiny empty
workspaces of their own.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "service")
)

from _fixture import SPEC_NAME, build_corpus  # noqa: E402

from repro.config import ReproConfig  # noqa: E402
from repro.workspace import Workspace  # noqa: E402


@pytest.fixture(scope="module")
def corpus_root(tmp_path_factory):
    """A freshly built fixture corpus (one per test module)."""
    root = tmp_path_factory.mktemp("stream-corpus")
    build_corpus(root)
    return root


@pytest.fixture
def corpus_ws(corpus_root) -> Workspace:
    """A workspace over the fixture corpus (fresh client per test)."""
    return Workspace(corpus_root, ReproConfig(backend="serial"))


@pytest.fixture
def empty_ws(tmp_path) -> Workspace:
    """An empty workspace (no specifications, no corpus)."""
    return Workspace(tmp_path, ReproConfig(backend="serial"))


@pytest.fixture
def spec_name() -> str:
    return SPEC_NAME
