"""Incremental SP-ization semantics.

The :class:`IncrementalNormalizer` must agree with the whole-document
importer on every observable (graphs, labels, report accounting) while
catching stream-level inconsistencies — cycles, relabels — at event
time rather than at close.
"""

from __future__ import annotations

import pytest

from repro.corpus.fingerprint import run_fingerprint, spec_fingerprint
from repro.errors import InterchangeError
from repro.interchange.normalize import normalize_document
from repro.interchange.prov_json import parse_prov_json
from repro.stream.incremental import IncrementalNormalizer
from repro.workflow.generators import random_prov_document


def _feed(normalizer, activities, edges):
    for node, label in activities:
        normalizer.add_activity(node, label)
    for src, dst in edges:
        normalizer.add_edge(src, dst)


def test_duplicate_and_self_edges_feed_the_dedup_accounting():
    inc = IncrementalNormalizer("S", "r")
    _feed(
        inc,
        [("ex:a", "align"), ("ex:b", "blast")],
        [("ex:a", "ex:b"), ("ex:a", "ex:b"), ("ex:a", "ex:a")],
    )
    assert inc.num_activities == 2
    assert inc.num_edges == 1  # deduplicated DAG edge count
    result = inc.finish()
    assert result.report.deduplicated_edges == 2


def test_cycle_is_rejected_at_event_time():
    inc = IncrementalNormalizer("S", "r")
    _feed(inc, [], [("ex:a", "ex:b"), ("ex:b", "ex:c")])
    with pytest.raises(InterchangeError, match="cycle"):
        inc.add_edge("ex:c", "ex:a")
    # The poisoned edge left no trace: the DAG still normalises.
    assert inc.num_edges == 2
    assert inc.finish().run.graph.num_nodes >= 3


def test_relabel_is_refused_but_identical_redeclare_is_idempotent():
    inc = IncrementalNormalizer("S", "r")
    inc.add_activity("ex:a", "align")
    inc.add_activity("ex:a", "align")  # idempotent
    with pytest.raises(InterchangeError, match="redeclared"):
        inc.add_activity("ex:a", "blast")
    assert inc.label_counts() == {"align": 1}


def test_referenced_then_declared_adjusts_label_counts():
    inc = IncrementalNormalizer("S", "r")
    inc.add_edge("ex:a", "ex:b")  # both referenced-only: local names
    assert inc.label_counts() == {"a": 1, "b": 1}
    inc.add_activity("ex:a", "align")  # late declaration renames
    assert inc.label_counts() == {"align": 1, "b": 1}
    inc.add_activity("ex:b")  # empty label keeps the local name
    assert inc.label_counts() == {"align": 1, "b": 1}


def test_empty_session_cannot_normalise():
    with pytest.raises(InterchangeError, match="no activities"):
        IncrementalNormalizer("S", "r").finish()


def test_snapshot_is_cached_until_the_next_event():
    inc = IncrementalNormalizer("S", "r")
    inc.add_edge("ex:a", "ex:b")
    first = inc.snapshot()
    assert inc.snapshot() is first
    inc.add_edge("ex:b", "ex:c")
    second = inc.snapshot()
    assert second is not first
    assert second.run.graph.num_nodes > first.run.graph.num_nodes


def test_open_snapshot_matches_whole_import_of_the_prefix():
    """A mid-stream snapshot equals importing the prefix as a document."""
    text = random_prov_document(
        num_activities=10, edge_probability=0.45, seed=11
    )
    doc = parse_prov_json(text)
    inc = IncrementalNormalizer("S", "r")
    pairs = doc.dependency_pairs()
    cut = len(pairs) // 2
    for node in doc.activity_ids():
        inc.add_activity(node, "")
    for src, dst in pairs[:cut]:
        inc.add_edge(src, dst)
    snap = inc.snapshot()

    whole = normalize_document(inc.doc, name="S", run_name="r")
    assert run_fingerprint(snap.run) == run_fingerprint(whole.run)
    assert spec_fingerprint(snap.spec) == spec_fingerprint(whole.spec)
    assert snap.report.to_dict() == whole.report.to_dict()


@pytest.mark.parametrize("seed", [1, 2, 3, 7, 19])
def test_finish_matches_whole_document_import(seed):
    text = random_prov_document(
        num_activities=12, edge_probability=0.4, seed=seed
    )
    doc = parse_prov_json(text)
    whole = normalize_document(doc, name="S", run_name="r")

    inc = IncrementalNormalizer("S", "r")
    for node in doc.activity_ids():
        inc.add_activity(node, "")
    for src, dst in doc.dependency_pairs():
        inc.add_edge(src, dst)
    got = inc.finish()

    assert run_fingerprint(got.run) == run_fingerprint(whole.run)
    assert spec_fingerprint(got.spec) == spec_fingerprint(whole.spec)
    assert got.report.to_dict() == whole.report.to_dict()
    assert got.activity_nodes == whole.activity_nodes
