"""The streaming event model: codec strictness and round trips.

Malformed frames must fail loudly with
:class:`~repro.errors.StreamProtocolError` naming the offending frame —
never half-apply, never traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.api_types import ImportSummary
from repro.errors import StreamProtocolError
from repro.interchange.prov_json import parse_prov_json
from repro.stream.events import (
    STREAM_WIRE_VERSION,
    ActivityEvent,
    EdgeEvent,
    LiveStatus,
    RunClose,
    RunOpen,
    StreamAck,
    decode_events,
    encode_events,
    event_from_dict,
    events_from_document,
)
from repro.workflow.generators import random_prov_document

EVENTS = [
    RunOpen(session="s", spec_name="S", run_name="r", threshold=2.5),
    ActivityEvent(session="s", seq=2, node="ex:a1", label="align"),
    EdgeEvent(session="s", seq=3, src="ex:a1", dst="ex:a2"),
    RunClose(session="s", seq=4),
]


def test_ndjson_round_trip_preserves_every_field():
    decoded = decode_events(encode_events(EVENTS))
    assert decoded == EVENTS


def test_encoding_is_one_compact_json_object_per_line():
    lines = encode_events(EVENTS).decode("utf8").splitlines()
    assert len(lines) == len(EVENTS)
    for line, event in zip(lines, EVENTS):
        payload = json.loads(line)
        assert payload == event.to_dict()
        assert payload["v"] == STREAM_WIRE_VERSION
        assert ": " not in line and ", " not in line


def test_blank_lines_are_permitted_between_frames():
    body = encode_events(EVENTS[:2]) + b"\n\n" + encode_events(EVENTS[2:])
    assert decode_events(body) == EVENTS


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda p: p.update(v=99), "version"),
        (lambda p: p.update(kind="nope"), "unknown event kind"),
        (lambda p: p.update(seq=0), "'seq'"),
        (lambda p: p.update(seq="1"), "'seq'"),
        (lambda p: p.update(session=""), "'session'"),
        (lambda p: p.pop("session"), "'session'"),
    ],
)
def test_malformed_frames_are_refused(mutate, fragment):
    payload = ActivityEvent(
        session="s", seq=2, node="ex:a", label="x"
    ).to_dict()
    mutate(payload)
    with pytest.raises(StreamProtocolError) as err:
        event_from_dict(payload)
    assert fragment in str(err.value)


def test_run_open_must_carry_seq_one():
    payload = RunOpen(session="s", spec_name="S", run_name="r").to_dict()
    payload["seq"] = 7
    with pytest.raises(StreamProtocolError, match="seq 1"):
        event_from_dict(payload)


def test_run_open_threshold_and_mode_are_validated():
    payload = RunOpen(session="s", spec_name="S", run_name="r").to_dict()
    payload["threshold"] = "big"
    with pytest.raises(StreamProtocolError, match="threshold"):
        event_from_dict(payload)
    payload = RunOpen(session="s", spec_name="S", run_name="r").to_dict()
    payload["mode"] = "chaotic"
    with pytest.raises(StreamProtocolError, match="mode"):
        event_from_dict(payload)


def test_decode_reports_the_offending_frame_number():
    body = encode_events(EVENTS[:2]) + b"{not json}\n"
    with pytest.raises(StreamProtocolError, match="frame 3"):
        decode_events(body)


def test_decode_refuses_non_utf8_and_empty_bodies():
    with pytest.raises(StreamProtocolError, match="UTF-8"):
        decode_events(b"\xff\xfe")
    with pytest.raises(StreamProtocolError, match="no event frames"):
        decode_events(b"\n\n")


def test_ack_and_live_status_round_trip():
    live = LiveStatus(
        session="s",
        spec_name="S",
        run_name="r",
        seq=9,
        activities=4,
        edges=3,
        mode="derive",
        nearest_run="r01",
        nearest_bound=2.0,
        medoid_run="r02",
        medoid_bound=3.0,
        outlier_score=2.5,
        threshold=1.5,
        flagged=True,
        flagged_at_seq=7,
        sp_report={"was_series_parallel": False},
    )
    ack = StreamAck(
        session="s",
        acked_seq=9,
        status="closed",
        resumed=True,
        duplicates=2,
        live=live,
        result=ImportSummary(
            spec_name="S",
            run_name="r",
            origin="stream",
            nodes=4,
            edges=3,
            new_pairs={("r01", "r"): 2.0},
        ),
    )
    rebuilt = StreamAck.from_dict(
        json.loads(json.dumps(ack.to_dict()))
    )
    assert rebuilt == ack


def test_ack_from_dict_is_strict():
    with pytest.raises(StreamProtocolError):
        StreamAck.from_dict({"v": 99})
    with pytest.raises(StreamProtocolError):
        StreamAck.from_dict({"v": STREAM_WIRE_VERSION})  # no fields
    with pytest.raises(StreamProtocolError):
        LiveStatus.from_dict({"v": STREAM_WIRE_VERSION, "session": "s"})


def test_events_from_document_is_contiguous_and_complete():
    doc = parse_prov_json(
        random_prov_document(
            num_activities=9, edge_probability=0.4, seed=5
        )
    )
    events = events_from_document(doc, "s", "S", "r", threshold=1.0)
    assert isinstance(events[0], RunOpen)
    assert isinstance(events[-1], RunClose)
    assert [event.seq for event in events] == list(
        range(1, len(events) + 1)
    )
    activities = [e for e in events if isinstance(e, ActivityEvent)]
    edges = [e for e in events if isinstance(e, EdgeEvent)]
    assert [a.node for a in activities] == doc.activity_ids()
    assert [(e.src, e.dst) for e in edges] == doc.dependency_pairs()
