"""Property-based structural round-trips (hypothesis)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.decomposition import roundtrip_graph
from repro.graphs.flow_network import FlowNetwork
from repro.sptree.annotate_run import annotate_run_tree
from repro.sptree.canonical import canonical_sp_tree
from repro.sptree.validate import validate_run_tree, validate_spec_tree
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_sp_graph, random_specification

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=3,
    prob_loop=0.6,
)


class TestDecomposition:
    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        edges=st.integers(min_value=1, max_value=60),
        ratio=st.sampled_from([0.0, 0.3, 1.0, 3.0, float("inf")]),
    )
    def test_roundtrip(self, seed, edges, ratio):
        graph = random_sp_graph(edges, ratio, seed=seed)
        assert roundtrip_graph(graph).structurally_equal(graph)

    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        edges=st.integers(min_value=2, max_value=50),
    )
    def test_canonical_invariance_under_shuffle(self, seed, edges):
        graph = random_sp_graph(edges, 1.0, seed=seed)
        tree = canonical_sp_tree(graph)
        rng = random.Random(seed + 1)
        nodes = list(graph.nodes())
        edge_list = list(graph.edges())
        rng.shuffle(nodes)
        rng.shuffle(edge_list)
        shuffled = FlowNetwork()
        for node in nodes:
            shuffled.add_node(node, graph.label(node))
        for u, v, key in edge_list:
            shuffled.add_edge(u, v, key)
        assert canonical_sp_tree(shuffled).equivalent(tree)


class TestSpecAndRunTrees:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_spec_trees_validate(self, seed):
        spec = random_specification(
            12 + seed % 10,
            1.0,
            num_forks=seed % 3,
            num_loops=seed % 3,
            seed=seed,
        )
        validate_spec_tree(spec.tree)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_executor_and_annotator_agree(self, seed):
        spec = random_specification(
            10 + seed % 8,
            0.8,
            num_forks=seed % 3,
            num_loops=seed % 2,
            seed=seed,
        )
        run = execute_workflow(spec, PARAMS, seed=seed)
        rebuilt = annotate_run_tree(spec, run.graph)
        validate_run_tree(rebuilt, require_origin=True)
        assert rebuilt.equivalent(run.tree)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_run_graph_tree_graph_roundtrip(self, seed):
        spec = random_specification(
            10 + seed % 8, 1.2, num_forks=seed % 2, seed=seed
        )
        run = execute_workflow(spec, PARAMS, seed=seed)
        materialised = run.tree.to_graph()
        # The annotated tree's graph must be the run graph itself.
        assert materialised.structurally_equal(run.graph)
