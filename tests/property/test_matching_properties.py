"""Property-based tests for the matching substrate (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.hungarian import match_children, solve_assignment
from repro.matching.noncrossing import (
    brute_force_noncrossing,
    noncrossing_match,
)

scipy_optimize = pytest.importorskip("scipy.optimize")

SETTINGS = settings(max_examples=60, deadline=None)

costs = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def square_matrices(draw, max_size=7):
    size = draw(st.integers(min_value=1, max_value=max_size))
    return [
        [draw(costs) for _ in range(size)] for _ in range(size)
    ]


@st.composite
def children_instances(draw, max_size=5):
    n1 = draw(st.integers(min_value=0, max_value=max_size))
    n2 = draw(st.integers(min_value=0, max_value=max_size))
    pair = [[draw(costs) for _ in range(n2)] for _ in range(n1)]
    deletes = [draw(costs) for _ in range(n1)]
    inserts = [draw(costs) for _ in range(n2)]
    return pair, deletes, inserts


class TestHungarianProperties:
    @SETTINGS
    @given(matrix=square_matrices())
    def test_agrees_with_scipy(self, matrix):
        total, assignment = solve_assignment(matrix)
        rows, cols = scipy_optimize.linear_sum_assignment(matrix)
        expected = sum(matrix[r][c] for r, c in zip(rows, cols))
        assert total == pytest.approx(expected, abs=1e-6)
        assert sorted(assignment) == list(range(len(matrix)))

    @SETTINGS
    @given(instance=children_instances())
    def test_match_children_upper_bounds(self, instance):
        pair, deletes, inserts = instance
        total, matches = match_children(
            lambda i, j: pair[i][j], deletes, inserts
        )
        # Never worse than deleting and inserting everything.
        assert total <= sum(deletes) + sum(inserts) + 1e-6
        # Reported matches reconstruct the reported total.
        matched_left = {i for i, _ in matches}
        matched_right = {j for _, j in matches}
        recomputed = (
            sum(pair[i][j] for i, j in matches)
            + sum(
                deletes[i]
                for i in range(len(deletes))
                if i not in matched_left
            )
            + sum(
                inserts[j]
                for j in range(len(inserts))
                if j not in matched_right
            )
        )
        assert total == pytest.approx(recomputed, abs=1e-6)


class TestNonCrossingProperties:
    @SETTINGS
    @given(instance=children_instances(max_size=5))
    def test_agrees_with_bruteforce(self, instance):
        pair, deletes, inserts = instance
        total, _ = noncrossing_match(
            lambda i, j: pair[i][j], deletes, inserts
        )
        expected = brute_force_noncrossing(
            lambda i, j: pair[i][j], deletes, inserts
        )
        assert total == pytest.approx(expected, abs=1e-6)

    @SETTINGS
    @given(instance=children_instances(max_size=6))
    def test_never_cheaper_than_hungarian(self, instance):
        """Non-crossing is a restriction: its optimum can't beat the
        unrestricted assignment optimum."""
        pair, deletes, inserts = instance
        restricted, _ = noncrossing_match(
            lambda i, j: pair[i][j], deletes, inserts
        )
        unrestricted, _ = match_children(
            lambda i, j: pair[i][j], deletes, inserts
        )
        assert unrestricted <= restricted + 1e-6

    @SETTINGS
    @given(instance=children_instances(max_size=6))
    def test_matches_monotone(self, instance):
        pair, deletes, inserts = instance
        _, matches = noncrossing_match(
            lambda i, j: pair[i][j], deletes, inserts
        )
        for (i1, j1), (i2, j2) in zip(matches, matches[1:]):
            assert i1 < i2
            assert j1 < j2
