"""The strongest end-to-end check: Algorithm 4 == exhaustive Dijkstra.

The oracle implements the *definition* of edit distance (shortest path in
the space of valid runs) without any of the SP-tree DP machinery, so
agreement on random instances validates the entire polynomial pipeline.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.exhaustive import exact_edit_distance
from repro.core.api import edit_distance
from repro.costs.standard import LengthCost, UnitCost
from repro.errors import ReproError
from repro.workflow.execution import ExecutionParams
from repro.workflow.generators import random_run_pair, random_specification

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=2,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


@SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2_000),
    edges=st.integers(min_value=4, max_value=8),
    cost_index=st.integers(min_value=0, max_value=1),
)
def test_polynomial_equals_exact(seed, edges, cost_index):
    spec = random_specification(
        edges,
        [0.5, 1.0, 2.0][seed % 3],
        num_forks=seed % 2,
        num_loops=(seed // 2) % 2,
        seed=seed,
    )
    one, two = random_run_pair(spec, PARAMS, seed=seed)
    if max(one.num_edges, two.num_edges) > 12:
        return  # keep the oracle tractable
    cost = [UnitCost(), LengthCost()][cost_index]
    expected = edit_distance(one, two, cost)
    try:
        actual = exact_edit_distance(
            one, two, cost, extra_leaves=2, max_states=100_000
        )
    except ReproError:
        return  # state cap reached; skip this instance
    assert actual == pytest.approx(expected)
