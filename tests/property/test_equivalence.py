"""Property tests: structure keys are a sound and complete ≡ witness."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import edit_distance
from repro.costs.standard import UnitCost
from repro.graphs.flow_network import FlowNetwork
from repro.sptree.annotate_run import annotate_run_tree
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_specification
from repro.workflow.run import WorkflowRun

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def rename_instances(graph: FlowNetwork, seed: int) -> FlowNetwork:
    """A label-preserving random renaming of all node instances."""
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    fresh = [f"n{rng.random():.12f}_{i}" for i in range(len(nodes))]
    mapping = dict(zip(nodes, fresh))
    renamed = FlowNetwork(name=graph.name)
    for node in nodes:
        renamed.add_node(mapping[node], graph.label(node))
    for u, v, key in graph.edges():
        renamed.add_edge(mapping[u], mapping[v], key)
    return renamed


class TestSoundness:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_renaming_preserves_key_and_distance(self, seed):
        spec = random_specification(
            10 + seed % 8,
            1.0,
            num_forks=seed % 3,
            num_loops=seed % 2,
            seed=seed,
        )
        run = execute_workflow(spec, PARAMS, seed=seed)
        renamed_graph = rename_instances(run.graph, seed + 1)
        renamed = WorkflowRun(spec, renamed_graph, name="renamed")
        assert run.tree.structure_key() == renamed.tree.structure_key()
        assert edit_distance(run, renamed, UnitCost()) == 0.0

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_edge_insertion_order_irrelevant(self, seed):
        spec = random_specification(
            10 + seed % 8, 1.0, num_forks=seed % 2, seed=seed
        )
        run = execute_workflow(spec, PARAMS, seed=seed)
        rng = random.Random(seed + 2)
        shuffled = FlowNetwork(name="shuffled")
        nodes = list(run.graph.nodes())
        edges = list(run.graph.edges())
        rng.shuffle(nodes)
        rng.shuffle(edges)
        for node in nodes:
            shuffled.add_node(node, run.graph.label(node))
        for u, v, key in edges:
            shuffled.add_edge(u, v, key)
        tree = annotate_run_tree(spec, shuffled)
        assert tree.structure_key() == run.tree.structure_key()


class TestCompleteness:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_distinct_runs_have_distinct_keys(self, seed):
        """Zero distance iff equal keys (completeness direction)."""
        spec = random_specification(
            10 + seed % 8,
            1.0,
            num_forks=seed % 3,
            num_loops=seed % 2,
            seed=seed,
        )
        one = execute_workflow(spec, PARAMS, seed=seed)
        two = execute_workflow(spec, PARAMS, seed=seed + 77)
        same_key = (
            one.tree.structure_key() == two.tree.structure_key()
        )
        distance = edit_distance(one, two, UnitCost())
        assert same_key == (distance == 0.0)
