"""Property: the numpy kernel is bit-identical to the pure-Python DP.

The numpy series convolution evaluates exactly the candidates the
reference loops evaluate — one IEEE-754 float64 add of the same
operands per candidate, one min over the same non-negative set — so
its tables, and every distance derived from them, must equal the
pure-Python oracle's with ``==`` on floats, never ``approx``.  These
tests are the enforcement of that claim; they skip (not pass) when
numpy is absent, and a separate CI job runs the suite without numpy
to prove the fallback path stands alone.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import diff_runs, distance_only
from repro.core.kernel import (
    KERNEL_NAMES,
    numpy_available,
    resolve_kernel,
    series_convolve,
    series_convolve_python,
)
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.errors import ReproError
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_specification

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)

COSTS = [UnitCost(), LengthCost(), PowerCost(0.5), PowerCost(-0.5)]


class TestResolution:
    def test_known_names_resolve(self):
        assert resolve_kernel("python") == "python"
        assert resolve_kernel("auto") in ("python", "numpy")
        assert set(KERNEL_NAMES) == {"auto", "python", "numpy"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="kernel"):
            resolve_kernel("fortran")

    def test_auto_prefers_numpy_when_available(self):
        expected = "numpy" if numpy_available() else "python"
        assert resolve_kernel("auto") == expected

    @requires_numpy
    def test_explicit_numpy_resolves(self):
        assert resolve_kernel("numpy") == "numpy"


@requires_numpy
class TestConvolutionEquivalence:
    @given(
        prefix=st.lists(
            st.floats(
                min_value=0.0, max_value=1e9, allow_nan=False
            ),
            min_size=1,
            max_size=8,
        ),
        child=st.lists(
            st.floats(
                min_value=0.0, max_value=1e9, allow_nan=False
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_numpy_convolution_matches_reference(self, prefix, child):
        reference = series_convolve_python(prefix, child)
        vectorised = series_convolve(prefix, child, "numpy")
        assert vectorised == reference  # bitwise, not approx

    def test_infinities_survive(self):
        inf = float("inf")
        prefix = [0.0, inf, 3.0]
        child = [inf, 1.0]
        assert series_convolve(prefix, child, "numpy") == (
            series_convolve_python(prefix, child)
        )


@requires_numpy
@given(
    spec_seed=st.integers(min_value=0, max_value=40),
    run_seed=st.integers(min_value=0, max_value=1000),
    cost_index=st.integers(min_value=0, max_value=len(COSTS) - 1),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_cross_kernel_distances_bit_identical(
    spec_seed, run_seed, cost_index
):
    """End to end: numpy-kerneled DP == pure-Python oracle, bit for bit."""
    cost = COSTS[cost_index]
    spec = random_specification(
        10 + spec_seed % 6,
        1.0,
        num_forks=spec_seed % 3,
        num_loops=spec_seed % 2,
        seed=spec_seed,
        name="rand",
    )
    run_a = execute_workflow(spec, VARIED, seed=run_seed, name="a")
    run_b = execute_workflow(spec, VARIED, seed=run_seed + 1, name="b")
    oracle = distance_only(run_a, run_b, cost=cost, kernel="python")
    fast = distance_only(run_a, run_b, cost=cost, kernel="numpy")
    assert fast == oracle
    # Scripts ride on the same tables; their costs agree too.
    scripted = diff_runs(run_a, run_b, cost=cost, kernel="numpy")
    assert scripted.distance == oracle
