"""Property-based tests: δ is a metric on runs up to ≡ (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import diff_runs, edit_distance
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_specification

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def make_spec(seed):
    return random_specification(
        10 + seed % 8,
        [0.5, 1.0, 2.0][seed % 3],
        num_forks=seed % 3,
        num_loops=seed % 2,
        seed=seed,
    )


def cost_for(seed):
    return [UnitCost(), LengthCost(), PowerCost(0.5)][seed % 3]


class TestMetricAxioms:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_identity_of_indiscernibles(self, seed):
        spec = make_spec(seed)
        run = execute_workflow(spec, PARAMS, seed=seed)
        assert edit_distance(run, run, cost_for(seed)) == 0.0

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_symmetry(self, seed):
        spec = make_spec(seed)
        one = execute_workflow(spec, PARAMS, seed=seed)
        two = execute_workflow(spec, PARAMS, seed=seed + 7)
        cost = cost_for(seed)
        assert edit_distance(one, two, cost) == pytest.approx(
            edit_distance(two, one, cost)
        )

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_triangle_inequality(self, seed):
        spec = make_spec(seed)
        a = execute_workflow(spec, PARAMS, seed=seed)
        b = execute_workflow(spec, PARAMS, seed=seed + 1)
        c = execute_workflow(spec, PARAMS, seed=seed + 2)
        cost = cost_for(seed)
        dab = edit_distance(a, b, cost)
        dbc = edit_distance(b, c, cost)
        dac = edit_distance(a, c, cost)
        assert dac <= dab + dbc + 1e-7

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_positivity_for_distinct_runs(self, seed):
        spec = make_spec(seed)
        one = execute_workflow(spec, PARAMS, seed=seed)
        two = execute_workflow(spec, PARAMS, seed=seed + 13)
        distance = edit_distance(one, two, cost_for(seed))
        if one.equivalent(two):
            assert distance == 0.0
        else:
            assert distance > 0.0


class TestScriptProperties:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_script_realises_distance(self, seed):
        spec = make_spec(seed)
        one = execute_workflow(spec, PARAMS, seed=seed)
        two = execute_workflow(spec, PARAMS, seed=seed + 3)
        result = diff_runs(one, two, cost=cost_for(seed))
        assert result.script.total_cost == pytest.approx(result.distance)
        assert result.script.final_tree.structure_key() == (
            two.tree.structure_key()
        )

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=3_000))
    def test_mapping_cost_equals_distance(self, seed):
        spec = make_spec(seed)
        one = execute_workflow(spec, PARAMS, seed=seed)
        two = execute_workflow(spec, PARAMS, seed=seed + 3)
        result = diff_runs(one, two, with_script=False)
        assert result.mapping.cost == pytest.approx(result.distance)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=3_000))
    def test_mapping_is_well_formed(self, seed):
        from repro.core.mapping import validate_well_formed

        spec = make_spec(seed)
        one = execute_workflow(spec, PARAMS, seed=seed)
        two = execute_workflow(spec, PARAMS, seed=seed + 3)
        result = diff_runs(one, two, with_script=False)
        validate_well_formed(result.mapping, one.tree, two.tree)
