"""Tests for WorkflowSpecification construction and validation."""

import pytest

from repro.errors import SpecificationError
from repro.graphs.flow_network import FlowNetwork
from repro.graphs.spgraph import path_graph
from repro.workflow.specification import (
    WorkflowSpecification,
    complete_subgraph_edges,
    induced_edge_set,
)

from tests.conftest import build_fig2_spec


class TestConstruction:
    def test_fig2_characteristics(self, fig2_spec):
        stats = fig2_spec.characteristics()
        assert stats == {
            "|V|": 7,
            "|E|": 8,
            "|F|": 4,
            "||F||": 6 + 8,  # three 2-edge branches + the whole graph
            "|L|": 1,
            "||L||": 6,
        }

    def test_duplicate_labels_rejected(self):
        graph = FlowNetwork()
        graph.add_node("a", "same")
        graph.add_node("b", "same")
        graph.add_edge("a", "b")
        with pytest.raises(SpecificationError, match="unique"):
            WorkflowSpecification(graph)

    def test_non_sp_graph_rejected(self):
        from repro.errors import NotSeriesParallelError
        from repro.graphs.spgraph import diamond_graph

        with pytest.raises(NotSeriesParallelError):
            WorkflowSpecification(diamond_graph())

    def test_spec_copies_graph(self, fig2_spec):
        graph = path_graph(["a", "b", "c"])
        spec = WorkflowSpecification(graph, name="p")
        graph.add_node("rogue")
        assert "rogue" not in spec.graph

    def test_ambiguity_flag(self):
        graph = FlowNetwork()
        graph.add_node("u")
        graph.add_node("v")
        graph.add_edge("u", "v")
        graph.add_edge("u", "v")
        assert WorkflowSpecification(graph).has_ambiguous_branches
        assert not build_fig2_spec().has_ambiguous_branches


class TestElementSyntaxes:
    def test_fork_by_node_set(self, fig2_spec):
        # fig2 already uses node sets; cross-check edge totals.
        assert fig2_spec.fork_elements[0].edges == frozenset(
            {("2", "3", 0), ("3", "6", 0)}
        )

    def test_fork_by_edge_ids(self):
        graph = path_graph(list("abc"))
        spec = WorkflowSpecification(
            graph, forks=[[("a", "b", 0)]], name="edges"
        )
        assert spec.num_forks == 1

    def test_loop_by_terminal_pair(self, fig2_spec):
        assert fig2_spec.loop_elements[0].edges == frozenset(
            {
                ("2", "3", 0),
                ("3", "6", 0),
                ("2", "4", 0),
                ("4", "6", 0),
                ("2", "5", 0),
                ("5", "6", 0),
            }
        )

    def test_loop_terminal_pair_adjacent_nodes_reads_induced(self):
        # (a, b) with a direct edge: induced two-node subgraph, one edge.
        graph = path_graph(list("abc"))
        spec = WorkflowSpecification(graph, loops=[("a", "b")], name="x")
        assert spec.loop_elements[0].edges == frozenset({("a", "b", 0)})

    def test_unknown_edge_rejected(self):
        graph = path_graph(list("abc"))
        with pytest.raises(SpecificationError, match="unknown edges"):
            WorkflowSpecification(graph, forks=[[("z", "w", 0)]])

    def test_empty_element_rejected(self):
        graph = path_graph(list("abc"))
        with pytest.raises(SpecificationError, match="empty"):
            WorkflowSpecification(graph, forks=[[]])

    def test_uninterpretable_element_rejected(self):
        graph = path_graph(list("abc"))
        with pytest.raises(SpecificationError):
            WorkflowSpecification(graph, forks=[[3.14]])


class TestHelpers:
    def test_induced_edge_set(self):
        graph = path_graph(list("abcd"))
        assert induced_edge_set(graph, ["b", "c"]) == frozenset(
            {("b", "c", 0)}
        )

    def test_induced_unknown_node(self):
        graph = path_graph(list("ab"))
        with pytest.raises(SpecificationError, match="unknown nodes"):
            induced_edge_set(graph, ["zz"])

    def test_complete_subgraph_edges(self, fig2_spec):
        edges = complete_subgraph_edges(fig2_spec.graph, "2", "6")
        assert len(edges) == 6

    def test_complete_subgraph_no_path(self):
        graph = path_graph(list("abc"))
        with pytest.raises(SpecificationError, match="no paths"):
            complete_subgraph_edges(graph, "c", "a")

    def test_node_for_label(self, fig2_spec):
        assert fig2_spec.node_for_label("3") == "3"
        with pytest.raises(SpecificationError):
            fig2_spec.node_for_label("nope")

    def test_allowed_back_edges(self, fig2_spec):
        assert fig2_spec.allowed_back_edges() == {("6", "2")}

    def test_repr(self, fig2_spec):
        assert "fig2" in repr(fig2_spec)
