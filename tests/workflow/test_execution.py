"""Tests for the execution function / random run generator."""

import pytest

from repro.sptree.annotate_run import annotate_run_tree
from repro.sptree.nodes import NodeType
from repro.sptree.validate import validate_run_tree
from repro.workflow.execution import ExecutionParams, execute_workflow


class TestParams:
    def test_defaults(self):
        params = ExecutionParams()
        assert params.prob_parallel == 0.95
        assert params.max_fork == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"prob_parallel": 1.5},
            {"prob_fork": -0.1},
            {"prob_loop": 2.0},
            {"max_fork": 0},
            {"max_loop": -1},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionParams(**kwargs)


class TestExecution:
    def test_deterministic_for_seed(self, fig2_spec):
        params = ExecutionParams(
            prob_parallel=0.7, max_fork=3, prob_fork=0.5
        )
        one = execute_workflow(fig2_spec, params, seed=99)
        two = execute_workflow(fig2_spec, params, seed=99)
        assert one.equivalent(two)
        assert sorted(one.graph.labels().values()) == sorted(
            two.graph.labels().values()
        )

    def test_runs_are_valid(self, fig2_spec):
        params = ExecutionParams(
            prob_parallel=0.6,
            max_fork=4,
            prob_fork=0.7,
            max_loop=3,
            prob_loop=0.7,
        )
        for seed in range(10):
            run = execute_workflow(fig2_spec, params, seed=seed)
            validate_run_tree(run.tree, require_origin=True)
            rebuilt = annotate_run_tree(fig2_spec, run.graph)
            assert rebuilt.equivalent(run.tree)

    def test_fork_counts_bounded(self, fig2_spec):
        params = ExecutionParams(max_fork=3, prob_fork=1.0)
        run = execute_workflow(fig2_spec, params, seed=1)
        for node in run.tree.iter_nodes("pre"):
            if node.kind is NodeType.F:
                assert node.degree == 3

    def test_prob_zero_gives_single_copies(self, fig2_spec):
        params = ExecutionParams(max_fork=10, prob_fork=0.0, max_loop=10)
        run = execute_workflow(fig2_spec, params, seed=1)
        for node in run.tree.iter_nodes("pre"):
            if node.kind in (NodeType.F, NodeType.L):
                assert node.degree == 1

    def test_at_least_one_parallel_branch(self, fig2_spec):
        params = ExecutionParams(prob_parallel=0.0)
        run = execute_workflow(fig2_spec, params, seed=5)
        for node in run.tree.iter_nodes("pre"):
            if node.kind is NodeType.P:
                assert node.degree >= 1

    def test_instance_ids_unique(self, fig2_spec):
        params = ExecutionParams(
            prob_parallel=1.0, max_fork=5, prob_fork=1.0, max_loop=4,
            prob_loop=1.0,
        )
        run = execute_workflow(fig2_spec, params, seed=3)
        nodes = list(run.graph.nodes())
        assert len(nodes) == len(set(nodes))

    def test_loop_iterations_linked_by_back_edges(self, fig2_spec):
        params = ExecutionParams(max_loop=3, prob_loop=1.0)
        run = execute_workflow(fig2_spec, params, seed=7)
        back_edges = [
            (u, v)
            for u, v, _ in run.graph.edges()
            if (run.graph.label(u), run.graph.label(v)) == ("6", "2")
        ]
        assert len(back_edges) == 2  # three iterations -> two back edges

    def test_rng_instance_accepted(self, fig2_spec):
        import random

        rng = random.Random(0)
        run = execute_workflow(fig2_spec, seed=rng)
        assert run.num_edges >= 4

    def test_statistics_shape(self, fig2_spec):
        run = execute_workflow(fig2_spec, seed=0)
        stats = run.statistics()
        assert stats["edges"] == run.num_edges
        assert stats["q_nodes"] <= stats["edges"]
        assert "fork_copies" in stats

    def test_run_repr(self, fig2_spec):
        run = execute_workflow(fig2_spec, seed=0, name="demo")
        assert "demo" in repr(run)
