"""Tests for the paper-specific workload builders (§VIII-C/D)."""

import pytest

from repro.errors import SpecificationError
from repro.sptree.nodes import NodeType
from repro.sptree.validate import validate_spec_tree
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import (
    balanced_fork_loop_specification,
    fig17b_specification,
)


class TestFig17b:
    def test_structure(self):
        spec = fig17b_specification(num_paths=4)
        # Path lengths 1, 4, 9, 16 plus the two boundary edges.
        assert spec.num_edges == 1 + 4 + 9 + 16 + 2
        assert spec.num_forks == 1
        assert spec.fork_edge_total == spec.num_edges
        validate_spec_tree(spec.tree)
        assert spec.tree.kind is NodeType.F  # fork over the whole graph

    def test_linear_variant(self):
        spec = fig17b_specification(num_paths=4, squared=False)
        assert spec.num_edges == 1 + 2 + 3 + 4 + 2

    def test_fork_copies_carry_path_subsets(self):
        spec = fig17b_specification(num_paths=4)
        params = ExecutionParams(
            prob_parallel=0.5, max_fork=5, prob_fork=1.0
        )
        run = execute_workflow(spec, params, seed=3)
        root = run.tree
        assert root.kind is NodeType.F
        assert root.degree == 5  # probF = 1 -> exactly maxF copies
        widths = {copy.children[1].degree for copy in root.children}
        # With prob_p = 0.5, copies take different path subsets.
        assert len(widths) >= 1
        for copy in root.children:
            parallel = copy.children[1]
            assert parallel.kind is NodeType.P
            assert 1 <= parallel.degree <= 4


class TestBalancedForkLoop:
    def test_counts_and_validity(self):
        spec = balanced_fork_loop_specification(
            60, 1.0, num_forks=5, num_loops=5, seed=0
        )
        assert spec.num_forks == 5
        assert spec.num_loops == 5
        validate_spec_tree(spec.tree)

    def test_fork_and_loop_sizes_comparable(self):
        spec = balanced_fork_loop_specification(
            60, 1.0, num_forks=5, num_loops=5, seed=1
        )
        fork_sizes = sorted(len(a.edges) for a in spec.fork_elements)
        loop_sizes = sorted(len(a.edges) for a in spec.loop_elements)
        # Drawn from one candidate pool: total coverage within 4x.
        assert sum(fork_sizes) <= 4 * sum(loop_sizes)
        assert sum(loop_sizes) <= 4 * sum(fork_sizes)

    def test_runs_generate_both_ways(self):
        spec = balanced_fork_loop_specification(
            50, 1.0, num_forks=4, num_loops=4, seed=2
        )
        forky = execute_workflow(
            spec,
            ExecutionParams(1.0, 4, 1.0, 1, 0.0),
            seed=1,
        )
        loopy = execute_workflow(
            spec,
            ExecutionParams(1.0, 1, 0.0, 4, 1.0),
            seed=1,
        )
        # Balanced elements: replicated runs have comparable sizes.
        assert forky.num_edges <= 2 * loopy.num_edges
        assert loopy.num_edges <= 2 * forky.num_edges

    def test_impossible_request_raises(self):
        with pytest.raises(SpecificationError):
            balanced_fork_loop_specification(
                3, 0.0, num_forks=8, num_loops=8, seed=0,
                max_graph_attempts=2,
            )

    def test_deterministic(self):
        a = balanced_fork_loop_specification(40, 1.0, 3, 3, seed=9)
        b = balanced_fork_loop_specification(40, 1.0, 3, 3, seed=9)
        assert a.graph.structurally_equal(b.graph)
        assert [x.edges for x in a.fork_elements] == [
            x.edges for x in b.fork_elements
        ]
