"""The six reconstructed workflows must match Table I exactly."""

import pytest

from repro.sptree.validate import validate_spec_tree
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import (
    TABLE_I,
    all_real_workflows,
    build_segmented_spec,
    Link,
    Par,
    protein_annotation,
)


class TestTableI:
    @pytest.mark.parametrize("name", sorted(TABLE_I))
    def test_characteristics_match_paper(self, name):
        spec = all_real_workflows()[name]
        assert spec.characteristics() == TABLE_I[name], name

    @pytest.mark.parametrize("name", sorted(TABLE_I))
    def test_trees_are_valid(self, name):
        spec = all_real_workflows()[name]
        validate_spec_tree(spec.tree)

    @pytest.mark.parametrize("name", sorted(TABLE_I))
    def test_runs_generate_and_validate(self, name):
        spec = all_real_workflows()[name]
        params = ExecutionParams(
            prob_parallel=0.8,
            max_fork=3,
            prob_fork=0.5,
            max_loop=2,
            prob_loop=0.5,
        )
        run = execute_workflow(spec, params, seed=1)
        assert run.num_edges >= 1

    def test_pa_module_names(self):
        spec = protein_annotation()
        labels = set(spec.graph.labels().values())
        assert "BlastSwP" in labels
        assert "getProteinSeq" in labels
        assert spec.graph.label(spec.graph.source()) == "getProteinSeq"
        assert spec.graph.label(spec.graph.sink()) == "exportAnnotSeq"

    def test_pa_loop_covers_blast_section(self):
        spec = protein_annotation()
        loop_edges = spec.loop_elements[0].edges
        labels = {u for u, _, _ in loop_edges} | {
            v for _, v, _ in loop_edges
        }
        assert "BlastSwP" in labels and "BlastPIR" in labels


class TestBuilder:
    def test_branch_selector(self):
        spec = build_segmented_spec(
            "toy",
            segments=[Link(), Par(2, 2)],
            forks=[("branch", 1, 0)],
        )
        assert spec.num_forks == 1
        assert spec.fork_edge_total == 2

    def test_run_selector(self):
        spec = build_segmented_spec(
            "toy2",
            segments=[Link(), Link(), Par(2, 2)],
            loops=[("run", 0, 1)],
        )
        assert spec.loop_edge_total == 2

    def test_whole_selector(self):
        spec = build_segmented_spec(
            "toy3",
            segments=[Link(), Link()],
            forks=[("whole",)],
        )
        assert spec.fork_edge_total == 2

    def test_labels_must_cover_nodes(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError, match="shorter"):
            build_segmented_spec(
                "toy4", segments=[Link()], labels=["only-one"]
            )

    def test_par_validation(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError):
            Par(2)
        with pytest.raises(SpecificationError):
            Par(0, 2)

    def test_unknown_selector(self):
        from repro.errors import SpecificationError

        with pytest.raises(SpecificationError, match="selector"):
            build_segmented_spec(
                "toy5", segments=[Link()], forks=[("bogus", 1)]
            )
