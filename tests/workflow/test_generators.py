"""Tests for the synthetic workload generators (§VIII-B/C setup)."""

import pytest

from repro.errors import SpecificationError
from repro.sptree.canonical import is_series_parallel
from repro.sptree.nodes import NodeType
from repro.workflow.execution import ExecutionParams
from repro.workflow.generators import (
    annotate_random,
    random_run_pair,
    random_sp_graph,
    random_specification,
)


class TestGraphGeneration:
    @pytest.mark.parametrize("edges", [1, 2, 10, 100])
    def test_exact_edge_count(self, edges):
        graph = random_sp_graph(edges, 1.0, seed=0)
        assert graph.num_edges == edges
        assert is_series_parallel(graph)

    def test_pure_series_is_a_path(self):
        graph = random_sp_graph(20, float("inf"), seed=1)
        assert graph.num_nodes == 21
        assert all(graph.out_degree(n) <= 1 for n in graph.nodes())

    def test_pure_parallel_is_a_multigraph(self):
        graph = random_sp_graph(20, 0.0, seed=1)
        assert graph.num_nodes == 2
        assert graph.num_edges == 20

    def test_ratio_controls_node_count(self):
        # More series expansions -> more nodes for the same edge count.
        serial = random_sp_graph(200, 3.0, seed=5)
        parallel = random_sp_graph(200, 1 / 3, seed=5)
        assert serial.num_nodes > parallel.num_nodes

    def test_deterministic_for_seed(self):
        a = random_sp_graph(30, 1.0, seed=42)
        b = random_sp_graph(30, 1.0, seed=42)
        assert a.structurally_equal(b)

    def test_invalid_arguments(self):
        with pytest.raises(SpecificationError):
            random_sp_graph(0, 1.0)
        with pytest.raises(SpecificationError):
            random_sp_graph(5, -1.0)


class TestAnnotation:
    def test_requested_counts(self):
        spec = random_specification(
            100, 0.5, num_forks=5, num_loops=5, seed=11
        )
        assert spec.num_forks == 5
        assert spec.num_loops == 5

    def test_family_is_laminar(self):
        spec = random_specification(
            80, 1.0, num_forks=6, num_loops=4, seed=3
        )
        sets = [a.edges for a in spec.fork_elements + spec.loop_elements]
        for i, left in enumerate(sets):
            for right in sets[i + 1 :]:
                assert left != right
                assert not (
                    left & right and not (left < right or right < left)
                )

    def test_impossible_request_raises(self):
        graph = random_sp_graph(2, float("inf"), seed=0)  # 2-edge path
        with pytest.raises(SpecificationError, match="place"):
            annotate_random(graph, num_forks=10, num_loops=0, seed=0)

    def test_zero_annotations(self):
        spec = random_specification(30, 1.0, seed=7)
        assert spec.num_forks == 0
        assert spec.num_loops == 0


class TestRunPairs:
    def test_pair_is_valid_and_distinct_names(self):
        spec = random_specification(
            40, 1.0, num_forks=2, num_loops=2, seed=21
        )
        params = ExecutionParams(
            prob_parallel=0.8,
            max_fork=3,
            prob_fork=0.5,
            max_loop=3,
            prob_loop=0.5,
        )
        one, two = random_run_pair(spec, params, seed=5)
        assert one.name != two.name
        assert one.spec is spec and two.spec is spec

    def test_pair_deterministic(self):
        spec = random_specification(25, 1.0, seed=2)
        a1, b1 = random_run_pair(spec, seed=9)
        a2, b2 = random_run_pair(spec, seed=9)
        assert a1.equivalent(a2)
        assert b1.equivalent(b2)
