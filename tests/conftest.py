"""Shared fixtures: the paper's Fig. 2 specification and runs."""

from __future__ import annotations

import pytest

from repro.graphs.flow_network import FlowNetwork
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def build_fig2_spec() -> WorkflowSpecification:
    """The running example of Fig. 2(a): nodes 1..7.

    Edges: 1->2, 2->{3,4,5}->6, 6->7.  Forks over the three branches and
    the whole graph; a loop over the complete subgraph between 2 and 6.
    """
    graph = FlowNetwork(name="fig2")
    for node in "1234567":
        graph.add_node(node)
    graph.add_edge("1", "2")
    for mid in "345":
        graph.add_edge("2", mid)
        graph.add_edge(mid, "6")
    graph.add_edge("6", "7")
    return WorkflowSpecification(
        graph,
        forks=[
            ["2", "3", "6"],
            ["2", "4", "6"],
            ["2", "5", "6"],
            list("1234567"),
        ],
        loops=[("2", "6")],
        name="fig2",
    )


def build_run(spec, name, nodes, edges) -> WorkflowRun:
    """Construct a run from explicit instance ids and edges."""
    graph = FlowNetwork(name=name)
    for node, label in nodes.items():
        graph.add_node(node, label)
    for u, v in edges:
        graph.add_edge(u, v)
    return WorkflowRun(spec, graph, name=name)


@pytest.fixture(scope="session")
def fig2_spec() -> WorkflowSpecification:
    return build_fig2_spec()


@pytest.fixture(scope="session")
def fig2_r1(fig2_spec) -> WorkflowRun:
    """Run R1 of Fig. 2(b): two copies of branch 3, one of branch 4."""
    return build_run(
        fig2_spec,
        "R1",
        {
            "1a": "1",
            "2a": "2",
            "3a": "3",
            "3b": "3",
            "4a": "4",
            "6a": "6",
            "7a": "7",
        },
        [
            ("1a", "2a"),
            ("2a", "3a"),
            ("3a", "6a"),
            ("2a", "3b"),
            ("3b", "6a"),
            ("2a", "4a"),
            ("4a", "6a"),
            ("6a", "7a"),
        ],
    )


@pytest.fixture(scope="session")
def fig2_r2(fig2_spec) -> WorkflowRun:
    """Run R2 of Fig. 2(c): the whole workflow forked twice."""
    return build_run(
        fig2_spec,
        "R2",
        {
            "1a": "1",
            "2a": "2",
            "3a": "3",
            "4a": "4",
            "4b": "4",
            "6a": "6",
            "7a": "7",
            "2b": "2",
            "4c": "4",
            "5a": "5",
            "6b": "6",
        },
        [
            ("1a", "2a"),
            ("2a", "3a"),
            ("3a", "6a"),
            ("2a", "4a"),
            ("4a", "6a"),
            ("2a", "4b"),
            ("4b", "6a"),
            ("6a", "7a"),
            ("1a", "2b"),
            ("2b", "4c"),
            ("4c", "6b"),
            ("2b", "5a"),
            ("5a", "6b"),
            ("6b", "7a"),
        ],
    )


@pytest.fixture(scope="session")
def fig2_r3(fig2_spec) -> WorkflowRun:
    """Run R3 of Fig. 2(d): the loop executed twice."""
    return build_run(
        fig2_spec,
        "R3",
        {
            "1a": "1",
            "2a": "2",
            "3a": "3",
            "4a": "4",
            "4b": "4",
            "6a": "6",
            "2b": "2",
            "4c": "4",
            "5a": "5",
            "6b": "6",
            "7a": "7",
        },
        [
            ("1a", "2a"),
            ("2a", "3a"),
            ("3a", "6a"),
            ("2a", "4a"),
            ("4a", "6a"),
            ("2a", "4b"),
            ("4b", "6a"),
            ("6a", "2b"),
            ("2b", "4c"),
            ("4c", "6b"),
            ("2b", "5a"),
            ("5a", "6b"),
            ("6b", "7a"),
        ],
    )
