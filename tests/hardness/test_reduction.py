"""Tests for the Theorem 1 NP-hardness reduction."""

import itertools
import random

import pytest

from repro.graphs.homomorphism import check_valid_run
from repro.hardness.reduction import (
    BipartiteInstance,
    build_run1,
    build_run2,
    forbidden_minor_specification,
    has_biclique,
    min_edit_cost_by_enumeration,
    reduction_gap,
)
from repro.sptree.canonical import is_series_parallel


def full_biclique(n, ell):
    return BipartiteInstance(
        n=n,
        edges=frozenset(
            (x, y) for x in range(n) for y in range(n)
        ),
        ell=ell,
    )


class TestSpecification:
    def test_forbidden_minor_is_not_sp(self):
        assert not is_series_parallel(forbidden_minor_specification())

    def test_runs_are_valid_general_runs(self):
        instance = full_biclique(3, 2)
        spec = forbidden_minor_specification()
        check_valid_run(build_run1(instance), spec)
        check_valid_run(build_run2(instance), spec)

    def test_run_sizes(self):
        instance = full_biclique(3, 2)
        run1 = build_run1(instance)
        assert run1.num_nodes == 2 + 6
        assert run1.num_edges == 4 * 3 + 9
        run2 = build_run2(instance)
        assert run2.num_edges == 4 * 2 + 4


class TestInstanceValidation:
    def test_ell_bounds(self):
        with pytest.raises(Exception):
            BipartiteInstance(3, frozenset(), 0)
        with pytest.raises(Exception):
            BipartiteInstance(3, frozenset(), 4)

    def test_edge_bounds(self):
        with pytest.raises(Exception):
            BipartiteInstance(2, frozenset({(5, 0)}), 1)

    def test_threshold_formula(self):
        instance = full_biclique(4, 2)
        assert instance.gamma_threshold == (16 - 4) + 4 * (4 - 2)


class TestBicliqueDecision:
    def test_complete_graph_has_biclique(self):
        assert has_biclique(full_biclique(3, 2))

    def test_empty_graph_has_none(self):
        instance = BipartiteInstance(3, frozenset(), 1)
        assert not has_biclique(instance)

    def test_diagonal_only(self):
        diagonal = BipartiteInstance(
            3, frozenset((i, i) for i in range(3)), 2
        )
        assert not has_biclique(diagonal)
        assert has_biclique(
            BipartiteInstance(3, frozenset((i, i) for i in range(3)), 1)
        )


class TestReductionClaim:
    @pytest.mark.parametrize("seed", range(8))
    def test_both_directions_on_random_instances(self, seed):
        """cost <= Γ iff biclique exists; otherwise cost >= Γ + 2."""
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        ell = rng.randint(1, n)
        density = rng.uniform(0.3, 0.9)
        edges = frozenset(
            (x, y)
            for x in range(n)
            for y in range(n)
            if rng.random() < density
        )
        if not edges:
            edges = frozenset({(0, 0)})
        instance = BipartiteInstance(n, edges, ell)
        cost, threshold, exists = reduction_gap(instance)
        if exists:
            assert cost <= threshold
        else:
            assert cost >= threshold + 2

    def test_exact_cost_when_clique_exists(self):
        instance = full_biclique(3, 2)
        cost = min_edit_cost_by_enumeration(instance)
        assert cost == instance.gamma_threshold

    def test_missing_edge_increases_cost(self):
        n = 2
        # One edge missing from the 2x2 biclique.
        edges = frozenset({(0, 0), (0, 1), (1, 0)})
        instance = BipartiteInstance(n, edges, 2)
        cost, threshold, exists = reduction_gap(instance)
        assert not exists
        assert cost == threshold + 2
