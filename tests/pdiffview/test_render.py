"""Tests for the ASCII rendering layer."""

import pytest

from repro.core.api import diff_runs
from repro.pdiffview.render import (
    render_graph,
    render_operation,
    render_script,
    render_side_by_side,
    render_statistics,
)


class TestGraphRendering:
    def test_mentions_counts_and_edges(self, fig2_r1):
        text = render_graph(fig2_r1.graph)
        assert "7 nodes" in text
        assert "8 edges" in text
        assert "1a -> 2a" in text

    def test_levels_are_topological(self, fig2_r1):
        text = render_graph(fig2_r1.graph)
        assert text.index("level 0") < text.index("level 1")

    def test_labels_shown_when_distinct(self, fig2_r1):
        text = render_graph(fig2_r1.graph)
        assert "1a[1]" in text


class TestStatistics:
    def test_panel(self, fig2_r1):
        text = render_statistics(fig2_r1.statistics(), title="R1")
        assert "[R1]" in text
        assert "nodes" in text
        assert "fork_copies" in text


class TestScriptRendering:
    def test_overview(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        text = render_script(result)
        assert "delta(R1, R2) = 4" in text
        assert "path-insertion" in text

    def test_truncation(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        text = render_script(result, max_operations=2)
        assert "2 more operations" in text

    def test_operation_glyphs(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        deletions = [
            op
            for op in result.script.operations
            if op.kind == "path-deletion"
        ]
        line = render_operation(1, deletions[0])
        assert line.strip().startswith("[")
        assert " - " in line or "- " in line

    def test_no_script(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, with_script=False)
        assert "no script" in render_script(result)


class TestSideBySide:
    def test_alignment(self):
        text = render_side_by_side(["aa", "b"], ["x"], gutter="|")
        lines = text.splitlines()
        assert lines[0] == "aa|x"
        assert lines[1] == "b |"


class TestCyclicFallback:
    def test_cyclic_collapsed_graph_renders(self):
        """Composite collapses can produce cycles; rendering must not
        fail (falls back to BFS levels)."""
        from repro.graphs.flow_network import FlowNetwork

        graph = FlowNetwork(name="cyclic")
        for node in ("io", "work"):
            graph.add_node(node)
        graph.add_edge("io", "work")
        graph.add_edge("work", "io")
        text = render_graph(graph)
        assert "cyclic" in text
        assert "io -> work" in text
        assert "level" in text
