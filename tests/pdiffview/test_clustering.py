"""Tests for module clustering and zoomable diff profiles (§VII)."""

import pytest

from repro.core.api import diff_runs
from repro.errors import ReproError
from repro.pdiffview.clustering import (
    Cluster,
    ModuleHierarchy,
    clustered_diff_profile,
    collapse_run_graph,
)


@pytest.fixture(scope="module")
def hierarchy(fig2_spec):
    return ModuleHierarchy(
        fig2_spec,
        [
            Cluster(
                name="search",
                children=[
                    Cluster(name="blast", labels=["3", "4", "5"]),
                    Cluster(name="collect", labels=["2", "6"]),
                ],
            ),
            Cluster(name="io", labels=["1", "7"]),
        ],
    )


class TestHierarchy:
    def test_depth(self, hierarchy):
        assert hierarchy.depth() == 3

    def test_level_composites(self, hierarchy):
        level1 = [c.name for c in hierarchy.composites_at_level(1)]
        assert level1 == ["search", "io"]
        level2 = [c.name for c in hierarchy.composites_at_level(2)]
        assert level2 == ["blast", "collect", "io"]

    def test_composite_of(self, hierarchy):
        assert hierarchy.composite_of("3", 1) == "search"
        assert hierarchy.composite_of("3", 2) == "blast"
        assert hierarchy.composite_of("1", 1) == "io"

    def test_duplicate_label_rejected(self, fig2_spec):
        with pytest.raises(ReproError, match="appears in clusters"):
            ModuleHierarchy(
                fig2_spec,
                [
                    Cluster(name="one", labels=["3"]),
                    Cluster(name="two", labels=["3"]),
                ],
            )

    def test_unknown_label_rejected(self, fig2_spec):
        with pytest.raises(ReproError, match="unknown"):
            ModuleHierarchy(
                fig2_spec, [Cluster(name="bad", labels=["99"])]
            )


class TestCollapse:
    def test_collapsed_run(self, hierarchy, fig2_r1):
        collapsed = collapse_run_graph(fig2_r1.graph, hierarchy, 1)
        assert set(collapsed.nodes()) == {"search", "io"}
        # io -> search (1->2) and search -> io (6->7).
        assert collapsed.has_edge("io", "search")
        assert collapsed.has_edge("search", "io")

    def test_finer_level(self, hierarchy, fig2_r1):
        collapsed = collapse_run_graph(fig2_r1.graph, hierarchy, 2)
        assert set(collapsed.nodes()) == {"blast", "collect", "io"}
        # collect(2) -> blast(3,4) edges survive with multiplicity.
        assert collapsed.edge_multiset()[("collect", "blast")] == 3


class TestProfiles:
    def test_change_attributed_to_search(
        self, hierarchy, fig2_r1, fig2_r2
    ):
        result = diff_runs(fig2_r1, fig2_r2)
        profile = clustered_diff_profile(result, hierarchy, 1)
        names = [change.composite for change in profile]
        assert names[0] == "search"  # all edits touch the blast section
        total_cost = sum(change.cost for change in profile)
        assert total_cost == pytest.approx(result.distance)

    def test_zoomed_profile(self, hierarchy, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        profile = clustered_diff_profile(result, hierarchy, 2)
        by_name = {change.composite: change for change in profile}
        assert "blast" in by_name or "collect" in by_name
        for change in profile:
            assert change.touched_edges >= change.operations

    def test_requires_script(self, hierarchy, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, with_script=False)
        with pytest.raises(ReproError, match="script"):
            clustered_diff_profile(result, hierarchy, 1)
