"""Tests for the PDiffView session facade."""

import pytest

from repro.errors import ReproError
from repro.pdiffview.session import DiffView, PDiffViewSession
from repro.workflow.execution import ExecutionParams
from repro.workflow.real_workflows import protein_annotation


@pytest.fixture
def session(tmp_path):
    session = PDiffViewSession(tmp_path)
    session.register_specification(protein_annotation())
    return session


VARIED = ExecutionParams(
    prob_parallel=0.6, max_fork=3, prob_fork=0.6, max_loop=2, prob_loop=0.6
)


class TestSession:
    def test_register_and_list(self, session):
        assert session.specifications() == ["PA"]

    def test_generate_and_list_runs(self, session):
        session.generate_run("PA", "monday", VARIED, seed=1)
        session.generate_run("PA", "tuesday", VARIED, seed=2)
        assert session.runs("PA") == ["monday", "tuesday"]

    def test_reload_from_store(self, session, tmp_path):
        session.generate_run("PA", "monday", VARIED, seed=1)
        fresh = PDiffViewSession(tmp_path)
        spec = fresh.specification("PA")
        assert spec.characteristics() == protein_annotation().characteristics()
        run = fresh.run("PA", "monday")
        assert run.num_edges >= 1

    def test_show_helpers(self, session):
        session.generate_run("PA", "r", VARIED, seed=3)
        assert "BlastSwP" in session.show_specification("PA")
        assert "nodes" in session.show_run("PA", "r")

    def test_diff_view(self, session):
        session.generate_run("PA", "a", VARIED, seed=4)
        session.generate_run("PA", "b", VARIED, seed=5)
        view = session.diff("PA", "a", "b")
        assert "delta(a, b)" in view.overview()
        assert "[a]" in view.panes()


class TestStepping:
    def test_forward_and_back(self, session):
        session.generate_run("PA", "a", VARIED, seed=6)
        session.generate_run("PA", "b", VARIED, seed=7)
        view = session.diff("PA", "a", "b")
        if len(view) == 0:
            pytest.skip("seeds produced equivalent runs")
        first = view.step_forward()
        assert first is not None
        assert view.position == 1
        again = view.step_back()
        assert view.position == 0
        assert again == first

    def test_snapshots(self, session):
        session.generate_run("PA", "a", VARIED, seed=6)
        session.generate_run("PA", "b", VARIED, seed=7)
        view = session.diff("PA", "a", "b", record_intermediates=True)
        initial = view.state_after_cursor()
        assert initial.num_edges >= 1
        if len(view):
            view.step_forward()
            after = view.state_after_cursor()
            assert after is not None

    def test_exhausted_cursor(self, session):
        session.generate_run("PA", "a", VARIED, seed=6)
        session.generate_run("PA", "same", VARIED, seed=6)
        view = session.diff("PA", "a", "same")
        assert len(view) == 0
        assert view.current() is None
        assert view.step_forward() is None
        assert view.step_back() is None


class TestCompactOverview:
    def test_compact_overview_renders(self, session):
        session.generate_run("PA", "a", VARIED, seed=4)
        session.generate_run("PA", "b", VARIED, seed=5)
        view = session.diff("PA", "a", "b")
        text = view.compact_overview()
        assert "delta(a, b)" in text
        # The compact form never has more lines than elementary ops + 1.
        assert len(text.splitlines()) <= len(view) + 1


class TestDistanceMatrix:
    def test_matrix_pairs(self, session):
        for name, seed in (("a", 1), ("b", 2), ("c", 3)):
            session.generate_run("PA", name, VARIED, seed=seed)
        matrix = session.distance_matrix("PA")
        assert set(matrix) == {("a", "b"), ("a", "c"), ("b", "c")}
        for value in matrix.values():
            assert value >= 0.0

    def test_matrix_triangle_inequality(self, session):
        for name, seed in (("a", 1), ("b", 2), ("c", 3)):
            session.generate_run("PA", name, VARIED, seed=seed)
        matrix = session.distance_matrix("PA")
        ab, ac, bc = matrix[("a", "b")], matrix[("a", "c")], matrix[("b", "c")]
        assert ac <= ab + bc + 1e-9
        assert ab <= ac + bc + 1e-9
