"""The deterministic fixture corpus shared by the service suite.

Imported by ``conftest.py`` for in-process fixtures, and runnable as a
script to materialise the same corpus on disk for an *external* server
(the CI job boots ``repro serve`` over it and points the remote half of
the conformance suite at it via ``REPRO_REMOTE_URL``)::

    python tests/service/_fixture.py /path/to/store

Determinism is the point: ``execute_workflow`` is seeded, so every
invocation — in any process, on any host — produces byte-identical
runs with identical fingerprints.  That is what lets the conformance
suite assert *bit-identical* distances and scripts between a local
workspace and a remote server built from this script.
"""

from __future__ import annotations

import sys

from repro.config import ReproConfig
from repro.workflow.execution import ExecutionParams
from repro.workflow.real_workflows import protein_annotation
from repro.workspace import Workspace

SPEC_NAME = "PA"

#: Execution variability used for every fixture run (kept modest so the
#: O(|E|³) diffs stay fast in CI).
VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)

#: Seeds of the corpus runs ``r01`` .. ``r04``.
RUN_SEEDS = (1, 2, 3, 4)


def run_name(seed: int) -> str:
    """The fixture run name for a seed."""
    return f"r{seed:02d}"


def build_corpus(root) -> Workspace:
    """Materialise the fixture corpus at ``root`` (idempotent)."""
    workspace = Workspace(root, ReproConfig(backend="serial"))
    workspace.register(protein_annotation())
    for seed in RUN_SEEDS:
        workspace.generate_run(
            run_name(seed), params=VARIED, seed=seed
        )
    return workspace


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit("usage: _fixture.py STORE_DIR")
    built = build_corpus(sys.argv[1])
    print(
        f"fixture corpus at {built.store.root}: "
        f"{built.runs(SPEC_NAME)}"
    )
