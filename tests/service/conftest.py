"""Fixtures for the diff-service suite: corpus, live server, both APIs.

The ``api`` fixture is the heart of the protocol-conformance story: it
is parametrized over the local :class:`Workspace`, the
:class:`RemoteWorkspace` (talking to a live in-thread server over the
same store), and a :class:`RemoteWorkspace` over a two-worker
:class:`~repro.cluster.server.ClusterServer` — so every test written
against it proves all three implementations agree, byte for byte.

Setting ``REPRO_REMOTE_URL`` redirects the remote half at an external
``repro serve`` process instead (the CI job boots one over the corpus
that ``_fixture.py`` builds); ``REPRO_CLUSTER_URL`` does the same for
the cluster half.  Everything in ``_fixture.py`` is
seed-deterministic, so cross-process comparisons remain bit-exact.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _fixture import SPEC_NAME, VARIED, build_corpus  # noqa: E402

from repro.client import RemoteWorkspace  # noqa: E402
from repro.config import ReproConfig  # noqa: E402
from repro.service.server import DiffServer  # noqa: E402
from repro.workspace import Workspace  # noqa: E402


@pytest.fixture(scope="module")
def corpus_root(tmp_path_factory):
    """A freshly built fixture corpus (one per test module)."""
    root = tmp_path_factory.mktemp("service-corpus")
    build_corpus(root)
    return root


@pytest.fixture(scope="module")
def local_ws(corpus_root) -> Workspace:
    """The local workspace over the fixture corpus."""
    return Workspace(corpus_root, ReproConfig(backend="serial"))


@pytest.fixture(scope="module")
def server(corpus_root):
    """A live diff server over the fixture corpus (in-thread)."""
    with DiffServer(
        corpus_root, ReproConfig(backend="serial", log_format="off")
    ) as live:
        yield live


@pytest.fixture(scope="module")
def server_url(server) -> str:
    """Base URL of the server the remote half talks to.

    ``REPRO_REMOTE_URL`` overrides with an external ``repro serve``
    process (expected to host the ``_fixture.py`` corpus).
    """
    external = os.environ.get("REPRO_REMOTE_URL")
    if external:
        return external.rstrip("/")
    return server.url


@pytest.fixture(scope="module")
def remote_ws(server_url) -> RemoteWorkspace:
    """The remote workspace client over the live server."""
    return RemoteWorkspace(server_url)


@pytest.fixture(scope="module")
def cluster_server(corpus_root):
    """A live two-worker cluster over the fixture corpus.

    Yields ``None`` when ``REPRO_CLUSTER_URL`` points at an external
    cluster (the CI job's ``repro serve --workers 2``).
    """
    if os.environ.get("REPRO_CLUSTER_URL"):
        yield None
        return
    from repro.cluster.server import ClusterServer

    with ClusterServer(
        corpus_root,
        ReproConfig(backend="serial", log_format="off"),
        workers=2,
    ) as live:
        yield live


@pytest.fixture(scope="module")
def cluster_url(cluster_server) -> str:
    """Base URL of the cluster the third conformance half talks to."""
    external = os.environ.get("REPRO_CLUSTER_URL")
    if external:
        return external.rstrip("/")
    return cluster_server.url


@pytest.fixture(scope="module")
def cluster_ws(cluster_url) -> RemoteWorkspace:
    """A remote workspace client over the routing cluster parent."""
    return RemoteWorkspace(cluster_url)


@pytest.fixture(params=["local", "remote", "cluster"])
def api(request, local_ws, remote_ws, cluster_ws):
    """Any workspace implementation — the conformance pivot."""
    return {
        "local": local_ws,
        "remote": remote_ws,
        "cluster": cluster_ws,
    }[request.param]


@pytest.fixture
def spec_name() -> str:
    """The fixture specification's name."""
    return SPEC_NAME


@pytest.fixture
def varied_params():
    """The execution variability the fixture runs were generated with."""
    return VARIED
