"""Structured error envelopes: the 404/409/400 contract, end to end.

Server side: every :class:`ReproError` subclass leaves as a JSON
envelope with the documented status — never a 500 with a traceback.
Client side: the envelope re-raises as the matching exception class.
"""

import json

import pytest

from repro.api_types import ErrorEnvelope
from repro.client import RemoteWorkspace
from repro.config import ReproConfig
from repro.errors import (
    ConflictError,
    CostModelError,
    InterchangeError,
    NotFoundError,
    ReproError,
)
from repro.service.app import HttpRequest, WorkspaceApp
from repro.workspace import Workspace


@pytest.fixture(scope="module")
def app(corpus_root):
    return WorkspaceApp(
        Workspace(corpus_root, ReproConfig(backend="serial"))
    )


def request(app, method, path, query=None, body=b"", headers=None):
    return app.handle(
        HttpRequest(
            method=method,
            path=path,
            query=dict(query or {}),
            headers=dict(headers or {}),
            body=body,
        )
    )


def envelope_of(response):
    payload = response.json_payload()
    assert set(payload) == {"error"}
    assert set(payload["error"]) == {
        "type", "message", "status", "request_id",
    }
    assert payload["error"]["status"] == response.status
    # Every server-minted envelope carries the correlation ID that the
    # response headers echo.
    assert (
        payload["error"]["request_id"]
        == response.headers["X-Request-Id"]
    )
    return payload["error"]


class TestServerEnvelopes:
    def test_unknown_run_is_404(self, app):
        response = request(app, "GET", "/diff/r01/ghost")
        assert response.status == 404
        error = envelope_of(response)
        assert error["type"] == "NotFoundError"
        assert "ghost" in error["message"]
        assert "Traceback" not in response.body.decode("utf8")

    def test_unknown_spec_is_404(self, app):
        for path, query in [
            ("/runs", {"spec": "ghost"}),
            ("/specs/ghost", {}),
            ("/runs/r01", {"spec": "ghost"}),
        ]:
            response = request(app, "GET", path, query=query)
            assert response.status == 404, path
            assert envelope_of(response)["type"] == "NotFoundError"

    def test_conflicting_spec_is_409(self, app):
        """Importing a same-name, different-content specification must
        conflict, not overwrite."""
        from repro.workflow.generators import random_prov_document

        document = json.dumps(random_prov_document(6, seed=3))
        first = request(
            app,
            "POST",
            "/prov/import",
            query={"name": "f1", "spec_name": "clash"},
            body=document.encode("utf8"),
        )
        assert first.status == 201
        other = json.dumps(random_prov_document(9, seed=4))
        second = request(
            app,
            "POST",
            "/prov/import",
            query={"name": "f2", "spec_name": "clash"},
            body=other.encode("utf8"),
        )
        assert second.status == 409
        assert envelope_of(second)["type"] == "ConflictError"

    def test_malformed_prov_is_400(self, app):
        response = request(
            app,
            "POST",
            "/prov/import",
            body=b"{definitely not json",
        )
        assert response.status == 400
        assert envelope_of(response)["type"] == "InterchangeError"

    def test_malformed_query_body_is_400(self, app):
        response = request(
            app, "POST", "/query", body=b"[not an object"
        )
        assert response.status == 400
        assert envelope_of(response)["type"] == "ReproError"

    def test_bad_cost_spec_is_400(self, app):
        response = request(
            app, "GET", "/diff/r01/r02", query={"cost": "quadratic"}
        )
        assert response.status == 400
        assert envelope_of(response)["type"] == "CostModelError"

    @pytest.mark.parametrize(
        "body",
        [
            {"spec": "PA", "limit": "abc"},
            {"spec": "PA", "limit": True},
            {"spec": "PA", "cursor": 123},
            {"spec": "PA", "runs": [1, 2]},
            {"spec": "PA", "runs": "r01"},
        ],
        ids=[
            "limit-str",
            "limit-bool",
            "cursor-int",
            "runs-ints",
            "runs-str",
        ],
    )
    def test_malformed_query_fields_are_400_not_500(self, app, body):
        response = request(
            app, "POST", "/query", body=json.dumps(body).encode("utf8")
        )
        assert response.status == 400
        assert envelope_of(response)["type"] == "ReproError"

    def test_malformed_matrix_runs_is_400(self, app):
        response = request(
            app,
            "POST",
            "/matrix",
            body=json.dumps({"spec": "PA", "runs": [1]}).encode(
                "utf8"
            ),
        )
        assert response.status == 400

    def test_list_shaped_cursor_is_400(self, app):
        """A cursor whose base64 decodes to non-object JSON must still
        be a clean 400 (regression: AttributeError → 500)."""
        import base64

        cursor = base64.urlsafe_b64encode(b"[1]").decode("ascii")
        response = request(
            app,
            "POST",
            "/query",
            body=json.dumps({"spec": "PA", "cursor": cursor}).encode(
                "utf8"
            ),
        )
        assert response.status == 400
        assert "cursor" in envelope_of(response)["message"]

    def test_bad_cursor_is_400(self, app):
        response = request(
            app,
            "POST",
            "/query",
            body=json.dumps(
                {"spec": "PA", "cursor": "%%garbage%%"}
            ).encode("utf8"),
        )
        assert response.status == 400
        assert "cursor" in envelope_of(response)["message"]


class TestClientMapping:
    def test_typed_errors_round_trip_the_wire(self, server_url):
        remote = RemoteWorkspace(server_url)
        with pytest.raises(NotFoundError):
            remote.diff("r01", "ghost", spec="PA")
        with pytest.raises(NotFoundError):
            remote.export_prov("ghost", spec="PA")
        with pytest.raises(CostModelError):
            remote.diff("r01", "r02", spec="PA", cost=_unserialisable())
        with pytest.raises(ReproError, match="cannot reach"):
            RemoteWorkspace("http://127.0.0.1:1", timeout=0.5).runs()

    def test_conflict_maps_to_conflict_error(self, server_url):
        from repro.workflow.generators import random_prov_document

        remote = RemoteWorkspace(server_url)
        remote.import_prov(
            random_prov_document(6, seed=7),
            name="c1",
            spec_name="remote-clash",
        )
        with pytest.raises(ConflictError):
            remote.import_prov(
                random_prov_document(9, seed=8),
                name="c2",
                spec_name="remote-clash",
            )


class TestEnvelopeType:
    def test_statuses_by_class(self):
        assert ErrorEnvelope.from_exception(
            NotFoundError("x")
        ).status == 404
        assert ErrorEnvelope.from_exception(
            ConflictError("x")
        ).status == 409
        assert ErrorEnvelope.from_exception(
            InterchangeError("x")
        ).status == 400
        assert ErrorEnvelope.from_exception(ReproError("x")).status == 400
        internal = ErrorEnvelope.from_exception(ValueError("secret"))
        assert internal.status == 500
        assert "secret" not in internal.message  # nothing leaks

    def test_to_exception_rebuilds_the_subclass(self):
        envelope = ErrorEnvelope.from_exception(NotFoundError("gone"))
        rebuilt = envelope.to_exception()
        assert isinstance(rebuilt, NotFoundError)
        assert str(rebuilt) == "gone"

    def test_unknown_type_degrades_to_base_error(self):
        envelope = ErrorEnvelope(
            type="SomeFutureError", message="m", status=400
        )
        assert type(envelope.to_exception()) is ReproError

    def test_non_envelope_payload_is_rejected(self):
        assert ErrorEnvelope.from_payload({"weird": 1}) is None
        assert ErrorEnvelope.from_payload("html") is None


def _unserialisable():
    """A cost model the wire grammar cannot express."""
    from repro.costs.standard import CallableCost

    return CallableCost(lambda length, a, b: float(length), "custom")
