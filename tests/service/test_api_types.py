"""The wire dataclasses: exact round trips, versioning, mapping faces."""

import json

import pytest

from repro.api_types import (
    DiffOutcome,
    ErrorEnvelope,
    ImportSummary,
    MatrixResult,
    QueryFilter,
    QueryPage,
    StatsSnapshot,
    decode_cursor,
    encode_cursor,
)
from repro.core.edit_script import PathOperation
from repro.errors import ReproError


def sample_operation() -> PathOperation:
    return PathOperation(
        kind="path-deletion",
        cost=2.0,
        length=3,
        source_label="s",
        sink_label="t",
        path_labels=("s", "m", "n", "t"),
        note="unit",
    )


def sample_outcome() -> DiffOutcome:
    return DiffOutcome(
        spec_name="PA",
        run_a="a",
        run_b="b",
        cost_model="UnitCost",
        distance=2.0,
        operations=[sample_operation()],
        cost_key="PowerCost(ε=0.0)",
    )


class TestDiffOutcome:
    def test_round_trip_is_exact(self):
        outcome = sample_outcome()
        clone = DiffOutcome.from_dict(outcome.to_dict())
        assert clone == outcome
        assert clone.operations[0] == outcome.operations[0]
        assert clone.operations[0] is not outcome.operations[0]

    def test_survives_json_transport(self):
        payload = json.loads(json.dumps(sample_outcome().to_dict()))
        assert DiffOutcome.from_dict(payload) == sample_outcome()

    def test_to_dict_names_the_cost_identity(self):
        payload = sample_outcome().to_dict()
        assert payload["cost_key"] == "PowerCost(ε=0.0)"
        assert payload["v"] == 1

    def test_unknown_version_rejected(self):
        payload = sample_outcome().to_dict()
        payload["v"] = 99
        with pytest.raises(ReproError, match="schema version"):
            DiffOutcome.from_dict(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ReproError):
            DiffOutcome.from_dict({"v": 1, "spec": "x"})
        with pytest.raises(ReproError):
            DiffOutcome.from_dict("not a dict")


class TestMatrixResult:
    def sample(self) -> MatrixResult:
        return MatrixResult(
            spec_name="PA",
            cost_model="UnitCost",
            cost_key="PowerCost(ε=0.0)",
            runs=["a", "b|c", "d"],
            distances={("a", "b|c"): 1.5, ("a", "d"): 0.0},
        )

    def test_round_trip_is_exact(self):
        result = self.sample()
        assert MatrixResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        ) == result

    def test_names_with_delimiters_survive(self):
        """Triples, not joined strings: ``|`` in a name is fine."""
        clone = MatrixResult.from_dict(self.sample().to_dict())
        assert clone[("a", "b|c")] == 1.5

    def test_mapping_face(self):
        result = self.sample()
        assert len(result) == 2
        assert ("a", "d") in result
        assert result.get(("a", "d")) == 0.0
        assert dict(result.items()) == result.distances
        assert result == result.distances  # equality vs plain dict
        assert result != {("a", "d"): 0.0}

    def test_unknown_version_rejected(self):
        payload = self.sample().to_dict()
        payload["v"] = 2
        with pytest.raises(ReproError, match="schema version"):
            MatrixResult.from_dict(payload)


class TestQueryFilter:
    def test_round_trip(self):
        filter = QueryFilter(
            kinds=("path-deletion", "path-insertion"),
            touches=("alignSeq",),
            min_cost=1.0,
            max_ops=9,
        )
        assert QueryFilter.from_dict(filter.to_dict()) == filter

    def test_empty_forms(self):
        assert QueryFilter.from_dict(None) == QueryFilter()
        assert QueryFilter.from_dict({}) == QueryFilter()
        assert QueryFilter().is_empty()
        assert QueryFilter().to_predicate() is None
        assert QueryFilter().describe() == "*"

    def test_describe_matches_predicate_wording(self):
        filter = QueryFilter(min_cost=2.0)
        assert filter.describe() == "cost(min=2)"
        assert filter.describe() == filter.to_predicate().describe()

    def test_predicate_equivalence(self):
        """The declarative filter selects exactly what the equivalent
        hand-built Q predicate selects."""
        from repro.query.predicates import Q

        filter = QueryFilter(kinds=("path-deletion",), min_cost=1.0)
        predicate = Q.op_kind("path-deletion") & Q.cost(min=1.0)
        assert (
            filter.to_predicate().describe() == predicate.describe()
        )


class TestQueryPage:
    def test_round_trip(self):
        page = QueryPage(
            spec_name="PA",
            cost_model="UnitCost",
            cost_key="PowerCost(ε=0.0)",
            filter=QueryFilter(min_cost=1.0),
            total_matches=7,
            items=[sample_outcome()],
            cursor=encode_cursor(2),
            next_cursor=encode_cursor(3),
        )
        clone = QueryPage.from_dict(
            json.loads(json.dumps(page.to_dict()))
        )
        assert clone == page


class TestCursors:
    def test_round_trip(self):
        for offset in (0, 1, 17, 100000):
            assert decode_cursor(encode_cursor(offset)) == offset

    def test_none_and_empty_mean_start(self):
        assert decode_cursor(None) == 0
        assert decode_cursor("") == 0

    @pytest.mark.parametrize(
        "bad", ["garbage", "bm90LWpzb24=", "eyJ2IjogOTl9"]
    )
    def test_garbage_rejected(self, bad):
        with pytest.raises(ReproError, match="cursor"):
            decode_cursor(bad)

    def test_negative_offset_rejected(self):
        import base64, json as _json

        raw = base64.urlsafe_b64encode(
            _json.dumps({"v": 1, "o": -4}).encode()
        ).decode()
        with pytest.raises(ReproError, match="cursor"):
            decode_cursor(raw)


class TestStatsSnapshot:
    def test_round_trip_and_accessors(self):
        snapshot = StatsSnapshot(
            counters={"computed_pairs": 3}, source="local"
        )
        clone = StatsSnapshot.from_dict(snapshot.to_dict())
        assert clone == snapshot
        assert clone["computed_pairs"] == 3
        assert clone.get("missing") == 0


class TestImportSummary:
    def test_round_trip(self):
        summary = ImportSummary(
            spec_name="ext",
            run_name="first",
            origin="normalized",
            nodes=9,
            edges=12,
            report={"forced": 1},
            report_lines=["SP-ized with 1 forced serialisation"],
            new_pairs={("a", "first"): 2.0},
        )
        clone = ImportSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone == summary


class TestErrorEnvelopeWire:
    def test_round_trip(self):
        envelope = ErrorEnvelope(
            type="NotFoundError", message="gone", status=404
        )
        assert (
            ErrorEnvelope.from_payload(envelope.to_dict()) == envelope
        )
