"""The HTTP layer itself: routes, negotiation, ETags, live sockets.

Most tests drive the framework-free :class:`WorkspaceApp` directly
(request in, response out — no socket); the live-server class at the
end exercises the real ``ThreadingHTTPServer`` + ``urllib`` path,
including keep-alive and percent-encoded names.
"""

import json

import pytest

from repro.client import RemoteWorkspace
from repro.config import ReproConfig
from repro.io.xml_io import specification_to_xml
from repro.service.app import (
    HttpRequest,
    PROV_JSON_TYPE,
    WorkspaceApp,
    XML_TYPE,
)
from repro.workflow.real_workflows import emboss
from repro.workspace import Workspace


@pytest.fixture(scope="module")
def app(corpus_root):
    return WorkspaceApp(
        Workspace(corpus_root, ReproConfig(backend="serial"))
    )


def get(app, path, query=None, headers=None):
    return app.handle(
        HttpRequest(
            method="GET",
            path=path,
            query=dict(query or {}),
            headers={
                key.lower(): value
                for key, value in (headers or {}).items()
            },
        )
    )


def post(app, path, payload=None, query=None, body=None, headers=None):
    if payload is not None:
        body = json.dumps(payload).encode("utf8")
    return app.handle(
        HttpRequest(
            method="POST",
            path=path,
            query=dict(query or {}),
            headers={
                key.lower(): value
                for key, value in (headers or {}).items()
            },
            body=body or b"",
        )
    )


class TestRoutes:
    def test_healthz(self, app):
        response = get(app, "/healthz")
        assert response.status == 200
        payload = response.json_payload()
        assert payload["status"] == "ok"
        assert payload["specifications"] == 1

    def test_stats_carries_service_and_server_counters(self, app):
        payload = get(app, "/stats").json_payload()
        assert payload["source"] == "server"
        assert "computed_pairs" in payload["counters"]
        assert payload["counters"]["server_requests"] >= 1

    def test_specs_listing_and_summary(self, app, spec_name):
        assert get(app, "/specs").json_payload()["specs"] == [
            spec_name
        ]
        summary = get(app, f"/specs/{spec_name}").json_payload()
        assert summary["spec"] == spec_name
        assert summary["nodes"] > 0
        assert summary["runs"] == 4

    def test_spec_content_negotiation(self, app, spec_name):
        response = get(
            app, f"/specs/{spec_name}", headers={"Accept": XML_TYPE}
        )
        assert response.content_type == XML_TYPE
        assert b"<specification" in response.body

    def test_runs_listing_resolves_default_spec(self, app, spec_name):
        payload = get(app, "/runs").json_payload()
        assert payload["spec"] == spec_name
        assert payload["runs"] == ["r01", "r02", "r03", "r04"]

    def test_run_summary_and_prov_negotiation(self, app):
        summary = get(app, "/runs/r01").json_payload()
        assert summary["run"] == "r01"
        assert len(summary["fingerprint"]) == 64
        response = get(
            app, "/runs/r01", headers={"Accept": PROV_JSON_TYPE}
        )
        assert response.content_type == PROV_JSON_TYPE
        document = json.loads(response.body.decode("utf8"))
        assert "activity" in document

    def test_diff_payload_is_a_versioned_outcome(self, app):
        payload = get(app, "/diff/r01/r02").json_payload()
        assert payload["v"] == 1
        assert payload["run_a"] == "r01"
        assert payload["cost_key"] == "PowerCost(ε=0.0)"
        assert payload["distance"] == pytest.approx(
            sum(op["cost"] for op in payload["operations"])
        )

    def test_matrix_route(self, app, spec_name):
        payload = post(app, "/matrix", payload={}).json_payload()
        assert payload["spec"] == spec_name
        assert len(payload["distances"]) == 6
        subset = post(
            app, "/matrix", payload={"runs": ["r01", "r02"]}
        ).json_payload()
        assert len(subset["distances"]) == 1

    def test_query_route_pages(self, app):
        first = post(
            app, "/query", payload={"limit": 4}
        ).json_payload()
        assert first["total_matches"] == 6
        assert len(first["items"]) == 4
        assert first["next_cursor"]
        second = post(
            app,
            "/query",
            payload={"limit": 4, "cursor": first["next_cursor"]},
        ).json_payload()
        assert len(second["items"]) == 2
        assert second["next_cursor"] is None

    def test_unknown_route_is_an_envelope_404(self, app):
        response = get(app, "/nonsense")
        assert response.status == 404
        assert (
            response.json_payload()["error"]["type"] == "NotFoundError"
        )

    def test_wrong_method_is_405(self, app):
        response = post(app, "/specs/PA", payload={})
        assert response.status == 405


class TestEtagCaching:
    def test_repeated_diff_revalidates_to_304(self, app):
        first = get(app, "/diff/r01/r03")
        etag = first.headers["ETag"]
        assert etag.startswith('"')
        again = get(
            app, "/diff/r01/r03", headers={"If-None-Match": etag}
        )
        assert again.status == 304
        assert again.body == b""
        assert again.headers["ETag"] == etag

    def test_etag_differs_per_direction_and_cost(self, app):
        forward = get(app, "/diff/r01/r03").headers["ETag"]
        backward = get(app, "/diff/r03/r01").headers["ETag"]
        lengthwise = get(
            app, "/diff/r01/r03", query={"cost": "length"}
        ).headers["ETag"]
        assert len({forward, backward, lengthwise}) == 3

    def test_stale_etag_gets_a_fresh_body(self, app):
        response = get(
            app, "/diff/r01/r03", headers={"If-None-Match": '"stale"'}
        )
        assert response.status == 200
        assert response.json_payload()["run_a"] == "r01"

    def test_etag_changes_when_a_run_changes(
        self, app, varied_params
    ):
        """Rewriting a run's file invalidates the tag through the
        fingerprint index's stamp check."""
        from repro.workflow.execution import execute_workflow

        ws = app.workspace
        spec = ws.specification("PA")
        ws.import_run(
            execute_workflow(spec, varied_params, seed=401, name="mut")
        )
        first = get(app, "/diff/r01/mut").headers["ETag"]
        ws.import_run(
            execute_workflow(spec, varied_params, seed=402, name="mut")
        )
        second = get(app, "/diff/r01/mut").headers["ETag"]
        assert first != second

    def test_every_wire_cost_carries_an_identity_and_tags(self, app):
        """Every cost the wire grammar can express has a cache
        identity, so every served diff is revalidatable."""
        response = get(
            app, "/diff/r01/r02", query={"cost": "power:0.25"}
        )
        assert "ETag" in response.headers


class TestLiveServer:
    """Through the real socket: server fixture + urllib client."""

    def test_percent_encoded_names_round_trip(
        self, server, varied_params
    ):
        from repro.workflow.execution import execute_workflow

        remote = RemoteWorkspace(server.url)
        spec = server.workspace.specification("PA")
        weird = "runs/are weird? yes#1"
        run = execute_workflow(
            spec, varied_params, seed=55, name=weird
        )
        remote.import_run(run)
        assert weird in remote.runs(spec="PA")
        outcome = remote.diff("r01", weird, spec="PA")
        assert outcome.run_b == weird
        assert remote.run(weird, spec="PA").equivalent(run)

    def test_client_etag_memo_survives_across_calls(self, server):
        remote = RemoteWorkspace(server.url)
        before = server.app.not_modified
        first = remote.diff("r01", "r04")
        second = remote.diff("r01", "r04")
        assert first.to_dict() == second.to_dict()
        assert server.app.not_modified == before + 1

    def test_healthz_over_the_wire(self, server):
        assert RemoteWorkspace(server.url).healthz()["status"] == "ok"

    def test_register_over_the_wire_conflicts_on_name_mismatch(
        self, server
    ):
        import urllib.request

        from repro.errors import ConflictError

        body = specification_to_xml(emboss()).encode("utf8")
        request = urllib.request.Request(
            server.url + "/specs/not-emboss",
            data=body,
            method="PUT",
            headers={"Content-Type": XML_TYPE},
        )
        with pytest.raises(Exception):  # urllib surfaces HTTP 409
            urllib.request.urlopen(request)
        # The client maps the same failure to ConflictError.
        remote = RemoteWorkspace(server.url)
        renamed = emboss()
        with pytest.raises(ConflictError):
            remote._request(
                "PUT",
                "/specs/not-emboss",
                body=specification_to_xml(renamed).encode("utf8"),
                headers={"Content-Type": XML_TYPE},
            )
