"""The CLI against a live server: ``--remote`` on every subcommand.

The same ``repro diff/matrix/query/import`` invocations, pointed at a
``repro serve`` endpoint instead of a store directory, must print the
same payloads — the CLI is a shell over the :class:`WorkspaceAPI`
protocol, not over a particular implementation.
"""

import json

import pytest

from repro.cli import main
from repro.workflow.generators import random_prov_document


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRemoteFlag:
    def test_remote_diff_matches_local(
        self, corpus_root, server_url, capsys
    ):
        code, local_out, _ = run_cli(
            capsys, "diff", str(corpus_root), "PA", "r01", "r02",
            "--json",
        )
        assert code == 0
        code, remote_out, _ = run_cli(
            capsys, "diff", "--remote", server_url, "PA",
            "r01", "r02", "--json",
        )
        assert code == 0
        assert json.loads(local_out) == json.loads(remote_out)

    def test_remote_matrix_matches_local(
        self, corpus_root, server_url, capsys
    ):
        _, local_out, _ = run_cli(
            capsys, "matrix", str(corpus_root), "PA", "--json"
        )
        code, remote_out, _ = run_cli(
            capsys, "matrix", "--remote", server_url, "PA", "--json"
        )
        assert code == 0
        assert json.loads(local_out) == json.loads(remote_out)

    def test_remote_query_matches_local(
        self, corpus_root, server_url, capsys
    ):
        args = ["query", "--min-cost", "1", "--json"]
        _, local_out, _ = run_cli(
            capsys, args[0], str(corpus_root), "PA", *args[1:]
        )
        code, remote_out, _ = run_cli(
            capsys, args[0], "--remote", server_url, "PA", *args[1:]
        )
        assert code == 0
        local, remote = json.loads(local_out), json.loads(remote_out)
        assert local["total_matches"] == remote["total_matches"]
        assert local["matches"] == remote["matches"]
        assert local["predicate"] == remote["predicate"]

    def test_remote_query_aggregates_render(
        self, server_url, capsys
    ):
        code, out, _ = run_cli(
            capsys, "query", "--remote", server_url, "PA",
            "--histogram", "--churn",
        )
        assert code == 0
        assert "matching pair(s)" in out
        assert "operation kinds:" in out

    def test_remote_import_prints_summary(
        self, server_url, tmp_path, capsys
    ):
        document = tmp_path / "doc.json"
        document.write_text(
            json.dumps(random_prov_document(6, seed=21)),
            encoding="utf8",
        )
        code, out, _ = run_cli(
            capsys, "import", "--remote", server_url, str(document),
            "--name", "wired", "--spec-name", "cli-ext", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["run"] == "wired"
        assert payload["spec"] == "cli-ext"

    def test_store_and_remote_together_refused(
        self, corpus_root, server_url, capsys
    ):
        code, _, err = run_cli(
            capsys, "diff", str(corpus_root), "PA", "r01", "r02",
            "--remote", server_url,
        )
        assert code == 1
        assert "not both" in err

    def test_neither_store_nor_remote_refused(self, capsys):
        code, _, err = run_cli(capsys, "query", "PA")
        assert code == 1
        assert "STORE directory is required" in err

    def test_unreachable_server_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "matrix", "--remote", "http://127.0.0.1:1", "PA"
        )
        assert code == 1
        assert "cannot reach" in err


class TestVersionFlag:
    def test_version_reports_the_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
