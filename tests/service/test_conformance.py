"""Protocol conformance: ``Workspace`` ≡ ``RemoteWorkspace``.

Every test here runs against both implementations through the
parametrized ``api`` fixture (the remote one talking to a live server),
and the cross-implementation tests assert *bit-identical* payloads —
distances, edit scripts, and query results may never drift between the
in-process and the served workspace.

Ordering note: the corpus-mutating tests (uploads, second spec) sit at
the end of the module so the exact-listing assertions above them stay
valid; pytest executes tests in definition order.
"""

import pytest

from repro.api_types import QueryFilter, StatsSnapshot, WorkspaceAPI
from repro.costs.standard import LengthCost, PowerCost
from repro.errors import NotFoundError, ReproError
from repro.query.aggregate import module_churn, op_kind_histogram
from repro.workflow.execution import execute_workflow
from repro.workflow.real_workflows import emboss

RUN_NAMES = ["r01", "r02", "r03", "r04"]


class TestSurface:
    def test_satisfies_the_protocol(self, api):
        assert isinstance(api, WorkspaceAPI)

    def test_listings(self, api, spec_name):
        assert spec_name in api.specifications()
        assert api.runs(spec=spec_name) == RUN_NAMES
        assert api.runs() == RUN_NAMES  # single-spec default resolution

    def test_specification_object(self, api, spec_name):
        spec = api.specification(spec_name)
        assert spec.name == spec_name
        assert spec.graph.num_nodes > 0

    def test_run_object_is_equivalent(self, api, local_ws):
        downloaded = api.run("r01")
        assert downloaded.equivalent(local_ws.run("r01"))

    def test_stats_snapshot(self, api):
        snapshot = api.stats_snapshot()
        assert isinstance(snapshot, StatsSnapshot)
        assert "computed_pairs" in snapshot.counters


class TestIdenticalResults:
    """Local and remote must agree to the last bit (and byte)."""

    @pytest.mark.parametrize(
        "pair", [("r01", "r02"), ("r02", "r01"), ("r03", "r04")]
    )
    def test_diff_payloads_identical(self, local_ws, remote_ws, pair):
        local = local_ws.diff(*pair)
        remote = remote_ws.diff(*pair)
        assert local.to_dict() == remote.to_dict()
        assert local.distance == remote.distance  # bit-identical float
        assert local.cost_key == remote.cost_key

    @pytest.mark.parametrize(
        "cost", [LengthCost(), PowerCost(0.5)], ids=["length", "power"]
    )
    def test_diffs_identical_under_other_costs(
        self, local_ws, remote_ws, cost
    ):
        local = local_ws.diff("r01", "r03", cost=cost)
        remote = remote_ws.diff("r01", "r03", cost=cost)
        assert local.to_dict() == remote.to_dict()

    def test_matrix_identical(self, local_ws, remote_ws):
        local = local_ws.matrix()
        remote = remote_ws.matrix()
        assert local == remote  # MatrixResult field equality
        assert local.to_dict() == remote.to_dict()
        assert dict(local) == dict(remote)  # legacy mapping face

    def test_matrix_subset_identical(self, local_ws, remote_ws):
        subset = ["r01", "r03"]
        assert local_ws.matrix(runs=subset).to_dict() == (
            remote_ws.matrix(runs=subset).to_dict()
        )

    def test_query_results_identical(self, local_ws, remote_ws):
        filter = QueryFilter(kinds=("path-deletion",), min_cost=1.0)
        local = local_ws.query_page(filter)
        remote = remote_ws.query_page(filter)
        assert local.to_dict() == remote.to_dict()
        assert local.total_matches == remote.total_matches

    def test_query_pagination_walk_identical(
        self, local_ws, remote_ws
    ):
        """Walking page by page visits the same diffs in the same
        order on both implementations, and cursors line up."""

        def walk(ws):
            pages, cursor = [], None
            while True:
                page = ws.query_page(cursor=cursor, limit=2)
                pages.append(page.to_dict())
                if page.next_cursor is None:
                    return pages
                cursor = page.next_cursor

        local_pages = walk(local_ws)
        remote_pages = walk(remote_ws)
        assert local_pages == remote_pages
        assert len(local_pages) == 3  # 6 pairs, 2 per page

    def test_query_items_feed_the_aggregations(
        self, local_ws, remote_ws
    ):
        """Remote page items are duck-compatible with the local
        engine's docs for the aggregation helpers."""
        local_docs = local_ws.query()
        remote_items = remote_ws.query()
        assert op_kind_histogram(remote_items) == op_kind_histogram(
            local_docs
        )
        assert module_churn(remote_items) == module_churn(local_docs)

    def test_analytics_identical(self, local_ws, remote_ws):
        assert local_ws.nearest("r01") == remote_ws.nearest("r01")
        assert local_ws.nearest("r01", k=2) == remote_ws.nearest(
            "r01", k=2
        )
        assert local_ws.medoid() == remote_ws.medoid()
        assert local_ws.outliers() == remote_ws.outliers()
        assert local_ws.outliers(top=2) == remote_ws.outliers(top=2)

    def test_export_prov_byte_identical(self, local_ws, remote_ws):
        assert local_ws.export_prov("r02") == remote_ws.export_prov(
            "r02"
        )


class TestErrorsBehaveIdentically:
    def test_unknown_run_raises_not_found(self, api):
        with pytest.raises(NotFoundError, match="no stored run"):
            api.diff("r01", "definitely-absent")

    def test_unknown_spec_raises_not_found(self, api):
        with pytest.raises(NotFoundError, match="specification"):
            api.runs(spec="no-such-spec")

    def test_in_memory_runs_diff_without_the_store(
        self, api, local_ws, varied_params
    ):
        """Run-object diffs never touch the server; both APIs price
        them identically through the same local differ."""
        spec = local_ws.specification("PA")
        a = execute_workflow(spec, varied_params, seed=71, name="m1")
        b = execute_workflow(spec, varied_params, seed=72, name="m2")
        outcome = api.diff(a, b)
        assert outcome.pair == ("m1", "m2")
        assert "m1" not in api.runs(spec="PA")

    def test_mixed_diff_arguments_refused(
        self, api, local_ws, varied_params
    ):
        spec = local_ws.specification("PA")
        run = execute_workflow(spec, varied_params, seed=73, name="m3")
        with pytest.raises(ReproError, match="not a mix"):
            api.diff("r01", run)


class TestWritePaths:
    """Corpus mutations through either implementation land in the same
    store and price identically.  (Kept last: they grow the corpus.)"""

    def test_generated_upload_prices_identically(
        self, api, local_ws, remote_ws, varied_params
    ):
        import os

        if os.environ.get("REPRO_REMOTE_URL"):
            pytest.skip(
                "external server: local and remote stores are "
                "separate directories, so cross-visibility does not "
                "apply (covered by the in-thread run)"
            )
        name = f"up-{type(api).__name__}"
        api.generate_run(name, params=varied_params, seed=90)
        assert name in local_ws.runs(spec="PA")
        assert name in remote_ws.runs(spec="PA")
        local = local_ws.diff("r01", name, spec="PA")
        remote = remote_ws.diff("r01", name, spec="PA")
        assert local.to_dict() == remote.to_dict()

    def test_import_run_roundtrip(self, api, local_ws, varied_params):
        spec = local_ws.specification("PA")
        name = f"imp-{type(api).__name__}"
        run = execute_workflow(
            spec, varied_params, seed=91, name=name
        )
        api.import_run(run)
        assert api.run(name, spec="PA").equivalent(run)

    def test_second_spec_forces_explicit_resolution(self, api):
        api.register(emboss())
        assert set(api.specifications()) >= {"PA", "EMBOSS"}
        with pytest.raises(ReproError, match="several specifications"):
            api.runs()
        assert api.runs(spec="PA")  # explicit spec still works
