"""Concurrency through the wire: many clients, one threaded server.

The ``ThreadingHTTPServer`` spawns a thread per request; all of them
funnel into one shared workspace.  Hammering the server from several
client threads must produce identical payloads everywhere, no server
errors, and no duplicate DPs beyond the cold misses.

The same hammer runs against the two-worker routing cluster: sharding
and single-flight coalescing must preserve every one of those
guarantees — the summed per-worker counters still account for at most
one computation per pair, cluster-wide.
"""

import threading

import pytest

from repro.client import RemoteWorkspace


@pytest.fixture(params=["single", "cluster"])
def target_url(request, server, cluster_url):
    """The base URL under bombardment: one process, then the cluster."""
    if request.param == "single":
        return server.url
    return cluster_url


def test_many_clients_hammering_one_server(target_url):
    clients = [RemoteWorkspace(target_url) for _ in range(6)]
    expected = clients[0].matrix(spec="PA").to_dict()
    expected_diff = clients[0].diff("r01", "r02", spec="PA").to_dict()

    errors = []
    barrier = threading.Barrier(len(clients))

    def hammer(client: RemoteWorkspace) -> None:
        try:
            barrier.wait(timeout=30)
            for _ in range(3):
                assert client.matrix(spec="PA").to_dict() == expected
                assert (
                    client.diff("r01", "r02", spec="PA").to_dict()
                    == expected_diff
                )
                assert client.runs(spec="PA")
        except Exception as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(client,))
        for client in clients
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors

    stats = clients[0].stats
    assert stats["server_errors"] == 0
    # 4 fixture runs → 6 distance keys and (at most) the same number
    # of directed script keys; nothing was ever computed twice —
    # whether one process answered or two sharded workers did.
    assert stats["computed_pairs"] <= 6
    assert stats["computed_scripts"] <= 6
