"""Observability through the wire: /metrics, request IDs, drain.

The exact-count stress test is the acceptance gate: a fresh server is
hammered by 8 client threads and the scrape must account for every
single request — the instruments lock on write, so concurrency loses
nothing.  Everything here builds its own :class:`DiffServer` (silenced,
serial backend) so counters start from zero and the shared module
fixtures stay unpolluted.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api_types import STATS_WIRE_VERSION, StatsSnapshot
from repro.client import RemoteWorkspace
from repro.config import ReproConfig
from repro.errors import NotFoundError
from repro.obs.logging import bound_request_id
from repro.obs.promcheck import parse_exposition
from repro.service.server import DiffServer


@pytest.fixture
def fresh_server(corpus_root):
    """A private server whose counters start at zero."""
    with DiffServer(
        corpus_root, ReproConfig(backend="serial", log_format="off")
    ) as live:
        yield live


def fetch(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


class TestMetricsEndpoint:
    def test_prometheus_is_the_default_and_validates(self, fresh_server):
        status, headers, body = fetch(fresh_server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        families = parse_exposition(body.decode("utf8"))
        assert "server_requests_total" in families
        assert "server_request_seconds" in families
        assert families["server_request_seconds"]["type"] == "histogram"
        assert "server_in_flight" in families

    def test_json_face_mirrors_the_registry(self, fresh_server):
        status, headers, body = fetch(
            fresh_server.url + "/metrics?format=json"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["v"] == 1
        assert "server_requests_total" in payload["metrics"]

    def test_accept_header_negotiates_json(self, fresh_server):
        _, headers, body = fetch(
            fresh_server.url + "/metrics",
            headers={"Accept": "application/json"},
        )
        assert headers["Content-Type"].startswith("application/json")
        json.loads(body)

    def test_unknown_format_is_an_error(self, fresh_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(fresh_server.url + "/metrics?format=xml")
        assert excinfo.value.code == 400

    def test_route_labels_are_templates(self, fresh_server):
        fetch(fresh_server.url + "/specs/PA")
        fetch(fresh_server.url + "/diff/r01/r02?spec=PA")
        _, _, body = fetch(fresh_server.url + "/metrics")
        text = body.decode("utf8")
        assert 'route="/specs/{name}"' in text
        assert 'route="/diff/{a}/{b}"' in text
        assert 'route="/specs/PA"' not in text


class TestRequestIds:
    def test_server_mints_an_id_when_none_sent(self, fresh_server):
        _, headers, _ = fetch(fresh_server.url + "/healthz")
        minted = headers["X-Request-Id"]
        assert len(minted) == 16
        int(minted, 16)

    def test_inbound_id_is_echoed(self, fresh_server):
        _, headers, _ = fetch(
            fresh_server.url + "/healthz",
            headers={"X-Request-Id": "trace-me-42"},
        )
        assert headers["X-Request-Id"] == "trace-me-42"

    def test_client_sends_and_errors_carry_the_id(self, fresh_server):
        remote = RemoteWorkspace(fresh_server.url)
        with bound_request_id("feedface00000000"):
            with pytest.raises(NotFoundError) as excinfo:
                remote.diff("r01", "no-such-run", spec="PA")
        assert excinfo.value.request_id == "feedface00000000"

    def test_client_mints_ids_outside_a_request(self, fresh_server):
        remote = RemoteWorkspace(fresh_server.url)
        with pytest.raises(NotFoundError) as excinfo:
            remote.diff("no-such", "runs", spec="PA")
        assert excinfo.value.request_id
        int(excinfo.value.request_id, 16)


class TestExactCounts:
    def test_eight_threads_are_counted_exactly(self, fresh_server):
        """8 workers x 25 requests: /stats and /metrics agree exactly."""
        workers_n, per_worker = 8, 25
        barrier = threading.Barrier(workers_n)
        errors = []

        def hammer():
            try:
                barrier.wait(timeout=30)
                for _ in range(per_worker):
                    status, _, _ = fetch(fresh_server.url + "/healthz")
                    assert status == 200
            except Exception as exc:  # noqa: BLE001 - for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer) for _ in range(workers_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors

        # /stats first: its own request is counted at handle start,
        # while the metric increments at handle end — reading in this
        # order makes the two faces agree exactly.
        _, _, stats_body = fetch(fresh_server.url + "/stats")
        counters = json.loads(stats_body)["counters"]
        expected = workers_n * per_worker + 1  # + the /stats request
        assert counters["server_requests"] == expected
        assert counters["server_errors"] == 0

        _, _, metrics_body = fetch(fresh_server.url + "/metrics")
        families = parse_exposition(metrics_body.decode("utf8"))
        total = sum(
            value
            for name, labels, value in families["server_requests_total"][
                "samples"
            ]
        )
        assert total == expected
        healthz = sum(
            value
            for name, labels, value in families["server_requests_total"][
                "samples"
            ]
            if labels.get("route") == "/healthz"
        )
        assert healthz == workers_n * per_worker


class TestStatsWire:
    def test_snapshot_travels_at_v2_with_derived_ratios(
        self, fresh_server
    ):
        remote = RemoteWorkspace(fresh_server.url)
        remote.diff("r01", "r02", spec="PA")  # cold
        remote.diff("r01", "r02", spec="PA")  # warm
        snapshot = remote.stats_snapshot()
        assert snapshot.source == fresh_server.url
        payload = snapshot.to_dict()
        assert payload["v"] == STATS_WIRE_VERSION
        derived = snapshot.derived
        assert set(derived) >= {
            "memory_hit_ratio",
            "disk_hit_ratio",
            "script_hit_ratio",
            "lock_wait_seconds",
        }
        assert 0.0 <= derived["memory_hit_ratio"] <= 1.0

    def test_v1_payload_still_decodes(self):
        legacy = {
            "v": 1,
            "source": "server",
            "counters": {"computed_pairs": 3},
        }
        snapshot = StatsSnapshot.from_dict(legacy)
        assert snapshot.counters["computed_pairs"] == 3
        assert snapshot.derived == {}


class TestGracefulDrain:
    def test_stop_is_idempotent_and_joins(self, corpus_root):
        server = DiffServer(
            corpus_root, ReproConfig(backend="serial", log_format="off")
        ).start()
        fetch(server.url + "/healthz")
        server.stop(drain_timeout=5)
        server.stop(drain_timeout=5)  # second call is a no-op
        assert server.app.in_flight() == 0

    def test_stop_waits_for_in_flight_requests(self, corpus_root):
        server = DiffServer(
            corpus_root, ReproConfig(backend="serial", log_format="off")
        ).start()
        try:
            fetch(server.url + "/healthz")
            # Simulate one still-running request.
            server.app.begin_request()
            stopper = threading.Thread(
                target=server.stop, kwargs={"drain_timeout": 10}
            )
            stopper.start()
            time.sleep(0.3)
            # Still draining: the in-flight request pins the stop.
            assert stopper.is_alive()
            server.app.end_request()
            stopper.join(timeout=30)
            assert not stopper.is_alive()
        finally:
            server.app._in_flight = 0  # safety net on failure
            server.stop(drain_timeout=0)

    def test_drain_timeout_abandons_stragglers(self, corpus_root):
        server = DiffServer(
            corpus_root, ReproConfig(backend="serial", log_format="off")
        ).start()
        server.app.begin_request()
        try:
            started = time.monotonic()
            server.stop(drain_timeout=0.3)
            elapsed = time.monotonic() - started
            assert elapsed < 5  # gave up at the deadline, not hung
        finally:
            server.app.end_request()

    def test_drain_aborts_coalesced_followers_with_503(self, tmp_path):
        """A request blocked on another caller's in-flight computation
        is completed deterministically at the drain deadline: the stop
        path aborts the flight table and the follower answers 503
        (retryable — no work was applied) instead of hanging."""
        from _fixture import build_corpus

        from repro.corpus.fingerprint import cost_model_key, script_key
        from repro.costs.standard import UnitCost

        # A private cold store: with the shared corpus the r01–r02
        # script may already be in the persistent cache, and a cached
        # answer never joins the flight this test needs to abort.
        root = tmp_path / "drain-store"
        build_corpus(root)
        server = DiffServer(
            root, ReproConfig(backend="serial", log_format="off")
        ).start()
        service = server.workspace.service
        _, fingerprints = service._resolve("PA", ["r01", "r02"])
        key = script_key(
            fingerprints["r01"],
            fingerprints["r02"],
            cost_model_key(UnitCost()),
        )
        # Pose as a leader that will never publish: the incoming HTTP
        # request below joins this flight as a follower and blocks.
        leader, flight = service._flights.begin(("script", key))
        assert leader
        outcome = {}

        def follow():
            try:
                outcome["response"] = fetch(
                    server.url + "/diff/r01/r02?spec=PA"
                )
            except urllib.error.HTTPError as exc:
                outcome["status"] = exc.code
                outcome["body"] = json.loads(exc.read())

        follower = threading.Thread(target=follow)
        follower.start()
        deadline = time.monotonic() + 10
        while (
            service._flights.waiters() == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert service._flights.waiters() == 1, "follower never joined"

        started = time.monotonic()
        server.stop(drain_timeout=0.5)
        follower.join(timeout=10)
        assert not follower.is_alive()
        assert time.monotonic() - started < 8
        assert outcome.get("status") == 503
        envelope = outcome["body"]["error"]
        assert envelope["type"] == "ServiceUnavailableError"
        assert "retry" in envelope["message"]
