"""Streaming ingestion over HTTP: routes, envelopes, body caps, resume.

Covers the transport-level guarantees the in-process suite cannot:
structured 400/413 envelopes (never a traceback), the configurable
request-body ceiling for both ``Content-Length`` and chunked bodies,
and a mid-stream TCP disconnect followed by a clean resume — the run
is ingested exactly once.
"""

from __future__ import annotations

import json
import socket

import pytest

from _fixture import SPEC_NAME, VARIED

from repro.client import RemoteWorkspace
from repro.config import ReproConfig
from repro.errors import (
    PayloadTooLargeError,
    StreamProtocolError,
    TransportError,
)
from repro.service.server import DiffServer
from repro.stream.client import StreamSession
from repro.stream.events import encode_events
from repro.workflow.execution import execute_workflow


def _post_raw(server, path, body, headers):
    """One raw POST on a fresh socket; returns (status, parsed body)."""
    with socket.create_connection(
        (server.host, server.port), timeout=10
    ) as sock:
        head = [f"POST {path} HTTP/1.1", f"Host: {server.host}"]
        head += [f"{k}: {v}" for k, v in headers.items()]
        head += ["Connection: close", "", ""]
        sock.sendall("\r\n".join(head).encode("ascii") + body)
        raw = b""
        while True:
            part = sock.recv(65536)
            if not part:
                break
            raw += part
    status = int(raw.split(b" ", 2)[1])
    payload = json.loads(raw.split(b"\r\n\r\n", 1)[1])
    return status, payload


#: Small enough to exercise rejections, large enough for the streaming
#: suite's real event batches.
BODY_CAP = 64 * 1024


@pytest.fixture(scope="module")
def capped_server(corpus_root):
    """A live server with a deliberately small request-body ceiling."""
    with DiffServer(
        corpus_root,
        ReproConfig(
            backend="serial", log_format="off", max_body_bytes=BODY_CAP
        ),
    ) as live:
        yield live


@pytest.fixture(scope="module")
def capped_remote(capped_server) -> RemoteWorkspace:
    return RemoteWorkspace(capped_server.url)


def _stream_run(remote, seed, name, **kwargs):
    """Stream one executed fixture run over HTTP; returns the final ack."""
    spec = remote.specification(SPEC_NAME)
    run = execute_workflow(spec, VARIED, seed=seed, name=name)
    with remote.stream(SPEC_NAME, name, **kwargs) as stream:
        labels = run.graph.labels()
        for node in run.graph.nodes():
            stream.activity(node, labels[node])
        for src, dst, _key in run.graph.edges():
            stream.edge(src, dst)
        return stream.close_run()


def test_stream_round_trip_over_http(capped_server, capped_remote):
    ack = _stream_run(capped_remote, seed=21, name="http-s1")
    assert ack.status == "closed"
    assert ack.result.origin == "stream"
    assert ack.result.new_pairs  # priced against the corpus
    assert "http-s1" in capped_remote.runs(spec=SPEC_NAME)
    # The run round-trips through every read path.
    assert capped_remote.diff("r01", "http-s1").distance >= 0


def test_live_view_over_http(capped_server, capped_remote):
    with capped_remote.stream(
        SPEC_NAME, "http-live1", threshold=3.0
    ) as stream:
        stream.activity("ex:a", "alien")
        status = stream.status()
        assert status is not None
        assert status.activities == 1
        listed = {s.session for s in capped_remote.stream_live()}
        assert stream.session_id in listed
    # Leaving the block without closing keeps the session open
    # server-side; it stays visible (and resumable).
    listed = {s.session for s in capped_remote.stream_live()}
    assert stream.session_id in listed


def test_malformed_ndjson_yields_a_structured_envelope(capped_server):
    status, payload = _post_raw(
        capped_server,
        "/stream/events",
        b'{"v": 1, "kind": "nope"}\n',
        {
            "Content-Type": "application/x-ndjson",
            "Content-Length": "25",
        },
    )
    assert status == 400
    assert payload["error"]["type"] == "StreamProtocolError"
    assert "frame 1" in payload["error"]["message"]


def test_malformed_ndjson_reraises_typed_client_side(capped_remote):
    with pytest.raises(StreamProtocolError):
        capped_remote._request(
            "POST",
            "/stream/events",
            body=b"not json at all\n",
            headers={"Content-Type": "application/x-ndjson"},
        )


def test_oversized_content_length_is_413_without_reading(capped_server):
    body = b"x" * (BODY_CAP + 1)
    status, payload = _post_raw(
        capped_server,
        "/stream/events",
        body,
        {
            "Content-Type": "application/x-ndjson",
            "Content-Length": str(len(body)),
        },
    )
    assert status == 413
    assert payload["error"]["type"] == "PayloadTooLargeError"
    assert str(BODY_CAP) in payload["error"]["message"]


def test_oversized_chunked_body_is_413(capped_server):
    chunk = b"y" * 8192
    body = b""
    for _ in range(BODY_CAP // len(chunk) + 1):  # just over the cap
        body += f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n"
    body += b"0\r\n\r\n"
    status, payload = _post_raw(
        capped_server,
        "/stream/events",
        body,
        {
            "Content-Type": "application/x-ndjson",
            "Transfer-Encoding": "chunked",
        },
    )
    assert status == 413
    assert payload["error"]["type"] == "PayloadTooLargeError"


def test_malformed_chunk_framing_is_400(capped_server):
    status, payload = _post_raw(
        capped_server,
        "/stream/events",
        b"zz\r\nnot-hex\r\n0\r\n\r\n",
        {"Transfer-Encoding": "chunked"},
    )
    assert status == 400
    assert payload["error"]["type"] == "ReproError"
    assert "chunked" in payload["error"]["message"]


def test_cap_applies_to_every_route(capped_server):
    body = b"{}" * (BODY_CAP // 2 + 1)
    status, payload = _post_raw(
        capped_server,
        "/prov/import",
        body,
        {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
        },
    )
    assert status == 413
    assert payload["error"]["type"] == "PayloadTooLargeError"


def test_mid_stream_disconnect_then_clean_resume(
    capped_server, capped_remote
):
    """Kill the connection mid-batch, resume, and the run lands once."""
    spec = capped_remote.specification(SPEC_NAME)
    run = execute_workflow(spec, VARIED, seed=23, name="http-resume1")
    labels = run.graph.labels()
    nodes = list(run.graph.nodes())
    edges = list(run.graph.edges())

    session_id = "http-resume1-session"
    with capped_remote.stream(
        SPEC_NAME, "http-resume1", session=session_id, batch_size=1000
    ) as first:
        for node in nodes[: len(nodes) // 2]:
            first.activity(node, labels[node])
        first.flush()  # half the activities are acked server-side
        half_acked = first.acked_seq
        assert half_acked > 1

    # Simulate the disconnect: a later batch dies on the wire after
    # the server applied an unknown prefix.  The client re-handshakes
    # with run_open and replays everything unacknowledged.
    sends = {"n": 0}
    real_send = first._send

    def flaky_send(data):
        sends["n"] += 1
        if sends["n"] == 1:
            # The request reached the server (it applies the batch)
            # but the response is lost.
            real_send(data)
            raise TransportError("connection reset mid-response")
        return real_send(data)

    resumed = StreamSession(
        flaky_send,
        SPEC_NAME,
        "http-resume1",
        session_id=session_id,
        batch_size=10_000,
    )
    for node in nodes:
        resumed.activity(node, labels[node])
    for src, dst, _key in edges:
        resumed.edge(src, dst)
    ack = resumed.close_run()

    assert ack.status == "closed"
    assert resumed.retries == 1
    # Exactly-once: the run landed once, with the full graph.
    assert (
        capped_remote.runs(spec=SPEC_NAME).count("http-resume1") == 1
    )
    stored = capped_remote.run("http-resume1", spec=SPEC_NAME)
    assert stored.graph.num_nodes == run.graph.num_nodes
    assert stored.graph.num_edges == run.graph.num_edges


def test_streaming_conformance_against_live_server(server_url):
    """The full wire contract against whatever server ``server_url``
    points at — the in-thread fixture locally, a real external
    ``repro serve`` process under ``REPRO_REMOTE_URL`` in CI."""
    remote = RemoteWorkspace(server_url)
    before = remote.stats_snapshot().counters.get(
        "stream_runs_closed", 0
    )
    ack = _stream_run(
        remote, seed=31, name="conf-stream1", threshold=50.0
    )
    assert ack.status == "closed"
    assert ack.result.new_pairs
    assert "conf-stream1" in remote.runs(spec=SPEC_NAME)
    # The streamed newcomer is diffable like any imported run.
    outcome = remote.diff("r01", "conf-stream1")
    assert outcome.distance >= 0
    after = remote.stats_snapshot().counters["stream_runs_closed"]
    assert after == before + 1
    # Replayed close frames are idempotent over the wire, too.
    live = remote.stream_live()
    assert all(s.run_name != "conf-stream1" for s in live)


def test_stream_counters_agree_between_stats_and_metrics(
    capped_server, capped_remote
):
    _stream_run(capped_remote, seed=27, name="http-count1")
    stats = capped_remote.stats_snapshot().counters
    counters = {
        key: value
        for key, value in stats.items()
        if key.startswith("stream_")
    }
    assert counters["stream_runs_closed"] >= 1
    assert counters["stream_open_sessions"] >= 0

    _, _, raw = capped_remote._request(
        "GET", "/metrics", query={"format": "json"}
    )
    metrics = json.loads(raw.decode("utf8"))["metrics"]

    def total(name):
        return sum(s["value"] for s in metrics[name]["samples"])

    assert total("stream_runs_closed_total") == (
        counters["stream_runs_closed"]
    )
    assert total("stream_sessions_opened_total") == (
        counters["stream_sessions_opened"]
    )
    assert total("stream_events_total") == (
        counters["stream_events_ingested"]
    )
    assert total("stream_open_sessions") == (
        counters["stream_open_sessions"]
    )
