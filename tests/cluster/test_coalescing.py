"""Service-level single-flight: K concurrent identical cold requests
elect one leader, perform one DP, and the followers coalesce.

The backend is wrapped so its batch dispatch *blocks* until the test
has observed every follower joining the flight — making the
assertions deterministic instead of a race the scheduler usually (but
not always) loses.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.backends.base import ExecutorBackend, SerialBackend
from repro.config import ReproConfig
from repro.workflow.execution import ExecutionParams
from repro.workflow.real_workflows import protein_annotation
from repro.workspace import Workspace

SPEC = "PA"
VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


class GatedBackend(ExecutorBackend):
    """Serial execution that holds every batch until released."""

    name = "gated"

    def __init__(self):
        super().__init__(jobs=1)
        self._inner = SerialBackend()
        self.release = threading.Event()
        self.dispatches = 0

    def map(self, func, tasks):
        self.dispatches += 1
        assert self.release.wait(timeout=60), "batch never released"
        return self._inner.map(func, tasks)


@pytest.fixture
def workspace(tmp_path):
    workspace = Workspace(tmp_path, ReproConfig(backend="serial"))
    workspace.register(protein_annotation())
    for seed in (1, 2, 3):
        workspace.generate_run(f"r{seed:02d}", params=VARIED, seed=seed)
    return workspace


def _await_waiters(service, expected: int) -> None:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if service._flights.waiters() >= expected:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"only {service._flights.waiters()} followers joined "
        f"(wanted {expected})"
    )


def test_concurrent_identical_distances_one_dp(workspace):
    service = workspace.service
    backend = GatedBackend()
    service.backend = backend
    k = 6
    values = []
    lock = threading.Lock()

    def ask():
        value = service.distance(SPEC, "r01", "r02")
        with lock:
            values.append(value)

    threads = [threading.Thread(target=ask) for _ in range(k)]
    for thread in threads:
        thread.start()
    # The leader is now blocked inside the backend; wait until every
    # follower has joined its flight, then let the batch run.
    _await_waiters(service, k - 1)
    backend.release.set()
    for thread in threads:
        thread.join(timeout=60)

    assert len(values) == k
    assert len(set(values)) == 1
    assert backend.dispatches == 1
    assert service.computed_pairs == 1
    assert service.coalesced_requests == k - 1
    assert service._dp_metric.value(kind="distance") == 1


def test_concurrent_identical_scripts_one_dp(workspace):
    service = workspace.service
    backend = GatedBackend()
    service.backend = backend
    k = 5
    outcomes = []
    lock = threading.Lock()

    def ask():
        record = service.edit_script(SPEC, "r02", "r03")
        with lock:
            outcomes.append((record.distance, list(record.operations)))

    threads = [threading.Thread(target=ask) for _ in range(k)]
    for thread in threads:
        thread.start()
    _await_waiters(service, k - 1)
    backend.release.set()
    for thread in threads:
        thread.join(timeout=60)

    assert len(outcomes) == k
    assert all(outcome == outcomes[0] for outcome in outcomes)
    assert backend.dispatches == 1
    assert service.computed_scripts == 1
    assert service.coalesced_requests == k - 1
    assert service._dp_metric.value(kind="script") == 1


def test_different_pairs_do_not_coalesce(workspace):
    service = workspace.service
    backend = GatedBackend()
    backend.release.set()  # no blocking needed here
    service.backend = backend

    service.distance(SPEC, "r01", "r02")
    service.distance(SPEC, "r01", "r03")
    assert service.computed_pairs == 2
    assert service.coalesced_requests == 0
