"""Single-flight table: leader election, coalescing, abort semantics."""

import threading

import pytest

from repro.cluster.singleflight import SingleFlight
from repro.errors import ServiceUnavailableError


class TestLeaderElection:
    def test_first_caller_leads(self):
        table = SingleFlight()
        leader, flight = table.begin("k")
        assert leader is True
        assert table.in_flight() == 1
        table.finish(flight, value=42)
        assert table.in_flight() == 0

    def test_second_caller_follows_same_flight(self):
        table = SingleFlight()
        _, lead_flight = table.begin("k")
        leader, follow_flight = table.begin("k")
        assert leader is False
        assert follow_flight is lead_flight
        assert follow_flight.waiters == 1
        table.finish(lead_flight, value="v")

    def test_distinct_keys_get_distinct_flights(self):
        table = SingleFlight()
        _, a = table.begin("a")
        _, b = table.begin("b")
        assert a is not b
        assert table.in_flight() == 2
        table.finish(a)
        table.finish(b)

    def test_key_reusable_after_finish(self):
        table = SingleFlight()
        _, first = table.begin("k")
        table.finish(first, value=1)
        leader, second = table.begin("k")
        assert leader is True
        assert second is not first
        table.finish(second, value=2)
        assert second.result() == 2


class TestResultPropagation:
    def test_followers_receive_leader_value(self):
        table = SingleFlight()
        _, flight = table.begin("k")
        results = []
        barrier = threading.Barrier(4)

        def follow():
            _, shared = table.begin("k")
            barrier.wait()
            results.append(shared.result(timeout=5))

        threads = [threading.Thread(target=follow) for _ in range(3)]
        for thread in threads:
            thread.start()
        barrier.wait()
        table.finish(flight, value="landed")
        for thread in threads:
            thread.join(timeout=5)
        assert results == ["landed"] * 3

    def test_leader_error_propagates_to_followers(self):
        table = SingleFlight()
        _, flight = table.begin("k")
        table.finish(flight, error=ValueError("dp exploded"))
        with pytest.raises(ValueError, match="dp exploded"):
            flight.result(timeout=1)

    def test_finish_is_idempotent_first_outcome_wins(self):
        table = SingleFlight()
        _, flight = table.begin("k")
        table.finish(flight, value="first")
        table.finish(flight, value="second")
        table.finish(flight, error=RuntimeError("too late"))
        assert flight.result(timeout=1) == "first"

    def test_result_timeout(self):
        table = SingleFlight()
        _, flight = table.begin("k")
        with pytest.raises(TimeoutError):
            flight.result(timeout=0.05)
        table.finish(flight)


class TestAbort:
    def test_abort_fails_all_pending_flights(self):
        table = SingleFlight()
        _, a = table.begin("a")
        _, b = table.begin("b")
        error = ServiceUnavailableError("draining")
        assert table.abort(error) == 2
        assert table.in_flight() == 0
        for flight in (a, b):
            with pytest.raises(ServiceUnavailableError):
                flight.result(timeout=1)

    def test_abort_wakes_blocked_followers(self):
        table = SingleFlight()
        table.begin("k")
        outcome = []

        def follow():
            _, shared = table.begin("k")
            try:
                outcome.append(("value", shared.result(timeout=5)))
            except ServiceUnavailableError as exc:
                outcome.append(("error", type(exc).__name__))

        thread = threading.Thread(target=follow)
        thread.start()
        deadline_spins = 100
        while table.waiters() == 0 and deadline_spins:
            deadline_spins -= 1
            threading.Event().wait(0.01)
        table.abort(ServiceUnavailableError("draining"))
        thread.join(timeout=5)
        assert outcome == [("error", "ServiceUnavailableError")]

    def test_finish_after_abort_keeps_abort_outcome(self):
        table = SingleFlight()
        _, flight = table.begin("k")
        table.abort(ServiceUnavailableError("draining"))
        table.finish(flight, value="late leader")
        with pytest.raises(ServiceUnavailableError):
            flight.result(timeout=1)

    def test_abort_with_nothing_pending(self):
        table = SingleFlight()
        assert table.abort(ServiceUnavailableError("draining")) == 0


def test_waiters_counts_followers():
    table = SingleFlight()
    _, flight = table.begin("k")
    assert table.waiters() == 0
    table.begin("k")
    table.begin("k")
    assert table.waiters() == 2
    table.finish(flight)
    assert table.waiters() == 0
