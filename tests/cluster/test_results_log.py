"""Results log: copy-on-write snapshots, lock-free reads, append count."""

import threading

from repro.cluster.results_log import ResultsLog


class TestBasics:
    def test_get_and_contains(self):
        log = ResultsLog()
        assert log.get("k") is None
        assert log.get("k", -1) == -1
        log.append("k", 3.0)
        assert "k" in log
        assert log.get("k") == 3.0
        assert len(log) == 1

    def test_extend_batches_one_swap(self):
        log = ResultsLog()
        before = log.snapshot()
        log.extend([("a", 1), ("b", 2)])
        after = log.snapshot()
        assert before is not after
        assert dict(after) == {"a": 1, "b": 2}

    def test_extend_empty_is_a_noop(self):
        log = ResultsLog()
        before = log.snapshot()
        log.extend([])
        assert log.snapshot() is before
        assert log.entries() == 0

    def test_last_write_wins(self):
        log = ResultsLog()
        log.append("k", 1)
        log.append("k", 2)
        assert log.get("k") == 2
        assert len(log) == 1

    def test_entries_is_monotonic_over_rewrites(self):
        log = ResultsLog()
        log.append("k", 1)
        log.append("k", 2)
        log.extend([("a", 1), ("b", 2)])
        assert log.entries() == 4


class TestSnapshotIsolation:
    def test_old_snapshot_never_mutates(self):
        log = ResultsLog()
        log.append("a", 1)
        held = log.snapshot()
        log.append("b", 2)
        assert dict(held) == {"a": 1}
        assert dict(log.snapshot()) == {"a": 1, "b": 2}

    def test_concurrent_readers_see_consistent_batches(self):
        """Each extend publishes atomically: a reader observing key
        ``i:a`` of batch ``i`` must also observe ``i:b``."""
        log = ResultsLog()
        stop = threading.Event()
        torn = []

        def read():
            while not stop.is_set():
                snap = log.snapshot()
                for i in range(50):
                    has_a = f"{i}:a" in snap
                    has_b = f"{i}:b" in snap
                    if has_a != has_b:
                        torn.append(i)

        readers = [threading.Thread(target=read) for _ in range(2)]
        for reader in readers:
            reader.start()
        for i in range(50):
            log.extend([(f"{i}:a", i), (f"{i}:b", i)])
        stop.set()
        for reader in readers:
            reader.join(timeout=5)
        assert torn == []
        assert len(log) == 100
