"""The routing cluster over the wire: coalescing, supervision, merge.

Bit-identity of /matrix and /query against the single-process server
is asserted exhaustively by the conformance suite (``api`` fixture's
``cluster`` parameter); here we pin down the cluster-only behaviours —
single-flight over HTTP, restart-on-crash, aggregation shapes, header
relay — plus a raw-wire byte-identity spot check on ``/diff``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from _util import get_json, http_get, http_post, metric_total

from repro.backends.base import SerialBackend
from repro.config import ReproConfig
from repro.errors import ReproError
from repro.service.server import DiffServer

SPEC = "PA"


class TestConstruction:
    def test_rejects_zero_workers(self, tmp_path):
        from repro.cluster.server import ClusterServer

        with pytest.raises(ReproError, match="at least 1 worker"):
            ClusterServer(tmp_path, ReproConfig(), workers=0)

    def test_rejects_backend_instances(self, tmp_path):
        from repro.cluster.server import ClusterServer

        config = ReproConfig(backend=SerialBackend())
        with pytest.raises(ReproError, match="backend by name"):
            ClusterServer(tmp_path, config, workers=2)

    def test_worker_count_from_config(self, tmp_path):
        from repro.cluster.server import ClusterServer

        with pytest.raises(ReproError, match="at least 1 worker"):
            ClusterServer(tmp_path, ReproConfig(workers=0))


class TestClusterSurface:
    """Read-mostly assertions against the module-scoped cluster."""

    def test_healthz_reports_cluster_block(self, cluster):
        payload = get_json(f"{cluster.url}/healthz")
        assert payload["status"] == "ok"
        block = payload["cluster"]
        assert block["workers"] == 2
        assert block["alive"] == 2
        assert block["restarts"] == 0
        members = block["members"]
        assert [m["index"] for m in members] == [0, 1]
        for member in members:
            assert member["alive"] is True
            assert member["pid"] > 0
            assert member["port"] > 0
        # The single-process healthz fields survive the merge.
        assert "wire_version" in payload
        assert payload["specifications"] >= 1

    def test_diff_bytes_identical_to_single_process(
        self, cluster, corpus_root
    ):
        config = ReproConfig(backend="serial", log_format="off")
        with DiffServer(corpus_root, config) as single:
            for a, b in (("r01", "r02"), ("r03", "r01")):
                path = f"/diff/{a}/{b}?spec={SPEC}"
                c_status, c_headers, c_body = http_get(
                    cluster.url + path
                )
                s_status, s_headers, s_body = http_get(
                    single.url + path
                )
                assert (c_status, c_body) == (s_status, s_body)
                assert c_headers["ETag"] == s_headers["ETag"]

    def test_etag_revalidation_304(self, cluster):
        path = f"{cluster.url}/diff/r01/r02?spec={SPEC}"
        status, headers, _ = http_get(path)
        assert status == 200
        etag = headers["ETag"]
        status, headers, body = http_get(
            path, headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag

    def test_request_id_echoed_through_proxy(self, cluster):
        status, headers, _ = http_get(
            f"{cluster.url}/diff/r01/r02?spec={SPEC}",
            headers={"X-Request-Id": "req-cluster-7"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "req-cluster-7"

    def test_unknown_run_error_relayed(self, cluster):
        status, _, body = http_get(
            f"{cluster.url}/diff/r01/nope?spec={SPEC}"
        )
        assert status == 404
        envelope = json.loads(body)["error"]
        assert "nope" in envelope["message"]

    def test_shard_param_validation_relayed(self, cluster):
        status, _, body = http_post(
            f"{cluster.url}/matrix",
            {
                "spec": SPEC,
                "shard": {"index": 5, "count": 2},
            },
        )
        assert status == 400
        assert "shard" in json.loads(body)["error"]["message"]

    def test_runs_listing_unified(self, cluster):
        payload = get_json(f"{cluster.url}/runs?spec={SPEC}")
        assert payload["runs"] == ["r01", "r02", "r03", "r04"]

    def test_matrix_covers_every_pair(self, cluster):
        status, _, body = http_post(
            f"{cluster.url}/matrix", {"spec": SPEC}
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["runs"] == ["r01", "r02", "r03", "r04"]
        assert len(payload["distances"]) == 6

    def test_stats_aggregates_workers(self, cluster):
        payload = get_json(f"{cluster.url}/stats")
        assert payload["source"] == "cluster"
        counters = payload["counters"]
        assert counters["cluster_workers"] == 2
        assert counters["cluster_requests"] >= 1
        assert counters["cluster_worker_restarts"] == 0
        assert "memory_hit_ratio" in payload["derived"]
        assert "lock_wait_seconds" in payload["derived"]

    def test_metrics_prometheus_merged(self, cluster):
        status, headers, body = http_get(f"{cluster.url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert 'worker="0"' in text
        assert 'worker="1"' in text
        assert "cluster_workers 2" in text
        assert "# TYPE cluster_proxied_requests_total counter" in text

    def test_metrics_json_merged(self, cluster):
        snapshot = get_json(f"{cluster.url}/metrics?format=json")
        families = snapshot["metrics"]
        assert "cluster_workers" in families
        workers_seen = {
            sample["labels"]["worker"]
            for sample in families["server_requests_total"]["samples"]
        }
        assert workers_seen <= {"0", "1"}
        assert len(workers_seen) >= 1

    def test_metrics_rejects_unknown_format(self, cluster):
        status, _, body = http_get(
            f"{cluster.url}/metrics?format=xml"
        )
        assert status == 400
        assert "format" in json.loads(body)["error"]["message"]


class TestCoalescing:
    def test_concurrent_identical_cold_diffs_one_dp(
        self, fresh_cluster
    ):
        """K=8 identical cold ``GET /diff`` requests cost exactly 1 DP.

        The acceptance check from the issue: the parent coalesces the
        simultaneous arrivals into one proxied request, and stragglers
        that miss the flight hit the worker's now-warm cache — the DP
        kernel runs once either way.
        """
        k = 8
        url = f"{fresh_cluster.url}/diff/r01/r02?spec={SPEC}"
        barrier = threading.Barrier(k)
        outcomes = []
        lock = threading.Lock()

        def fire():
            barrier.wait()
            status, _, body = http_get(url)
            with lock:
                outcomes.append((status, body))

        threads = [threading.Thread(target=fire) for _ in range(k)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        assert len(outcomes) == k
        statuses = {status for status, _ in outcomes}
        assert statuses == {200}
        bodies = {body for _, body in outcomes}
        assert len(bodies) == 1

        snapshot = get_json(
            f"{fresh_cluster.url}/metrics?format=json"
        )
        assert metric_total(snapshot, "dp_invocations_total") == 1

    def test_coalesced_counter_advances_for_simultaneous_pairs(
        self, fresh_cluster
    ):
        """With a blocked leader, followers demonstrably coalesce at
        the parent (counted in ``cluster_coalesced``) rather than
        racing the worker."""
        url = f"{fresh_cluster.url}/diff/r02/r03?spec={SPEC}"
        app = fresh_cluster.app
        k = 4
        barrier = threading.Barrier(k + 1)
        results = []
        lock = threading.Lock()

        def fire():
            barrier.wait()
            status, _, _ = http_get(url)
            with lock:
                results.append(status)

        threads = [threading.Thread(target=fire) for _ in range(k)]
        for thread in threads:
            thread.start()
        barrier.wait()
        for thread in threads:
            thread.join(timeout=120)
        assert results == [200] * k
        # Parent-side accounting: every proxied request counted, and
        # coalesced followers (if the race produced any — timing-
        # dependent) never exceed K-1.
        assert app.proxied >= 1
        assert 0 <= app.coalesced <= k - 1


class TestSupervision:
    def test_worker_crash_is_restarted_and_serving_resumes(
        self, fresh_cluster
    ):
        health = get_json(f"{fresh_cluster.url}/healthz")
        victim = health["cluster"]["members"][1]
        os.kill(victim["pid"], signal.SIGKILL)

        deadline = time.monotonic() + 30
        recovered = None
        while time.monotonic() < deadline:
            payload = get_json(f"{fresh_cluster.url}/healthz")
            block = payload["cluster"]
            if block["alive"] == 2 and block["restarts"] >= 1:
                recovered = payload
                break
            time.sleep(0.2)
        assert recovered is not None, "worker was not restarted"
        assert recovered["status"] == "ok"

        replacement = recovered["cluster"]["members"][1]
        assert replacement["pid"] != victim["pid"]
        assert replacement["restarts"] >= 1

        # Every pair still answers — including pairs owned by the
        # restarted shard — and the restart is visible in /stats.
        for a, b in (("r01", "r02"), ("r01", "r03"), ("r02", "r04")):
            status, _, _ = http_get(
                f"{fresh_cluster.url}/diff/{a}/{b}?spec={SPEC}"
            )
            assert status == 200
        stats = get_json(f"{fresh_cluster.url}/stats")
        assert stats["counters"]["cluster_worker_restarts"] >= 1

    def test_healthz_degraded_while_worker_down(self, fresh_cluster):
        """Between the crash and the restart the cluster self-reports
        degraded (a watcher poll interval wide enough to observe)."""
        fresh_cluster.supervisor.poll_interval = 1.0
        health = get_json(f"{fresh_cluster.url}/healthz")
        victim = health["cluster"]["members"][1]
        os.kill(victim["pid"], signal.SIGKILL)
        deadline = time.monotonic() + 5
        saw_degraded = False
        while time.monotonic() < deadline:
            payload = get_json(f"{fresh_cluster.url}/healthz")
            if payload["status"] == "degraded":
                saw_degraded = True
                break
            if payload["cluster"]["restarts"]:
                break  # restarted before we caught the gap — fine
            time.sleep(0.05)
        if saw_degraded:
            # It must heal afterwards.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                payload = get_json(f"{fresh_cluster.url}/healthz")
                if payload["status"] == "ok":
                    break
                time.sleep(0.2)
            assert payload["status"] == "ok"
