"""Raw-HTTP helpers for the cluster suite.

Deliberately not :class:`repro.client.RemoteWorkspace`: these tests
assert the wire itself — status codes, relayed headers, byte-exact
bodies — and the client would hide exactly the things under test.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple


def http_get(
    url: str,
    headers: Optional[dict] = None,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """``(status, headers, body_bytes)`` for a GET, errors included."""
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, dict(reply.headers), reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def http_post(
    url: str,
    payload: dict,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """``(status, headers, body_bytes)`` for a JSON POST."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, dict(reply.headers), reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def get_json(url: str, headers: Optional[dict] = None) -> dict:
    """GET a URL that must answer 200 with a JSON body."""
    status, _, body = http_get(url, headers=headers)
    assert status == 200, body.decode("utf-8", "replace")
    return json.loads(body)


def metric_total(snapshot: dict, family: str) -> float:
    """Sum every sample of ``family`` in a JSON ``/metrics`` snapshot."""
    info = snapshot["metrics"].get(family)
    if info is None:
        return 0.0
    return sum(sample["value"] for sample in info["samples"])
