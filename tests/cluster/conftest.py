"""Fixtures for the cluster suite: shared corpus and live clusters.

The corpus is the same seed-deterministic fixture the service suite
uses (``tests/service/_fixture.py``), built once per session.  Two
cluster shapes are offered: a module-scoped cluster for read-mostly
assertions, and a function-scoped one for tests that must start from
cold caches / zero counters (coalescing) or that kill workers
(restart supervision).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "service"))

from _fixture import build_corpus  # noqa: E402

from repro.config import ReproConfig  # noqa: E402


def _cluster_config() -> ReproConfig:
    return ReproConfig(backend="serial", log_format="off")


@pytest.fixture(scope="session")
def corpus_root(tmp_path_factory):
    """The fixture corpus (r01..r04 over spec PA), built once."""
    root = tmp_path_factory.mktemp("cluster-corpus")
    build_corpus(root)
    return root


@pytest.fixture(scope="module")
def cluster(corpus_root):
    """A long-lived two-worker cluster for read-mostly tests."""
    from repro.cluster.server import ClusterServer

    with ClusterServer(
        corpus_root, _cluster_config(), workers=2
    ) as live:
        yield live


@pytest.fixture
def fresh_cluster(corpus_root):
    """A per-test cluster: cold caches, zero counters, killable."""
    from repro.cluster.server import ClusterServer

    with ClusterServer(
        corpus_root, _cluster_config(), workers=2
    ) as live:
        yield live
