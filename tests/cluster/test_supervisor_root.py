"""WorkerSupervisor must resolve its root to a real path string.

The old ``str(root)`` coercion turned a passed-in store object into
its repr; workers then created a repr-named directory under CWD.
"""

import pytest

from repro import ReproConfig, Workspace
from repro.cluster.supervisor import WorkerSupervisor
from repro.errors import ReproError
from repro.io.store import WorkflowStore

CONFIG = ReproConfig(backend="serial")


class TestSupervisorRoot:
    def test_accepts_path(self, tmp_path):
        supervisor = WorkerSupervisor(tmp_path, CONFIG, count=1)
        assert supervisor.root == str(tmp_path)

    def test_accepts_str(self, tmp_path):
        supervisor = WorkerSupervisor(str(tmp_path), CONFIG, count=1)
        assert supervisor.root == str(tmp_path)

    def test_unwraps_store(self, tmp_path):
        store = WorkflowStore(tmp_path / "s")
        supervisor = WorkerSupervisor(store, CONFIG, count=1)
        assert supervisor.root == str(tmp_path / "s")
        assert "object at 0x" not in supervisor.root

    def test_unwraps_workspace(self, tmp_path):
        workspace = Workspace(tmp_path / "w", CONFIG)
        supervisor = WorkerSupervisor(workspace, CONFIG, count=1)
        assert supervisor.root == str(tmp_path / "w")

    def test_rejects_garbage(self):
        with pytest.raises(ReproError, match="path or a store"):
            WorkerSupervisor(12345, CONFIG, count=1)
