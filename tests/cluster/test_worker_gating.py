"""Worker-side packing-bound gating (shipped bounds, satellite of the
cluster PR): a :class:`DistanceTask` carries the parent's lower bound
and pruning threshold, so process-pool workers skip provably-doomed
DPs inside their own address space."""

from __future__ import annotations

import math

import pytest

from repro.backends.work import DistanceTask, compute_distance
from repro.config import ReproConfig
from repro.costs.standard import UnitCost
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation
from repro.workspace import Workspace

SPEC = "PA"
VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


@pytest.fixture(scope="module")
def runs():
    spec = protein_annotation()
    return [
        execute_workflow(spec, VARIED, seed=seed, name=f"r{seed:02d}")
        for seed in (1, 2)
    ]


def _workspace(root, backend: str) -> Workspace:
    workspace = Workspace(root, ReproConfig(backend=backend))
    workspace.register(protein_annotation())
    for seed in (1, 2, 3, 4, 5):
        workspace.generate_run(f"r{seed:02d}", params=VARIED, seed=seed)
    return workspace


class TestWorkerGate:
    def test_bound_above_cutoff_skips_the_dp(self, runs):
        task = DistanceTask(
            run_a=runs[0],
            run_b=runs[1],
            cost=UnitCost(),
            bound=10.0,
            cutoff=5.0,
        )
        assert compute_distance(task) == float("inf")

    def test_bound_equal_to_cutoff_still_computes(self, runs):
        """The gate is *strictly* ``bound > cutoff`` — a pair whose
        bound ties τ may still tie into the ranking, so it runs."""
        gated = DistanceTask(
            run_a=runs[0],
            run_b=runs[1],
            cost=UnitCost(),
            bound=5.0,
            cutoff=5.0,
        )
        value = compute_distance(gated)
        assert math.isfinite(value)

    def test_no_cutoff_means_no_gate(self, runs):
        task = DistanceTask(
            run_a=runs[0], run_b=runs[1], cost=UnitCost(), bound=1e9
        )
        assert math.isfinite(compute_distance(task))


class TestServiceCrediting:
    def test_gated_inf_is_credited_and_never_cached(self, tmp_path):
        workspace = _workspace(tmp_path, "serial")
        service = workspace.service
        cost = UnitCost()
        spec, fingerprints = service._resolve(SPEC, ["r01", "r02"])

        results = service._compute_pairs(
            spec,
            [("r01", "r02")],
            fingerprints,
            cost,
            bounds={("r01", "r02"): 1e9},
            cutoff=1.0,
        )
        assert results[("r01", "r02")] == float("inf")
        assert service.dp_skipped_by_bound == 1
        assert service.computed_pairs == 0

        # The inf sentinel must not have been cached: an ungated ask
        # for the same pair performs the real DP and gets a finite
        # distance.
        value = service.distance(SPEC, "r01", "r02", cost=cost)
        assert math.isfinite(value)
        assert service.computed_pairs == 1

    def test_shipped_gate_fires_inside_process_workers(self, tmp_path):
        """The bound/cutoff travel with the pickled task: a process
        worker returns ``inf`` without a DP and the parent credits
        ``dp_skipped_by_bound`` on arrival."""
        workspace = _workspace(tmp_path, "process")
        service = workspace.service
        cost = UnitCost()
        spec, fingerprints = service._resolve(SPEC, ["r01", "r02"])

        results = service._compute_pairs(
            spec,
            [("r01", "r02")],
            fingerprints,
            cost,
            bounds={("r01", "r02"): 1e9},
            cutoff=1.0,
        )
        assert results[("r01", "r02")] == float("inf")
        assert service.dp_skipped_by_bound == 1
        assert service.computed_pairs == 0


class TestBackendBitIdentity:
    def test_nearest_identical_across_backends(self, tmp_path):
        """``nearest_runs(k)`` under the process backend (shipped
        bounds, worker-side gate) ranks bit-identically to the serial
        backend (parent-side drop), warm caches and all."""
        rankings = {}
        skips = {}
        for backend in ("serial", "process"):
            workspace = _workspace(tmp_path / backend, backend)
            service = workspace.service
            # Warm a few distances so the top-k prune has known
            # pivots (identically in both corpora — same seeds).
            service.distance(SPEC, "r01", "r02")
            service.distance(SPEC, "r01", "r03")
            rankings[backend] = service.nearest_runs(
                SPEC, "r01", k=2
            )
            skips[backend] = service.dp_skipped_by_bound
        assert rankings["serial"] == rankings["process"]
        # Both gates see the same bounds and the same τ, so they must
        # make the same skip decisions — parent-side or worker-side.
        assert skips["serial"] == skips["process"]
