"""Shard assignment: deterministic, process-independent, undirected."""

import subprocess
import sys

import pytest

from repro.cluster.shard import (
    pair_shard_key,
    shard_for_name,
    shard_for_pair,
)
from repro.cluster.shard import shard_spread
from repro.errors import ReproError  # noqa: F401 - parity import


class TestShardForName:
    def test_in_range(self):
        for count in (1, 2, 3, 7):
            for i in range(50):
                assert 0 <= shard_for_name(f"run-{i}", count) < count

    def test_single_shard_owns_everything(self):
        assert shard_for_name("anything", 1) == 0

    def test_deterministic(self):
        assert shard_for_name("r01", 4) == shard_for_name("r01", 4)

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            shard_for_name("r01", 0)
        with pytest.raises(ValueError):
            shard_for_name("r01", -2)

    def test_stable_across_interpreter_processes(self):
        """The mapping must not depend on PYTHONHASHSEED — a parent
        and its spawned workers have different seeds and must agree."""
        code = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.cluster.shard import shard_for_name; "
            "print([shard_for_name(f'r{i:02d}', 3) for i in range(8)])"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                cwd=_repo_root(),
                env=_hash_seed_env(seed),
            ).stdout.strip()
            for seed in ("0", "12345")
        }
        assert len(outputs) == 1
        local = str([shard_for_name(f"r{i:02d}", 3) for i in range(8)])
        assert outputs == {local}

    def test_spreads_across_shards(self):
        names = tuple(f"run-{i}" for i in range(64))
        spread = shard_spread(names, 4)
        assert sum(spread) == 64
        assert all(count > 0 for count in spread)


class TestShardForPair:
    def test_undirected(self):
        assert shard_for_pair("a", "b", 5) == shard_for_pair("b", "a", 5)

    def test_key_is_canonical(self):
        assert pair_shard_key("b", "a") == pair_shard_key("a", "b")
        assert pair_shard_key("a", "b") == "a\x00b"

    def test_in_range(self):
        for count in (1, 2, 4):
            for i in range(20):
                assert (
                    0
                    <= shard_for_pair(f"r{i}", f"r{i + 1}", count)
                    < count
                )

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            shard_for_pair("a", "b", 0)


def _repo_root():
    import pathlib

    return str(pathlib.Path(__file__).resolve().parents[2])


def _hash_seed_env(seed: str):
    import os

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    return env
