"""Tests for the Hungarian algorithm (F-node matching, Fig. 9)."""

import math
import random

import pytest

from repro.errors import MatchingError
from repro.matching.hungarian import INF, match_children, solve_assignment

scipy_optimize = pytest.importorskip("scipy.optimize")


class TestSolveAssignment:
    def test_empty(self):
        assert solve_assignment([]) == (0.0, [])

    def test_identity(self):
        total, assignment = solve_assignment([[0.0, 9.0], [9.0, 0.0]])
        assert total == 0.0
        assert assignment == [0, 1]

    def test_known_instance(self):
        matrix = [
            [4, 1, 3],
            [2, 0, 5],
            [3, 2, 2],
        ]
        total, assignment = solve_assignment(matrix)
        assert total == 5.0  # 1 + 2 + 2
        assert sorted(assignment) == [0, 1, 2]

    def test_respects_forbidden_entries(self):
        matrix = [
            [INF, 1.0],
            [1.0, INF],
        ]
        total, assignment = solve_assignment(matrix)
        assert total == 2.0
        assert assignment == [1, 0]

    def test_infeasible_raises(self):
        matrix = [
            [INF, INF],
            [1.0, 1.0],
        ]
        with pytest.raises(MatchingError, match="no finite"):
            solve_assignment(matrix)

    def test_non_square_raises(self):
        with pytest.raises(MatchingError, match="square"):
            solve_assignment([[1.0, 2.0]])

    @pytest.mark.parametrize("size", [2, 3, 5, 8, 12])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scipy_random(self, size, seed):
        rng = random.Random(seed * 100 + size)
        matrix = [
            [rng.uniform(0, 10) for _ in range(size)] for _ in range(size)
        ]
        total, _ = solve_assignment(matrix)
        rows, cols = scipy_optimize.linear_sum_assignment(matrix)
        expected = sum(matrix[r][c] for r, c in zip(rows, cols))
        assert total == pytest.approx(expected)


class TestMatchChildren:
    def test_empty_children(self):
        assert match_children(lambda i, j: 0.0, [], []) == (0.0, [])

    def test_prefers_cheap_match(self):
        total, matches = match_children(
            lambda i, j: 1.0, [10.0], [10.0]
        )
        assert total == 1.0
        assert matches == [(0, 0)]

    def test_prefers_delete_insert_when_cheaper(self):
        total, matches = match_children(
            lambda i, j: 100.0, [1.0], [1.0]
        )
        assert total == 2.0
        assert matches == []

    def test_fig9_example(self):
        """Example 5.2: one child vs two; unit costs from the paper."""
        pair_costs = {(0, 0): 2.0, (0, 1): 3.0}
        total, matches = match_children(
            lambda i, j: pair_costs[(i, j)],
            [3.0],        # X_T1(v5)
            [3.0, 2.0],   # X_T2(v6), X_T2(v3)
        )
        assert total == 4.0  # match v5-v6 (2) + insert v3 (2)
        assert matches == [(0, 0)]

    def test_asymmetric_sizes(self):
        total, matches = match_children(
            lambda i, j: abs(i - j) * 0.5,
            [5.0, 5.0, 5.0],
            [5.0],
        )
        # Best: match one pair at cost <= 0.5 wait - match (0,0) at 0,
        # delete the other two at 5 each.
        assert total == pytest.approx(10.0)
        assert len(matches) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_optimum_vs_bruteforce(self, seed):
        rng = random.Random(seed)
        n1, n2 = rng.randint(1, 4), rng.randint(1, 4)
        pair = [
            [rng.uniform(0, 5) for _ in range(n2)] for _ in range(n1)
        ]
        deletes = [rng.uniform(0, 5) for _ in range(n1)]
        inserts = [rng.uniform(0, 5) for _ in range(n2)]

        def brute(i, used):
            if i == n1:
                return sum(
                    inserts[j] for j in range(n2) if j not in used
                )
            best = deletes[i] + brute(i + 1, used)
            for j in range(n2):
                if j not in used:
                    best = min(
                        best, pair[i][j] + brute(i + 1, used | {j})
                    )
            return best

        total, _ = match_children(
            lambda i, j: pair[i][j], deletes, inserts
        )
        assert total == pytest.approx(brute(0, frozenset()))
