"""Tests for the non-crossing matching DP (L-node matching, Alg. 6)."""

import random

import pytest

from repro.matching.noncrossing import (
    brute_force_noncrossing,
    noncrossing_match,
)


class TestBasics:
    def test_empty(self):
        assert noncrossing_match(lambda i, j: 0.0, [], []) == (0.0, [])

    def test_all_deletes(self):
        total, matches = noncrossing_match(
            lambda i, j: 100.0, [1.0, 2.0], []
        )
        assert total == 3.0
        assert matches == []

    def test_all_inserts(self):
        total, matches = noncrossing_match(
            lambda i, j: 100.0, [], [2.0, 2.0]
        )
        assert total == 4.0

    def test_perfect_alignment(self):
        total, matches = noncrossing_match(
            lambda i, j: 0.0 if i == j else 100.0,
            [10.0, 10.0],
            [10.0, 10.0],
        )
        assert total == 0.0
        assert matches == [(0, 0), (1, 1)]

    def test_shift_alignment(self):
        # Second left iteration matches first right iteration.
        pair = {(1, 0): 0.0}
        total, matches = noncrossing_match(
            lambda i, j: pair.get((i, j), 100.0),
            [1.0, 50.0],
            [50.0, 1.0],
        )
        assert total == 2.0
        assert matches == [(1, 0)]

    def test_matches_are_noncrossing(self):
        rng = random.Random(3)
        pair = [[rng.uniform(0, 3) for _ in range(6)] for _ in range(6)]
        _, matches = noncrossing_match(
            lambda i, j: pair[i][j], [2.0] * 6, [2.0] * 6
        )
        for (i1, j1), (i2, j2) in zip(matches, matches[1:]):
            assert i1 < i2 and j1 < j2

    def test_crossing_would_be_cheaper(self):
        """The DP must refuse crossing matches even when they'd be free."""
        pair = {(0, 1): 0.0, (1, 0): 0.0}
        total, matches = noncrossing_match(
            lambda i, j: pair.get((i, j), 100.0),
            [5.0, 5.0],
            [5.0, 5.0],
        )
        # Crossing both pairs would cost 0 but is forbidden: best is one
        # match plus one delete+insert.
        assert total == 10.0
        assert len(matches) == 1


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        n1, n2 = rng.randint(0, 6), rng.randint(0, 6)
        pair = [
            [rng.uniform(0, 4) for _ in range(n2)] for _ in range(n1)
        ]
        deletes = [rng.uniform(0, 4) for _ in range(n1)]
        inserts = [rng.uniform(0, 4) for _ in range(n2)]
        total, _ = noncrossing_match(
            lambda i, j: pair[i][j], deletes, inserts
        )
        expected = brute_force_noncrossing(
            lambda i, j: pair[i][j], deletes, inserts
        )
        assert total == pytest.approx(expected)

    def test_backtrace_cost_consistent(self):
        rng = random.Random(11)
        n = 5
        pair = [[rng.uniform(0, 4) for _ in range(n)] for _ in range(n)]
        deletes = [rng.uniform(0, 4) for _ in range(n)]
        inserts = [rng.uniform(0, 4) for _ in range(n)]
        total, matches = noncrossing_match(
            lambda i, j: pair[i][j], deletes, inserts
        )
        matched_left = {i for i, _ in matches}
        matched_right = {j for _, j in matches}
        recomputed = (
            sum(pair[i][j] for i, j in matches)
            + sum(deletes[i] for i in range(n) if i not in matched_left)
            + sum(inserts[j] for j in range(n) if j not in matched_right)
        )
        assert total == pytest.approx(recomputed)
