"""Tests for the spec/run tree validators (Lemmas 4.2 and 4.4)."""

import pytest

from repro.errors import GraphStructureError
from repro.sptree.nodes import (
    EdgeRef,
    NodeType,
    SPTree,
    f_node,
    l_node,
    p_node,
    q_node,
    s_node,
)
from repro.sptree.validate import validate_run_tree, validate_spec_tree


def q(u, v, lu=None, lv=None, key=0):
    return q_node(EdgeRef(u, v, lu or str(u), lv or str(v), key))


class TestSpecValidator:
    def test_accepts_fig2(self, fig2_spec):
        validate_spec_tree(fig2_spec.tree)

    def test_rejects_single_child_p(self):
        tree = p_node([q("a", "b")])
        with pytest.raises(GraphStructureError, match=">= 2"):
            validate_spec_tree(tree)

    def test_rejects_multi_child_f(self):
        tree = f_node([q("a", "b"), q("a", "b", key=1)])
        with pytest.raises(GraphStructureError, match="exactly one"):
            validate_spec_tree(tree)

    def test_rejects_f_with_p_child(self):
        tree = f_node([p_node([q("a", "b"), q("a", "b", key=1)])])
        with pytest.raises(GraphStructureError, match="S or Q"):
            validate_spec_tree(tree)

    def test_accepts_l_with_p_child(self):
        tree = l_node([p_node([q("a", "b"), q("a", "b", key=1)])])
        validate_spec_tree(tree)

    def test_rejects_same_type_parent(self):
        inner = SPTree(NodeType.S, (q("b", "c"), q("c", "d")))
        outer = SPTree(NodeType.S, (q("a", "b"), inner))
        with pytest.raises(GraphStructureError, match="same type"):
            validate_spec_tree(outer)


class TestRunValidator:
    def test_accepts_pseudo_p(self):
        validate_run_tree(p_node([q("a", "b")]))

    def test_accepts_multi_copy_f(self):
        validate_run_tree(f_node([q("a", "b"), q("a", "b", key=1)]))

    def test_rejects_mixed_f_children(self):
        chain = s_node([q("a", "m", lu="a", lv="m"), q("m", "b", lu="m", lv="b")])
        single = q("a", "b")
        with pytest.raises(GraphStructureError, match="share a type"):
            validate_run_tree(f_node([chain, single]))

    def test_rejects_single_child_s(self):
        bad = SPTree(NodeType.S, (q("a", "b"),))
        with pytest.raises(GraphStructureError, match=">= 2"):
            validate_run_tree(bad)

    def test_requires_origins_when_asked(self, fig2_r1):
        validate_run_tree(fig2_r1.tree, require_origin=True)
        plain = q("a", "b")
        with pytest.raises(GraphStructureError, match="origin"):
            validate_run_tree(plain, require_origin=True)

    def test_accepts_fig2_runs(self, fig2_r1, fig2_r2, fig2_r3):
        for run in (fig2_r1, fig2_r2, fig2_r3):
            validate_run_tree(run.tree, require_origin=True)
