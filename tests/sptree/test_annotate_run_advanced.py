"""Advanced annotation scenarios: nesting, ambiguity, whole-graph forks."""

import pytest

from repro.errors import InvalidRunError
from repro.graphs.flow_network import FlowNetwork
from repro.sptree.annotate_run import annotate_run_tree
from repro.sptree.nodes import NodeType
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def graph_of(nodes, edges, name="run"):
    graph = FlowNetwork(name=name)
    for node, label in nodes.items():
        graph.add_node(node, label)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


class TestNestedLoops:
    @pytest.fixture(scope="class")
    def spec(self):
        # s -> a -> b -> c -> t; inner loop (a..b), outer loop (a..c).
        graph = FlowNetwork(name="nested-loops")
        for node in "sabct":
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "t")
        return WorkflowSpecification(
            graph,
            loops=[("a", "b"), ("a", "c")],
            name="nested-loops",
        )

    def test_inner_iterations_within_outer(self, spec):
        # Outer runs twice; first outer iteration runs the inner loop
        # twice; second once.
        graph = graph_of(
            {
                "s0": "s",
                "a0": "a",
                "b0": "b",
                "a1": "a",
                "b1": "b",
                "c0": "c",
                "a2": "a",
                "b2": "b",
                "c1": "c",
                "t0": "t",
            },
            [
                ("s0", "a0"),
                ("a0", "b0"),
                ("b0", "a1"),  # inner back-edge (b -> a)
                ("a1", "b1"),
                ("b1", "c0"),
                ("c0", "a2"),  # outer back-edge (c -> a)
                ("a2", "b2"),
                ("b2", "c1"),
                ("c1", "t0"),
            ],
        )
        tree = annotate_run_tree(spec, graph)
        outer = tree.find(
            lambda n: n.kind is NodeType.L and n.sink_label == "c"
        )
        assert outer is not None and outer.degree == 2
        first_outer = outer.children[0]
        inner = first_outer.find(
            lambda n: n.kind is NodeType.L and n.sink_label == "b"
        )
        assert inner is not None and inner.degree == 2
        second_outer = outer.children[1]
        inner2 = second_outer.find(
            lambda n: n.kind is NodeType.L and n.sink_label == "b"
        )
        assert inner2 is not None and inner2.degree == 1

    def test_inner_back_edge_outside_outer_rejected(self, spec):
        # A (b -> a) back edge appearing after the outer loop finished.
        graph = graph_of(
            {
                "s0": "s",
                "a0": "a",
                "b0": "b",
                "c0": "c",
                "t0": "t",
                "a1": "a",
                "b1": "b",
            },
            [
                ("s0", "a0"),
                ("a0", "b0"),
                ("b0", "c0"),
                ("c0", "t0"),
                ("c0", "a1"),  # dangling second outer iteration start...
                ("a1", "b1"),  # ...that never reaches c
            ],
        )
        with pytest.raises(InvalidRunError):
            annotate_run_tree(spec, graph)


class TestAmbiguousBranches:
    @pytest.fixture(scope="class")
    def spec(self):
        # Two identical direct edges u -> v plus a forked third copy.
        graph = FlowNetwork(name="ambiguous")
        graph.add_node("u")
        graph.add_node("v")
        first = graph.add_edge("u", "v")
        graph.add_edge("u", "v")
        return WorkflowSpecification(
            graph, forks=[[first]], name="ambiguous"
        )

    def test_flag_set(self, spec):
        assert spec.has_ambiguous_branches

    def test_copies_distribute_canonically(self, spec):
        graph = graph_of({"u0": "u", "v0": "v"}, [])
        for _ in range(4):
            graph.add_edge("u0", "v0")
        tree = annotate_run_tree(spec, graph)
        # One copy fills the plain branch; three land on the fork.
        parallel = tree
        assert parallel.kind is NodeType.P
        fork = next(
            c for c in parallel.children if c.kind is NodeType.F
        )
        assert fork.degree == 3

    def test_equivalent_runs_get_equivalent_trees(self, spec):
        one = graph_of({"u0": "u", "v0": "v"}, [])
        two = graph_of({"ux": "u", "vx": "v"}, [])
        for _ in range(3):
            one.add_edge("u0", "v0")
            two.add_edge("ux", "vx")
        t1 = annotate_run_tree(spec, one)
        t2 = annotate_run_tree(spec, two)
        assert t1.structure_key() == t2.structure_key()

    def test_diff_of_equivalent_is_zero(self, spec):
        from repro.core.api import edit_distance

        one = graph_of({"u0": "u", "v0": "v"}, [])
        two = graph_of({"ux": "u", "vx": "v"}, [])
        for _ in range(3):
            one.add_edge("u0", "v0")
            two.add_edge("ux", "vx")
        run1 = WorkflowRun(spec, one, name="one")
        run2 = WorkflowRun(spec, two, name="two")
        assert edit_distance(run1, run2) == 0.0


class TestWholeGraphFork:
    def test_fig2_whole_graph_copies_share_terminals(
        self, fig2_spec, fig2_r2
    ):
        root = fig2_r2.tree
        assert root.kind is NodeType.F
        for copy in root.children:
            assert copy.source == "1a"
            assert copy.sink == "7a"

    def test_three_copies(self, fig2_spec):
        params = ExecutionParams(
            prob_parallel=1.0, max_fork=3, prob_fork=1.0
        )
        run = execute_workflow(fig2_spec, params, seed=1)
        # The root fork replicates three whole-workflow copies, each of
        # which contains its own (fully forked) section copies.
        assert run.tree.kind is NodeType.F
        assert run.tree.degree == 3
        rebuilt = annotate_run_tree(fig2_spec, run.graph)
        assert rebuilt.equivalent(run.tree)
