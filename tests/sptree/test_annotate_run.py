"""Tests for Algorithms 2 and 5: annotated run trees (``f''``)."""

import pytest

from repro.errors import InvalidRunError
from repro.graphs.flow_network import FlowNetwork
from repro.sptree.annotate_run import annotate_run_tree, is_valid_sp_run
from repro.sptree.nodes import NodeType
from repro.sptree.validate import validate_run_tree
from repro.workflow.specification import WorkflowSpecification

from tests.conftest import build_run


def graph_from(nodes, edges, name="run"):
    graph = FlowNetwork(name=name)
    for node, label in nodes.items():
        graph.add_node(node, label)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


class TestFig2Trees:
    def test_t1_matches_fig6c(self, fig2_spec, fig2_r1):
        tree = fig2_r1.tree
        validate_run_tree(tree, require_origin=True)
        assert tree.kind is NodeType.F
        assert tree.degree == 1
        series = tree.children[0]
        assert [c.kind for c in series.children] == [
            NodeType.Q,
            NodeType.L,
            NodeType.Q,
        ]
        parallel = series.children[1].children[0]
        assert parallel.kind is NodeType.P
        fork_degrees = sorted(c.degree for c in parallel.children)
        assert fork_degrees == [1, 2]  # one copy of 4-branch, two of 3-branch

    def test_t2_matches_fig6d(self, fig2_spec, fig2_r2):
        tree = fig2_r2.tree
        assert tree.kind is NodeType.F
        assert tree.degree == 2  # the whole workflow forked twice
        for copy in tree.children:
            assert copy.kind is NodeType.S

    def test_t3_loop_iterations(self, fig2_spec, fig2_r3):
        tree = fig2_r3.tree
        series = tree.children[0]
        loop_node = series.children[1]
        assert loop_node.kind is NodeType.L
        assert loop_node.degree == 2
        first, second = loop_node.children
        # First iteration: branches 3 and 4 (4 forked twice).
        assert first.kind is NodeType.P
        assert second.kind is NodeType.P
        assert first.source == "2a" and first.sink == "6a"
        assert second.source == "2b" and second.sink == "6b"

    def test_origins_point_into_spec_tree(self, fig2_spec, fig2_r1):
        spec_nodes = {id(n) for n in fig2_spec.tree.iter_nodes("pre")}
        for node in fig2_r1.tree.iter_nodes("pre"):
            assert id(node.origin) in spec_nodes


class TestValidityRejections:
    @pytest.fixture
    def chain_spec(self):
        graph = FlowNetwork(name="chain")
        for node in "abc":
            graph.add_node(node)
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        return WorkflowSpecification(graph, name="chain")

    def test_missing_series_step_rejected(self, fig2_spec):
        # Skip module 2 entirely: edge (1 -> 3) is not a spec edge.
        graph = graph_from(
            {"1a": "1", "3a": "3", "6a": "6", "7a": "7"},
            [("1a", "3a"), ("3a", "6a"), ("6a", "7a")],
        )
        assert not is_valid_sp_run(fig2_spec, graph)

    def test_duplicate_nonfork_branch_rejected(self, chain_spec):
        # Two parallel copies of edge (a, b): the chain spec has no forks.
        graph = graph_from(
            {"a1": "a", "b1": "b", "b2": "b", "c1": "c"},
            [("a1", "b1"), ("a1", "b2"), ("b1", "c1"), ("b2", "c1")],
        )
        with pytest.raises(InvalidRunError):
            annotate_run_tree(chain_spec, graph)

    def test_unrolled_loop_without_loop_rejected(self, chain_spec):
        graph = graph_from(
            {"a1": "a", "b1": "b", "c1": "c", "a2": "a", "b2": "b", "c2": "c"},
            [
                ("a1", "b1"),
                ("b1", "c1"),
                ("c1", "a2"),
                ("a2", "b2"),
                ("b2", "c2"),
            ],
        )
        with pytest.raises(InvalidRunError):
            annotate_run_tree(chain_spec, graph)

    def test_fork_beyond_annotation_rejected(self, fig2_spec):
        # Two copies of the (6,7) edge: that edge is not forked.
        graph = graph_from(
            {
                "1a": "1",
                "2a": "2",
                "3a": "3",
                "6a": "6",
                "7a": "7",
            },
            [
                ("1a", "2a"),
                ("2a", "3a"),
                ("3a", "6a"),
                ("6a", "7a"),
                ("6a", "7a"),
            ],
        )
        with pytest.raises(InvalidRunError):
            annotate_run_tree(fig2_spec, graph)

    def test_valid_minimal_run_accepted(self, fig2_spec):
        graph = graph_from(
            {"1a": "1", "2a": "2", "5a": "5", "6a": "6", "7a": "7"},
            [
                ("1a", "2a"),
                ("2a", "5a"),
                ("5a", "6a"),
                ("6a", "7a"),
            ],
        )
        tree = annotate_run_tree(fig2_spec, graph)
        validate_run_tree(tree, require_origin=True)


class TestLoopSegmentation:
    @pytest.fixture
    def loop_spec(self):
        graph = FlowNetwork(name="loopy")
        for node in "abc":
            graph.add_node(node)
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        return WorkflowSpecification(
            graph, loops=[("a", "b")], name="loopy"
        )

    def test_three_iterations(self, loop_spec):
        graph = graph_from(
            {
                "a1": "a",
                "b1": "b",
                "a2": "a",
                "b2": "b",
                "a3": "a",
                "b3": "b",
                "c1": "c",
            },
            [
                ("a1", "b1"),
                ("b1", "a2"),
                ("a2", "b2"),
                ("b2", "a3"),
                ("a3", "b3"),
                ("b3", "c1"),
            ],
        )
        tree = annotate_run_tree(loop_spec, graph)
        loop_node = tree.find(lambda n: n.kind is NodeType.L)
        assert loop_node is not None
        assert loop_node.degree == 3

    def test_iteration_order_preserved(self, loop_spec):
        graph = graph_from(
            {"a1": "a", "b1": "b", "a2": "a", "b2": "b", "c1": "c"},
            [
                ("a1", "b1"),
                ("b1", "a2"),
                ("a2", "b2"),
                ("b2", "c1"),
            ],
        )
        tree = annotate_run_tree(loop_spec, graph)
        loop_node = tree.find(lambda n: n.kind is NodeType.L)
        assert [it.source for it in loop_node.children] == ["a1", "a2"]

    def test_dangling_back_edge_rejected(self, loop_spec):
        # Back-edge with an empty second iteration: b1 -> a2 -> ???
        graph = graph_from(
            {"a1": "a", "b1": "b", "a2": "a", "c1": "c"},
            [("a1", "b1"), ("b1", "a2"), ("a2", "c1")],
        )
        with pytest.raises(InvalidRunError):
            annotate_run_tree(loop_spec, graph)


class TestExecutorAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_annotator_agrees_with_executor(self, fig2_spec, seed):
        from repro.workflow.execution import (
            ExecutionParams,
            execute_workflow,
        )

        params = ExecutionParams(
            prob_parallel=0.8,
            max_fork=3,
            prob_fork=0.5,
            max_loop=3,
            prob_loop=0.5,
        )
        run = execute_workflow(fig2_spec, params, seed=seed)
        rebuilt = annotate_run_tree(fig2_spec, run.graph)
        assert rebuilt.equivalent(run.tree)
