"""Tests for Algorithm 1: annotated specification trees."""

import pytest

from repro.errors import SpecificationError
from repro.graphs.flow_network import FlowNetwork
from repro.graphs.spgraph import path_graph
from repro.sptree.annotate_spec import (
    Annotation,
    annotate_specification_tree,
    check_laminar,
)
from repro.sptree.canonical import canonical_sp_tree
from repro.sptree.nodes import NodeType
from repro.sptree.validate import validate_spec_tree


def edge_set(graph, pairs):
    index = {}
    for u, v, key in graph.edges():
        index.setdefault((u, v), []).append((u, v, key))
    return frozenset(index[(u, v)][0] for (u, v) in pairs)


def fork(graph, pairs, name="F"):
    return Annotation(NodeType.F, edge_set(graph, pairs), name)


def loop(graph, pairs, name="L"):
    return Annotation(NodeType.L, edge_set(graph, pairs), name)


@pytest.fixture
def branching_graph():
    graph = FlowNetwork(name="g")
    for node in "sabmt":
        graph.add_node(node)
    graph.add_edge("s", "m")
    graph.add_edge("m", "a")
    graph.add_edge("a", "t")
    graph.add_edge("m", "b")
    graph.add_edge("b", "t")
    return graph


class TestAnnotationObjects:
    def test_annotation_requires_fork_or_loop(self):
        with pytest.raises(SpecificationError, match="F or L"):
            Annotation(NodeType.S, frozenset({("a", "b", 0)}))

    def test_annotation_requires_edges(self):
        with pytest.raises(SpecificationError, match="non-empty"):
            Annotation(NodeType.F, frozenset())


class TestLaminar:
    def test_disjoint_ok(self, branching_graph):
        check_laminar(
            [
                fork(branching_graph, [("m", "a"), ("a", "t")], "F1"),
                fork(branching_graph, [("s", "m")], "F2"),
            ]
        )

    def test_nested_ok(self, branching_graph):
        check_laminar(
            [
                fork(branching_graph, [("m", "a")], "F1"),
                loop(
                    branching_graph,
                    [("m", "a"), ("a", "t"), ("m", "b"), ("b", "t")],
                    "L1",
                ),
            ]
        )

    def test_duplicate_rejected(self, branching_graph):
        with pytest.raises(SpecificationError, match="duplicate"):
            check_laminar(
                [
                    fork(branching_graph, [("s", "m")], "F1"),
                    loop(branching_graph, [("s", "m")], "L1"),
                ]
            )

    def test_crossing_rejected(self):
        graph = path_graph(list("abcd"))
        with pytest.raises(SpecificationError, match="laminar"):
            check_laminar(
                [
                    fork(graph, [("a", "b"), ("b", "c")], "F1"),
                    fork(graph, [("b", "c"), ("c", "d")], "F2"),
                ]
            )


class TestForkPlacement:
    def test_fork_on_single_edge(self, branching_graph):
        tree, nodes = annotate_specification_tree(
            canonical_sp_tree(branching_graph),
            [fork(branching_graph, [("s", "m")], "F1")],
        )
        validate_spec_tree(tree)
        wrapper = next(iter(nodes.values()))
        assert wrapper.kind is NodeType.F
        assert wrapper.children[0].kind is NodeType.Q

    def test_fork_on_branch(self, branching_graph):
        annotation = fork(branching_graph, [("m", "a"), ("a", "t")], "F1")
        tree, nodes = annotate_specification_tree(
            canonical_sp_tree(branching_graph), [annotation]
        )
        validate_spec_tree(tree)
        wrapper = nodes[annotation]
        assert wrapper.kind is NodeType.F
        assert wrapper.children[0].kind is NodeType.S
        assert wrapper.leaf_count == 2

    def test_fork_on_consecutive_children_groups(self):
        graph = path_graph(list("abcde"))
        annotation = fork(graph, [("b", "c"), ("c", "d")], "F1")
        tree, nodes = annotate_specification_tree(
            canonical_sp_tree(graph), [annotation]
        )
        validate_spec_tree(tree)
        assert tree.kind is NodeType.S
        assert tree.degree == 3  # (a,b), F(S(bc,cd)), (d,e)
        wrapper = nodes[annotation]
        assert wrapper.children[0].kind is NodeType.S
        assert wrapper.children[0].degree == 2

    def test_fork_on_parallel_subgraph_rejected(self, branching_graph):
        whole_parallel = fork(
            branching_graph,
            [("m", "a"), ("a", "t"), ("m", "b"), ("b", "t")],
            "F1",
        )
        with pytest.raises(SpecificationError, match="series"):
            annotate_specification_tree(
                canonical_sp_tree(branching_graph), [whole_parallel]
            )

    def test_fork_on_whole_series_graph(self):
        graph = path_graph(list("abc"))
        annotation = fork(graph, [("a", "b"), ("b", "c")], "F1")
        tree, _ = annotate_specification_tree(
            canonical_sp_tree(graph), [annotation]
        )
        validate_spec_tree(tree)
        assert tree.kind is NodeType.F

    def test_misaligned_edge_set_rejected(self, branching_graph):
        # One edge from each parallel branch: not a subgraph of any kind.
        bad = fork(branching_graph, [("m", "a"), ("m", "b")], "F1")
        with pytest.raises(SpecificationError):
            annotate_specification_tree(
                canonical_sp_tree(branching_graph), [bad]
            )

    def test_unknown_edges_rejected(self, branching_graph):
        bad = Annotation(NodeType.F, frozenset({("x", "y", 0)}), "F1")
        with pytest.raises(SpecificationError, match="not in the"):
            annotate_specification_tree(
                canonical_sp_tree(branching_graph), [bad]
            )


class TestLoopPlacement:
    def test_loop_on_parallel_section(self, branching_graph):
        annotation = loop(
            branching_graph,
            [("m", "a"), ("a", "t"), ("m", "b"), ("b", "t")],
            "L1",
        )
        tree, nodes = annotate_specification_tree(
            canonical_sp_tree(branching_graph), [annotation]
        )
        validate_spec_tree(tree)
        wrapper = nodes[annotation]
        assert wrapper.kind is NodeType.L
        assert wrapper.children[0].kind is NodeType.P

    def test_loop_on_parallel_branch_rejected(self, branching_graph):
        bad = loop(branching_graph, [("m", "a"), ("a", "t")], "L1")
        with pytest.raises(SpecificationError, match="complete"):
            annotate_specification_tree(
                canonical_sp_tree(branching_graph), [bad]
            )

    def test_loop_on_whole_graph(self, branching_graph):
        annotation = loop(
            branching_graph,
            [
                ("s", "m"),
                ("m", "a"),
                ("a", "t"),
                ("m", "b"),
                ("b", "t"),
            ],
            "L1",
        )
        tree, _ = annotate_specification_tree(
            canonical_sp_tree(branching_graph), [annotation]
        )
        validate_spec_tree(tree)
        assert tree.kind is NodeType.L

    def test_nested_fork_inside_loop(self, branching_graph):
        inner = fork(branching_graph, [("m", "a"), ("a", "t")], "F1")
        outer = loop(
            branching_graph,
            [("m", "a"), ("a", "t"), ("m", "b"), ("b", "t")],
            "L1",
        )
        tree, nodes = annotate_specification_tree(
            canonical_sp_tree(branching_graph), [inner, outer]
        )
        validate_spec_tree(tree)
        loop_node = nodes[outer]
        fork_node = nodes[inner]
        # The fork must sit inside the loop subtree.
        assert any(n is fork_node for n in loop_node.iter_nodes("pre"))

    def test_fig2_tree_structure(self, fig2_spec):
        validate_spec_tree(fig2_spec.tree)
        root = fig2_spec.tree
        assert root.kind is NodeType.F  # fork over the whole workflow
        series = root.children[0]
        assert series.kind is NodeType.S
        loop_node = series.children[1]
        assert loop_node.kind is NodeType.L
        parallel = loop_node.children[0]
        assert parallel.kind is NodeType.P
        assert {c.kind for c in parallel.children} == {NodeType.F}
