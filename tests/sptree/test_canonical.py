"""Tests for canonical SP-tree construction (§IV-A)."""

import random

import pytest

from repro.graphs.flow_network import FlowNetwork
from repro.graphs.spgraph import path_graph
from repro.sptree.canonical import canonical_sp_tree
from repro.sptree.nodes import NodeType
from repro.workflow.generators import random_sp_graph


def shuffled_copy(graph: FlowNetwork, seed: int) -> FlowNetwork:
    """Same graph with node/edge insertion order permuted."""
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    edges = list(graph.edges())
    rng.shuffle(nodes)
    rng.shuffle(edges)
    clone = FlowNetwork(name=graph.name)
    for node in nodes:
        clone.add_node(node, graph.label(node))
    for u, v, key in edges:
        clone.add_edge(u, v, key)
    return clone


class TestShapes:
    def test_single_edge(self):
        tree = canonical_sp_tree(path_graph(["s", "t"]))
        assert tree.kind is NodeType.Q

    def test_path_flattens_to_single_s(self):
        tree = canonical_sp_tree(path_graph(list("abcdef")))
        assert tree.kind is NodeType.S
        assert tree.degree == 5
        assert all(c.kind is NodeType.Q for c in tree.children)

    def test_pure_parallel_flattens_to_single_p(self):
        graph = FlowNetwork()
        graph.add_node("u")
        graph.add_node("v")
        for _ in range(4):
            graph.add_edge("u", "v")
        tree = canonical_sp_tree(graph)
        assert tree.kind is NodeType.P
        assert tree.degree == 4

    def test_fig2_shape(self, fig2_spec):
        tree = canonical_sp_tree(fig2_spec.graph)
        assert tree.kind is NodeType.S
        assert tree.degree == 3  # edge(1,2), P-section, edge(6,7)
        middle = tree.children[1]
        assert middle.kind is NodeType.P
        assert middle.degree == 3
        for branch in middle.children:
            assert branch.kind is NodeType.S
            assert branch.degree == 2

    def test_canonical_no_same_type_adjacent(self):
        graph = random_sp_graph(60, 1.0, seed=9)
        tree = canonical_sp_tree(graph)
        for node in tree.iter_nodes("pre"):
            for child in node.children:
                assert child.kind is not node.kind

    def test_series_children_order_follows_graph(self):
        tree = canonical_sp_tree(path_graph(list("abcd")))
        sources = [c.source for c in tree.children]
        assert sources == ["a", "b", "c"]


class TestUniqueness:
    @pytest.mark.parametrize("seed", range(6))
    def test_invariant_under_insertion_order(self, seed):
        graph = random_sp_graph(50, 0.8, seed=seed)
        base = canonical_sp_tree(graph)
        for shuffle_seed in range(3):
            other = canonical_sp_tree(shuffled_copy(graph, shuffle_seed))
            assert base.equivalent(other)

    def test_leaf_set_preserved(self):
        graph = random_sp_graph(45, 1.5, seed=2)
        tree = canonical_sp_tree(graph)
        tree_edges = sorted(
            (ref.source, ref.sink, ref.key) for ref in tree.leaf_edges()
        )
        graph_edges = sorted(graph.edges())
        assert tree_edges == graph_edges

    def test_terminals_match_graph(self):
        graph = random_sp_graph(30, 0.7, seed=4)
        tree = canonical_sp_tree(graph)
        assert tree.source == graph.source()
        assert tree.sink == graph.sink()
