"""Unit tests for the SP-tree node model."""

import pytest

from repro.errors import GraphStructureError
from repro.sptree.nodes import (
    EdgeRef,
    NodeType,
    SPTree,
    f_node,
    l_node,
    p_node,
    q_node,
    s_node,
    with_origin,
)


def ref(u, v, lu=None, lv=None, key=0):
    return EdgeRef(u, v, lu or str(u), lv or str(v), key)


def q(u, v, **kw):
    return q_node(ref(u, v, **kw))


class TestConstruction:
    def test_q_node(self):
        leaf = q("a", "b")
        assert leaf.is_leaf
        assert leaf.leaf_count == 1
        assert leaf.source == "a"
        assert leaf.sink == "b"
        assert leaf.source_label == "a"

    def test_q_requires_edge(self):
        with pytest.raises(GraphStructureError, match="EdgeRef"):
            SPTree(NodeType.Q, ())

    def test_internal_rejects_edge(self):
        with pytest.raises(GraphStructureError, match="EdgeRef"):
            SPTree(NodeType.S, (q("a", "b"), q("b", "c")), edge=ref("x", "y"))

    def test_internal_requires_children(self):
        with pytest.raises(GraphStructureError, match="children"):
            SPTree(NodeType.P, ())

    def test_s_node_chains(self):
        node = s_node([q("a", "b"), q("b", "c")])
        assert node.source == "a"
        assert node.sink == "c"
        assert node.leaf_count == 2

    def test_s_node_rejects_broken_chain(self):
        with pytest.raises(GraphStructureError, match="chain"):
            s_node([q("a", "b"), q("x", "y")])

    def test_s_node_requires_two_children(self):
        with pytest.raises(GraphStructureError, match="two children"):
            s_node([q("a", "b")])

    def test_p_node_shares_terminals(self):
        node = p_node([q("a", "b"), q("a", "b", key=1)])
        assert node.degree == 2
        assert node.is_true

    def test_p_node_rejects_mismatched_terminals(self):
        with pytest.raises(GraphStructureError, match="terminals"):
            p_node([q("a", "b"), q("a", "c")])

    def test_l_node_iterations_share_labels(self):
        iter1 = q("u1", "v1", lu="u", lv="v")
        iter2 = q("u2", "v2", lu="u", lv="v")
        node = l_node([iter1, iter2])
        assert node.degree == 2
        assert node.source == "u1"
        assert node.sink == "v2"

    def test_l_node_rejects_mismatched_labels(self):
        with pytest.raises(GraphStructureError, match="labels"):
            l_node([q("u1", "v1", lu="u", lv="v"), q("x1", "y1")])


class TestStructure:
    def test_true_and_pseudo(self):
        pseudo = p_node([q("a", "b")])
        assert pseudo.is_pseudo and not pseudo.is_true
        true = f_node([q("a", "b"), q("a", "b", key=1)])
        assert true.is_true and not true.is_pseudo

    def test_branch_free(self):
        path = s_node([q("a", "b"), q("b", "c")])
        assert path.is_branch_free
        wrapped = p_node([path])
        assert wrapped.is_branch_free
        branched = p_node(
            [s_node([q("a", "b"), q("b", "c")]), q("a", "c")]
        )
        assert not branched.is_branch_free

    def test_true_l_is_not_branch_free(self):
        node = l_node(
            [q("u1", "v1", lu="u", lv="v"), q("u2", "v2", lu="u", lv="v")]
        )
        assert not node.is_branch_free

    def test_num_nodes(self):
        tree = s_node([q("a", "b"), p_node([q("b", "c")])])
        assert tree.num_nodes == 4

    def test_iter_orders(self):
        tree = s_node([q("a", "b"), q("b", "c")])
        pre = [n.kind for n in tree.iter_nodes("pre")]
        post = [n.kind for n in tree.iter_nodes("post")]
        assert pre == [NodeType.S, NodeType.Q, NodeType.Q]
        assert post == [NodeType.Q, NodeType.Q, NodeType.S]

    def test_leaves_left_to_right(self):
        tree = s_node([q("a", "b"), q("b", "c")])
        assert [leaf.source for leaf in tree.leaves()] == ["a", "b"]

    def test_find(self):
        tree = s_node([q("a", "b"), q("b", "c")])
        hit = tree.find(lambda n: n.is_leaf and n.sink == "c")
        assert hit is not None and hit.source == "b"
        assert tree.find(lambda n: False) is None


class TestEquivalence:
    def test_p_children_order_irrelevant(self):
        one = p_node([q("a", "b"), q("a", "b", key=1)])
        a = s_node([q("x", "a", lu="x", lv="a"), one])
        two = p_node([q("a", "b", key=1), q("a", "b")])
        b = s_node([q("x", "a", lu="x", lv="a"), two])
        assert a.equivalent(b)

    def test_instance_ids_irrelevant(self):
        left = q("a1", "b1", lu="a", lv="b")
        right = q("a2", "b2", lu="a", lv="b")
        assert left.equivalent(right)

    def test_s_order_matters(self):
        ab = s_node([q("a", "b"), q("b", "a", lu="b", lv="a")])
        # Reversing series order changes the run.
        ba = s_node([q("a", "b", lu="b", lv="a"), q("b", "a", lu="a", lv="b")])
        assert not ab.equivalent(ba)

    def test_l_order_matters(self):
        long_iter = s_node(
            [q("u1", "m1", lu="u", lv="m"), q("m1", "v1", lu="m", lv="v")]
        )
        short_iter = q("u2", "v2", lu="u", lv="v")
        forward = l_node([long_iter, short_iter])
        long_iter2 = s_node(
            [q("u3", "m2", lu="u", lv="m"), q("m2", "v3", lu="m", lv="v")]
        )
        short_iter2 = q("u4", "v4", lu="u", lv="v")
        backward = l_node([short_iter2, long_iter2])
        assert not forward.equivalent(backward)

    def test_f_children_order_irrelevant(self):
        long_copy = s_node(
            [q("u", "m", lu="u", lv="m"), q("m", "v", lu="m", lv="v")]
        )
        short_copy = q("u", "v", lu="u", lv="v")
        one = f_node([long_copy, short_copy])
        long_copy2 = s_node(
            [q("u", "m", lu="u", lv="m"), q("m", "v", lu="m", lv="v")]
        )
        short_copy2 = q("u", "v", lu="u", lv="v")
        two = f_node([short_copy2, long_copy2])
        assert one.equivalent(two)


class TestGraphMaterialisation:
    def test_simple_path(self):
        tree = s_node([q("a", "b"), q("b", "c")])
        graph = tree.to_graph()
        assert graph.num_nodes == 3
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "c")

    def test_loop_adds_implicit_edges(self):
        iter1 = q("u1", "v1", lu="u", lv="v")
        iter2 = q("u2", "v2", lu="u", lv="v")
        graph = l_node([iter1, iter2]).to_graph()
        assert graph.has_edge("v1", "u2")  # the implicit back-edge
        assert graph.num_edges == 3

    def test_multi_edges_get_distinct_keys(self):
        tree = p_node([q("a", "b"), q("a", "b", key=0)])
        graph = tree.to_graph()
        assert graph.num_edges == 2


class TestMisc:
    def test_with_origin(self):
        origin = q("x", "y")
        node = with_origin(q("a", "b"), origin)
        assert node.origin is origin

    def test_pretty_contains_edges(self):
        text = s_node([q("a", "b"), q("b", "c")]).pretty()
        assert "'a' -> 'b'" in text
        assert text.startswith("S")

    def test_repr(self):
        assert "Q" in repr(q("a", "b"))
        assert "degree=2" in repr(s_node([q("a", "b"), q("b", "c")]))
