"""Tests for cost-model axiom checking."""

import pytest

from repro.costs.standard import CallableCost, PowerCost, UnitCost
from repro.costs.validation import (
    check_metric_axioms,
    check_quadrangle_on_spec,
)
from repro.errors import CostModelError


class TestMetricAxioms:
    @pytest.mark.parametrize("epsilon", [-1.0, -0.5, 0.0, 0.3, 0.7, 1.0])
    def test_power_family_passes(self, epsilon):
        check_metric_axioms(PowerCost(epsilon))

    def test_negative_cost_detected(self):
        bad = CallableCost.__new__(CallableCost)
        bad._func = lambda l, a, b: -1.0
        bad._name = "bad"
        # Bypass CallableCost's own guard by calling the checker on a raw
        # lambda wrapper:
        class Negative(PowerCost):
            def __init__(self):
                super().__init__(0.0)

            def path_cost(self, length, a, b):
                return -1.0 if length > 2 else 1.0

        with pytest.raises(CostModelError, match="non-negativity"):
            check_metric_axioms(Negative())

    def test_identity_violation_detected(self):
        class Zeroish(PowerCost):
            def __init__(self):
                super().__init__(0.0)

            def path_cost(self, length, a, b):
                return 0.0

        with pytest.raises(CostModelError, match="identity"):
            check_metric_axioms(Zeroish())

    def test_quadrangle_violation_detected(self):
        class Superlinear(PowerCost):
            def __init__(self):
                super().__init__(1.0)

            def path_cost(self, length, a, b):
                return float(length) ** 2

        with pytest.raises(CostModelError, match="quadrangle"):
            check_metric_axioms(Superlinear())


class TestQuadrangleOnSpec:
    @pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
    def test_power_family_passes_on_fig2(self, fig2_spec, epsilon):
        check_quadrangle_on_spec(PowerCost(epsilon), fig2_spec, samples=500)

    def test_bad_weighted_cost_detected(self):
        # Violations need branch-length variety at a terminal pair, so use
        # a spec with a length-1 and a length-3 branch between u and v.  A
        # superlinear price keyed on source label "u" then violates the
        # quadrangle inequality (inserting the long path directly must not
        # exceed inserting the short one and replacing it).
        from repro.graphs.flow_network import FlowNetwork
        from repro.workflow.specification import WorkflowSpecification

        graph = FlowNetwork(name="two-lengths")
        for node in ("s", "u", "a", "b", "v", "t"):
            graph.add_node(node)
        graph.add_edge("s", "u")
        graph.add_edge("u", "v")
        graph.add_edge("u", "a")
        graph.add_edge("a", "b")
        graph.add_edge("b", "v")
        graph.add_edge("v", "t")
        spec = WorkflowSpecification(graph, name="two-lengths")

        class Pathological(PowerCost):
            def __init__(self):
                super().__init__(1.0)

            def path_cost(self, length, a, b):
                if a == "u":
                    return float(length) ** 2
                return float(length)

        with pytest.raises(CostModelError, match="quadrangle"):
            check_quadrangle_on_spec(
                Pathological(), spec, samples=5000, seed=1
            )

    def test_unit_cost_passes_on_random_spec(self):
        from repro.workflow.generators import random_specification

        spec = random_specification(
            40, 1.0, num_forks=2, num_loops=2, seed=5
        )
        check_quadrangle_on_spec(UnitCost(), spec, samples=300)
