"""Tests for the standard cost models (§III-C.2, §VIII-D)."""

import math

import pytest

from repro.costs.standard import (
    CallableCost,
    LabelWeightedCost,
    LengthCost,
    PowerCost,
    UnitCost,
)
from repro.errors import CostModelError


class TestPowerFamily:
    def test_unit_cost_is_one(self):
        cost = UnitCost()
        for length in (1, 2, 10, 100):
            assert cost.path_cost(length, "A", "B") == 1.0

    def test_length_cost_equals_length(self):
        cost = LengthCost()
        assert cost.path_cost(7, "A", "B") == 7.0

    def test_power_half(self):
        cost = PowerCost(0.5)
        assert cost.path_cost(9, "A", "B") == pytest.approx(3.0)

    def test_negative_epsilon_decreases(self):
        cost = PowerCost(-1.0)
        assert cost.path_cost(10, "A", "B") == pytest.approx(0.1)

    def test_epsilon_above_one_rejected(self):
        with pytest.raises(CostModelError, match="quadrangle"):
            PowerCost(1.5)

    def test_zero_length_coinciding_terminals(self):
        assert UnitCost().path_cost(0, "A", "A") == 0.0

    def test_zero_length_distinct_terminals_rejected(self):
        with pytest.raises(CostModelError):
            UnitCost().path_cost(0, "A", "B")

    def test_negative_length_rejected(self):
        with pytest.raises(CostModelError):
            LengthCost().path_cost(-1, "A", "B")

    def test_names(self):
        assert UnitCost().name == "UnitCost"
        assert LengthCost().name == "LengthCost"
        assert "0.5" in PowerCost(0.5).name

    def test_subadditivity_for_sublinear(self):
        for epsilon in (0.0, 0.3, 0.7, 1.0):
            cost = PowerCost(epsilon)
            for a in range(1, 8):
                for b in range(1, 8):
                    assert cost.path_cost(a + b, "A", "B") <= (
                        cost.path_cost(a, "A", "B")
                        + cost.path_cost(b, "A", "B")
                    ) + 1e-9


class TestLabelWeighted:
    def test_weights_applied(self):
        cost = LabelWeightedCost(
            LengthCost(), {("A", "B"): 2.0}, default_weight=1.0
        )
        assert cost.path_cost(3, "A", "B") == 6.0
        assert cost.path_cost(3, "X", "Y") == 3.0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(CostModelError):
            LabelWeightedCost(UnitCost(), {("A", "B"): 0.0})
        with pytest.raises(CostModelError):
            LabelWeightedCost(UnitCost(), {}, default_weight=-1.0)

    def test_name_mentions_base(self):
        assert "LengthCost" in LabelWeightedCost(LengthCost(), {}).name


class TestCallable:
    def test_wraps_function(self):
        cost = CallableCost(lambda l, a, b: 2.0 * l, name="double")
        assert cost.path_cost(4, "A", "B") == 8.0
        assert cost.name == "double"

    def test_negative_result_rejected(self):
        cost = CallableCost(lambda l, a, b: -1.0)
        with pytest.raises(CostModelError, match="negative"):
            cost.path_cost(1, "A", "B")

    def test_subtree_cost_uses_leaf_count(self, fig2_r1):
        cost = LengthCost()
        # A two-edge branch subtree costs 2 under the length model.
        from repro.sptree.nodes import NodeType

        branch = fig2_r1.tree.find(
            lambda n: n.kind is NodeType.S and n.leaf_count == 2
        )
        assert cost.subtree_cost(branch) == 2.0
