"""The legacy entry points: importable shims, exactly one warning each.

The workspace redesign kept ``diff_runs``, ``DiffService``,
``PDiffViewSession`` and ``QueryEngine`` importable from the package
top level, served through a module ``__getattr__`` that emits exactly
one :class:`DeprecationWarning` per access and returns the *real*
object from its defining module — so every pre-existing suite and
script keeps passing, while ``-W error::DeprecationWarning`` proves the
new internal code paths never touch the shims (importing ``repro``
itself must stay silent).
"""

import importlib
import subprocess
import sys
import warnings

import pytest

import repro

SHIMS = {
    "diff_runs": ("repro.core.api", "diff_runs"),
    "DiffService": ("repro.corpus.service", "DiffService"),
    "PDiffViewSession": ("repro.pdiffview.session", "PDiffViewSession"),
    "QueryEngine": ("repro.query.engine", "QueryEngine"),
}


class TestShims:
    @pytest.mark.parametrize("name", sorted(SHIMS))
    def test_exactly_one_deprecation_warning(self, name):
        with pytest.warns(DeprecationWarning) as captured:
            getattr(repro, name)
        assert len(captured) == 1
        message = str(captured[0].message)
        assert name in message
        assert "MIGRATION" in message

    @pytest.mark.parametrize("name", sorted(SHIMS))
    def test_shim_returns_the_real_object(self, name):
        module_name, attribute = SHIMS[name]
        real = getattr(importlib.import_module(module_name), attribute)
        with pytest.warns(DeprecationWarning):
            shimmed = getattr(repro, name)
        assert shimmed is real

    def test_from_import_goes_through_the_shim(self):
        # NB: a ``from``-import performs two attribute lookups (the
        # import protocol's hasattr probe, then the real getattr), so
        # under ``simplefilter("always")`` it can surface the warning
        # twice — an importlib artifact shared by every PEP 562 module
        # deprecation, deduplicated by the default warning filters.
        # The exactly-once contract is pinned on direct access above.
        with pytest.warns(DeprecationWarning):
            from repro import diff_runs  # noqa: F401

    def test_shimmed_diff_runs_still_works(self, fig2_spec):
        """Legacy call sites keep their behaviour, not just importability."""
        from repro.workflow.execution import execute_workflow

        with pytest.warns(DeprecationWarning):
            legacy_diff_runs = repro.diff_runs
        one = execute_workflow(fig2_spec, seed=1)
        two = execute_workflow(fig2_spec, seed=2)
        result = legacy_diff_runs(one, two)
        assert result.distance >= 0

    def test_coverage_matches_the_registry(self):
        """This suite covers exactly the names the package deprecates."""
        assert set(SHIMS) == set(repro._DEPRECATED)


class TestImportStaysSilent:
    def test_importing_repro_emits_no_warnings(self):
        """The package (and its internals) never touch the shims —
        checked in a clean interpreter so prior imports can't mask a
        warning raised at import time."""
        code = (
            "import warnings\n"
            "warnings.simplefilter('error', DeprecationWarning)\n"
            "import repro\n"
            "import repro.workspace, repro.cli, repro.corpus.service\n"
            "import repro.query.engine, repro.pdiffview.session\n"
            "import repro.interchange, repro.backends\n"
            "print('clean')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout

    def test_workspace_end_to_end_emits_no_deprecation(self, tmp_path):
        """A full workspace round trip runs warning-free."""
        from repro.config import ReproConfig
        from repro.workspace import Workspace
        from repro.workflow.real_workflows import protein_annotation

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ws = Workspace(tmp_path, ReproConfig(backend="serial"))
            ws.register(protein_annotation())
            ws.generate_run("a", seed=1)
            ws.generate_run("b", seed=2)
            ws.diff("a", "b")
            ws.matrix()
            ws.query()
