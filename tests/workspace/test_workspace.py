"""The unified :class:`repro.Workspace` client API."""

import dataclasses

import pytest

from repro.config import ReproConfig
from repro.core.api import diff_runs
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.errors import ReproError
from repro.pdiffview.session import DiffView
from repro.query.predicates import Q
from repro.workflow.execution import execute_workflow
from repro.workflow.generators import random_prov_document
from repro.workflow.real_workflows import emboss, protein_annotation
from repro.workspace import DiffOutcome, Workspace


class TestConstruction:
    def test_default_config(self, tmp_path):
        ws = Workspace(tmp_path)
        assert ws.config.backend == "thread"
        assert ws.config.cost.name == "UnitCost"
        assert ws.config.persistent is True
        assert ws.backend.name == "thread"

    def test_config_backend_is_wired_through(self, tmp_path):
        ws = Workspace(tmp_path, ReproConfig(backend="process", jobs=2))
        assert ws.backend.name == "process"
        assert ws.backend.jobs == 2
        assert ws.service.backend is ws.backend

    def test_shares_an_existing_store(self, ws):
        other = Workspace(ws.store, ReproConfig(backend="serial"))
        assert other.store is ws.store
        assert other.runs() == ws.runs()

    def test_invalid_config_refused(self):
        with pytest.raises(ReproError):
            ReproConfig(backend="gpu")
        with pytest.raises(ReproError):
            ReproConfig(jobs=0)

    def test_instance_backend_with_jobs_refused_at_construction(self):
        from repro.backends.base import ThreadBackend

        shared = ThreadBackend(2)
        with pytest.raises(ReproError, match="carries its own width"):
            ReproConfig(backend=shared, jobs=2)
        ws_config = ReproConfig(backend=shared)  # jobs=None is the way
        assert ws_config.make_backend() is shared

    def test_config_is_frozen(self, tmp_path):
        ws = Workspace(tmp_path)
        with pytest.raises(dataclasses.FrozenInstanceError):
            ws.config.jobs = 7


class TestSpecResolution:
    def test_single_spec_is_the_default(self, ws):
        assert ws.runs() == ws.runs(spec="PA")

    def test_no_spec_is_refused(self, tmp_path):
        with pytest.raises(ReproError, match="no specifications"):
            Workspace(tmp_path).runs()

    def test_ambiguity_is_refused_with_choices(self, ws):
        ws.register(emboss())
        with pytest.raises(ReproError, match="EMBOSS.*PA|PA.*EMBOSS"):
            ws.runs()
        assert ws.runs(spec="PA")  # explicit spec still works


class TestDiff:
    def test_diff_by_name_matches_fresh_computation(self, ws):
        outcome = ws.diff("r01", "r02")
        fresh = diff_runs(
            ws.run("r01"), ws.run("r02"), cost=UnitCost()
        )
        assert isinstance(outcome, DiffOutcome)
        assert outcome.pair == ("r01", "r02")
        assert outcome.distance == fresh.distance
        assert outcome.op_count == len(fresh.script.operations)
        assert outcome.distance == pytest.approx(
            sum(op.cost for op in outcome.operations)
        )

    def test_diff_run_objects_without_store(self, ws, varied_params):
        spec = ws.specification("PA")
        a = execute_workflow(spec, varied_params, seed=91, name="x")
        b = execute_workflow(spec, varied_params, seed=92, name="y")
        outcome = ws.diff(a, b)
        assert outcome.distance == diff_runs(a, b).distance
        assert "x" not in ws.runs()  # nothing was persisted

    def test_mixed_arguments_refused(self, ws):
        with pytest.raises(ReproError, match="not a mix"):
            ws.diff("r01", ws.run("r02"))

    def test_cost_override_beats_config_default(self, tmp_path):
        ws = Workspace(
            tmp_path,
            ReproConfig(cost=LengthCost(), backend="serial"),
        )
        ws.register(protein_annotation())
        ws.generate_run("a", seed=1)
        ws.generate_run("b", seed=2)
        default = ws.diff("a", "b")
        assert default.cost_model == "LengthCost"
        overridden = ws.diff("a", "b", cost=PowerCost(0.5))
        assert overridden.cost_model == "PowerCost(ε=0.5)"

    def test_to_dict_is_json_shaped(self, ws):
        payload = ws.diff("r01", "r02").to_dict()
        assert payload["spec"] == "PA"
        assert payload["distance"] == pytest.approx(
            sum(op["cost"] for op in payload["operations"])
        )


class TestDiffMany:
    def test_streams_in_input_order(self, ws):
        pairs = [("r01", "r02"), ("r03", "r01"), ("r02", "r04")]
        outcomes = list(ws.diff_many(pairs))
        assert [o.pair for o in outcomes] == pairs
        for outcome in outcomes:
            assert outcome.distance == ws.diff(*outcome.pair).distance

    def test_is_lazy(self, ws):
        iterator = ws.diff_many([("r01", "r02")] * 3)
        assert next(iterator).pair == ("r01", "r02")

    def test_content_duplicate_pairs_do_not_alias(self, ws, varied_params):
        """≡-duplicate name pairs share one diff computation but never
        one mutable record."""
        spec = ws.specification("PA")
        for name in ("t1", "t2"):
            ws.import_run(
                execute_workflow(spec, varied_params, seed=500, name=name)
            )
        records = ws.service.edit_scripts(
            "PA", [("r01", "t1"), ("r01", "t2")]
        )
        one, two = records[("r01", "t1")], records[("r01", "t2")]
        assert one is not two
        assert [op.to_dict() for op in one.operations] == [
            op.to_dict() for op in two.operations
        ]
        before = len(two.operations)
        if before:
            one.operations[0].note = "mutated"
            assert two.operations[0].note != "mutated"  # deep-independent
        one.operations.clear()
        assert len(two.operations) == before  # untouched

    def test_abandoned_iterator_still_persists(self, ws):
        """Chunks compute with flush=False; the finally-flush persists
        computed work even when the consumer stops early."""
        pairs = [("r01", "r02"), ("r01", "r03"), ("r01", "r04")]
        iterator = ws.diff_many(pairs)
        next(iterator)
        iterator.close()  # abandon mid-sweep
        fresh = Workspace(ws.store, ReproConfig(backend="serial"))
        fresh.diff("r01", "r02")
        assert fresh.service.computed_scripts == 0  # answered from disk

    def test_chunks_larger_than_backend_width(self, tmp_path):
        ws = Workspace(
            tmp_path, ReproConfig(backend="serial", jobs=1)
        )
        ws.register(protein_annotation())
        names = []
        for seed in range(1, 5):
            names.append(f"s{seed}")
            ws.generate_run(f"s{seed}", seed=seed)
        pairs = [
            (a, b) for a in names for b in names if a != b
        ]  # 12 pairs > 4 * jobs
        outcomes = list(ws.diff_many(pairs))
        assert [o.pair for o in outcomes] == pairs


class TestMatrixAndAnalytics:
    def test_matrix_matches_legacy_service(self, ws):
        matrix = ws.matrix()
        assert matrix == ws.service.distance_matrix(
            "PA", cost=UnitCost()
        )
        names = ws.runs()
        assert len(matrix) == len(names) * (len(names) - 1) // 2

    def test_matrix_is_cached(self, ws):
        ws.matrix()
        computed = ws.service.computed_pairs
        ws.matrix()
        assert ws.service.computed_pairs == computed
        assert ws.stats["computed_pairs"] == computed

    def test_nearest_medoid_outliers(self, ws):
        nearest = ws.nearest("r01", k=2)
        assert len(nearest) == 2
        assert nearest[0][1] <= nearest[1][1]
        name, spread = ws.medoid()
        assert name in ws.runs()
        ranked = ws.outliers()
        assert ranked[0][1] >= ranked[-1][1]

    def test_add_run_prices_only_new_pairs(self, ws, varied_params):
        ws.matrix()
        before = ws.service.computed_pairs
        newcomer = execute_workflow(
            ws.specification("PA"), varied_params, seed=77, name="new"
        )
        distances = ws.add_run(newcomer)
        assert set(distances) == {
            (name, "new") for name in ws.runs() if name != "new"
        }
        assert ws.service.computed_pairs - before <= len(distances)


class TestQueryAndView:
    def test_query_matches_engine_select(self, ws):
        predicate = Q.op_kind("path-deletion")
        docs = ws.query(predicate)
        assert [d.pair for d in docs] == [
            d.pair
            for d in ws.engine.select("PA", predicate, cost=UnitCost())
        ]

    def test_view_steps_through_operations(self, ws):
        view = ws.view("r01", "r02")
        assert isinstance(view, DiffView)
        assert "delta(r01, r02)" in view.overview()
        if len(view):
            assert view.step_forward() is not None

    def test_view_honours_record_intermediates_config(self, tmp_path):
        ws = Workspace(
            tmp_path,
            ReproConfig(backend="serial", record_intermediates=False),
        )
        ws.register(protein_annotation())
        ws.generate_run("a", seed=1)
        ws.generate_run("b", seed=6)
        view = ws.view("a", "b")
        if len(view):
            view.step_forward()
            with pytest.raises(ReproError, match="snapshots"):
                view.state_after_cursor()


class TestInterchange:
    def test_import_prov_roundtrip(self, ws):
        text = ws.export_prov("r01")
        result = ws.import_prov(text, name="again")
        assert result.run.name == "again"
        assert "again" in ws.runs()
        clone = ws.run("again")
        assert clone.equivalent(ws.run("r01"))

    def test_import_prov_with_diff_prices_corpus(self, ws):
        document = random_prov_document(6, seed=5)
        existing = set(ws.runs())
        result, distances = ws.import_prov(
            document, name="foreign", spec_name="ext", diff=True
        )
        assert result.run.name == "foreign"
        assert distances == {}  # first run of a fresh spec: no pairs
        assert ws.runs(spec="ext") == ["foreign"]
        assert set(ws.runs(spec="PA")) == existing

    def test_export_script_document(self, ws):
        doc = ws.export_script("r01", "r02")
        outcome = ws.diff("r01", "r02")
        assert len(doc["activity"]) == outcome.op_count
        derivation = next(iter(doc["wasDerivedFrom"].values()))
        assert derivation["prov:usedEntity"] == "run:r01"
        assert derivation["prov:generatedEntity"] == "run:r02"


class TestBackendsThroughWorkspace:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_matrix_identical_across_backends(
        self, tmp_path, varied_params, backend
    ):
        ws = Workspace(
            tmp_path / backend,
            ReproConfig(backend=backend, jobs=2, persistent=False),
        )
        ws.register(protein_annotation())
        for seed in range(1, 4):
            ws.generate_run(f"r{seed}", params=varied_params, seed=seed)
        reference = Workspace(
            ws.store, ReproConfig(backend="serial", persistent=False)
        )
        assert ws.matrix() == reference.matrix()
