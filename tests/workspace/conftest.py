"""Shared fixtures for the workspace suite."""

from __future__ import annotations

import pytest

from repro.config import ReproConfig
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation
from repro.workspace import Workspace

VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


@pytest.fixture
def ws(tmp_path) -> Workspace:
    """A serial-backend workspace over a 4-run protein-annotation corpus."""
    workspace = Workspace(tmp_path, ReproConfig(backend="serial"))
    workspace.register(protein_annotation())
    for seed in range(1, 5):
        workspace.generate_run(f"r{seed:02d}", params=VARIED, seed=seed)
    return workspace


@pytest.fixture
def varied_params() -> ExecutionParams:
    return VARIED
