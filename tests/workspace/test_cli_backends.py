"""The ``--backend``/``--jobs`` CLI flags on ``diff`` and ``matrix``."""

import json

import pytest

from repro.cli import main
from repro.io.store import WorkflowStore


@pytest.fixture
def store_root(ws):
    return str(ws.store.root)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBackendFlags:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_diff_runs_on_every_backend(
        self, store_root, capsys, backend
    ):
        code, out, _ = run_cli(
            capsys, "diff", store_root, "PA", "r01", "r02",
            "--backend", backend, "--jobs", "2",
        )
        assert code == 0
        assert "delta(r01, r02)" in out

    def test_backends_agree_on_the_matrix(self, store_root, capsys):
        payloads = {}
        for backend in ("serial", "thread", "process"):
            code, out, _ = run_cli(
                capsys, "matrix", store_root, "PA", "--json",
                "--backend", backend,
            )
            assert code == 0
            payloads[backend] = json.loads(out)["distances"]
        assert payloads["serial"] == payloads["thread"]
        assert payloads["serial"] == payloads["process"]

    def test_unknown_backend_rejected_by_argparse(
        self, store_root, capsys
    ):
        with pytest.raises(SystemExit):
            main([
                "matrix", store_root, "PA", "--backend", "gpu",
            ])

    def test_invalid_jobs_is_a_clean_error(self, store_root, capsys):
        code, _, err = run_cli(
            capsys, "matrix", store_root, "PA", "--jobs", "0"
        )
        assert code == 1  # ReproError → 1; usage errors → 2 (argparse)
        assert "jobs" in err

    def test_query_and_export_have_no_backend_flag(
        self, store_root, capsys
    ):
        """The flags ride only on the batch-heavy subcommands."""
        with pytest.raises(SystemExit):
            main([
                "query", store_root, "PA", "--backend", "serial",
            ])

    def test_kernel_flag_round_trips(self, store_root, capsys):
        """Both kernels price the matrix identically from the CLI."""
        payloads = {}
        for kernel in ("python", "auto"):
            code, out, _ = run_cli(
                capsys, "matrix", store_root, "PA", "--json",
                "--backend", "serial", "--kernel", kernel,
            )
            assert code == 0
            payloads[kernel] = json.loads(out)["distances"]
        assert payloads["python"] == payloads["auto"]

    def test_unknown_kernel_rejected_by_argparse(
        self, store_root, capsys
    ):
        with pytest.raises(SystemExit):
            main([
                "matrix", store_root, "PA", "--kernel", "fortran",
            ])

    def test_flags_share_the_persistent_cache(
        self, store_root, capsys, ws
    ):
        """A process-backend run warms the same on-disk cache a later
        default-backend invocation answers from."""
        code, _, _ = run_cli(
            capsys, "matrix", store_root, "PA", "--backend", "process",
        )
        assert code == 0
        from repro.config import ReproConfig
        from repro.workspace import Workspace

        warm = Workspace(
            WorkflowStore(store_root), ReproConfig(backend="serial")
        )
        warm.matrix()
        assert warm.service.computed_pairs == 0
