"""Multi-threaded stress: one workspace, many hammering threads.

The service stack (DiffService monitor, TwoTierCache, ScriptIndex,
FingerprintIndex locks) must deliver three guarantees under concurrent
``diff``/``matrix``/``query`` load:

1. **No corruption** — every thread sees complete, well-formed results
   and no exceptions escape;
2. **No duplicate DP computations beyond cache misses** — each distinct
   distance key and each distinct directed script key is computed at
   most once, however many threads race for it;
3. **Bit-identical results vs serial** — everything returned
   concurrently equals what an independent, cache-less serial service
   computes from the same store.
"""

import threading

import pytest

from repro.api_types import QueryFilter
from repro.config import ReproConfig
from repro.corpus.service import DiffService
from repro.query.predicates import Q
from repro.workflow.real_workflows import protein_annotation
from repro.workspace import Workspace

THREADS = 8
ROUNDS = 3


@pytest.fixture
def contended_ws(tmp_path, varied_params) -> Workspace:
    """A fresh 4-run corpus every thread will hammer concurrently."""
    ws = Workspace(tmp_path, ReproConfig(backend="serial"))
    ws.register(protein_annotation())
    for seed in range(1, 5):
        ws.generate_run(f"r{seed:02d}", params=varied_params, seed=seed)
    return ws


def test_concurrent_hammering_is_safe_and_deduplicated(contended_ws):
    ws = contended_ws
    names = ws.runs()
    listing_pairs = [
        (a, b)
        for i, a in enumerate(names)
        for b in names[i + 1:]
    ]

    # Ground truth from an independent, ephemeral, serial service: no
    # cache sharing with the workspace under test.
    reference = DiffService(
        ws.store, persistent=False, backend="serial"
    )
    expected_matrix = reference.distance_matrix("PA")
    expected_scripts = {
        pair: reference.edit_script("PA", *pair)
        for pair in listing_pairs
    }

    errors = []
    collected = []
    barrier = threading.Barrier(THREADS)

    def hammer(worker: int) -> None:
        try:
            barrier.wait(timeout=30)  # maximise contention
            for round_no in range(ROUNDS):
                matrix = ws.matrix()
                pair = listing_pairs[
                    (worker + round_no) % len(listing_pairs)
                ]
                outcome = ws.diff(*pair)
                docs = ws.query(Q.op_kind("path-deletion"))
                page = ws.query_page(
                    QueryFilter(min_cost=1.0), limit=3
                )
                collected.append((dict(matrix), pair, outcome, page))
        except Exception as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(i,))
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert len(collected) == THREADS * ROUNDS

    # 2. No duplicate DPs beyond misses: at most one computation per
    # distinct undirected distance key / directed script key — across
    # all eight threads and three rounds.
    assert ws.service.computed_pairs <= len(listing_pairs)
    assert ws.service.computed_scripts <= len(listing_pairs)

    # 3. Bit-identical vs serial, for every thread's every round.
    for matrix, pair, outcome, page in collected:
        assert matrix == expected_matrix
        record = expected_scripts[pair]
        assert outcome.distance == record.distance
        assert [op.to_dict() for op in outcome.operations] == [
            op.to_dict() for op in record.operations
        ]
        assert page.total_matches == sum(
            1
            for r in expected_scripts.values()
            if r.distance >= 1.0
        )


def test_concurrent_add_runs_stay_incremental(
    tmp_path, varied_params
):
    """Concurrent writers: each add_run prices only its own new pairs,
    and the final corpus is consistent and fully queryable."""
    ws = Workspace(tmp_path, ReproConfig(backend="serial"))
    spec = protein_annotation()
    ws.register(spec)
    ws.generate_run("base", params=varied_params, seed=100)

    from repro.workflow.execution import execute_workflow

    newcomers = [
        execute_workflow(
            ws.specification("PA"),
            varied_params,
            seed=200 + i,
            name=f"n{i}",
        )
        for i in range(4)
    ]
    errors = []

    def add(run):
        try:
            distances = ws.add_run(run)
            assert all(value >= 0.0 for value in distances.values())
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=add, args=(run,)) for run in newcomers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert set(ws.runs()) == {"base", "n0", "n1", "n2", "n3"}

    # The full matrix now answers consistently and a fresh serial
    # workspace over the same store agrees bit-for-bit.
    concurrent_matrix = dict(ws.matrix())
    fresh = DiffService(ws.store, persistent=False, backend="serial")
    assert concurrent_matrix == fresh.distance_matrix("PA")
