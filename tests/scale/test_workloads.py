"""Workload-model contracts: determinism, shapes, import paths."""

import json

import pytest

from repro.errors import ReproError
from repro.interchange.convert import import_document
from repro.scale.workloads import (
    WORKLOAD_FAMILIES,
    AdversarialWorkload,
    EvolvingWorkload,
    MixedWorkload,
    PipelineWorkload,
    adversarial_document,
    make_workload,
    pipeline_specification,
)


def canonical(document: dict) -> str:
    return json.dumps(document, sort_keys=True)


class TestDeterminism:
    """Same seed => byte-identical PROV-JSON, per family."""

    @pytest.mark.parametrize("family", sorted(WORKLOAD_FAMILIES))
    def test_same_seed_byte_identical(self, family):
        first = make_workload(family, "fam", seed=42, runs=4)
        second = make_workload(family, "fam", seed=42, runs=4)
        for index in range(4):
            assert canonical(
                first.document(index).document
            ) == canonical(second.document(index).document)

    @pytest.mark.parametrize("family", sorted(WORKLOAD_FAMILIES))
    def test_different_seed_differs(self, family):
        one = make_workload(family, "fam", seed=1, runs=1).document(0)
        two = make_workload(family, "fam", seed=2, runs=1).document(0)
        assert canonical(one.document) != canonical(two.document)

    def test_location_matches_document(self):
        for family in sorted(WORKLOAD_FAMILIES):
            model = make_workload(family, "fam", seed=7, runs=3)
            for index in range(3):
                spec_name, run_name = model.location(index)
                document = model.document(index)
                assert document.spec_name == spec_name
                assert document.run_name == run_name


class TestPipelineSpecification:
    def test_deterministic(self):
        a = pipeline_specification("p", seed=3)
        b = pipeline_specification("p", seed=3)
        assert a.num_edges == b.num_edges
        assert sorted(a.graph.labels()) == sorted(b.graph.labels())

    def test_has_stage_structure(self):
        spec = pipeline_specification("p", stages=4, width=3, seed=0)
        labels = set(spec.graph.labels())
        assert {f"g{i:02d}" for i in range(5)} <= labels

    def test_rejects_degenerate_knobs(self):
        with pytest.raises(ReproError):
            pipeline_specification("p", stages=0)


class TestPipelineWorkload:
    def test_embedded_plan_imports_exactly(self):
        document = PipelineWorkload("fam", seed=3, runs=2).document(0)
        assert document.kind == "embedded-plan"
        result = import_document(
            document.document, run_name=document.run_name
        )
        assert result.origin == "embedded-plan"
        assert result.spec.name == "fam"

    def test_rejects_unknown_tier(self):
        with pytest.raises(ReproError):
            PipelineWorkload("fam", seed=0, runs=1, tiers=("nope",))


class TestAdversarialWorkload:
    def test_documents_are_non_sp(self):
        model = AdversarialWorkload("adv", seed=5, runs=3)
        for index in range(3):
            document = model.document(index)
            assert document.kind == "foreign"
            result = import_document(
                document.document,
                run_name=document.run_name,
                spec_name=document.spec_name,
            )
            assert not result.report.was_series_parallel
            assert result.report.forced_serializations

    def test_per_document_spec_names_unique(self):
        model = AdversarialWorkload("adv", seed=5, runs=4)
        names = {model.location(i)[0] for i in range(4)}
        assert len(names) == 4

    def test_degenerate_shape_rejected(self):
        with pytest.raises(ReproError):
            adversarial_document("s", width=0)


class TestEvolvingWorkload:
    def test_bounded_drift(self):
        model = EvolvingWorkload(
            "evo", seed=5, runs=3, mutation_budget=2
        )
        docs = [model.document(k) for k in range(3)]
        # Consecutive runs differ, but not arbitrarily: the shared
        # specification and most node instances persist.
        for previous, current in zip(docs, docs[1:]):
            assert canonical(previous.document) != canonical(
                current.document
            )
            prev_nodes = set(previous.document["activity"])
            curr_nodes = set(current.document["activity"])
            union = prev_nodes | curr_nodes
            assert len(prev_nodes & curr_nodes) > len(union) / 2

    def test_random_access_replays_chain(self):
        sequential = EvolvingWorkload("evo", seed=9, runs=4)
        docs = [sequential.document(k) for k in range(4)]
        fresh = EvolvingWorkload("evo", seed=9, runs=4)
        assert canonical(fresh.document(3).document) == canonical(
            docs[3].document
        )
        # Going backwards replays from scratch, same bytes.
        assert canonical(fresh.document(1).document) == canonical(
            docs[1].document
        )


class TestMixedWorkload:
    def test_mixes_both_kinds(self):
        model = MixedWorkload(
            "mx", seed=11, runs=30, foreign_ratio=0.4
        )
        kinds = {model.document(k).kind for k in range(30)}
        assert kinds == {"embedded-plan", "foreign"}

    def test_ratio_validated(self):
        with pytest.raises(ReproError):
            MixedWorkload("mx", seed=0, runs=1, foreign_ratio=1.5)


class TestRegistry:
    def test_unknown_family(self):
        with pytest.raises(ReproError, match="unknown workload family"):
            make_workload("nope", "x", seed=0, runs=1)

    def test_out_of_range_index(self):
        model = make_workload("pipeline", "p", seed=0, runs=2)
        with pytest.raises(ReproError, match="out of range"):
            model.document(2)
