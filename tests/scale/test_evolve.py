"""DecisionMap semantics: defaults, clamping, bounded mutation."""

import pytest

from repro.errors import SpecificationError
from repro.scale.evolve import DecisionMap, materialize_run
from repro.scale.workloads import pipeline_specification


def record_all(spec, seed="s"):
    decisions = DecisionMap(seed=seed)
    run = materialize_run(spec, decisions, name="r")
    return decisions, run


class TestDefaults:
    def test_defaults_deterministic(self):
        spec = pipeline_specification("p", seed=1)
        one, run_one = record_all(spec)
        two, run_two = record_all(spec)
        assert one.decisions == two.decisions
        assert sorted(run_one.graph.labels()) == sorted(
            run_two.graph.labels()
        )

    def test_materialised_run_validates(self):
        # WorkflowRun's constructor validates the realisation against
        # the specification; reaching here means it passed.
        spec = pipeline_specification("p", seed=2)
        _, run = record_all(spec)
        assert run.num_edges >= spec.num_edges // 2

    def test_invalid_bounds_rejected(self):
        with pytest.raises(SpecificationError):
            DecisionMap(seed="s", max_fork=0)


class TestClamping:
    def test_parallel_clamps_to_arity(self):
        decisions = DecisionMap(
            seed="s", decisions={(("c", 0),): (0, 5, 9)}
        )
        assert decisions.parallel((("c", 0),), arity=3) == (0,)
        # A fully out-of-range subset falls back to branch 0.
        decisions.decisions[(("c", 1),)] = (7,)
        assert decisions.parallel((("c", 1),), arity=3) == (0,)

    def test_fork_and_loop_clamp(self):
        decisions = DecisionMap(
            seed="s",
            max_fork=3,
            max_loop=2,
            decisions={(("f", 0),): 99, (("l", 0),): -4},
        )
        assert decisions.fork((("f", 0),)) == 3
        assert decisions.loop((("l", 0),)) == 1


class TestMutation:
    def test_budget_bounds_changed_keys(self):
        spec = pipeline_specification("p", seed=3)
        parent, _ = record_all(spec)
        child = parent.mutated(step=1, budget=2)
        changed = [
            key
            for key in parent.decisions
            if parent.decisions[key] != child.decisions[key]
        ]
        assert 0 < len(changed) <= 2
        assert set(child.decisions) == set(parent.decisions)

    def test_mutation_deterministic(self):
        spec = pipeline_specification("p", seed=3)
        parent, _ = record_all(spec)
        again, _ = record_all(spec)
        assert (
            parent.mutated(step=4).decisions
            == again.mutated(step=4).decisions
        )

    def test_mutated_child_still_materialises(self):
        spec = pipeline_specification("p", seed=4)
        decisions, _ = record_all(spec)
        for step in range(1, 5):
            decisions = decisions.mutated(step)
            run = materialize_run(spec, decisions, name=f"r{step}")
            assert run.num_edges > 0

    def test_empty_map_mutates_to_empty(self):
        child = DecisionMap(seed="s").mutated(step=1)
        assert child.decisions == {}
