"""Tier-1 smoke: a 40-run corpus end to end on the serial backend.

build -> ingest probe -> distance matrix -> indexed query, all through
the public harness entry points — the miniature of what
``benchmarks/bench_scale.py`` runs at 10³–10⁴.
"""

import json

import pytest

from repro import ReproConfig, Workspace
from repro.cli import main
from repro.scale.build import BuildPlan, CorpusBuilder
from repro.scale.drivers import DriverConfig, drive_workloads
from repro.scale.gate import evaluate_gate


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    workspace = Workspace(
        tmp_path_factory.mktemp("scale") / "store",
        ReproConfig(backend="serial"),
    )
    plan = BuildPlan(runs=40, matrix_runs=8, batch=16)
    build = CorpusBuilder(workspace, plan).build()
    report = drive_workloads(
        workspace, DriverConfig(probe_runs=6, query_repeats=3)
    )
    return workspace, build, report


class TestEndToEnd:
    def test_build_materialised_all_families(self, harness):
        _, build, _ = harness
        assert build.imported == 40 + 8
        assert set(build.families) == {
            "scale-adversarial",
            "scale-evolving",
            "scale-matrix",
            "scale-mixed",
            "scale-pipeline",
        }
        assert build.non_sp_documents == build.foreign_documents > 0

    def test_ingest_probe(self, harness):
        _, _, report = harness
        assert report["ingest"]["runs"] == 6
        assert report["ingest"]["runs_per_second"] > 0

    def test_matrix_cold_and_warm(self, harness):
        _, _, report = harness
        matrix = report["matrix"]
        assert matrix["runs"] == 8
        assert matrix["pairs"] == 8 * 7 // 2
        assert matrix["warm_seconds"] <= matrix["cold_seconds"]

    def test_query_latency_shape(self, harness):
        _, _, report = harness
        query = report["query"]
        assert query["p50_ms"] <= query["p95_ms"]
        assert set(query["shapes"]) == {"kind", "touch", "cost"}

    def test_stats_counters_present(self, harness):
        _, _, report = harness
        stats = report["stats"]
        assert stats["computed_pairs"] > 0
        assert stats["dp_skipped_by_bound"] >= 0

    def test_report_gates_cleanly_against_itself(self, harness):
        _, _, report = harness
        assert evaluate_gate(report, report) == []

    def test_driver_pass_is_repeatable(self, harness):
        """A second driver pass ingests *fresh* probe runs (epoch
        advance) and still completes on the same store."""
        workspace, _, first = harness
        second = drive_workloads(
            workspace, DriverConfig(probe_runs=6, query_repeats=2)
        )
        assert second["ingest"]["runs"] == 6
        assert (
            len(workspace.runs("scale-probe"))
            == first["ingest"]["runs"] + 6
        )


class TestCli:
    def test_cli_build_then_run(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert (
            main(
                [
                    "scale",
                    "build",
                    str(store),
                    "--runs",
                    "12",
                    "--matrix-runs",
                    "4",
                    "--backend",
                    "serial",
                    "--json",
                ]
            )
            == 0
        )
        build = json.loads(capsys.readouterr().out)
        assert build["imported"] == 16

        assert (
            main(
                [
                    "scale",
                    "run",
                    str(store),
                    "--probe-runs",
                    "4",
                    "--query-repeats",
                    "2",
                    "--backend",
                    "serial",
                    "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["ingest"]["runs"] == 4
        assert report["matrix"]["pairs"] == 6
        assert report["query"]["p95_ms"] >= 0

    def test_cli_run_without_corpus_errors(self, tmp_path, capsys):
        store = tmp_path / "empty"
        store.mkdir()
        code = main(
            [
                "scale",
                "run",
                str(store),
                "--probe-runs",
                "2",
                "--backend",
                "serial",
            ]
        )
        assert code == 1
        assert "build the corpus first" in capsys.readouterr().err
