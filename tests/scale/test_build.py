"""Corpus builder: plans, resume, and the no-backdoor guarantee."""

import pytest

from repro import ReproConfig, Workspace
from repro.errors import ReproError
from repro.scale.build import (
    DEFAULT_WEIGHTS,
    BuildPlan,
    CorpusBuilder,
)

CONFIG = ReproConfig(backend="serial")


@pytest.fixture()
def workspace(tmp_path):
    return Workspace(tmp_path / "store", CONFIG)


class TestBuildPlan:
    def test_family_runs_apportion_exactly(self):
        plan = BuildPlan(runs=97)
        counts = plan.family_runs()
        assert sum(counts.values()) == 97
        assert set(counts) <= set(DEFAULT_WEIGHTS)

    def test_zero_weight_family_dropped(self):
        plan = BuildPlan(
            runs=10, weights={"pipeline": 1.0, "adversarial": 0.0}
        )
        assert set(plan.family_runs()) == {"pipeline"}

    def test_invalid_plans_rejected(self):
        with pytest.raises(ReproError):
            BuildPlan(runs=0)
        with pytest.raises(ReproError):
            BuildPlan(runs=5, weights={"nope": 1.0})
        with pytest.raises(ReproError):
            BuildPlan(runs=5, weights={"pipeline": 0.0})


class TestBuild:
    def test_build_and_resume(self, workspace):
        plan = BuildPlan(runs=16, matrix_runs=4, batch=8)
        first = CorpusBuilder(workspace, plan).build()
        assert first.imported == 16 + 4
        assert first.skipped == 0
        assert first.foreign_documents > 0
        assert first.non_sp_documents == first.foreign_documents

        # Second build over the same store: pure skip-scan.
        second = CorpusBuilder(workspace, plan).build()
        assert second.imported == 0
        assert second.skipped == first.imported

    def test_partial_resume_fills_gaps(self, workspace):
        small = BuildPlan(runs=8, matrix_runs=2)
        CorpusBuilder(workspace, small).build()
        grown = BuildPlan(runs=16, matrix_runs=2)
        report = CorpusBuilder(workspace, grown).build()
        assert report.skipped > 0
        assert report.imported > 0
        assert report.imported + report.skipped == 16 + 2

    def test_everything_enters_via_prov_import(self, workspace):
        """No backdoor: every stored run carries the import-path
        metadata sidecar (``origin == "prov-import"``)."""
        CorpusBuilder(
            workspace, BuildPlan(runs=10, matrix_runs=2)
        ).build()
        store = workspace.store
        checked = 0
        for spec_name in workspace.specifications():
            for run_name in store.list_runs(spec_name):
                metadata = store.run_metadata(spec_name, run_name)
                assert metadata is not None, (spec_name, run_name)
                assert metadata.origin == "prov-import"
                checked += 1
        assert checked == 12

    def test_report_dict_shape(self, workspace):
        report = CorpusBuilder(
            workspace, BuildPlan(runs=4, matrix_runs=0)
        ).build()
        payload = report.to_dict()
        for key in (
            "imported",
            "skipped",
            "runs_per_second",
            "families",
            "forced_serialization_ratio",
        ):
            assert key in payload
