"""Hypothesis property: every generated non-SP document imports.

For any adversarial shape the workload model can emit, the document
must survive the real import path with a *consistent* forced-
serialisation report: the run reconstructs, the derived specification
matches it, the report says non-SP exactly when it forced
serialisations, and a re-import is bit-stable.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.interchange.convert import import_document
from repro.scale.workloads import adversarial_document

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    width=st.integers(min_value=2, max_value=5),
    depth=st.integers(min_value=2, max_value=6),
    skip=st.floats(min_value=0.0, max_value=0.6),
)
def test_adversarial_documents_import_consistently(
    seed, width, depth, skip
):
    document = adversarial_document(
        f"prop-{seed}",
        width=width,
        depth=depth,
        skip_probability=skip,
    )
    result = import_document(
        document, run_name="r", spec_name="prop-spec"
    )
    report = result.report

    # The crossing pattern embeds an N-minor at width >= 2: never SP.
    assert not report.was_series_parallel
    assert len(report.forced_serializations) > 0

    # The reconstructed run realises its derived specification and
    # holds every activity the document declared.
    activities = len(document["activity"])
    assert result.run.num_nodes >= activities
    assert result.spec.name == "prop-spec"

    # Report internals agree with each other and with the dict form.
    payload = report.to_dict()
    assert payload["was_series_parallel"] is False
    assert len(payload["forced_serializations"]) == len(
        report.forced_serializations
    )
    for pair in report.forced_serializations:
        assert len(pair) == 2

    # Determinism end to end: importing the same bytes again yields
    # the identical report and graph shape.
    again = import_document(
        document, run_name="r", spec_name="prop-spec"
    )
    assert again.report.to_dict() == payload
    assert again.run.num_nodes == result.run.num_nodes
    assert again.run.num_edges == result.run.num_edges
