"""Regression-gate arithmetic: directions, floors, missing metrics."""

import pytest

from repro.errors import ReproError
from repro.scale.gate import (
    DEFAULT_THRESHOLDS,
    evaluate_gate,
    gate_mode,
)


def report(ingest_rps=100.0, cold=10.0, warm=1.0, p50=20.0, p95=40.0):
    return {
        "ingest": {"runs_per_second": ingest_rps},
        "matrix": {"cold_seconds": cold, "warm_seconds": warm},
        "query": {"p50_ms": p50, "p95_ms": p95},
    }


class TestEvaluate:
    def test_identical_reports_pass(self):
        baseline = report()
        assert evaluate_gate(baseline, baseline) == []

    def test_min_direction_catches_throughput_collapse(self):
        findings = evaluate_gate(
            report(ingest_rps=40.0), report(ingest_rps=100.0)
        )
        assert [f.metric for f in findings] == [
            "ingest.runs_per_second"
        ]
        assert "fell below" in findings[0].render()

    def test_max_direction_catches_latency_blowup(self):
        findings = evaluate_gate(report(p95=150.0), report(p95=40.0))
        assert [f.metric for f in findings] == ["query.p95_ms"]
        assert "exceeded" in findings[0].render()

    def test_within_ratio_passes(self):
        # 1.8x cold-matrix growth is under the 2.0 limit.
        assert (
            evaluate_gate(report(cold=18.0), report(cold=10.0)) == []
        )

    def test_noise_floor_skips_tiny_baselines(self):
        # A 0.4ms -> 1.9ms p95 swing is 4.75x but under the floor.
        findings = evaluate_gate(
            report(p95=1.9, p50=0.3), report(p95=0.4, p50=0.2)
        )
        assert findings == []

    def test_missing_metric_skipped(self):
        findings = evaluate_gate({}, report())
        assert findings == []

    def test_bad_direction_rejected(self):
        with pytest.raises(ReproError):
            evaluate_gate(
                report(), report(), {"query.p95_ms": ("sideways", 1.0)}
            )

    def test_default_thresholds_cover_the_three_workloads(self):
        prefixes = {m.split(".")[0] for m in DEFAULT_THRESHOLDS}
        assert prefixes == {"ingest", "matrix", "query"}


class TestMode:
    def test_default_advisory(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE_GATE", raising=False)
        assert gate_mode() == "advisory"

    def test_hard(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_GATE", "hard")
        assert gate_mode() == "hard"

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_GATE", "sometimes")
        with pytest.raises(ReproError):
            gate_mode()
