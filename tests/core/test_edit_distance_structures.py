"""Deeper structural coverage of the edit-distance DP.

Hand-built specs exercising nested forks, loops containing forks, forks
containing parallel choices, and branch-choice differences — each with an
independently derivable expected distance.
"""

import pytest

from repro.core.api import diff_runs, edit_distance
from repro.costs.standard import LengthCost, UnitCost
from repro.graphs.flow_network import FlowNetwork
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def build_run(spec, name, nodes, edges):
    graph = FlowNetwork(name=name)
    for node, label in nodes.items():
        graph.add_node(node, label)
    for u, v in edges:
        graph.add_edge(u, v)
    return WorkflowRun(spec, graph, name=name)


class TestNestedForks:
    @pytest.fixture(scope="class")
    def spec(self):
        # s -> a -> b -> t; outer fork over (a..b), inner fork over (a,b).
        graph = FlowNetwork(name="nested")
        for node in "sabt":
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("a", "b")
        graph.add_edge("b", "t")
        return WorkflowSpecification(
            graph,
            forks=[[("a", "b", 0)], [("s", "a", 0), ("a", "b", 0), ("b", "t", 0)]],
            name="nested",
        )

    def outer_copies(self, spec, name, shape):
        """shape: list of inner copy counts, one per outer copy."""
        graph = FlowNetwork(name=name)
        graph.add_node("s0", "s")
        graph.add_node("t0", "t")
        for outer, inner_count in enumerate(shape):
            a = f"a{outer}"
            b = f"b{outer}"
            graph.add_node(a, "a")
            graph.add_node(b, "b")
            graph.add_edge("s0", a)
            for _ in range(inner_count):
                graph.add_edge(a, b)
            graph.add_edge(b, "t0")
        return WorkflowRun(spec, graph, name=name)

    def test_inner_copy_change(self, spec):
        one = self.outer_copies(spec, "one", [2])
        two = self.outer_copies(spec, "two", [5])
        assert edit_distance(one, two, UnitCost()) == 3.0

    def test_outer_copy_change(self, spec):
        one = self.outer_copies(spec, "one", [1])
        two = self.outer_copies(spec, "two", [1, 1])
        # Insert a whole outer copy: reduce-free path of 3 edges = 1 op.
        assert edit_distance(one, two, UnitCost()) == 1.0
        assert edit_distance(one, two, LengthCost()) == 3.0

    def test_matching_prefers_similar_outer_copies(self, spec):
        one = self.outer_copies(spec, "one", [1, 4])
        two = self.outer_copies(spec, "two", [4, 1])
        # F matching is unordered: copies pair up perfectly.
        assert edit_distance(one, two, UnitCost()) == 0.0

    def test_mixed_change(self, spec):
        one = self.outer_copies(spec, "one", [2, 2])
        two = self.outer_copies(spec, "two", [2])
        # Delete one outer copy: reduce its inner fork (1 op) + delete the
        # remaining 3-path (1 op) = 2 under unit cost.
        assert edit_distance(one, two, UnitCost()) == 2.0


class TestLoopContainingFork:
    @pytest.fixture(scope="class")
    def spec(self):
        # s -> a -> b -> c -> t; fork over edge (a, b), loop over (a..c).
        graph = FlowNetwork(name="loopfork")
        for node in "sabct":
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "t")
        return WorkflowSpecification(
            graph,
            forks=[[("a", "b", 0)]],
            loops=[("a", "c")],
            name="loopfork",
        )

    def iterations(self, spec, name, shape):
        """shape: inner fork copy count per loop iteration."""
        graph = FlowNetwork(name=name)
        graph.add_node("s0", "s")
        previous = None
        for index, copies in enumerate(shape):
            a = f"a{index}"
            b = f"b{index}"
            c = f"c{index}"
            for node, label in ((a, "a"), (b, "b"), (c, "c")):
                graph.add_node(node, label)
            if index == 0:
                graph.add_edge("s0", a)
            else:
                graph.add_edge(previous, a)  # implicit back-edge c->a
            for _ in range(copies):
                graph.add_edge(a, b)
            graph.add_edge(b, c)
            previous = c
        graph.add_node("t0", "t")
        graph.add_edge(previous, "t0")
        return WorkflowRun(spec, graph, name=name)

    def test_iteration_insert(self, spec):
        one = self.iterations(spec, "one", [1])
        two = self.iterations(spec, "two", [1, 1])
        assert edit_distance(one, two, UnitCost()) == 1.0

    def test_fork_change_within_iteration(self, spec):
        one = self.iterations(spec, "one", [1, 1])
        two = self.iterations(spec, "two", [1, 3])
        assert edit_distance(one, two, UnitCost()) == 2.0

    def test_ordered_matching_shifts_instead_of_crossing(self, spec):
        # Iterations [1 copy, 4 copies] vs [4 copies, 1 copy]: the
        # non-crossing alignment matches the two 4-copy iterations (as a
        # single shifted pair), deleting/re-inserting the cheap 1-copy
        # iteration around them: 1 contraction + 1 expansion = 2.
        one = self.iterations(spec, "one", [1, 4])
        two = self.iterations(spec, "two", [4, 1])
        assert edit_distance(one, two, UnitCost()) == 2.0

    def test_loop_and_fork_do_not_confuse(self, spec):
        forked = self.iterations(spec, "forked", [3])
        looped = self.iterations(spec, "looped", [1, 1, 1])
        # Same number of (a,b) edges but different structure.
        assert not forked.equivalent(looped)
        assert edit_distance(forked, looped, UnitCost()) > 0


class TestBranchChoices:
    @pytest.fixture(scope="class")
    def spec(self):
        graph = FlowNetwork(name="choices")
        for node in ("s", "x", "y", "z", "t"):
            graph.add_node(node)
        for mid in ("x", "y", "z"):
            graph.add_edge("s", mid)
            graph.add_edge(mid, "t")
        return WorkflowSpecification(graph, name="choices")

    def run_with(self, spec, name, mids):
        graph = FlowNetwork(name=name)
        graph.add_node("s0", "s")
        graph.add_node("t0", "t")
        for mid in mids:
            graph.add_node(f"{mid}0", mid)
            graph.add_edge("s0", f"{mid}0")
            graph.add_edge(f"{mid}0", "t0")
        return WorkflowRun(spec, graph, name=name)

    def test_symmetric_difference_of_choices(self, spec):
        one = self.run_with(spec, "one", ["x", "y"])
        two = self.run_with(spec, "two", ["y", "z"])
        # Delete x-branch, insert z-branch.
        assert edit_distance(one, two, UnitCost()) == 2.0
        assert edit_distance(one, two, LengthCost()) == 4.0

    def test_subset_choice(self, spec):
        one = self.run_with(spec, "one", ["x"])
        two = self.run_with(spec, "two", ["x", "y", "z"])
        assert edit_distance(one, two, UnitCost()) == 2.0

    def test_disjoint_single_choices(self, spec):
        one = self.run_with(spec, "one", ["x"])
        two = self.run_with(spec, "two", ["y"])
        # Stable swap (non-homologous children exist is false — single
        # children, but NOT homologous, so case 3b applies): 2 ops.
        assert edit_distance(one, two, UnitCost()) == 2.0
        result = diff_runs(one, two, cost=UnitCost(),
                           validate_intermediates=True)
        assert result.script.total_cost == 2.0
