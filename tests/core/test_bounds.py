"""Lower bounds (:mod:`repro.core.bounds`): units and soundness.

The module's contract is one-sided: a bound may be vacuous, never
wrong.  The Hypothesis property at the bottom enforces exactly that —
for random specifications (forks, loops, non-SP shapes included via
the generators) and every cost model the module claims to reason
about, ``run_lower_bound(r1, r2, cost) <= distance_only(r1, r2, cost)``
holds with plain ``<=`` on floats, no tolerance.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import distance_only
from repro.core.bounds import (
    decode_profile,
    distance_lower_bound,
    encode_profile,
    is_sound_for,
    leaf_profile,
    packing_lower_bound,
    profile_delta,
    run_lower_bound,
    spec_max_op_leaves,
    triangle_lower_bound,
    triangle_upper_bound,
)
from repro.costs.standard import (
    CallableCost,
    LabelWeightedCost,
    LengthCost,
    PowerCost,
    UnitCost,
)
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_specification
from repro.workflow.real_workflows import protein_annotation

VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def _pa_runs(seed_a, seed_b):
    spec = protein_annotation()
    return (
        execute_workflow(spec, VARIED, seed=seed_a, name="a"),
        execute_workflow(spec, VARIED, seed=seed_b, name="b"),
    )


class TestLeafProfiles:
    def test_profile_counts_q_leaves_only(self):
        run_a, _ = _pa_runs(1, 2)
        profile = leaf_profile(run_a.tree)
        assert profile
        assert all(
            isinstance(pair, tuple) and count >= 1
            for pair, count in profile.items()
        )
        # Q leaves, not graph edges: the totals match leaf_edges().
        assert sum(profile.values()) == len(
            list(run_a.tree.leaf_edges())
        )

    def test_delta_is_a_metric_on_multisets(self):
        run_a, run_b = _pa_runs(1, 2)
        pa, pb = leaf_profile(run_a.tree), leaf_profile(run_b.tree)
        assert profile_delta(pa, pa) == 0
        assert profile_delta(pa, pb) == profile_delta(pb, pa)
        assert profile_delta(pa, {}) == sum(pa.values())

    def test_encode_decode_round_trip(self):
        run_a, _ = _pa_runs(3, 4)
        profile = leaf_profile(run_a.tree)
        assert decode_profile(encode_profile(profile)) == profile

    @pytest.mark.parametrize("payload", [
        None,
        "not a dict",
        {"no-separator": 1},
        {"a\x1fb": "three"},
        {"a\x1fb": True},
        {"a\x1fb": -1},
    ])
    def test_decode_rejects_malformed_payloads(self, payload):
        assert decode_profile(payload) is None

    def test_spec_ceiling_positive_for_real_workflow(self):
        assert spec_max_op_leaves(protein_annotation()) >= 1


class TestPackingBound:
    def test_zero_delta_is_zero(self):
        assert packing_lower_bound(0, 5, UnitCost()) == 0.0

    def test_unit_cost_is_op_count(self):
        # D = 7, L = 3: at least ceil(7/3) = 3 ops, each costing 1.
        assert packing_lower_bound(7, 3, UnitCost()) == 3.0

    def test_length_cost_is_delta(self):
        assert packing_lower_bound(7, 3, LengthCost()) == 7.0

    def test_concave_power_packs_full_pieces(self):
        # D = 7, L = 4, eps = 0.5: floor at 4^0.5 + 3^0.5 (guarded).
        bound = packing_lower_bound(7, 4, PowerCost(0.5))
        expected = math.sqrt(4) + math.sqrt(3)
        assert bound <= expected
        assert bound == pytest.approx(expected)

    def test_negative_power_charges_per_piece(self):
        # eps < 0: ceil(7/4) = 2 pieces at the cheapest rate 4^-0.5.
        bound = packing_lower_bound(7, 4, PowerCost(-0.5))
        expected = 2 * 4 ** -0.5
        assert bound <= expected
        assert bound == pytest.approx(expected)

    def test_weighted_cost_scales_by_min_weight(self):
        cost = LabelWeightedCost(
            LengthCost(), {("a", "b"): 5.0}, default_weight=2.0
        )
        bound = packing_lower_bound(7, 3, cost)
        assert bound <= 2.0 * 7
        assert bound == pytest.approx(14.0)

    def test_unknown_models_get_the_vacuous_bound(self):
        cost = CallableCost(lambda l, a, b: 100.0, name="flat")
        assert packing_lower_bound(7, 3, cost) == 0.0
        assert not is_sound_for(cost)

    def test_sound_models_are_declared(self):
        assert is_sound_for(UnitCost())
        assert is_sound_for(LengthCost())
        assert is_sound_for(PowerCost(-1.0))
        assert is_sound_for(
            LabelWeightedCost(UnitCost(), {}, default_weight=3.0)
        )

    def test_degenerate_ceiling_is_vacuous(self):
        assert packing_lower_bound(7, 0, UnitCost()) == 0.0


class TestTriangleBounds:
    @given(
        qb=st.floats(min_value=0.0, max_value=1e6),
        bc=st.floats(min_value=0.0, max_value=1e6),
    )
    @settings(max_examples=50, deadline=None)
    def test_floor_below_ceiling(self, qb, bc):
        assert triangle_lower_bound(qb, bc) <= abs(qb - bc)
        assert triangle_upper_bound(qb, bc) >= qb + bc
        assert triangle_lower_bound(qb, bc) <= triangle_upper_bound(
            qb, bc
        )

    def test_exact_on_zero(self):
        assert triangle_lower_bound(0.0, 0.0) == 0.0
        assert triangle_upper_bound(0.0, 0.0) == 0.0


# Every model the module claims soundness for, plus one it does not
# (whose bound must degenerate to 0.0 — also trivially sound).
SOUND_COSTS = [
    UnitCost(),
    LengthCost(),
    PowerCost(0.5),
    PowerCost(-0.5),
    LabelWeightedCost(
        PowerCost(0.5), {("START", "END"): 4.0}, default_weight=2.0
    ),
    CallableCost(lambda l, a, b: float(l) * 2.0, name="double"),
]


@given(
    spec_seed=st.integers(min_value=0, max_value=60),
    run_seed=st.integers(min_value=0, max_value=1000),
    cost_index=st.integers(min_value=0, max_value=len(SOUND_COSTS) - 1),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_bound_never_exceeds_true_distance(
    spec_seed, run_seed, cost_index
):
    """The contract: ``bound <= distance``, bit for bit, always."""
    cost = SOUND_COSTS[cost_index]
    spec = random_specification(
        10 + spec_seed % 6,
        1.0,
        num_forks=spec_seed % 3,
        num_loops=spec_seed % 2,
        seed=spec_seed,
        name="rand",
    )
    run_a = execute_workflow(spec, VARIED, seed=run_seed, name="a")
    run_b = execute_workflow(spec, VARIED, seed=run_seed + 1, name="b")
    distance = distance_only(run_a, run_b, cost=cost)
    bound = run_lower_bound(run_a, run_b, cost)
    assert bound <= distance
    # The profile-level face agrees with the convenience face.
    assert bound == distance_lower_bound(
        leaf_profile(run_a.tree),
        leaf_profile(run_b.tree),
        spec_max_op_leaves(spec),
        cost,
    )


@given(
    run_seed=st.integers(min_value=0, max_value=500),
    cost_index=st.integers(min_value=0, max_value=len(SOUND_COSTS) - 1),
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_bound_is_zero_on_identical_runs(run_seed, cost_index):
    cost = SOUND_COSTS[cost_index]
    spec = protein_annotation()
    run = execute_workflow(spec, VARIED, seed=run_seed, name="a")
    assert run_lower_bound(run, run, cost) == 0.0
