"""Tests for Algorithms 4 and 6: the edit-distance DP."""

import pytest

from repro.core.api import diff_runs, edit_distance
from repro.core.edit_distance import EditDistanceComputation
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.graphs.flow_network import FlowNetwork
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

from tests.conftest import build_run


class TestPaperExample:
    def test_example_5_2_unit_distance(self, fig2_r1, fig2_r2):
        """The paper computes δ(T1, T2) = 4 under the unit cost model."""
        assert edit_distance(fig2_r1, fig2_r2, UnitCost()) == 4.0

    def test_length_cost_distance(self, fig2_r1, fig2_r2):
        # Fig. 3's script: delete (2,3,6) [2], insert (2,4,6) [2], insert
        # (2,5,6) [2], insert the whole second copy (1,2,4,6,7) [4] = 10.
        assert edit_distance(fig2_r1, fig2_r2, LengthCost()) == 10.0

    def test_loop_run_distance(self, fig2_r1, fig2_r3):
        distance = edit_distance(fig2_r1, fig2_r3, UnitCost())
        assert distance > 0


class TestMetricBasics:
    def test_self_distance_zero(self, fig2_r1, fig2_r2, fig2_r3):
        for run in (fig2_r1, fig2_r2, fig2_r3):
            assert edit_distance(run, run, UnitCost()) == 0.0

    def test_symmetry(self, fig2_r1, fig2_r2, fig2_r3):
        for cost in (UnitCost(), LengthCost(), PowerCost(0.5)):
            for a, b in [
                (fig2_r1, fig2_r2),
                (fig2_r1, fig2_r3),
                (fig2_r2, fig2_r3),
            ]:
                assert edit_distance(a, b, cost) == pytest.approx(
                    edit_distance(b, a, cost)
                )

    def test_triangle_inequality(self, fig2_r1, fig2_r2, fig2_r3):
        for cost in (UnitCost(), LengthCost()):
            d12 = edit_distance(fig2_r1, fig2_r2, cost)
            d13 = edit_distance(fig2_r1, fig2_r3, cost)
            d23 = edit_distance(fig2_r2, fig2_r3, cost)
            assert d13 <= d12 + d23 + 1e-9
            assert d12 <= d13 + d23 + 1e-9
            assert d23 <= d12 + d13 + 1e-9

    def test_equivalent_runs_have_zero_distance(self, fig2_spec, fig2_r1):
        renamed = build_run(
            fig2_spec,
            "R1-renamed",
            {
                "1x": "1",
                "2x": "2",
                "3x": "3",
                "3y": "3",
                "4x": "4",
                "6x": "6",
                "7x": "7",
            },
            [
                ("1x", "2x"),
                ("2x", "3x"),
                ("3x", "6x"),
                ("2x", "3y"),
                ("3y", "6x"),
                ("2x", "4x"),
                ("4x", "6x"),
                ("6x", "7x"),
            ],
        )
        assert edit_distance(fig2_r1, renamed, UnitCost()) == 0.0


class TestForkMatching:
    @pytest.fixture(scope="class")
    def fork_spec(self):
        graph = FlowNetwork(name="forky")
        for node in "sabt":
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("a", "b")
        graph.add_edge("b", "t")
        return WorkflowSpecification(
            graph, forks=[["a", "b"]], name="forky"
        )

    def run_with_copies(self, spec, count):
        nodes = {"s1": "s", "a1": "a", "b1": "b", "t1": "t"}
        edges = [("s1", "a1"), ("b1", "t1")]
        for index in range(count):
            edges.append(("a1", "b1"))
        graph = FlowNetwork(name=f"copies{count}")
        for node, label in nodes.items():
            graph.add_node(node, label)
        for u, v in edges:
            graph.add_edge(u, v)
        return WorkflowRun(spec, graph, name=f"copies{count}")

    @pytest.mark.parametrize("count1,count2", [(1, 3), (2, 5), (4, 1)])
    def test_copy_count_difference(self, fork_spec, count1, count2):
        one = self.run_with_copies(fork_spec, count1)
        two = self.run_with_copies(fork_spec, count2)
        assert edit_distance(one, two, UnitCost()) == abs(count1 - count2)


class TestLoopMatching:
    @pytest.fixture(scope="class")
    def loop_spec(self):
        graph = FlowNetwork(name="loopy")
        for node in "sabt":
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("a", "b")
        graph.add_edge("b", "t")
        return WorkflowSpecification(
            graph, loops=[("a", "b")], name="loopy"
        )

    def run_with_iterations(self, spec, count):
        graph = FlowNetwork(name=f"iters{count}")
        graph.add_node("s1", "s")
        previous = "s1"
        for index in range(count):
            a = f"a{index}"
            b = f"b{index}"
            graph.add_node(a, "a")
            graph.add_node(b, "b")
            graph.add_edge(previous, a)
            graph.add_edge(a, b)
            previous = b
        graph.add_node("t1", "t")
        graph.add_edge(previous, "t1")
        return WorkflowRun(spec, graph, name=f"iters{count}")

    @pytest.mark.parametrize("count1,count2", [(1, 3), (2, 4), (3, 1)])
    def test_iteration_count_difference(self, loop_spec, count1, count2):
        one = self.run_with_iterations(loop_spec, count1)
        two = self.run_with_iterations(loop_spec, count2)
        assert edit_distance(one, two, UnitCost()) == abs(count1 - count2)


class TestUnstablePairs:
    @pytest.fixture(scope="class")
    def swap_spec(self):
        # Two alternative branches of different lengths between s and t.
        graph = FlowNetwork(name="swap")
        for node in ("s", "a", "b", "t"):
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("a", "t")
        graph.add_edge("s", "b")
        graph.add_edge("b", "t")
        return WorkflowSpecification(graph, name="swap")

    def branch_run(self, spec, middle):
        graph = FlowNetwork(name=f"via-{middle}")
        graph.add_node("s1", "s")
        graph.add_node(f"{middle}1", middle)
        graph.add_node("t1", "t")
        graph.add_edge("s1", f"{middle}1")
        graph.add_edge(f"{middle}1", "t1")
        return WorkflowRun(spec, graph, name=f"via-{middle}")

    def test_branch_swap_is_two_operations(self, swap_spec):
        via_a = self.branch_run(swap_spec, "a")
        via_b = self.branch_run(swap_spec, "b")
        # Delete one branch, insert the other (they are not homologous, so
        # no unstable penalty applies).
        assert edit_distance(via_a, via_b, UnitCost()) == 2.0

    def test_unstable_pair_charges_2w(self):
        """Same loop body shrinks: P pair with single homologous children.

        Spec: s -> (a | b-chain) -> t where branch a is forked.  Runs both
        take only branch a, but with different fork copy counts *below* a
        P pair... Simplest demonstrable unstable case: both runs execute
        only branch a, with different *interior* structure via a nested
        fork, making the child mapping expensive.
        """
        graph = FlowNetwork(name="unstable")
        for node in ("s", "a1", "a2", "b", "t"):
            graph.add_node(node)
        graph.add_edge("s", "a1")
        graph.add_edge("a1", "a2")
        graph.add_edge("a2", "t")
        graph.add_edge("s", "b")
        graph.add_edge("b", "t")
        spec = WorkflowSpecification(
            graph, forks=[[("a1", "a2", 0)]], name="unstable"
        )

        def run_with(n_copies, name):
            g = FlowNetwork(name=name)
            for node, label in {
                "s0": "s",
                "x0": "a1",
                "y0": "a2",
                "t0": "t",
            }.items():
                g.add_node(node, label)
            g.add_edge("s0", "x0")
            for _ in range(n_copies):
                g.add_edge("x0", "y0")
            g.add_edge("y0", "t0")
            return WorkflowRun(spec, g, name=name)

        few = run_with(1, "few")
        many = run_with(4, "many")
        # Mapping the branches: 3 fork-copy insertions = 3 (unit cost).
        # The unstable route would cost X + X + 2W = 3 + 6(?) ... larger.
        distance = edit_distance(few, many, UnitCost())
        assert distance == 3.0

    def test_unstable_route_taken_when_cheaper(self):
        """When remapping is dearer than delete+insert+2W, use Eq. 2."""
        graph = FlowNetwork(name="unstable2")
        for node in ("s", "a", "b", "t"):
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("a", "t")
        graph.add_edge("s", "b")
        graph.add_edge("b", "t")
        spec = WorkflowSpecification(
            graph, forks=[[("s", "a", 0), ("a", "t", 0)]], name="unstable2"
        )

        def run_with(copies, name):
            g = FlowNetwork(name=name)
            g.add_node("s0", "s")
            g.add_node("t0", "t")
            for index in range(copies):
                g.add_node(f"a{index}", "a")
                g.add_edge("s0", f"a{index}")
                g.add_edge(f"a{index}", "t0")
            return WorkflowRun(spec, g, name=name)

        one = run_with(1, "one")
        five = run_with(5, "five")
        # Both runs take only the forked a-branch; the P pair has single
        # homologous children (the F nodes).  Mapping them costs 4 copy
        # insertions; the unstable route costs X + X + 2W = 1+5+2 = 8 under
        # unit cost -> mapping wins.
        assert edit_distance(one, five, UnitCost()) == 4.0
        # Under length cost: mapping = 4 copies * 2 = 8; unstable route =
        # 2 + 10 + 2*1(b-branch length 1 -> cost 1... b branch has length
        # 1) = 14 -> mapping still wins.
        assert edit_distance(one, five, LengthCost()) == 8.0


class TestComputationObject:
    def test_distance_property(self, fig2_spec, fig2_r1, fig2_r2):
        comp = EditDistanceComputation(
            fig2_spec, fig2_r1.tree, fig2_r2.tree, UnitCost()
        )
        assert comp.distance == 4.0

    def test_decision_records_matches(self, fig2_spec, fig2_r1, fig2_r2):
        comp = EditDistanceComputation(
            fig2_spec, fig2_r1.tree, fig2_r2.tree, UnitCost()
        )
        root_decision = comp.decision(fig2_r1.tree, fig2_r2.tree)
        assert len(root_decision.matched) == 1  # one copy pair matched

    def test_rejects_origin_free_trees(self, fig2_spec, fig2_r1):
        from repro.errors import EditScriptError
        from repro.sptree.canonical import canonical_sp_tree

        bare = canonical_sp_tree(fig2_r1.graph)
        with pytest.raises(EditScriptError, match="origin"):
            EditDistanceComputation(
                fig2_spec, bare, fig2_r1.tree, UnitCost()
            )
