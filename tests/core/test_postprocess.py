"""Tests for edit-script post-processing (composite operations)."""

import pytest

from repro.core.api import diff_runs
from repro.core.edit_script import (
    PATH_CONTRACTION,
    PATH_DELETION,
    PATH_EXPANSION,
    PATH_INSERTION,
    PathOperation,
)
from repro.core.postprocess import (
    GROW_SUBGRAPH,
    REPLACE_ITERATION,
    REPLACE_PATH,
    SHRINK_SUBGRAPH,
    detect_composites,
)
from repro.costs.standard import UnitCost


def op(kind, labels, cost=1.0):
    return PathOperation(
        kind=kind,
        cost=cost,
        length=len(labels) - 1,
        source_label=labels[0],
        sink_label=labels[-1],
        path_labels=tuple(labels),
    )


class TestSyntheticScripts:
    def test_replacement_detected(self):
        script = [
            op(PATH_DELETION, ("2", "3", "6")),
            op(PATH_INSERTION, ("2", "4", "6")),
        ]
        compact = detect_composites(script)
        assert len(compact.composites) == 1
        composite = compact.composites[0]
        assert composite.kind == REPLACE_PATH
        assert "replace path" in composite.describe()
        assert compact.residual == []
        assert compact.total_cost == 2.0

    def test_identical_paths_not_paired(self):
        # Deleting and inserting the *same* path shape is a copy-count
        # change, not a replacement.
        script = [
            op(PATH_DELETION, ("2", "3", "6")),
            op(PATH_INSERTION, ("2", "3", "6")),
        ]
        compact = detect_composites(script)
        assert all(
            c.kind != REPLACE_PATH for c in compact.composites
        )

    def test_iteration_replacement(self):
        script = [
            op(PATH_CONTRACTION, ("2", "4", "6")),
            op(PATH_EXPANSION, ("2", "5", "6")),
        ]
        compact = detect_composites(script)
        assert compact.composites[0].kind == REPLACE_ITERATION
        assert "loop iteration" in compact.composites[0].describe()

    def test_grouped_growth(self):
        script = [
            op(PATH_INSERTION, ("2", "3", "6")),
            op(PATH_INSERTION, ("2", "4", "6")),
            op(PATH_INSERTION, ("2", "5", "6")),
        ]
        compact = detect_composites(script)
        assert len(compact.composites) == 1
        assert compact.composites[0].kind == GROW_SUBGRAPH
        assert compact.composites[0].size == 3
        assert "3-path subgraph" in compact.composites[0].describe()

    def test_grouped_shrink(self):
        script = [
            op(PATH_DELETION, ("a", "x", "b")),
            op(PATH_DELETION, ("a", "y", "b")),
        ]
        compact = detect_composites(script)
        assert compact.composites[0].kind == SHRINK_SUBGRAPH

    def test_threshold_respected(self):
        script = [op(PATH_INSERTION, ("a", "b"))]
        compact = detect_composites(script, group_threshold=2)
        assert compact.composites == []
        assert compact.residual == script

    def test_cost_preserved(self):
        script = [
            op(PATH_DELETION, ("2", "3", "6"), cost=2.0),
            op(PATH_INSERTION, ("2", "4", "6"), cost=2.0),
            op(PATH_INSERTION, ("1", "2"), cost=1.0),
        ]
        compact = detect_composites(script)
        assert compact.total_cost == pytest.approx(5.0)


class TestRealScripts:
    def test_fig2_script_compacts(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, cost=UnitCost())
        compact = detect_composites(result.script.operations)
        assert compact.total_cost == pytest.approx(result.distance)
        # The delete (2,3,6) / insert (2,4,6) pair is a replacement.
        kinds = [c.kind for c in compact.composites]
        assert REPLACE_PATH in kinds
        assert len(compact.summary_lines()) <= len(
            result.script.operations
        )

    def test_loop_script_compacts(self, fig2_r1, fig2_r3):
        result = diff_runs(fig2_r3, fig2_r1, cost=UnitCost())
        compact = detect_composites(result.script.operations)
        assert compact.total_cost == pytest.approx(result.distance)
