"""Tests for spec-side insertion costs and W_TG (Eq. 2)."""

import pytest

from repro.core.apply import IdAllocator
from repro.core.spec_costs import SpecCostTables, achievable_leaf_counts
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.errors import EditScriptError
from repro.sptree.nodes import NodeType
from repro.sptree.validate import validate_run_tree


class TestAchievableCounts:
    def test_fig2_root(self, fig2_spec):
        # Every source-sink path has length 4: 1-2, 2-x, x-6, 6-7.
        assert achievable_leaf_counts(fig2_spec.tree) == [4]

    def test_fig2_parallel_section(self, fig2_spec):
        parallel = fig2_spec.tree.find(
            lambda n: n.kind is NodeType.P
        )
        assert achievable_leaf_counts(parallel) == [2]

    def test_two_length_branches(self):
        from repro.graphs.flow_network import FlowNetwork
        from repro.workflow.specification import WorkflowSpecification

        graph = FlowNetwork()
        for node in ("s", "a", "b", "t"):
            graph.add_node(node)
        graph.add_edge("s", "t")
        graph.add_edge("s", "a")
        graph.add_edge("a", "b")
        graph.add_edge("b", "t")
        spec = WorkflowSpecification(graph, name="two")
        assert achievable_leaf_counts(spec.tree) == [1, 3]


class TestMinInsertion:
    def test_fig2_branch_cost(self, fig2_spec):
        tables = SpecCostTables(fig2_spec, LengthCost())
        parallel = fig2_spec.tree.find(lambda n: n.kind is NodeType.P)
        for branch in parallel.children:
            assert tables.min_insertion_cost(branch) == 2.0
            assert tables.min_insertion_leaves(branch) == 2

    def test_unit_cost(self, fig2_spec):
        tables = SpecCostTables(fig2_spec, UnitCost())
        parallel = fig2_spec.tree.find(lambda n: n.kind is NodeType.P)
        assert tables.min_insertion_cost(parallel.children[0]) == 1.0


class TestW:
    def test_fig2_w_values(self, fig2_spec):
        tables = SpecCostTables(fig2_spec, LengthCost())
        parallel = fig2_spec.tree.find(lambda n: n.kind is NodeType.P)
        child = parallel.children[0]
        # All siblings cost 2 under length cost.
        assert tables.w(parallel, child) == 2.0
        sibling = tables.w_argmin(parallel, child)
        assert sibling is not child

    def test_w_picks_cheapest_sibling(self):
        from repro.graphs.flow_network import FlowNetwork
        from repro.workflow.specification import WorkflowSpecification

        graph = FlowNetwork()
        for node in ("s", "a", "t"):
            graph.add_node(node)
        graph.add_edge("s", "t")          # short branch
        graph.add_edge("s", "a")
        graph.add_edge("a", "t")          # long branch
        spec = WorkflowSpecification(graph, name="wpick")
        tables = SpecCostTables(spec, LengthCost())
        parallel = spec.tree
        assert parallel.kind is NodeType.P
        long_branch = next(
            c for c in parallel.children if c.leaf_count == 2
        )
        short_branch = next(
            c for c in parallel.children if c.leaf_count == 1
        )
        assert tables.w(parallel, long_branch) == 1.0
        assert tables.w(parallel, short_branch) == 2.0


class TestWitness:
    def test_witness_is_branch_free_run(self, fig2_spec):
        tables = SpecCostTables(fig2_spec, UnitCost())
        allocator = IdAllocator()
        witness = tables.witness(
            fig2_spec.tree, 4, "START", "END", allocator.fresh
        )
        assert witness.is_branch_free
        assert witness.leaf_count == 4
        assert witness.source == "START"
        assert witness.sink == "END"
        validate_run_tree(witness, require_origin=True)

    def test_witness_fresh_interior_ids(self, fig2_spec):
        tables = SpecCostTables(fig2_spec, UnitCost())
        allocator = IdAllocator()
        witness = tables.witness(
            fig2_spec.tree, 4, "s0", "t0", allocator.fresh
        )
        ids = set()
        for leaf in witness.leaves():
            ids.add(leaf.edge.source)
            ids.add(leaf.edge.sink)
        assert "s0" in ids and "t0" in ids
        assert len(ids) == 5  # 4 edges -> 5 distinct path nodes

    def test_witness_invalid_count_rejected(self, fig2_spec):
        tables = SpecCostTables(fig2_spec, UnitCost())
        with pytest.raises(EditScriptError):
            tables.witness(
                fig2_spec.tree, 3, "s", "t", IdAllocator().fresh
            )

    def test_witness_multiple_lengths(self):
        from repro.graphs.flow_network import FlowNetwork
        from repro.workflow.specification import WorkflowSpecification

        graph = FlowNetwork()
        for node in ("s", "a", "b", "t"):
            graph.add_node(node)
        graph.add_edge("s", "t")
        graph.add_edge("s", "a")
        graph.add_edge("a", "b")
        graph.add_edge("b", "t")
        spec = WorkflowSpecification(graph, name="two")
        tables = SpecCostTables(spec, LengthCost())
        for leaves in (1, 3):
            witness = tables.witness(
                spec.tree, leaves, "S", "T", IdAllocator().fresh
            )
            assert witness.leaf_count == leaves
