"""Tests for Algorithm 3: the subtree-deletion DP."""

import math

import pytest

from repro.core.deletion import DeletionTables
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.sptree.nodes import EdgeRef, NodeType, SPTree


def q(u, v, lu=None, lv=None, key=0, origin=None):
    return SPTree(
        NodeType.Q,
        (),
        edge=EdgeRef(u, v, lu or str(u), lv or str(v), key),
        origin=origin,
    )


def s(children):
    return SPTree(NodeType.S, tuple(children))


def p(children):
    return SPTree(NodeType.P, tuple(children))


def f(children):
    return SPTree(NodeType.F, tuple(children))


class TestLeafAndPath:
    def test_single_edge(self):
        leaf = q("a", "b")
        tables = DeletionTables(leaf, UnitCost())
        assert tables.x(leaf) == 1.0
        assert tables.y(leaf, 1) == 0.0
        assert math.isinf(tables.y(leaf, 2))
        assert tables.max_leaves(leaf) == 1

    def test_path_under_length_cost(self):
        tree = s([q("a", "b"), q("b", "c"), q("c", "d")])
        tables = DeletionTables(tree, LengthCost())
        # A path is already branch-free: reduce cost 0, delete costs 3.
        assert tables.y(tree, 3) == 0.0
        assert tables.x(tree) == 3.0

    def test_path_under_unit_cost(self):
        tree = s([q("a", "b"), q("b", "c")])
        tables = DeletionTables(tree, UnitCost())
        assert tables.x(tree) == 1.0  # one operation removes the path


class TestBranching:
    def test_parallel_keeps_cheapest_branch(self):
        short = q("a", "b")
        long = s([q("a", "m", lu="a", lv="m"), q("m", "b", lu="m", lv="b")])
        tree = p([short, long])
        tables = DeletionTables(tree, LengthCost())
        # Reduce to 1 leaf: delete the 2-edge branch (cost 2).
        assert tables.y(tree, 1) == 2.0
        # Reduce to 2 leaves: delete the 1-edge branch (cost 1).
        assert tables.y(tree, 2) == 1.0
        # Full deletion: min(2 + 1, 1 + 2) = 3.
        assert tables.x(tree) == 3.0

    def test_fork_copies(self):
        copies = [q("a", "b", key=i) for i in range(3)]
        tree = f(copies)
        tables = DeletionTables(tree, UnitCost())
        # Keep one copy (delete two, 1 each), then delete it: 3 total.
        assert tables.x(tree) == 3.0
        assert tables.y(tree, 1) == 2.0

    def test_unit_cost_prefers_fewer_operations(self):
        short = q("a", "b")
        long = s([q("a", "m", lu="a", lv="m"), q("m", "b", lu="m", lv="b")])
        tree = p([short, long])
        tables = DeletionTables(tree, UnitCost())
        # Either branch deletion costs 1 op; total deletion = 2 ops.
        assert tables.x(tree) == 2.0


class TestSeriesConvolution:
    def test_two_parallel_sections(self):
        def branch(src, mid, dst):
            return s(
                [
                    q(src, mid, lu=src[0], lv=mid[0:1] or mid),
                    q(mid, dst, lu=mid[0:1] or mid, lv=dst[0]),
                ]
            )

        # S( P(short, long), P(short, long) ) with label-consistent chains.
        sec1 = p([q("a", "b", lu="a", lv="b"),
                  s([q("a", "x", lu="a", lv="x"), q("x", "b", lu="x", lv="b")])])
        sec2 = p([q("b", "c", lu="b", lv="c"),
                  s([q("b", "y", lu="b", lv="y"), q("y", "c", lu="y", lv="c")])])
        tree = s([sec1, sec2])
        tables = DeletionTables(tree, LengthCost())
        # Achievable leaf counts: 2, 3, 4.
        assert tables.max_leaves(tree) == 4
        assert tables.y(tree, 2) == 4.0   # drop both long branches
        assert tables.y(tree, 3) == 3.0   # drop one long, one short
        assert tables.y(tree, 4) == 2.0   # drop both short branches
        # Deletion: min over l of Y[l] + l = min(6, 6, 6) = 6.
        assert tables.x(tree) == 6.0

    def test_unachievable_counts_are_inf(self):
        sec1 = p([q("a", "b"), q("a", "b", key=1)])
        tree = s([sec1, q("b", "c")])
        tables = DeletionTables(tree, UnitCost())
        assert math.isinf(tables.y(tree, 1))
        assert tables.y(tree, 2) == 1.0


class TestPlans:
    def build_tree(self):
        short = q("a", "b")
        long = s([q("a", "m", lu="a", lv="m"), q("m", "b", lu="m", lv="b")])
        return p([short, long])

    @pytest.mark.parametrize(
        "cost", [UnitCost(), LengthCost(), PowerCost(0.5)]
    )
    def test_plan_cost_matches_x(self, cost):
        tree = self.build_tree()
        tables = DeletionTables(tree, cost)
        plan = tables.deletion_plan(tree)
        assert sum(step.cost for step in plan) == pytest.approx(
            tables.x(tree)
        )
        assert plan[-1].victim is tree

    def test_reduction_plan_cost_matches_y(self):
        tree = self.build_tree()
        tables = DeletionTables(tree, LengthCost())
        plan = tables.reduction_plan(tree, 1)
        assert sum(step.cost for step in plan) == pytest.approx(2.0)

    def test_plan_on_fig2_run(self, fig2_r1):
        tables = DeletionTables(fig2_r1.tree, UnitCost())
        plan = tables.deletion_plan(fig2_r1.tree)
        assert sum(step.cost for step in plan) == pytest.approx(
            tables.x(fig2_r1.tree)
        )
        # Deletion steps are deepest-first: every victim's subtree appears
        # at most once.
        victims = [id(step.victim) for step in plan]
        assert len(victims) == len(set(victims))

    def test_spine_structure(self):
        tree = self.build_tree()
        tables = DeletionTables(tree, LengthCost())
        spine = tables.reduced_spine(tree, 2)
        assert spine.node is tree
        assert len(spine.children) == 1  # P keeps one child
        kept = spine.children[0]
        assert kept.node.kind == NodeType.S
        assert len(kept.children) == 2

    def test_spine_invalid_target_raises(self):
        from repro.errors import EditScriptError

        tree = self.build_tree()
        tables = DeletionTables(tree, LengthCost())
        with pytest.raises(EditScriptError):
            tables.reduced_spine(tree, 5)
