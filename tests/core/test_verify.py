"""Tests for the public diff-verification API."""

import pytest

from repro.core.api import diff_runs
from repro.core.verify import VerificationReport, verify_diff
from repro.costs.standard import LengthCost, UnitCost
from repro.errors import ReproError
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import emboss


class TestHappyPath:
    def test_paper_example_verifies(self, fig2_r1, fig2_r2):
        result = diff_runs(
            fig2_r1, fig2_r2, cost=UnitCost(), record_intermediates=True
        )
        report = verify_diff(result, check_intermediates=True)
        assert report.ok, str(report)
        assert "intermediate-validity" in report.checks_run
        report.raise_on_failure()  # no-op when ok

    def test_distance_only_diff(self, fig2_r1, fig2_r3):
        result = diff_runs(fig2_r1, fig2_r3, with_script=False)
        report = verify_diff(result)
        assert report.ok
        assert "script-skipped" in report.checks_run

    def test_random_pairs_verify(self):
        spec = emboss()
        params = ExecutionParams(
            prob_parallel=0.7,
            max_fork=3,
            prob_fork=0.6,
            max_loop=2,
            prob_loop=0.6,
        )
        for seed in range(3):
            one = execute_workflow(spec, params, seed=seed)
            two = execute_workflow(spec, params, seed=seed + 40)
            result = diff_runs(
                one, two, cost=LengthCost(), record_intermediates=True
            )
            report = verify_diff(result, check_intermediates=True)
            assert report.ok, str(report)

    def test_str_rendering(self, fig2_r1, fig2_r2):
        report = verify_diff(diff_runs(fig2_r1, fig2_r2))
        assert "verification OK" in str(report)


class TestDetection:
    def test_tampered_distance_detected(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        result.distance += 1.0
        report = verify_diff(result)
        assert not report.ok
        assert any("mapping cost" in p for p in report.problems)
        with pytest.raises(ReproError, match="verification failed"):
            report.raise_on_failure()

    def test_tampered_operation_cost_detected(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        result.script.operations[0].cost += 0.5
        report = verify_diff(result)
        assert any("operation 1" in p for p in report.problems)

    def test_missing_intermediates_reported(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)  # not recorded
        report = verify_diff(result, check_intermediates=True)
        assert any("not recorded" in p for p in report.problems)

    def test_tampered_mapping_detected(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        result.mapping.pairs.append(result.mapping.pairs[-1])
        report = verify_diff(result)
        assert any("well-formed" in p for p in report.problems)
