"""Tests for edit-script generation and application (Lemma 5.1)."""

import pytest

from repro.core.api import diff_runs
from repro.core.edit_script import (
    PATH_CONTRACTION,
    PATH_DELETION,
    PATH_EXPANSION,
    PATH_INSERTION,
)
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.graphs.flow_network import FlowNetwork
from repro.sptree.annotate_run import annotate_run_tree
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


class TestPaperScript:
    def test_script_cost_equals_distance(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, cost=UnitCost())
        assert result.script.total_cost == pytest.approx(4.0)
        assert len(result.script) == 4

    def test_final_graph_equivalent_to_target(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, cost=UnitCost())
        assert result.script.final_tree.structure_key() == (
            fig2_r2.tree.structure_key()
        )

    def test_operation_kinds(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, cost=UnitCost())
        kinds = sorted(op.kind for op in result.script.operations)
        assert kinds == [
            PATH_DELETION,
            PATH_INSERTION,
            PATH_INSERTION,
            PATH_INSERTION,
        ]

    def test_intermediates_are_valid_runs(
        self, fig2_spec, fig2_r1, fig2_r2
    ):
        result = diff_runs(
            fig2_r1, fig2_r2, cost=UnitCost(), validate_intermediates=True
        )
        assert len(result.script.intermediate_graphs) == 4
        for graph in result.script.intermediate_graphs:
            annotate_run_tree(fig2_spec, graph)  # raises when invalid

    def test_initial_graph_matches_run1(self, fig2_r1, fig2_r2):
        result = diff_runs(
            fig2_r1, fig2_r2, cost=UnitCost(), record_intermediates=True
        )
        assert result.script.initial_graph.structurally_equal(
            fig2_r1.graph
        )


class TestLoopScripts:
    def test_expansion_and_contraction_ops(self, fig2_r1, fig2_r3):
        result = diff_runs(fig2_r1, fig2_r3, cost=UnitCost())
        kinds = {op.kind for op in result.script.operations}
        assert PATH_EXPANSION in kinds  # R3 has an extra loop iteration

    def test_contraction_direction(self, fig2_r1, fig2_r3):
        result = diff_runs(fig2_r3, fig2_r1, cost=UnitCost())
        kinds = {op.kind for op in result.script.operations}
        assert PATH_CONTRACTION in kinds

    def test_example_6_2_contraction(self, fig2_spec, fig2_r3):
        """Deleting R3's second iteration: delete (2b,5a,6b), contract
        (2b,4c,6b) — cost 2 under unit cost (paper Example 6.2)."""
        from tests.conftest import build_run

        single_iteration = build_run(
            fig2_spec,
            "R3-short",
            {
                "1a": "1",
                "2a": "2",
                "3a": "3",
                "4a": "4",
                "4b": "4",
                "6a": "6",
                "7a": "7",
            },
            [
                ("1a", "2a"),
                ("2a", "3a"),
                ("3a", "6a"),
                ("2a", "4a"),
                ("4a", "6a"),
                ("2a", "4b"),
                ("4b", "6a"),
                ("6a", "7a"),
            ],
        )
        result = diff_runs(fig2_r3, single_iteration, cost=UnitCost())
        assert result.distance == 2.0
        kinds = sorted(op.kind for op in result.script.operations)
        assert kinds == [PATH_CONTRACTION, PATH_DELETION]


class TestUnstableScripts:
    def test_temporary_branch_materialised(self):
        """An unstable P pair's script inserts and removes a temp branch."""
        graph = FlowNetwork(name="unstable")
        for node in ("s", "a", "b", "t"):
            graph.add_node(node)
        graph.add_edge("s", "a")
        graph.add_edge("a", "t")
        graph.add_edge("s", "b")
        graph.add_edge("b", "t")
        spec = WorkflowSpecification(
            graph,
            forks=[[("s", "a", 0), ("a", "t", 0)]],
            name="unstable",
        )

        def deep_run(copies, name):
            g = FlowNetwork(name=name)
            g.add_node("s0", "s")
            g.add_node("t0", "t")
            for index in range(copies):
                g.add_node(f"a{index}", "a")
                g.add_edge("s0", f"a{index}")
                g.add_edge(f"a{index}", "t0")
            return WorkflowRun(spec, g, name=name)

        class SkewedCost(PowerCost):
            """Make re-mapping copies absurdly expensive so the unstable
            delete+insert+2W route wins."""

            def __init__(self):
                super().__init__(1.0)

            def path_cost(self, length, a, b):
                return float(length)

        one = deep_run(1, "one")
        many = deep_run(12, "many")
        cost = SkewedCost()
        result = diff_runs(
            one, many, cost=cost, validate_intermediates=True
        )
        # Route comparison: mapping = 11 copy insertions * 2 = 22;
        # unstable: X(1 copy)=2, X(12 copies)=24 ... mapping wins here; the
        # point of this test is end-to-end validity either way.
        assert result.script.total_cost == pytest.approx(result.distance)
        assert result.script.final_tree.structure_key() == (
            many.tree.structure_key()
        )

    @staticmethod
    def _sectioned_spec():
        """P over a long branch X with three 2-way interior sections, and
        a direct-edge branch Y between the same terminals."""
        graph = FlowNetwork(name="u2")
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "t")  # branch Y: a single direct edge
        chain = ["s", "c1", "c2", "c3", "c4"]
        for node in chain[1:]:
            graph.add_node(node)
        graph.add_edge("s", "c1")
        for index in range(1, 4):
            for option in ("a", "b"):
                mid = f"{option}{index}"
                graph.add_node(mid)
                graph.add_edge(f"c{index}", mid)
                graph.add_edge(mid, f"c{index + 1}")
        graph.add_edge("c4", "t")
        return WorkflowSpecification(graph, name="u2")

    @staticmethod
    def _section_run(spec, option, name):
        g = FlowNetwork(name=name)
        g.add_node("s0", "s")
        g.add_node("t0", "t")
        previous = "s0"
        g.add_node("c1x", "c1")
        g.add_edge("s0", "c1x")
        previous = "c1x"
        for index in range(1, 4):
            mid = f"{option}{index}x"
            g.add_node(mid, f"{option}{index}")
            nxt = f"c{index + 1}x"
            g.add_node(nxt, f"c{index + 1}")
            g.add_edge(previous, mid)
            g.add_edge(mid, nxt)
            previous = nxt
        g.add_edge(previous, "t0")
        return WorkflowRun(spec, g, name=name)

    def test_unstable_route_wins_and_script_is_valid(self, ):
        """Eq. 2 route: swap the whole branch via a temporary sibling.

        Remapping section by section costs 6 unit operations; deleting the
        8-edge branch-free branch (1 op), re-inserting the other variant
        (1 op), plus inserting and removing the temporary direct edge
        (2W = 2) costs 4 — the unstable route must win.
        """
        spec = self._sectioned_spec()
        via_a = self._section_run(spec, "a", "via-a")
        via_b = self._section_run(spec, "b", "via-b")
        result = diff_runs(
            via_a, via_b, cost=UnitCost(), validate_intermediates=True
        )
        assert result.distance == pytest.approx(4.0)
        notes = [op.note for op in result.script.operations]
        assert notes.count("temporary branch") == 2  # insert + delete
        assert result.script.total_cost == pytest.approx(4.0)
        assert result.script.final_tree.structure_key() == (
            via_b.tree.structure_key()
        )
        # The mapping records the pair as unstable.
        unstable_pairs = [
            pair for pair in result.mapping.pairs if pair.unstable
        ]
        assert len(unstable_pairs) == 1

    def test_unstable_route_matches_oracle(self):
        """The exhaustive oracle confirms the 2W accounting."""
        from repro.baselines.exhaustive import exact_edit_distance

        spec = self._sectioned_spec()
        via_a = self._section_run(spec, "a", "via-a")
        via_b = self._section_run(spec, "b", "via-b")
        assert exact_edit_distance(
            via_a, via_b, UnitCost(), extra_leaves=2
        ) == pytest.approx(4.0)


class TestRandomisedScripts:
    @pytest.mark.parametrize("seed", range(6))
    def test_real_workflow_scripts(self, seed):
        from repro.workflow.real_workflows import protein_annotation

        spec = protein_annotation()
        params = ExecutionParams(
            prob_parallel=0.7,
            max_fork=3,
            prob_fork=0.6,
            max_loop=3,
            prob_loop=0.6,
        )
        one = execute_workflow(spec, params, seed=seed)
        two = execute_workflow(spec, params, seed=seed + 1000)
        result = diff_runs(
            one, two, cost=UnitCost(), validate_intermediates=True
        )
        assert result.script.total_cost == pytest.approx(result.distance)
        assert result.script.final_tree.structure_key() == (
            two.tree.structure_key()
        )
        for graph in result.script.intermediate_graphs:
            annotate_run_tree(spec, graph)

    @pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
    def test_cost_models_scripts(self, fig2_spec, epsilon):
        params = ExecutionParams(
            prob_parallel=0.6,
            max_fork=3,
            prob_fork=0.7,
            max_loop=2,
            prob_loop=0.7,
        )
        one = execute_workflow(fig2_spec, params, seed=5)
        two = execute_workflow(fig2_spec, params, seed=6)
        result = diff_runs(
            one, two, cost=PowerCost(epsilon), validate_intermediates=True
        )
        assert result.script.total_cost == pytest.approx(result.distance)
