"""Tests for well-formed mappings (Definition 5.1, Eqs. 2-3)."""

import pytest

from repro.core.edit_distance import EditDistanceComputation
from repro.core.mapping import (
    extract_mapping,
    node_correspondence,
    validate_well_formed,
)
from repro.costs.standard import LengthCost, UnitCost
from repro.errors import EditScriptError


@pytest.fixture(scope="module")
def computation(fig2_spec, fig2_r1, fig2_r2):
    return EditDistanceComputation(
        fig2_spec, fig2_r1.tree, fig2_r2.tree, UnitCost()
    )


class TestExtraction:
    def test_mapping_cost_equals_distance(self, computation):
        mapping = extract_mapping(computation)
        assert mapping.cost == pytest.approx(computation.distance)

    def test_mapping_includes_roots(self, computation):
        mapping = extract_mapping(computation)
        lefts = {id(pair.left) for pair in mapping.pairs}
        rights = {id(pair.right) for pair in mapping.pairs}
        assert id(computation.tree1) in lefts
        assert id(computation.tree2) in rights

    def test_well_formedness(self, computation):
        mapping = extract_mapping(computation)
        validate_well_formed(
            mapping, computation.tree1, computation.tree2
        )

    def test_pairs_are_homologous(self, computation):
        mapping = extract_mapping(computation)
        for pair in mapping.pairs:
            assert pair.left.origin is pair.right.origin

    def test_identity_mapping_zero_cost(self, fig2_spec, fig2_r1):
        comp = EditDistanceComputation(
            fig2_spec, fig2_r1.tree, fig2_r1.tree, UnitCost()
        )
        mapping = extract_mapping(comp)
        assert mapping.cost == 0.0
        # Identity mapping maps every node.
        assert mapping.pair_count() == fig2_r1.tree.num_nodes

    def test_length_cost_mapping(self, fig2_spec, fig2_r1, fig2_r2):
        comp = EditDistanceComputation(
            fig2_spec, fig2_r1.tree, fig2_r2.tree, LengthCost()
        )
        mapping = extract_mapping(comp)
        assert mapping.cost == pytest.approx(10.0)


class TestValidation:
    def test_detects_missing_root(self, computation):
        mapping = extract_mapping(computation)
        mapping.pairs = mapping.pairs[1:]  # drop the root pair
        with pytest.raises(EditScriptError):
            validate_well_formed(
                mapping, computation.tree1, computation.tree2
            )

    def test_detects_duplicate(self, computation):
        mapping = extract_mapping(computation)
        mapping.pairs.append(mapping.pairs[-1])
        with pytest.raises(EditScriptError, match="one-to-one"):
            validate_well_formed(
                mapping, computation.tree1, computation.tree2
            )

    def test_detects_orphan_pair(self, computation):
        mapping = extract_mapping(computation)
        # Fabricate a pair whose parents are unmapped: pick deep leaves
        # from subtrees that were NOT matched.
        mapped_left = {id(p.left) for p in mapping.pairs}
        orphan_left = None
        for node in computation.tree1.iter_nodes("pre"):
            if node.is_leaf and id(node) not in mapped_left:
                orphan_left = node
                break
        if orphan_left is None:
            pytest.skip("no unmatched leaf in this instance")
        orphan_right = next(
            node
            for node in computation.tree2.iter_nodes("pre")
            if node.is_leaf and node.origin is orphan_left.origin
        )
        from repro.core.mapping import MappedPair

        mapping.pairs.append(
            MappedPair(orphan_left, orphan_right, False, 0.0)
        )
        with pytest.raises(EditScriptError):
            validate_well_formed(
                mapping, computation.tree1, computation.tree2
            )


class TestCorrespondence:
    def test_terminals_match(self, computation, fig2_r1, fig2_r2):
        mapping = extract_mapping(computation)
        corr = node_correspondence(
            mapping, fig2_r1.graph, fig2_r2.graph
        )
        # Roots share terminals.
        assert corr.matched["1a"] == "1a"
        assert corr.matched["7a"] == "7a"

    def test_unmatched_instances_listed(
        self, computation, fig2_r1, fig2_r2
    ):
        mapping = extract_mapping(computation)
        corr = node_correspondence(
            mapping, fig2_r1.graph, fig2_r2.graph
        )
        # R1's second copy of branch 3 has no counterpart in R2.
        assert "3b" in corr.left_only
        # R2's second workflow copy instances are new.
        assert "2b" in corr.right_only
        assert "5a" in corr.right_only

    def test_matched_labels_agree(self, computation, fig2_r1, fig2_r2):
        mapping = extract_mapping(computation)
        corr = node_correspondence(
            mapping, fig2_r1.graph, fig2_r2.graph
        )
        for left, right in corr.matched.items():
            assert fig2_r1.graph.label(left) == fig2_r2.graph.label(right)
