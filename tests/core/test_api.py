"""Tests for the public differencing API."""

import pytest

from repro.core.api import DiffResult, diff_runs, edit_distance
from repro.costs.standard import UnitCost
from repro.errors import ReproError

from tests.conftest import build_fig2_spec, build_run


class TestDiffRuns:
    def test_default_cost_is_unit(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        assert result.cost_model.name == "UnitCost"
        assert result.distance == 4.0

    def test_without_script(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, with_script=False)
        assert result.script is None
        assert result.distance == 4.0

    def test_summary_mentions_cost_and_counts(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        summary = result.summary()
        assert "UnitCost" in summary
        assert "path-insertion" in summary

    def test_summary_without_script(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, with_script=False)
        assert "4" in result.summary()

    def test_correspondence_available(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2)
        corr = result.correspondence()
        assert corr.matched

    def test_cross_spec_object_reannotates(self, fig2_r1):
        other_spec = build_fig2_spec()
        other_run = build_run(
            other_spec,
            "other",
            {"1a": "1", "2a": "2", "5a": "5", "6a": "6", "7a": "7"},
            [("1a", "2a"), ("2a", "5a"), ("5a", "6a"), ("6a", "7a")],
        )
        result = diff_runs(fig2_r1, other_run)
        assert result.run2.spec is fig2_r1.spec
        assert result.distance > 0

    def test_mismatched_specs_rejected(self, fig2_r1):
        from repro.graphs.spgraph import path_graph
        from repro.workflow.specification import WorkflowSpecification
        from repro.workflow.run import WorkflowRun
        from repro.graphs.flow_network import FlowNetwork

        spec = WorkflowSpecification(
            path_graph(["x", "y"]), name="tiny"
        )
        graph = FlowNetwork(name="tiny-run")
        graph.add_node("x1", "x")
        graph.add_node("y1", "y")
        graph.add_edge("x1", "y1")
        other = WorkflowRun(spec, graph, name="tiny-run")
        with pytest.raises(ReproError, match="different spec"):
            diff_runs(fig2_r1, other)

    def test_edit_distance_shortcut(self, fig2_r1, fig2_r3):
        assert edit_distance(fig2_r1, fig2_r3) == diff_runs(
            fig2_r1, fig2_r3, with_script=False
        ).distance
