"""Edge cases for the script engine and the diff verifier.

The satellite cases the seed suite leaves uncovered: empty edit
scripts, scripts checked against the *wrong* source run, and idempotent
no-op transformations (freeze twice, apply-to-self).
"""

import dataclasses

import pytest

from repro.core.api import diff_runs
from repro.core.apply import IdAllocator, MirrorFreezer, build_mirror
from repro.core.verify import verify_diff
from repro.errors import ReproError


class TestEmptyEditScript:
    def test_equivalent_runs_yield_empty_script(self, fig2_spec, fig2_r1):
        result = diff_runs(fig2_r1, fig2_r1)
        assert result.distance == 0.0
        assert len(result.script.operations) == 0
        assert result.script.total_cost == 0.0
        # The empty script still materialises valid initial/final
        # graphs, and they are the same run.
        assert result.script.final_tree.structure_key() == (
            fig2_r1.tree.structure_key()
        )
        assert result.script.initial_graph.structurally_equal(
            result.script.final_graph
        )

    def test_empty_script_verifies_with_intermediates(self, fig2_r1):
        result = diff_runs(
            fig2_r1, fig2_r1, record_intermediates=True
        )
        report = verify_diff(result, check_intermediates=True)
        assert report.ok, str(report)
        assert result.script.intermediate_graphs == []

    def test_compact_overview_of_empty_script(self, fig2_r1):
        compact = diff_runs(fig2_r1, fig2_r1).compact_script()
        assert compact.composites == []
        assert compact.residual == []
        assert compact.total_cost == 0.0
        assert compact.summary_lines() == []


class TestWrongSourceRun:
    def test_script_checked_against_wrong_source_is_flagged(
        self, fig2_r1, fig2_r2, fig2_r3
    ):
        # Forge a result whose script transforms R1 but whose claimed
        # target is R3: every script-level guarantee must trip.
        genuine = diff_runs(fig2_r1, fig2_r2)
        forged = dataclasses.replace(genuine, run2=fig2_r3)
        report = verify_diff(forged)
        assert not report.ok
        assert any(
            "does not produce run 2" in problem
            for problem in report.problems
        )
        with pytest.raises(ReproError, match="verification failed"):
            forged_report = verify_diff(forged)
            forged_report.raise_on_failure()

    def test_swapped_direction_is_flagged(self, fig2_r1, fig2_r2):
        # A script is directed: verifying (R2 -> R1) metadata against a
        # (R1 -> R2) computation must fail unless the runs are ≡.
        genuine = diff_runs(fig2_r1, fig2_r2)
        forged = dataclasses.replace(
            genuine, run1=genuine.run2, run2=genuine.run1
        )
        report = verify_diff(forged)
        assert not report.ok

    def test_wrong_specification_rejected_up_front(self, fig2_r1):
        from repro.workflow.generators import random_specification
        from repro.workflow.execution import execute_workflow

        other_spec = random_specification(6, 1.0, seed=5, name="other")
        foreign = execute_workflow(other_spec, seed=1, name="foreign")
        with pytest.raises(ReproError, match="different specifications"):
            diff_runs(fig2_r1, foreign)


class TestIdempotentNoOps:
    def test_freezing_twice_is_stable(self, fig2_r1):
        # Freezing an untouched mirror is a no-op transformation: the
        # result equals the original tree, and freezing the same mirror
        # again yields the identical structure (idempotence).
        root, _ = build_mirror(fig2_r1.tree)
        once = MirrorFreezer(IdAllocator()).freeze(
            root, fig2_r1.tree.source, fig2_r1.tree.sink
        )
        twice = MirrorFreezer(IdAllocator()).freeze(
            root, fig2_r1.tree.source, fig2_r1.tree.sink
        )
        assert once.structure_key() == fig2_r1.tree.structure_key()
        assert once.structure_key() == twice.structure_key()

    def test_self_diff_script_leaves_graph_unchanged(self, fig2_r2):
        result = diff_runs(
            fig2_r2, fig2_r2, record_intermediates=True
        )
        assert result.script.intermediate_graphs == []
        assert result.script.final_graph.structurally_equal(
            result.script.initial_graph
        )

    def test_zero_distance_iff_equivalent_check(self, fig2_r1, fig2_r2):
        # Tamper a nonzero-distance result to claim zero: the
        # zero-iff-equivalent verifier axiom must flag it.
        genuine = diff_runs(fig2_r1, fig2_r2, with_script=False)
        forged = dataclasses.replace(genuine, distance=0.0)
        report = verify_diff(forged)
        assert any(
            "does not coincide" in problem or "!=" in problem
            for problem in report.problems
        )

    def test_script_skipped_note_for_distance_only(self, fig2_r1, fig2_r2):
        result = diff_runs(fig2_r1, fig2_r2, with_script=False)
        report = verify_diff(result)
        assert report.ok
        assert "script-skipped" in report.checks_run
