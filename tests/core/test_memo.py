"""Shared DP tables (:mod:`repro.core.memo`) and the alignment hoist.

Sharing tables across a batch's pairs must be invisible in the
results — the tables are pure functions of ``(tree, cost)``, so a
shared computation returns the *bit-identical* distance of an unshared
one, just without rebuilding anything.  The alignment hoist
(``assume_aligned``) likewise skips per-pair work that the corpus
layer has already done once, without touching the DP's inputs.
"""

import pytest

from repro.core import api as core_api
from repro.core import deletion as core_deletion
from repro.core.api import diff_runs, distance_only
from repro.core.memo import SharedTables
from repro.errors import EditScriptError
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation
from repro.costs.standard import LengthCost, PowerCost, UnitCost

VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def _corpus(n):
    spec = protein_annotation()
    return spec, [
        execute_workflow(spec, VARIED, seed=seed, name=f"r{seed}")
        for seed in range(1, n + 1)
    ]


def _pairs(runs):
    return [
        (a, b) for i, a in enumerate(runs) for b in runs[i + 1:]
    ]


class TestSharedTables:
    @pytest.mark.parametrize(
        "cost", [UnitCost(), LengthCost(), PowerCost(0.5)]
    )
    def test_shared_distances_are_bit_identical(self, cost):
        spec, runs = _corpus(4)
        shared = SharedTables(cost)
        for run_a, run_b in _pairs(runs):
            alone = distance_only(run_a, run_b, cost=cost)
            together = distance_only(
                run_a, run_b, cost=cost, shared=shared
            )
            assert together == alone  # ==, not approx: same bits

    def test_shared_scripts_are_identical(self):
        spec, runs = _corpus(3)
        cost = UnitCost()
        shared = SharedTables(cost)
        for run_a, run_b in _pairs(runs):
            alone = diff_runs(run_a, run_b, cost=cost)
            together = diff_runs(
                run_a, run_b, cost=cost, shared=shared
            )
            assert together.distance == alone.distance
            assert [
                str(op) for op in together.script.operations
            ] == [str(op) for op in alone.script.operations]

    def test_tables_built_once_per_run(self, monkeypatch):
        spec, runs = _corpus(4)
        built = {"count": 0}
        original = core_deletion.DeletionTables

        class Counting(original):
            def __init__(self, *args, **kwargs):
                built["count"] += 1
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(
            core_deletion, "DeletionTables", Counting
        )
        # SharedTables resolves the class through its module import;
        # patch there too so either resolution path is counted.
        import repro.core.memo as memo_module

        monkeypatch.setattr(memo_module, "DeletionTables", Counting)
        cost = UnitCost()  # sharing binds to this exact object
        shared = SharedTables(cost)
        for run_a, run_b in _pairs(runs):
            distance_only(run_a, run_b, cost=cost, shared=shared)
        # 6 pairs x 2 trees = 12 unshared builds; shared builds 4.
        assert built["count"] == len(runs)
        assert len(shared) == len(runs)

    def test_mismatched_cost_model_refused(self):
        spec, runs = _corpus(2)
        shared = SharedTables(UnitCost())
        with pytest.raises(EditScriptError, match="cost model"):
            distance_only(
                runs[0], runs[1], cost=LengthCost(), shared=shared
            )

    def test_shared_supplies_the_default_cost(self):
        spec, runs = _corpus(2)
        cost = LengthCost()
        shared = SharedTables(cost)
        assert distance_only(
            runs[0], runs[1], shared=shared
        ) == distance_only(runs[0], runs[1], cost=cost)


class TestAlignmentHoist:
    def test_assume_aligned_skips_the_per_pair_check(self, monkeypatch):
        spec, runs = _corpus(3)
        calls = {"count": 0}
        original = core_api._align_specs

        def counting(run1, run2):
            calls["count"] += 1
            return original(run1, run2)

        monkeypatch.setattr(core_api, "_align_specs", counting)
        baseline = [
            distance_only(a, b, cost=UnitCost())
            for a, b in _pairs(runs)
        ]
        assert calls["count"] == len(_pairs(runs))
        calls["count"] = 0
        hoisted = [
            distance_only(
                a, b, cost=UnitCost(), assume_aligned=True
            )
            for a, b in _pairs(runs)
        ]
        assert calls["count"] == 0
        assert hoisted == baseline  # bit-identical results

    def test_unaligned_default_still_checks(self):
        spec, runs = _corpus(2)
        other_spec = protein_annotation()
        from repro.workflow.run import WorkflowRun

        foreign = WorkflowRun(
            other_spec, runs[1].graph, name=runs[1].name
        )
        # Default path re-annotates; same distance either way.
        assert distance_only(
            runs[0], foreign, cost=UnitCost()
        ) == distance_only(runs[0], runs[1], cost=UnitCost())
