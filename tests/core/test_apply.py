"""Unit tests for the mutable mirror and freezing machinery."""

import pytest

from repro.core.apply import (
    IdAllocator,
    MirrorFreezer,
    MNode,
    build_mirror,
    mirror_from_fragment,
)
from repro.errors import EditScriptError
from repro.sptree.nodes import NodeType
from repro.sptree.validate import validate_run_tree


class TestIdAllocator:
    def test_fresh_sequence(self):
        allocator = IdAllocator()
        assert allocator.fresh("3") == "3a"
        assert allocator.fresh("3") == "3b"
        assert allocator.fresh("7") == "7a"

    def test_reserved_ids_skipped(self):
        allocator = IdAllocator(used={"3a", "3b"})
        assert allocator.fresh("3") == "3c"

    def test_reserve_after_construction(self):
        allocator = IdAllocator()
        allocator.reserve("xa")
        assert allocator.fresh("x") == "xb"

    def test_suffixes_roll_over(self):
        allocator = IdAllocator()
        ids = [allocator.fresh("m") for _ in range(28)]
        assert ids[25] == "mz"
        assert ids[26] == "maa"
        assert len(set(ids)) == 28


class TestMNode:
    def test_attach_detach(self):
        parent = MNode(NodeType.P, None, "a", "b")
        child = MNode(NodeType.Q, None, "a", "b")
        parent.attach(child)
        assert parent.degree == 1
        assert child.parent is parent
        child.detach()
        assert parent.degree == 0
        assert child.parent is None

    def test_attach_at_index(self):
        parent = MNode(NodeType.L, None, "a", "b")
        first = MNode(NodeType.Q, None, "a", "b")
        second = MNode(NodeType.Q, None, "a", "b")
        middle = MNode(NodeType.Q, None, "a", "b")
        parent.attach(first)
        parent.attach(second)
        parent.attach(middle, 1)
        assert parent.children == [first, middle, second]

    def test_double_attach_rejected(self):
        parent = MNode(NodeType.P, None, "a", "b")
        child = MNode(NodeType.Q, None, "a", "b")
        parent.attach(child)
        with pytest.raises(EditScriptError, match="already attached"):
            parent.attach(child)

    def test_detach_unattached_rejected(self):
        with pytest.raises(EditScriptError):
            MNode(NodeType.Q, None, "a", "b").detach()

    def test_branch_free_and_leaf_count(self, fig2_r1):
        root, registry = build_mirror(fig2_r1.tree)
        assert not root.is_branch_free()  # true F/P nodes inside
        assert root.leaf_count() == 8

    def test_path_node_labels(self):
        chain = MNode(NodeType.S, None, "a", "c")
        chain.attach(MNode(NodeType.Q, None, "a", "b"))
        chain.attach(MNode(NodeType.Q, None, "b", "c"))
        assert chain.path_node_labels() == ["a", "b", "c"]


class TestBuildMirror:
    def test_registry_covers_all_nodes(self, fig2_r1):
        root, registry = build_mirror(fig2_r1.tree)
        assert len(registry) == fig2_r1.tree.num_nodes
        for node in fig2_r1.tree.iter_nodes("pre"):
            assert id(node) in registry

    def test_mirror_preserves_structure(self, fig2_r1):
        root, registry = build_mirror(fig2_r1.tree)

        def compare(tree_node, mirror_node):
            assert mirror_node.kind is tree_node.kind
            assert mirror_node.degree == tree_node.degree
            for a, b in zip(tree_node.children, mirror_node.children):
                compare(a, b)

        compare(fig2_r1.tree, root)

    def test_fragment_mirror(self, fig2_spec):
        from repro.core.spec_costs import SpecCostTables
        from repro.costs.standard import UnitCost

        tables = SpecCostTables(fig2_spec, UnitCost())
        witness = tables.witness(
            fig2_spec.tree, 4, "s", "t", IdAllocator().fresh
        )
        registry = {}
        fragment = mirror_from_fragment(witness, registry)
        assert fragment.leaf_count() == 4
        assert len(registry) == witness.num_nodes


class TestMirrorFreezer:
    def test_identity_freeze(self, fig2_r1):
        root, _ = build_mirror(fig2_r1.tree)
        frozen = MirrorFreezer(IdAllocator()).freeze(
            root, fig2_r1.tree.source, fig2_r1.tree.sink
        )
        assert frozen.structure_key() == fig2_r1.tree.structure_key()
        # Preferred ids survive an untouched freeze.
        assert frozen.source == "1a"
        assert frozen.sink == "7a"
        assert frozen.to_graph().structurally_equal(fig2_r1.graph)

    def test_freeze_after_detach(self, fig2_spec, fig2_r1):
        # Remove one copy of branch 3; freeze must stay a valid run.
        root, registry = build_mirror(fig2_r1.tree)
        parallel = fig2_r1.tree.find(
            lambda n: n.kind is NodeType.P
        )
        fork3 = next(
            c for c in parallel.children if c.degree == 2
        )
        victim = fork3.children[0]
        registry[id(victim)].detach()
        frozen = MirrorFreezer(IdAllocator()).freeze(
            root, fig2_r1.tree.source, fig2_r1.tree.sink
        )
        validate_run_tree(frozen, require_origin=True)
        assert frozen.leaf_count == 6

    def test_freeze_rejects_childless_internal(self):
        parent = MNode(NodeType.P, None, "a", "b")
        with pytest.raises(EditScriptError, match="no children"):
            MirrorFreezer(IdAllocator()).freeze(parent, "a1", "b1")

    def test_loop_boundaries_get_distinct_instances(self, fig2_r3):
        root, _ = build_mirror(fig2_r3.tree)
        frozen = MirrorFreezer(IdAllocator()).freeze(
            root, fig2_r3.tree.source, fig2_r3.tree.sink
        )
        loop = frozen.find(lambda n: n.kind is NodeType.L)
        first, second = loop.children
        assert first.sink != second.source  # joined by an implicit edge
        graph = frozen.to_graph()
        assert graph.has_edge(first.sink, second.source)

    def test_preferred_id_collision_resolved(self):
        # Two Q leaves claiming the same cut id: the second gets fresh.
        left = MNode(
            NodeType.Q, None, "a", "b", pref_source="a1", pref_sink="b1"
        )
        right = MNode(
            NodeType.Q, None, "b", "c", pref_source="b1", pref_sink="c1"
        )
        chain = MNode(NodeType.S, None, "a", "c")
        chain.attach(left)
        chain.attach(right)
        frozen = MirrorFreezer(IdAllocator()).freeze(chain, "a1", "c1")
        cut = frozen.children[0].sink
        assert cut == "b1"
        assert frozen.children[1].source == "b1"
