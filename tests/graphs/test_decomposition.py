"""Tests for SP recognition and round-trips (§IV-A, [Valdes et al.])."""

import pytest

from repro.errors import GraphStructureError, NotSeriesParallelError
from repro.graphs.decomposition import (
    canonical_sp_tree,
    is_series_parallel,
    roundtrip_graph,
    sp_residual,
)
from repro.graphs.flow_network import FlowNetwork
from repro.graphs.spgraph import diamond_graph, path_graph
from repro.workflow.generators import random_sp_graph


class TestRecognition:
    def test_single_edge_is_sp(self):
        graph = path_graph(["s", "t"])
        assert is_series_parallel(graph)

    def test_path_is_sp(self):
        assert is_series_parallel(path_graph(list("abcdef")))

    def test_diamond_is_not_sp(self):
        assert not is_series_parallel(diamond_graph())

    def test_residual_empty_for_sp(self):
        assert sp_residual(path_graph(["a", "b", "c"])) == []

    def test_residual_nonempty_for_diamond(self):
        residual = sp_residual(diamond_graph())
        assert len(residual) == 5  # nothing reducible in the minor itself

    def test_exception_carries_residual(self):
        with pytest.raises(NotSeriesParallelError) as excinfo:
            canonical_sp_tree(diamond_graph())
        assert len(excinfo.value.residual_edges) == 5

    def test_cycle_rejected(self):
        graph = FlowNetwork()
        for node in "abc":
            graph.add_node(node)
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("b", "b", key=0) if False else None
        # A genuine directed cycle within a flow network:
        graph.add_node("d")
        graph.add_edge("c", "d")
        graph.add_edge("c", "b")
        with pytest.raises(GraphStructureError):
            canonical_sp_tree(graph)

    def test_non_flow_network_rejected(self):
        graph = FlowNetwork()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_node("c")
        graph.add_edge("a", "b")  # c is isolated
        with pytest.raises(GraphStructureError):
            canonical_sp_tree(graph)

    def test_larger_embedded_minor_detected(self):
        # Subdivide every edge of the diamond: still not SP.
        diamond = diamond_graph()
        graph = FlowNetwork()
        for node in diamond.nodes():
            graph.add_node(node)
        for index, (u, v, _) in enumerate(diamond.edges()):
            mid = f"mid{index}"
            graph.add_node(mid)
            graph.add_edge(u, mid)
            graph.add_edge(mid, v)
        assert not is_series_parallel(graph)


class TestRoundTrip:
    def test_roundtrip_path(self):
        graph = path_graph(list("abcd"))
        assert roundtrip_graph(graph).structurally_equal(graph)

    def test_roundtrip_fig2(self, fig2_spec):
        graph = fig2_spec.graph
        assert roundtrip_graph(graph).structurally_equal(graph)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("ratio", [0.25, 1.0, 4.0])
    def test_roundtrip_random(self, seed, ratio):
        graph = random_sp_graph(40, ratio, seed=seed)
        assert roundtrip_graph(graph).structurally_equal(graph)

    def test_roundtrip_multigraph(self):
        graph = random_sp_graph(30, 0.0, seed=3)
        assert graph.num_nodes == 2  # pure parallel: two-node multigraph
        assert roundtrip_graph(graph).structurally_equal(graph)
