"""Unit tests for SP-graph composition (Definition 3.2)."""

import pytest

from repro.errors import GraphStructureError
from repro.graphs.spgraph import (
    basic_sp,
    diamond_graph,
    parallel_bundle,
    parallel_compose,
    path_graph,
    series_chain,
    series_compose,
)
from repro.sptree.canonical import is_series_parallel


class TestBasic:
    def test_basic_sp_graph(self):
        graph = basic_sp("s", "t")
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.source() == "s"
        assert graph.sink() == "t"

    def test_basic_requires_distinct_terminals(self):
        with pytest.raises(GraphStructureError):
            basic_sp("s", "s")

    def test_basic_with_labels(self):
        graph = basic_sp("n1", "n2", "start", "end")
        assert graph.label("n1") == "start"
        assert graph.label("n2") == "end"


class TestSeries:
    def test_series_compose_identifies_terminals(self):
        left = basic_sp("a", "b")
        right = basic_sp("b", "c")
        combined = series_compose(left, right)
        assert combined.source() == "a"
        assert combined.sink() == "c"
        assert combined.num_edges == 2

    def test_series_requires_shared_node(self):
        with pytest.raises(GraphStructureError, match="t\\(G1\\) == s\\(G2\\)"):
            series_compose(basic_sp("a", "b"), basic_sp("x", "y"))

    def test_series_rejects_overlapping_interiors(self):
        left = path_graph(["a", "z", "b"])
        right = path_graph(["b", "z", "c"])
        with pytest.raises(GraphStructureError, match="overlap"):
            series_compose(left, right)

    def test_series_chain(self):
        chain = series_chain(
            [basic_sp("a", "b"), basic_sp("b", "c"), basic_sp("c", "d")]
        )
        assert chain.num_edges == 3
        assert chain.sink() == "d"

    def test_series_chain_empty_raises(self):
        with pytest.raises(GraphStructureError):
            series_chain([])


class TestParallel:
    def test_parallel_compose_shares_terminals(self):
        left = path_graph(["s", "a", "t"])
        right = path_graph(["s", "b", "t"])
        combined = parallel_compose(left, right)
        assert combined.num_nodes == 4
        assert combined.num_edges == 4

    def test_parallel_multi_edge(self):
        combined = parallel_compose(basic_sp("s", "t"), basic_sp("s", "t"))
        assert combined.num_edges == 2
        assert combined.edge_multiset() == {("s", "t"): 2}

    def test_parallel_requires_matching_terminals(self):
        with pytest.raises(GraphStructureError, match="matching terminals"):
            parallel_compose(basic_sp("s", "t"), basic_sp("s", "u"))

    def test_parallel_bundle(self):
        bundle = parallel_bundle(
            [
                path_graph(["s", "a", "t"]),
                path_graph(["s", "b", "t"]),
                path_graph(["s", "c", "t"]),
            ]
        )
        assert bundle.num_edges == 6

    def test_parallel_bundle_empty_raises(self):
        with pytest.raises(GraphStructureError):
            parallel_bundle([])


class TestHelpers:
    def test_path_graph(self):
        path = path_graph(["a", "b", "c", "d"])
        assert path.num_edges == 3
        assert is_series_parallel(path)

    def test_path_graph_too_short(self):
        with pytest.raises(GraphStructureError):
            path_graph(["only"])

    def test_compositions_stay_series_parallel(self):
        graph = parallel_compose(
            series_compose(basic_sp("s", "m"), basic_sp("m", "t")),
            basic_sp("s", "t"),
        )
        assert is_series_parallel(graph)

    def test_diamond_is_not_series_parallel(self):
        assert not is_series_parallel(diamond_graph())
