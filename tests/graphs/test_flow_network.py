"""Unit tests for the flow-network substrate (Definition 3.1)."""

import pytest

from repro.errors import GraphStructureError
from repro.graphs.flow_network import FlowNetwork


def simple_network() -> FlowNetwork:
    graph = FlowNetwork(name="toy")
    for node in ("s", "a", "b", "t"):
        graph.add_node(node)
    graph.add_edge("s", "a")
    graph.add_edge("s", "b")
    graph.add_edge("a", "t")
    graph.add_edge("b", "t")
    return graph


class TestConstruction:
    def test_add_node_defaults_label_to_str(self):
        graph = FlowNetwork()
        graph.add_node(1)
        assert graph.label(1) == "1"

    def test_add_node_with_explicit_label(self):
        graph = FlowNetwork()
        graph.add_node("3a", label="3")
        assert graph.label("3a") == "3"

    def test_readding_node_same_label_is_noop(self):
        graph = FlowNetwork()
        graph.add_node("x", "lbl")
        graph.add_node("x", "lbl")
        assert graph.num_nodes == 1

    def test_relabel_raises(self):
        graph = FlowNetwork()
        graph.add_node("x", "one")
        with pytest.raises(GraphStructureError, match="relabel"):
            graph.add_node("x", "two")

    def test_edge_requires_existing_endpoints(self):
        graph = FlowNetwork()
        graph.add_node("a")
        with pytest.raises(GraphStructureError, match="has not been added"):
            graph.add_edge("a", "missing")

    def test_parallel_edges_get_distinct_keys(self):
        graph = FlowNetwork()
        graph.add_node("u")
        graph.add_node("v")
        first = graph.add_edge("u", "v")
        second = graph.add_edge("u", "v")
        assert first != second
        assert graph.num_edges == 2

    def test_duplicate_explicit_key_raises(self):
        graph = FlowNetwork()
        graph.add_node("u")
        graph.add_node("v")
        graph.add_edge("u", "v", key=5)
        with pytest.raises(GraphStructureError, match="duplicate"):
            graph.add_edge("u", "v", key=5)

    def test_remove_edge(self):
        graph = simple_network()
        graph.remove_edge(("s", "a", 0))
        assert graph.num_edges == 3
        with pytest.raises(GraphStructureError):
            graph.remove_edge(("s", "a", 0))

    def test_remove_node_requires_isolation(self):
        graph = simple_network()
        with pytest.raises(GraphStructureError, match="incident"):
            graph.remove_node("a")
        graph.remove_edge(("s", "a", 0))
        graph.remove_edge(("a", "t", 0))
        graph.remove_node("a")
        assert "a" not in graph

    def test_remove_missing_node_raises(self):
        graph = FlowNetwork()
        with pytest.raises(GraphStructureError):
            graph.remove_node("ghost")


class TestInspection:
    def test_degrees_and_neighbours(self):
        graph = simple_network()
        assert graph.out_degree("s") == 2
        assert graph.in_degree("t") == 2
        assert graph.successors("s") == ["a", "b"]
        assert graph.predecessors("t") == ["a", "b"]

    def test_has_edge(self):
        graph = simple_network()
        assert graph.has_edge("s", "a")
        assert not graph.has_edge("a", "s")

    def test_label_of_missing_node_raises(self):
        graph = FlowNetwork()
        with pytest.raises(GraphStructureError):
            graph.label("nope")

    def test_len_and_contains(self):
        graph = simple_network()
        assert len(graph) == 4
        assert "s" in graph
        assert "zz" not in graph

    def test_edge_multiset(self):
        graph = FlowNetwork()
        graph.add_node("u")
        graph.add_node("v")
        graph.add_edge("u", "v")
        graph.add_edge("u", "v")
        assert graph.edge_multiset() == {("u", "v"): 2}


class TestFlowStructure:
    def test_source_and_sink(self):
        graph = simple_network()
        assert graph.source() == "s"
        assert graph.sink() == "t"

    def test_two_sources_raise(self):
        graph = simple_network()
        graph.add_node("s2")
        graph.add_edge("s2", "t")
        with pytest.raises(GraphStructureError, match="source"):
            graph.source()

    def test_validate_rejects_disconnected_node(self):
        graph = simple_network()
        graph.add_node("island1")
        graph.add_node("island2")
        graph.add_edge("island1", "island2")
        with pytest.raises(GraphStructureError):
            graph.validate_flow_network()

    def test_validate_rejects_empty(self):
        with pytest.raises(GraphStructureError, match="empty"):
            FlowNetwork().validate_flow_network()

    def test_validate_accepts_flow_network(self):
        simple_network().validate_flow_network()
        assert simple_network().is_flow_network()

    def test_node_off_st_path_rejected(self):
        graph = simple_network()
        # c is reachable from s but cannot reach t.
        graph.add_node("c")
        graph.add_edge("a", "c")
        assert not graph.is_flow_network()

    def test_acyclicity(self):
        graph = simple_network()
        assert graph.is_acyclic()
        graph.add_edge("t", "s")
        assert not graph.is_acyclic()

    def test_topological_order(self):
        graph = simple_network()
        order = graph.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for u, v, _ in graph.edges():
            assert position[u] < position[v]

    def test_topological_order_cycle_raises(self):
        graph = simple_network()
        graph.add_edge("t", "s")
        with pytest.raises(GraphStructureError, match="cycle"):
            graph.topological_order()


class TestCopiesAndConversions:
    def test_copy_is_deep(self):
        graph = simple_network()
        clone = graph.copy()
        clone.add_node("extra")
        assert "extra" not in graph
        assert graph.structurally_equal(simple_network())

    def test_structurally_equal_ignores_keys(self):
        left = FlowNetwork()
        left.add_node("u")
        left.add_node("v")
        left.add_edge("u", "v", key=0)
        left.add_edge("u", "v", key=1)
        right = FlowNetwork()
        right.add_node("u")
        right.add_node("v")
        right.add_edge("u", "v", key=7)
        right.add_edge("u", "v", key=9)
        assert left.structurally_equal(right)

    def test_structurally_unequal_on_labels(self):
        left = FlowNetwork()
        left.add_node("u", "x")
        right = FlowNetwork()
        right.add_node("u", "y")
        assert not left.structurally_equal(right)

    def test_networkx_roundtrip(self):
        graph = simple_network()
        back = FlowNetwork.from_networkx(graph.to_networkx())
        assert graph.structurally_equal(back)

    def test_from_edge_list(self):
        graph = FlowNetwork.from_edge_list(
            [("s", "a"), ("a", "t")], labels={"a": "mid"}
        )
        assert graph.label("a") == "mid"
        assert graph.source() == "s"

    def test_repr_mentions_counts(self):
        assert "nodes=4" in repr(simple_network())
