"""Tests for general-model run validity (Section III-B)."""

import pytest

from repro.errors import InvalidRunError, SpecificationError
from repro.graphs.flow_network import FlowNetwork
from repro.graphs.homomorphism import (
    check_valid_run,
    induced_homomorphism,
    is_valid_run,
    label_index,
)
from repro.graphs.spgraph import path_graph


def spec_graph() -> FlowNetwork:
    graph = FlowNetwork(name="spec")
    for node in "abc":
        graph.add_node(node)
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    return graph


def run_graph(edges, labels) -> FlowNetwork:
    graph = FlowNetwork(name="run")
    for node, label in labels.items():
        graph.add_node(node, label)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


class TestLabelIndex:
    def test_builds_index(self):
        index = label_index(spec_graph())
        assert index == {"a": "a", "b": "b", "c": "c"}

    def test_duplicate_labels_rejected(self):
        graph = FlowNetwork()
        graph.add_node("x", "dup")
        graph.add_node("y", "dup")
        with pytest.raises(SpecificationError, match="unique"):
            label_index(graph)


class TestValidity:
    def test_identity_run_is_valid(self):
        spec = spec_graph()
        run = run_graph(
            [("a1", "b1"), ("b1", "c1")],
            {"a1": "a", "b1": "b", "c1": "c"},
        )
        mapping = check_valid_run(run, spec)
        assert mapping == {"a1": "a", "b1": "b", "c1": "c"}

    def test_unknown_label_rejected(self):
        run = run_graph(
            [("a1", "z1"), ("z1", "c1")],
            {"a1": "a", "z1": "zzz", "c1": "c"},
        )
        with pytest.raises(InvalidRunError, match="zzz"):
            induced_homomorphism(run, spec_graph())

    def test_wrong_source_rejected(self):
        # Run starting at b instead of a.
        run = run_graph([("b1", "c1")], {"b1": "b", "c1": "c"})
        with pytest.raises(InvalidRunError, match="source"):
            check_valid_run(run, spec_graph())

    def test_wrong_sink_rejected(self):
        run = run_graph([("a1", "b1")], {"a1": "a", "b1": "b"})
        with pytest.raises(InvalidRunError, match="sink"):
            check_valid_run(run, spec_graph())

    def test_non_spec_edge_rejected(self):
        run = run_graph(
            [("a1", "c1"), ("c1", "b1"), ("b1", "c2"), ("c2", "c3")],
            {"a1": "a", "c1": "c", "b1": "b", "c2": "c", "c3": "c"},
        )
        with pytest.raises(InvalidRunError):
            check_valid_run(run, spec_graph())

    def test_back_edge_requires_allowance(self):
        # Loop unrolling: a -> b -> c -> b' -> ... wait, use (c, a)?  Use
        # the (b, a)-style back-edge on a two-step loop over (a..c).
        run = run_graph(
            [("a1", "b1"), ("b1", "c1"), ("c1", "a2"), ("a2", "b2"), ("b2", "c2")],
            {
                "a1": "a",
                "b1": "b",
                "c1": "c",
                "a2": "a",
                "b2": "b",
                "c2": "c",
            },
        )
        spec = spec_graph()
        assert not is_valid_run(run, spec)
        assert is_valid_run(run, spec, allowed_back_edges={("c", "a")})

    def test_cyclic_run_rejected(self):
        run = run_graph(
            [("a1", "b1"), ("b1", "c1"), ("b2", "c1")],
            {"a1": "a", "b1": "b", "c1": "c", "b2": "b"},
        )
        # b2 has no incoming edge -> two sources -> not a flow network.
        with pytest.raises(InvalidRunError, match="flow network"):
            check_valid_run(run, spec_graph())

    def test_fig2_runs_are_valid(self, fig2_spec, fig2_r1, fig2_r3):
        back = fig2_spec.allowed_back_edges()
        assert is_valid_run(fig2_r1.graph, fig2_spec.graph, back)
        assert is_valid_run(fig2_r3.graph, fig2_spec.graph, back)

    def test_fig2_r3_needs_back_edge_allowance(self, fig2_spec, fig2_r3):
        assert not is_valid_run(fig2_r3.graph, fig2_spec.graph, set())
