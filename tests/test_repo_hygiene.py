"""Repository hygiene guards.

Benchmark runs build scratch stores; only source files and
``benchmarks/results/`` artifacts may ever be committed under
``benchmarks/``.  This test (tier-1) fails the moment a transient
store — like the historical
``benchmarks/<...WorkflowStore object at 0x...>/`` directory — gets
tracked, and ``.gitignore`` keeps untracked scratch out of ``git add``
reach.
"""

import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def tracked(prefix: str):
    try:
        output = subprocess.run(
            ["git", "ls-files", prefix],
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        pytest.skip("not a usable git checkout")
    return [line for line in output.splitlines() if line]


class TestBenchmarksTree:
    def test_only_sources_and_results_are_tracked(self):
        offenders = []
        for path in tracked("benchmarks"):
            parts = Path(path).parts
            if len(parts) == 2 and parts[1].endswith(".py"):
                continue  # benchmarks/*.py
            if len(parts) >= 2 and parts[1] == "results":
                continue  # benchmarks/results/**
            offenders.append(path)
        assert offenders == [], (
            "unexpected files tracked under benchmarks/ — scratch "
            f"stores must never be committed: {offenders}"
        )

    def test_no_repr_named_paths_anywhere(self):
        offenders = [
            path for path in tracked("") if "object at 0x" in path
        ]
        assert offenders == []

    def test_gitignore_covers_benchmark_scratch(self):
        text = (REPO / ".gitignore").read_text(encoding="utf8")
        assert "benchmarks/*/" in text
        assert "!benchmarks/results/" in text
