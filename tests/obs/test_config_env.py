"""``ReproConfig.from_env``: precedence, round trips, failure modes."""

import pytest

from repro.config import ReproConfig
from repro.errors import ReproError


def _fields(config: ReproConfig) -> tuple:
    """Everything but the cost model (cost objects lack ``__eq__``)."""
    return (
        config.backend,
        config.jobs,
        config.cache_size,
        config.persistent,
        config.record_intermediates,
        config.log_level,
        config.log_format,
        config.metrics,
    )


class TestDefaults:
    def test_empty_environment_is_the_dataclass_defaults(self):
        config = ReproConfig.from_env(env={})
        assert _fields(config) == _fields(ReproConfig())
        assert config.cost.name == ReproConfig().cost.name

    def test_observability_defaults(self):
        config = ReproConfig()
        assert config.log_level == "info"
        assert config.log_format == "text"
        assert config.metrics is True


class TestEnvironment:
    def test_full_round_trip(self):
        config = ReproConfig.from_env(
            env={
                "REPRO_BACKEND": "serial",
                "REPRO_JOBS": "4",
                "REPRO_CACHE_SIZE": "128",
                "REPRO_LOG_LEVEL": "DEBUG",
                "REPRO_LOG_FORMAT": "json",
                "REPRO_METRICS": "off",
            }
        )
        assert config.backend == "serial"
        assert config.jobs == 4
        assert config.cache_size == 128
        assert config.log_level == "debug"
        assert config.log_format == "json"
        assert config.metrics is False

    def test_cost_spec_resolves(self):
        config = ReproConfig.from_env(env={"REPRO_COST": "unit"})
        assert config.cost.name == "UnitCost"

    def test_kernel_round_trip(self):
        config = ReproConfig.from_env(env={"REPRO_KERNEL": "PYTHON"})
        assert config.kernel == "python"

    def test_blank_values_are_unset(self):
        config = ReproConfig.from_env(
            env={"REPRO_BACKEND": "", "REPRO_JOBS": ""}
        )
        assert _fields(config) == _fields(ReproConfig())

    @pytest.mark.parametrize("word,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
    ])
    def test_metrics_boolean_spellings(self, word, expected):
        config = ReproConfig.from_env(env={"REPRO_METRICS": word})
        assert config.metrics is expected


class TestOverrides:
    def test_flags_beat_environment(self):
        config = ReproConfig.from_env(
            env={"REPRO_BACKEND": "process", "REPRO_LOG_LEVEL": "debug"},
            backend="serial",
            log_level="error",
        )
        assert config.backend == "serial"
        assert config.log_level == "error"

    def test_none_overrides_defer_to_environment(self):
        config = ReproConfig.from_env(
            env={"REPRO_BACKEND": "serial"}, backend=None, jobs=None
        )
        assert config.backend == "serial"
        assert config.jobs is None


class TestMalformedValues:
    """A typo'd deployment fails at startup, naming the variable."""

    @pytest.mark.parametrize("var,value", [
        ("REPRO_JOBS", "many"),
        ("REPRO_CACHE_SIZE", "big"),
        ("REPRO_METRICS", "maybe"),
    ])
    def test_unparsable_values_name_the_variable(self, var, value):
        with pytest.raises(ReproError, match=var):
            ReproConfig.from_env(env={var: value})

    def test_invalid_log_format_rejected(self):
        with pytest.raises(ReproError, match="log format"):
            ReproConfig.from_env(env={"REPRO_LOG_FORMAT": "xml"})

    def test_invalid_log_level_rejected(self):
        with pytest.raises(ReproError, match="log level"):
            ReproConfig.from_env(env={"REPRO_LOG_LEVEL": "chatty"})

    def test_invalid_backend_rejected(self):
        with pytest.raises(ReproError, match="backend"):
            ReproConfig.from_env(env={"REPRO_BACKEND": "gpu"})

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ReproError, match="kernel"):
            ReproConfig.from_env(env={"REPRO_KERNEL": "fortran"})

    def test_kernel_default_is_auto(self):
        assert ReproConfig().kernel == "auto"

    def test_kernel_flag_beats_environment(self):
        config = ReproConfig.from_env(
            env={"REPRO_KERNEL": "auto"}, kernel="python"
        )
        assert config.kernel == "python"
