"""The metrics registry: exactness, exposition, disabled no-ops.

The counter-exactness test is the load-bearing one: N threads hammer
one counter M times each and the scrape must read exactly N*M — the
instruments take a per-metric lock on every write, so nothing is ever
lost to a read-modify-write race.
"""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.obs.promcheck import ExpositionError, parse_exposition


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("events_total", "Events.")
        assert counter.total() == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_series_are_independent(self):
        counter = MetricsRegistry().counter("hits_total", "Hits.")
        counter.inc(route="/stats")
        counter.inc(3, route="/metrics")
        assert counter.value(route="/stats") == 1
        assert counter.value(route="/metrics") == 3
        assert counter.total() == 4

    def test_bound_handle_feeds_the_same_series(self):
        counter = MetricsRegistry().counter("bound_total", "B.")
        bound = counter.bind(cache="distance")
        bound.inc()
        bound.inc(2)
        counter.inc(4, cache="distance")
        assert counter.value(cache="distance") == 7

    def test_callback_backed_series_collects_at_scrape(self):
        registry = MetricsRegistry()
        counter = registry.counter("collected_total", "C.")
        backing = {"n": 5}
        counter.set_function(lambda: backing["n"], cache="d")
        assert counter.value(cache="d") == 5
        backing["n"] = 9
        assert (
            'collected_total{cache="d"} 9'
            in registry.render_prometheus()
        )
        with pytest.raises(ValueError):
            counter.inc(cache="d")  # collectors cannot also be events

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("ticks_total", "Ticks.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_threaded_increments_are_exact(self):
        """8 writer threads x 2500 increments scrape to exactly 20000."""
        counter = MetricsRegistry().counter("stress_total", "Stress.")
        threads_n, per_thread = 8, 2500
        barrier = threading.Barrier(threads_n)

        def hammer():
            barrier.wait(timeout=30)
            for _ in range(per_thread):
                counter.inc(worker="w")

        threads = [
            threading.Thread(target=hammer) for _ in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert counter.value(worker="w") == threads_n * per_thread


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth", "Depth.")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value() == 7

    def test_callback_resolved_at_scrape(self):
        registry = MetricsRegistry()
        backing = {"n": 1}
        registry.gauge("live", "Live.").set_function(
            lambda: backing["n"]
        )
        assert "live 1" in registry.render_prometheus()
        backing["n"] = 42
        assert "live 42" in registry.render_prometheus()

    def test_broken_callback_skipped(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("flaky", "Flaky.")
        gauge.set_function(lambda: 1 / 0)
        gauge.set(3, kind="static")
        text = registry.render_prometheus()
        assert 'flaky{kind="static"} 3' in text
        parse_exposition(text)  # still a valid exposition


class TestHistogram:
    def test_cumulative_buckets_and_sum(self):
        histogram = MetricsRegistry().histogram(
            "lat_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)
        lines = histogram.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 3' in lines

    def test_timer_context_observes(self):
        histogram = MetricsRegistry().histogram(
            "op_seconds", "Ops.", buckets=DEFAULT_LATENCY_BUCKETS
        )
        with histogram.time(op="noop"):
            pass
        assert histogram.count(op="noop") == 1

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram(
                "bad_seconds", "Bad.", buckets=(1.0, 1.0)
            )


class TestRegistry:
    def test_get_or_create_and_kind_mismatch(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "C.")
        assert registry.counter("c_total", "C.") is first
        with pytest.raises(ValueError):
            registry.gauge("c_total", "Not a counter.")

    def test_disabled_registry_is_a_no_op(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("dead_total", "Dead.")
        counter.inc(100)
        assert counter.total() == 0
        gauge = registry.gauge("dead", "Dead.")
        gauge.set(5)
        assert gauge.value() == 0
        histogram = registry.histogram(
            "dead_seconds", "Dead.", buckets=(1.0,)
        )
        histogram.observe(0.5)
        assert histogram.count() == 0

    def test_prometheus_exposition_is_valid(self):
        """Golden check: rendered text round-trips the checker."""
        registry = MetricsRegistry()
        registry.counter("reqs_total", "Requests.").inc(
            3, route="/stats", status="200"
        )
        registry.gauge("in_flight", "In flight.").set(2)
        registry.histogram(
            "req_seconds", "Latency.", buckets=(0.1, 1.0)
        ).observe(0.25)
        families = parse_exposition(registry.render_prometheus())
        assert families["reqs_total"]["type"] == "counter"
        assert families["in_flight"]["type"] == "gauge"
        assert families["req_seconds"]["type"] == "histogram"
        samples = {
            name: value
            for name, labels, value in families["reqs_total"]["samples"]
        }
        assert samples["reqs_total"] == 3

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", "Esc.").inc(
            path='a"b\\c\nd'
        )
        parse_exposition(registry.render_prometheus())

    def test_snapshot_mirrors_exposition(self):
        registry = MetricsRegistry()
        registry.counter("snap_total", "Snap.").inc(2, kind="x")
        snapshot = registry.snapshot()
        assert snapshot["snap_total"]["type"] == "counter"
        [sample] = snapshot["snap_total"]["samples"]
        assert sample["labels"] == {"kind": "x"}
        assert sample["value"] == 2


class TestPromcheck:
    def test_rejects_sample_without_help(self):
        with pytest.raises(ExpositionError):
            parse_exposition("orphan_total 1\n")

    def test_rejects_incomplete_histogram(self):
        bad = (
            "# HELP h_seconds H.\n"
            "# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="+Inf"} 1\n'
            "h_seconds_count 1\n"
        )
        with pytest.raises(ExpositionError):
            parse_exposition(bad)
