"""Operational run metadata: sidecars, capture, and query slicing."""

import dataclasses
import json

import pytest

from repro import __version__
from repro.api_types import QueryFilter
from repro.config import ReproConfig
from repro.obs.logging import bound_request_id
from repro.obs.runmeta import RunMetadata, capture_run_metadata
from repro.workflow.execution import ExecutionParams
from repro.workflow.real_workflows import protein_annotation
from repro.workspace import Workspace

VARIED = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


@pytest.fixture
def ws(tmp_path) -> Workspace:
    workspace = Workspace(tmp_path, ReproConfig(backend="serial"))
    workspace.register(protein_annotation())
    for seed in range(1, 4):
        workspace.generate_run(
            f"r{seed:02d}", params=VARIED, seed=seed
        )
    return workspace


def _write_meta(ws, run_name, **changes):
    """Rewrite one run's sidecar with modified metadata fields."""
    spec = ws.store.list_specifications()[0]
    path = ws.store.locate_run(spec, run_name)
    sidecar = path.parent / f"{path.stem}.meta.json"
    meta = RunMetadata.from_dict(
        json.loads(sidecar.read_text(encoding="utf8"))
    )
    sidecar.write_text(
        json.dumps(
            dataclasses.replace(meta, **changes).to_dict(),
            sort_keys=True,
        ),
        encoding="utf8",
    )


class TestCapture:
    def test_capture_fills_every_field(self):
        meta = capture_run_metadata()
        assert meta.user
        assert meta.host
        assert meta.started <= meta.ended
        assert meta.tool_version == __version__
        assert meta.origin == "native"
        assert meta.request_id is None

    def test_capture_picks_up_bound_request_id(self):
        with bound_request_id("deadbeef00000000"):
            meta = capture_run_metadata(origin="prov-import")
        assert meta.request_id == "deadbeef00000000"
        assert meta.origin == "prov-import"

    def test_round_trip(self):
        meta = capture_run_metadata(origin="prov-import")
        assert RunMetadata.from_dict(meta.to_dict()) == meta

    def test_from_dict_rejects_malformed(self):
        assert RunMetadata.from_dict(None) is None
        assert RunMetadata.from_dict({"v": 99}) is None
        assert RunMetadata.from_dict({"v": 1, "user": "x"}) is None


class TestSidecars:
    def test_saved_runs_carry_metadata(self, ws):
        spec = ws.store.list_specifications()[0]
        meta = ws.store.run_metadata(spec, "r01")
        assert meta is not None
        assert meta.origin == "native"
        assert meta.tool_version == __version__

    def test_sidecars_never_pollute_run_listings(self, ws):
        spec = ws.store.list_specifications()[0]
        runs = ws.store.list_runs(spec)
        assert runs == ["r01", "r02", "r03"]
        assert not any("meta" in name for name in runs)

    def test_missing_sidecar_is_no_metadata(self, ws):
        spec = ws.store.list_specifications()[0]
        path = ws.store.locate_run(spec, "r01")
        (path.parent / f"{path.stem}.meta.json").unlink()
        assert ws.store.run_metadata(spec, "r01") is None
        # The run itself is untouched.
        assert "r01" in ws.store.list_runs(spec)

    def test_corrupt_sidecar_is_no_metadata(self, ws):
        spec = ws.store.list_specifications()[0]
        path = ws.store.locate_run(spec, "r02")
        (path.parent / f"{path.stem}.meta.json").write_text(
            "{not json", encoding="utf8"
        )
        assert ws.store.run_metadata(spec, "r02") is None


class TestQuerySlicing:
    def test_empty_clauses_change_nothing(self, ws):
        everything = ws.query(QueryFilter())
        assert len(everything) == 3  # C(3, 2) pairs

    def test_user_clause_requires_both_runs_to_match(self, ws):
        _write_meta(ws, "r01", user="alice")
        _write_meta(ws, "r02", user="alice")
        _write_meta(ws, "r03", user="bob")
        docs = ws.query(QueryFilter(users=("alice",)))
        assert len(docs) == 1
        assert {docs[0].run_a, docs[0].run_b} == {"r01", "r02"}

    def test_host_clause_is_or_ed_within(self, ws):
        _write_meta(ws, "r01", host="h1")
        _write_meta(ws, "r02", host="h2")
        _write_meta(ws, "r03", host="h3")
        docs = ws.query(QueryFilter(hosts=("h1", "h2")))
        assert len(docs) == 1

    def test_runs_without_metadata_never_match(self, ws):
        spec = ws.store.list_specifications()[0]
        _write_meta(ws, "r01", user="alice")
        _write_meta(ws, "r02", user="alice")
        path = ws.store.locate_run(spec, "r02")
        (path.parent / f"{path.stem}.meta.json").unlink()
        docs = ws.query(QueryFilter(users=("alice",)))
        assert docs == []

    def test_query_page_applies_the_same_slice(self, ws):
        _write_meta(ws, "r01", user="alice")
        _write_meta(ws, "r02", user="alice")
        _write_meta(ws, "r03", user="bob")
        page = ws.query_page(QueryFilter(users=("alice",)))
        assert page.total_matches == 1
        assert (
            ws.query_page(QueryFilter(users=("nobody",))).total_matches
            == 0
        )

    def test_wire_round_trip_preserves_clauses(self):
        filter = QueryFilter(users=("alice",), hosts=("h1", "h2"))
        again = QueryFilter.from_dict(filter.to_dict())
        assert again.users == ("alice",)
        assert again.hosts == ("h1", "h2")
