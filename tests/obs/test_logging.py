"""Structured logging: formats, request-ID binding, the off switch."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    bound_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    new_request_id,
)


@pytest.fixture(autouse=True)
def _silence_after():
    """Leave the global ``repro`` logger silenced after every test."""
    yield
    configure_logging(format="off")


def capture(level="info", format="text"):
    stream = io.StringIO()
    configure_logging(level=level, format=format, stream=stream)
    return stream


class TestRequestIds:
    def test_fresh_ids_are_short_hex_and_unique(self):
        first, second = new_request_id(), new_request_id()
        assert first != second
        assert len(first) == 16
        int(first, 16)  # hex or raise

    def test_binding_scopes_to_the_with_block(self):
        assert current_request_id() is None
        with bound_request_id("abc123"):
            assert current_request_id() == "abc123"
            with bound_request_id("nested"):
                assert current_request_id() == "nested"
            assert current_request_id() == "abc123"
        assert current_request_id() is None


class TestJsonFormat:
    def test_record_is_one_json_object(self):
        stream = capture(format="json")
        get_logger("test").info("hello %s", "world", extra={"n": 3})
        record = json.loads(stream.getvalue())
        assert record["message"] == "hello world"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["n"] == 3
        assert "request_id" not in record

    def test_bound_request_id_lands_in_payload(self):
        stream = capture(format="json")
        with bound_request_id("feedc0de00000000"):
            get_logger("test").warning("slow")
        record = json.loads(stream.getvalue())
        assert record["request_id"] == "feedc0de00000000"

    def test_unserialisable_extra_degrades_to_repr(self):
        stream = capture(format="json")
        get_logger("test").info("x", extra={"obj": object()})
        record = json.loads(stream.getvalue())
        assert record["obj"].startswith("<object object")


class TestTextFormat:
    def test_line_carries_level_logger_and_extras(self):
        stream = capture(format="text")
        with bound_request_id("cafe"):
            get_logger("test").error("boom", extra={"route": "/x"})
        line = stream.getvalue()
        assert "ERROR" in line
        assert "repro.test" in line
        assert "boom" in line
        assert "request_id=cafe" in line
        assert "route=/x" in line


class TestConfiguration:
    def test_level_threshold_applies(self):
        stream = capture(level="warning")
        get_logger("test").info("quiet")
        get_logger("test").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_off_silences_everything(self):
        configure_logging(format="off")
        logger = get_logger("test")
        assert not logger.isEnabledFor(logging.CRITICAL)

    def test_unknown_format_and_level_raise(self):
        with pytest.raises(ValueError):
            configure_logging(format="xml")
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_root_logger_left_alone(self):
        before = list(logging.getLogger().handlers)
        capture(format="json")
        assert logging.getLogger().handlers == before
