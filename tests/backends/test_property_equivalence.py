"""Property: every backend computes bit-identical corpus answers.

The backends are interchangeable by contract — the scheduler may move
work between threads and processes, but never change a result.  For
random corpora and cacheable cost models, the serial, thread and
process backends must produce **bit-identical** distance matrices and
edit-script costs.  Bit-identity (``==`` on floats, not ``approx``)
holds because every backend computes each pair in the canonical
lexicographic DP direction (the PR 3 rule): same operand order, same
float accumulation, same bits — no matter which worker ran it.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends.base import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.corpus.service import DiffService
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.io.store import WorkflowStore
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import random_specification

# Process pools dominate the runtime; few-but-varied examples.
SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)

COSTS = [UnitCost(), LengthCost(), PowerCost(0.5)]


def build_corpus(root, spec_seed, run_seed, n_runs):
    store = WorkflowStore(root)
    spec = random_specification(
        10 + spec_seed % 6,
        1.0,
        num_forks=spec_seed % 3,
        num_loops=spec_seed % 2,
        seed=spec_seed,
        name="rand",
    )
    store.save_specification(spec)
    for offset in range(n_runs):
        store.save_run(
            execute_workflow(
                spec, PARAMS, seed=run_seed + offset, name=f"run{offset}"
            )
        )
    return store


@given(
    spec_seed=st.integers(min_value=0, max_value=40),
    run_seed=st.integers(min_value=0, max_value=1000),
    cost_index=st.integers(min_value=0, max_value=len(COSTS) - 1),
)
@SETTINGS
def test_backends_agree_bit_for_bit(
    tmp_path_factory, spec_seed, run_seed, cost_index
):
    cost = COSTS[cost_index]
    root = tmp_path_factory.mktemp("backend-eq")
    store = build_corpus(root, spec_seed, run_seed, n_runs=3)
    backends = [SerialBackend(), ThreadBackend(2), ProcessBackend(2)]

    matrices = {}
    script_costs = {}
    for backend in backends:
        # persistent=False: every backend starts cold — nothing leaks
        # from one backend's computation into the next one's answers.
        service = DiffService(store, persistent=False, backend=backend)
        matrices[backend.name] = service.distance_matrix(
            "rand", cost=cost
        )
        names = service.runs("rand")
        pairs = [
            (a, b) for i, a in enumerate(names) for b in names[i + 1:]
        ]
        script_costs[backend.name] = {
            pair: record.distance
            for pair, record in service.edit_scripts(
                "rand", pairs, cost
            ).items()
        }

    assert matrices["thread"] == matrices["serial"]
    assert matrices["process"] == matrices["serial"]
    assert script_costs["thread"] == script_costs["serial"]
    assert script_costs["process"] == script_costs["serial"]

    # Scripts price what the matrix prices: the distance cache seeded
    # from a script equals the distance-only DP bit for bit (the
    # canonical-direction rule, now backend-independent).
    for (a, b), distance in matrices["serial"].items():
        assert script_costs["serial"][(a, b)] == distance
