"""Unit tests for the execution backends and their factory."""

import pytest

from repro.backends import (
    BACKEND_NAMES,
    DistanceTask,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    compute_distance,
    make_backend,
)
from repro.costs.standard import CallableCost, UnitCost
from repro.errors import ReproError
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)

ALL_BACKENDS = [SerialBackend(), ThreadBackend(2), ProcessBackend(2)]


def _square(x):
    return x * x


def _first(x):
    return x[0] if isinstance(x, list) else x


class TestMapContract:
    @pytest.mark.parametrize(
        "backend", ALL_BACKENDS, ids=[b.name for b in ALL_BACKENDS]
    )
    def test_preserves_input_order(self, backend):
        assert backend.map(_square, [3, 1, 2, 5]) == [9, 1, 4, 25]

    @pytest.mark.parametrize(
        "backend", ALL_BACKENDS, ids=[b.name for b in ALL_BACKENDS]
    )
    def test_empty_batch(self, backend):
        assert backend.map(_square, []) == []

    def test_serial_and_thread_accept_closures(self):
        offset = 10
        for backend in (SerialBackend(), ThreadBackend(2)):
            assert backend.map(lambda x: x + offset, [1, 2]) == [11, 12]

    def test_worker_exception_propagates(self):
        def boom(x):
            raise ValueError("deliberate")

        for backend in (SerialBackend(), ThreadBackend(2)):
            with pytest.raises(ValueError):
                backend.map(boom, [1])

    def test_single_item_runs_inline_on_thread_backend(self):
        """A 1-task batch (or jobs=1) never pays pool startup."""
        sentinel = object()
        assert ThreadBackend(8).map(lambda x: x, [sentinel])[0] is sentinel
        assert ThreadBackend(1).map(lambda x: x, [sentinel, sentinel]) == [
            sentinel,
            sentinel,
        ]


class TestProcessBackend:
    def test_distance_task_roundtrip(self):
        spec = protein_annotation()
        a = execute_workflow(spec, PARAMS, seed=1, name="a")
        b = execute_workflow(spec, PARAMS, seed=2, name="b")
        task = DistanceTask(run_a=a, run_b=b, cost=UnitCost())
        expected = compute_distance(task)
        assert ProcessBackend(1).map(compute_distance, [task]) == [
            expected
        ]

    def test_unpicklable_task_rejected_up_front(self):
        spec = protein_annotation()
        a = execute_workflow(spec, PARAMS, seed=1, name="a")
        bad = DistanceTask(
            run_a=a,
            run_b=a,
            cost=CallableCost(lambda l, s, t: 1.0),
        )
        with pytest.raises(ReproError, match="picklable"):
            ProcessBackend(1).map(compute_distance, [bad])

    def test_unpicklable_function_rejected(self):
        with pytest.raises(ReproError, match="worker function"):
            ProcessBackend(1).map(lambda x: x, [1, 2])


class TestFactory:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_names_resolve(self, name):
        backend = make_backend(name, jobs=3)
        assert backend.name == name
        assert backend.jobs == 3

    def test_case_insensitive(self):
        assert make_backend(" Serial ").name == "serial"

    def test_instance_passes_through(self):
        backend = ThreadBackend(4)
        assert make_backend(backend) is backend
        assert make_backend(backend, jobs=4) is backend

    def test_instance_with_conflicting_jobs_refused(self):
        with pytest.raises(ReproError, match="conflicts"):
            make_backend(ThreadBackend(4), jobs=2)

    def test_unknown_name_refused(self):
        with pytest.raises(ReproError, match="unknown backend"):
            make_backend("gpu")

    def test_invalid_jobs_refused(self):
        with pytest.raises(ReproError, match=">= 1"):
            SerialBackend(0)

    def test_describe_mentions_name_and_jobs(self):
        assert ProcessBackend(2).describe() == "process(jobs=2)"
        assert SerialBackend().describe() == "serial(jobs=auto)"

    def test_effective_jobs_positive(self):
        assert SerialBackend().effective_jobs == 1  # never parallel
        assert ThreadBackend(5).effective_jobs == 5
        assert ThreadBackend().effective_jobs >= 1

    def test_mid_batch_pickling_failure_is_a_repro_error(self):
        """A payload that escapes the first-task probe still surfaces
        as ReproError, not a raw PicklingError."""
        tasks = [1, lambda x: x, 2]  # unpicklable in position 1
        with pytest.raises(ReproError, match="mid-batch"):
            ProcessBackend(1).map(_square, tasks)

    def test_mid_batch_typeerror_pickling_failure_wrapped(self):
        """Unpicklable objects commonly raise TypeError ('cannot
        pickle ... object'); those wrap too, while a worker's own
        TypeError propagates untouched."""
        import threading

        tasks = [[1], [2], threading.Lock()]
        with pytest.raises(ReproError, match="mid-batch"):
            ProcessBackend(2).map(_first, tasks)

        def raises_typeerror(x):
            raise TypeError("not about serialisation")

        with pytest.raises(TypeError, match="serialisation"):
            SerialBackend().map(raises_typeerror, [1])

    def test_instance_backend_ignores_service_max_workers(self, tmp_path):
        """DiffService's documented contract: max_workers is the
        by-name knob, ignored for an already-constructed instance."""
        from repro.corpus.service import DiffService

        backend = ThreadBackend()
        service = DiffService(
            tmp_path, max_workers=4, backend=backend
        )
        assert service.backend is backend

    def test_only_process_requires_pickling(self):
        """In-process backends accept closures (the corpus layer defers
        store reads into their workers); process does not."""
        assert SerialBackend().requires_pickling is False
        assert ThreadBackend().requires_pickling is False
        assert ProcessBackend().requires_pickling is True
