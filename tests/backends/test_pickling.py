"""Pickle round-trips: the process backend's foundation.

``ProcessBackend`` ships ``(run, run, cost)`` payloads to worker
processes, so :class:`WorkflowRun`, :class:`WorkflowSpecification` and
every standard :class:`CostModel` must survive ``pickle.dumps`` /
``loads`` with full behavioural fidelity — same structure keys, same
prices, same distances — and without dragging derived memo state along.
"""

import pickle

import pytest

from repro.core.api import diff_runs, distance_only
from repro.costs.standard import (
    CallableCost,
    LabelWeightedCost,
    LengthCost,
    PowerCost,
    UnitCost,
)
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.real_workflows import protein_annotation

PARAMS = ExecutionParams(
    prob_parallel=0.7,
    max_fork=3,
    prob_fork=0.6,
    max_loop=2,
    prob_loop=0.6,
)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.fixture(scope="module")
def spec():
    return protein_annotation()


@pytest.fixture(scope="module")
def run_pair(spec):
    return (
        execute_workflow(spec, PARAMS, seed=1, name="a"),
        execute_workflow(spec, PARAMS, seed=2, name="b"),
    )


class TestSpecificationRoundTrip:
    def test_structure_survives(self, spec):
        clone = roundtrip(spec)
        assert clone.name == spec.name
        assert clone.characteristics() == spec.characteristics()
        assert clone.tree.structure_key() == spec.tree.structure_key()
        assert clone.label_to_node == spec.label_to_node
        assert set(clone.loop_markers) == set(spec.loop_markers)

    def test_clone_validates_runs(self, spec, run_pair):
        """A pickled spec re-annotates runs exactly like the original."""
        from repro.workflow.run import WorkflowRun

        clone = roundtrip(spec)
        reannotated = WorkflowRun(
            clone, run_pair[0].graph, name="re"
        )
        assert (
            reannotated.tree.structure_key()
            == run_pair[0].tree.structure_key()
        )


class TestRunRoundTrip:
    def test_equivalence_and_statistics(self, run_pair):
        run = run_pair[0]
        clone = roundtrip(run)
        assert clone.name == run.name
        assert clone.statistics() == run.statistics()
        assert clone.tree.structure_key() == run.tree.structure_key()

    def test_memo_not_pickled(self, run_pair):
        """The structure-key memo is derived data: dropped on the wire."""
        run = run_pair[0]
        run.tree.structure_key()
        assert run.tree._structure_key is not None
        clone = roundtrip(run)
        assert clone.tree._structure_key is None
        assert clone.tree.structure_key() == run.tree.structure_key()

    def test_pickle_bytes_independent_of_memo_state(self, spec):
        """Warm memos must not change the serialised form."""
        run = execute_workflow(spec, PARAMS, seed=3, name="c")
        cold = pickle.dumps(run)
        run.tree.structure_key()
        assert pickle.dumps(run) == cold

    def test_pair_shares_one_spec_object(self, run_pair):
        """Pickling a pair memoises the spec: one object after loads."""
        a, b = pickle.loads(pickle.dumps(run_pair))
        assert a.spec is b.spec

    def test_distances_identical_after_roundtrip(self, run_pair):
        a, b = run_pair
        for cost in (UnitCost(), LengthCost(), PowerCost(0.5)):
            expected = distance_only(a, b, cost=cost)
            a2, b2 = pickle.loads(pickle.dumps((a, b)))
            assert distance_only(a2, b2, cost=cost) == expected

    def test_scripts_identical_after_roundtrip(self, run_pair):
        a, b = run_pair
        fresh = diff_runs(a, b, with_script=True)
        a2, b2 = pickle.loads(pickle.dumps((a, b)))
        again = diff_runs(a2, b2, with_script=True)
        assert again.distance == fresh.distance
        assert [op.to_dict() for op in again.script.operations] == [
            op.to_dict() for op in fresh.script.operations
        ]


class TestCostModelRoundTrip:
    CASES = [
        UnitCost(),
        LengthCost(),
        PowerCost(0.5),
        PowerCost(-0.25),
        LabelWeightedCost(
            PowerCost(0.5), {("a", "b"): 2.0, ("b", "c"): 0.5}
        ),
    ]

    @pytest.mark.parametrize(
        "cost", CASES, ids=[c.name for c in CASES]
    )
    def test_prices_identically(self, cost):
        clone = roundtrip(cost)
        assert clone.name == cost.name
        assert clone.cache_key == cost.cache_key
        for length in (0, 1, 2, 7):
            labels = ("a", "a") if length == 0 else ("a", "b")
            assert clone.path_cost(length, *labels) == cost.path_cost(
                length, *labels
            )

    def test_callable_cost_with_named_function(self):
        """CallableCost pickles when its function is importable."""
        clone = roundtrip(CallableCost(_flat_cost, name="flat"))
        assert clone.path_cost(3, "a", "b") == 2.5

    def test_callable_cost_with_lambda_fails_loudly(self):
        """A lambda-based model cannot cross a process boundary."""
        with pytest.raises(Exception):
            pickle.dumps(CallableCost(lambda l, a, b: 1.0))


def _flat_cost(length, source, sink):
    """Module-level pricing function (picklable by reference)."""
    return 2.5 if length else 0.0
