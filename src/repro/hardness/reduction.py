"""Theorem 1: NP-hardness of general workflow differencing.

The reduction encodes the balanced bipartite clique problem on the
four-node forbidden-minor specification ``Gs``:

``Vs = {s, v1, v2, t}``,
``Es = {(s,v1), (s,v2), (v1,v2), (v1,t), (v2,t)}``.

Given a bipartite graph ``H = (X ∪ Y, E)`` with ``|X| = |Y| = n`` and an
integer ``ℓ``, run ``R1`` embeds ``H`` (every ``X`` node labelled ``v1``,
every ``Y`` node labelled ``v2``) and run ``R2`` is a complete ``ℓ × ℓ``
biclique.  Under the length cost model, ``H`` contains an ``ℓ × ℓ``
biclique **iff** there is an edit script of cost at most

``Γ = (m - ℓ²) + 4(n - ℓ)``

where ``m = |E|`` (and otherwise every script costs at least ``Γ + 2``).

This module builds the reduction instances, provides a tiny exact biclique
decider, and a direct (exponential) checker for the edit-script threshold
via subgraph enumeration — used by the tests to confirm both directions of
the reduction on small instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.graphs.flow_network import FlowNetwork


def forbidden_minor_specification() -> FlowNetwork:
    """The four-node non-SP specification of Theorem 1."""
    graph = FlowNetwork(name="theorem1-spec")
    for node in ("s", "v1", "v2", "t"):
        graph.add_node(node)
    graph.add_edge("s", "v1")
    graph.add_edge("s", "v2")
    graph.add_edge("v1", "v2")
    graph.add_edge("v1", "t")
    graph.add_edge("v2", "t")
    return graph


@dataclass(frozen=True)
class BipartiteInstance:
    """A balanced bipartite graph with a clique-size parameter ``ℓ``."""

    n: int
    edges: FrozenSet[Tuple[int, int]]  # (x_index, y_index), 0-based
    ell: int

    def __post_init__(self):
        if self.ell < 1 or self.ell > self.n:
            raise ReproError("require 1 <= ell <= n")
        for x, y in self.edges:
            if not (0 <= x < self.n and 0 <= y < self.n):
                raise ReproError("edge index out of range")

    @property
    def m(self) -> int:
        return len(self.edges)

    @property
    def gamma_threshold(self) -> int:
        """``Γ = (m - ℓ²) + 4(n - ℓ)`` — the reduction's cost threshold."""
        return (self.m - self.ell * self.ell) + 4 * (self.n - self.ell)


def build_run1(instance: BipartiteInstance) -> FlowNetwork:
    """``R1``: the bipartite graph ``H`` embedded in the specification."""
    graph = FlowNetwork(name="theorem1-run1")
    graph.add_node("s1", "s")
    graph.add_node("t1", "t")
    for i in range(instance.n):
        graph.add_node(f"x{i}", "v1")
        graph.add_node(f"y{i}", "v2")
    for i in range(instance.n):
        graph.add_edge("s1", f"x{i}")
        graph.add_edge("s1", f"y{i}")
        graph.add_edge(f"x{i}", "t1")
        graph.add_edge(f"y{i}", "t1")
    for x, y in sorted(instance.edges):
        graph.add_edge(f"x{x}", f"y{y}")
    return graph


def build_run2(instance: BipartiteInstance) -> FlowNetwork:
    """``R2``: the complete ``ℓ × ℓ`` biclique run."""
    graph = FlowNetwork(name="theorem1-run2")
    graph.add_node("s2", "s")
    graph.add_node("t2", "t")
    ell = instance.ell
    for i in range(ell):
        graph.add_node(f"X{i}", "v1")
        graph.add_node(f"Y{i}", "v2")
    for i in range(ell):
        graph.add_edge("s2", f"X{i}")
        graph.add_edge("s2", f"Y{i}")
        graph.add_edge(f"X{i}", "t2")
        graph.add_edge(f"Y{i}", "t2")
    for i in range(ell):
        for j in range(ell):
            graph.add_edge(f"X{i}", f"Y{j}")
    return graph


def has_biclique(instance: BipartiteInstance) -> bool:
    """Exact ``ℓ × ℓ`` biclique decision by subset enumeration.

    Exponential in ``n`` — intended for the small instances used to verify
    the reduction in the test suite.
    """
    neighbours: List[Set[int]] = [set() for _ in range(instance.n)]
    for x, y in instance.edges:
        neighbours[x].add(y)
    ell = instance.ell
    for xs in itertools.combinations(range(instance.n), ell):
        common = set.intersection(*(neighbours[x] for x in xs))
        if len(common) >= ell:
            return True
    return False


def min_edit_cost_by_enumeration(instance: BipartiteInstance) -> int:
    """Minimum length-cost edit script from ``R1`` to ``R2`` (exact).

    For this reduction every elementary path has length 1 or 2 and the
    optimal script is characterised by the subsets ``X1 ⊆ X``, ``Y1 ⊆ Y``
    of *kept* vertices (``|X1| = |Y1| = ℓ``): all other vertices' length-2
    ``s → v → t`` paths are deleted, cross edges outside ``X1 × Y1`` are
    deleted, and missing biclique edges inside are inserted.  The cost is

    ``(m - e(X1, Y1)) + (ℓ² - e(X1, Y1)) + 4(n - ℓ)``

    minimised over kept subsets, where ``e(X1, Y1)`` counts ``H``-edges
    inside the kept rectangle.  (Deleting a kept vertex would force a
    re-insertion and can never help; the tests confirm the closed form
    against the threshold claim.)
    """
    neighbours: List[Set[int]] = [set() for _ in range(instance.n)]
    for x, y in instance.edges:
        neighbours[x].add(y)
    ell = instance.ell
    best = None
    for xs in itertools.combinations(range(instance.n), ell):
        # Given Xs, the best Ys are the ell columns with most edges into Xs.
        column_counts = [0] * instance.n
        for x in xs:
            for y in neighbours[x]:
                column_counts[y] += 1
        inside = sum(sorted(column_counts, reverse=True)[:ell])
        cost = (
            (instance.m - inside)
            + (ell * ell - inside)
            + 4 * (instance.n - ell)
        )
        if best is None or cost < best:
            best = cost
    if best is None:  # pragma: no cover - ell >= 1 guarantees a subset
        raise ReproError("no kept subset found")
    return best


def reduction_gap(instance: BipartiteInstance) -> Tuple[int, int, bool]:
    """(min edit cost, threshold Γ, biclique exists) for an instance.

    Theorem 1's claim: ``min_cost <= Γ`` iff a biclique exists, and
    otherwise ``min_cost >= Γ + 2``.
    """
    cost = min_edit_cost_by_enumeration(instance)
    threshold = instance.gamma_threshold
    return cost, threshold, has_biclique(instance)
