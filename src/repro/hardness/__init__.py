"""repro.hardness subpackage."""
