"""Regression-gate arithmetic for the scale benchmark.

``benchmarks/bench_scale.py`` compares a fresh driver report against
the committed ``benchmarks/results/BENCH_scale.json`` baseline using
the ratio thresholds below.  The gate starts **advisory** (findings
are printed, exit code stays 0) and flips to **hard** via
``REPRO_SCALE_GATE=hard`` once two green CI runs have established
run-to-run variance — thresholds are deliberately loose (2x-class)
because they must catch *algorithmic* regressions (a lost fast path,
an accidental O(N²) scan), not CI-runner jitter.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: metric path -> (direction, ratio limit).  ``min`` metrics regress by
#: falling (current must stay >= baseline * ratio); ``max`` metrics by
#: rising (current must stay <= baseline * ratio).
DEFAULT_THRESHOLDS: Dict[str, Tuple[str, float]] = {
    "ingest.runs_per_second": ("min", 0.5),
    "matrix.cold_seconds": ("max", 2.0),
    "matrix.warm_seconds": ("max", 3.0),
    "query.p50_ms": ("max", 2.5),
    "query.p95_ms": ("max", 2.5),
}

#: Below these floors a metric is considered noise-dominated and the
#: gate skips it (e.g. a warm matrix in the low milliseconds).
ABSOLUTE_FLOORS: Dict[str, float] = {
    "matrix.warm_seconds": 0.05,
    "query.p50_ms": 2.0,
    "query.p95_ms": 2.0,
}


@dataclass(frozen=True)
class GateFinding:
    """One threshold violation, human-renderable."""

    metric: str
    baseline: float
    current: float
    limit: float
    direction: str

    def render(self) -> str:
        verb = "fell below" if self.direction == "min" else "exceeded"
        return (
            f"{self.metric}: {self.current:g} {verb} the "
            f"{self.direction}-ratio limit {self.limit:g} "
            f"(baseline {self.baseline:g})"
        )


def _lookup(report: dict, path: str) -> Optional[float]:
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def evaluate_gate(
    current: dict,
    baseline: dict,
    thresholds: Optional[Dict[str, Tuple[str, float]]] = None,
) -> List[GateFinding]:
    """Threshold violations of ``current`` against ``baseline``.

    Metrics missing from either report are skipped (a new metric
    cannot retroactively fail old baselines); metrics whose baseline
    sits under the absolute noise floor are skipped too.
    """
    findings: List[GateFinding] = []
    for metric, (direction, ratio) in sorted(
        (thresholds or DEFAULT_THRESHOLDS).items()
    ):
        if direction not in ("min", "max"):
            raise ReproError(
                f"threshold for {metric!r} has unknown direction "
                f"{direction!r}"
            )
        base = _lookup(baseline, metric)
        now = _lookup(current, metric)
        if base is None or now is None:
            continue
        floor = ABSOLUTE_FLOORS.get(metric)
        if floor is not None and base < floor and now < floor:
            continue
        limit = base * ratio
        violated = (
            now < limit if direction == "min" else now > limit
        )
        if violated:
            findings.append(
                GateFinding(
                    metric=metric,
                    baseline=base,
                    current=now,
                    limit=limit,
                    direction=direction,
                )
            )
    return findings


def gate_mode() -> str:
    """``"advisory"`` (default) or ``"hard"`` from REPRO_SCALE_GATE."""
    mode = os.environ.get("REPRO_SCALE_GATE", "advisory").lower()
    if mode not in ("advisory", "hard"):
        raise ReproError(
            f"REPRO_SCALE_GATE must be 'advisory' or 'hard', "
            f"got {mode!r}"
        )
    return mode
