"""Scale harness: realistic 10³–10⁴-run corpora as a regression gate.

Three layers (ROADMAP item 4):

* :mod:`repro.scale.workloads` — seeded, deterministic generators for
  realistic provenance *families* (deep fan-out/fan-in pipelines,
  adversarial non-SP shapes, evolving corpora where run ``k+1`` is a
  bounded mutation of run ``k``, heterogeneous mixes), each emitting
  PROV-JSON so corpora enter through the real interchange path;
* :mod:`repro.scale.build` — the corpus builder: batched, resumable,
  progress-logged materialisation of a 1k–10k-run store through
  ``import_prov`` / ``POST /prov/import`` against any
  :class:`~repro.api_types.WorkspaceAPI` target (local, remote, or
  cluster);
* :mod:`repro.scale.drivers` + :mod:`repro.scale.gate` — the three
  workloads that matter (bulk ingest throughput, cold/warm
  distance-matrix time, indexed query latency) and the regression-gate
  arithmetic comparing a fresh ``BENCH_scale.json`` against the
  committed baseline.

CLI: ``repro scale build`` / ``repro scale run``; the standing gate is
``benchmarks/bench_scale.py``.
"""

from repro.scale.build import BuildPlan, BuildReport, CorpusBuilder
from repro.scale.drivers import DriverConfig, drive_workloads
from repro.scale.gate import (
    DEFAULT_THRESHOLDS,
    GateFinding,
    evaluate_gate,
    gate_mode,
)
from repro.scale.workloads import (
    WORKLOAD_FAMILIES,
    GeneratedDocument,
    WorkloadModel,
    make_workload,
    pipeline_specification,
)

__all__ = [
    "BuildPlan",
    "BuildReport",
    "CorpusBuilder",
    "DEFAULT_THRESHOLDS",
    "DriverConfig",
    "GateFinding",
    "GeneratedDocument",
    "WORKLOAD_FAMILIES",
    "WorkloadModel",
    "drive_workloads",
    "evaluate_gate",
    "gate_mode",
    "make_workload",
    "pipeline_specification",
]
