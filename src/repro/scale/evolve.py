"""Choice-driven run materialisation with bounded, seeded mutation.

:func:`~repro.workflow.execution.execute_workflow` samples every
branching decision from one RNG stream, which makes "run ``k+1`` is a
*bounded mutation* of run ``k``" impossible to express: changing a
single early decision shifts the whole stream and the rest of the run
drifts arbitrarily.  The evolving-corpus family (citation-graph /
snowballing-like growth) needs drift that is *local*: a handful of
branches flip, a fork gains a copy, a loop drops an iteration — and
everything else stays byte-identical.

This module reifies the executor's decisions into a
:class:`DecisionMap` keyed by the *instance path* through the annotated
specification tree.  A path is stable under mutation: the decision for
"fork copies of stage 3's second branch inside loop iteration 1" keeps
its key no matter what happens elsewhere, so

* materialising a run consults (and records) one decision per key;
* keys never consulted before default deterministically from the map's
  seed (so a mutation that *opens* a new subtree fills it in
  reproducibly);
* :meth:`DecisionMap.mutated` changes at most ``budget`` recorded
  decisions and leaves every other key untouched — the next run differs
  from its parent only where the mutation landed.

The traversal mirrors ``repro.workflow.execution._Executor`` exactly
(same S/P/F/L realisation, same instance naming), so every materialised
graph is a valid run of its specification by construction — and is
revalidated by :class:`~repro.workflow.run.WorkflowRun` anyway.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import SpecificationError
from repro.graphs.flow_network import FlowNetwork
from repro.sptree.nodes import EdgeRef, NodeType, SPTree
from repro.workflow.execution import _suffix
from repro.workflow.run import WorkflowRun

#: One step of an instance path: ``(role, index)`` where role is the
#: tree-child position ("c"), a fork copy ("f") or a loop iteration
#: ("l").  Tuples of these form :class:`DecisionMap` keys.
PathStep = Tuple[str, int]
DecisionKey = Tuple[PathStep, ...]


def _key_text(key: DecisionKey) -> str:
    return "/".join(f"{role}{index}" for role, index in key)


class DecisionMap:
    """Every branching decision of one run, keyed by instance path.

    ``seed`` feeds the deterministic defaults (``random.Random`` over a
    string seed hashes with SHA-512, so defaults are stable across
    processes and ``PYTHONHASHSEED`` values).  The sampling knobs mirror
    :class:`~repro.workflow.execution.ExecutionParams`.
    """

    def __init__(
        self,
        seed: str,
        prob_parallel: float = 0.9,
        max_fork: int = 3,
        prob_fork: float = 0.4,
        max_loop: int = 3,
        prob_loop: float = 0.4,
        decisions: Optional[Dict[DecisionKey, object]] = None,
    ):
        if max_fork < 1 or max_loop < 1:
            raise SpecificationError(
                "max_fork and max_loop must be >= 1"
            )
        self.seed = seed
        self.prob_parallel = prob_parallel
        self.max_fork = max_fork
        self.prob_fork = prob_fork
        self.max_loop = max_loop
        self.prob_loop = prob_loop
        self.decisions: Dict[DecisionKey, object] = dict(
            decisions or {}
        )

    # -- deterministic defaults ---------------------------------------
    def _rng(self, kind: str, key: DecisionKey) -> random.Random:
        return random.Random(f"{self.seed}|{kind}|{_key_text(key)}")

    def _default_replication(
        self, kind: str, key: DecisionKey, trials: int, prob: float
    ) -> int:
        rng = self._rng(kind, key)
        count = sum(1 for _ in range(trials) if rng.random() < prob)
        return max(1, count)

    # -- decision lookups (recording) ---------------------------------
    def parallel(self, key: DecisionKey, arity: int) -> Tuple[int, ...]:
        """Indices of the P-block branches this run executes."""
        value = self.decisions.get(key)
        if value is None:
            rng = self._rng("P", key)
            chosen = tuple(
                i
                for i in range(arity)
                if rng.random() < self.prob_parallel
            )
            if not chosen:
                chosen = (rng.randrange(arity),)
            value = chosen
        # Clamp against the spec's actual arity so a decision map can
        # outlive small spec edits without materialising invalid runs.
        value = tuple(i for i in value if 0 <= i < arity) or (0,)
        self.decisions[key] = value
        return value

    def fork(self, key: DecisionKey) -> int:
        value = self.decisions.get(key)
        if value is None:
            value = self._default_replication(
                "F", key, self.max_fork, self.prob_fork
            )
        value = max(1, min(int(value), self.max_fork))
        self.decisions[key] = value
        return value

    def loop(self, key: DecisionKey) -> int:
        value = self.decisions.get(key)
        if value is None:
            value = self._default_replication(
                "L", key, self.max_loop, self.prob_loop
            )
        value = max(1, min(int(value), self.max_loop))
        self.decisions[key] = value
        return value

    # -- evolution -----------------------------------------------------
    def mutated(self, step: int, budget: int = 3) -> "DecisionMap":
        """A child map differing in at most ``budget`` decisions.

        ``step`` seeds the mutation choices, so the whole evolution
        chain is a pure function of ``(seed, steps)``.  Fork and loop
        counts drift by ±1 (clamped to their bounds); parallel subsets
        toggle one branch in or out (never emptying the block).  Keys
        not selected are copied verbatim — the bounded-drift contract.
        """
        child = DecisionMap(
            seed=f"{self.seed}|step{step}",
            prob_parallel=self.prob_parallel,
            max_fork=self.max_fork,
            prob_fork=self.prob_fork,
            max_loop=self.max_loop,
            prob_loop=self.prob_loop,
            decisions=self.decisions,
        )
        keys = sorted(child.decisions, key=_key_text)
        if not keys:
            return child
        rng = random.Random(f"{self.seed}|mutate|{step}")
        for key in rng.sample(keys, min(budget, len(keys))):
            value = child.decisions[key]
            if isinstance(value, tuple):  # P subset
                arity = max(value) + 1 if value else 1
                candidates = list(range(max(arity, len(value) + 1)))
                flip = rng.choice(candidates)
                chosen = set(value)
                if flip in chosen and len(chosen) > 1:
                    chosen.discard(flip)
                else:
                    chosen.add(flip)
                child.decisions[key] = tuple(sorted(chosen))
            else:  # F/L replication count
                delta = rng.choice((-1, 1))
                child.decisions[key] = int(value) + delta
        return child


class _DecisionExecutor:
    """``_Executor``'s realisation driven by a :class:`DecisionMap`.

    Mirrors :class:`repro.workflow.execution._Executor` node for node —
    the only difference is *where decisions come from*.  Kept separate
    (rather than parametrising the executor) so the sampled and the
    decision-driven paths stay independently readable and testable.
    """

    def __init__(self, spec, decisions: DecisionMap):
        self.spec = spec
        self.decisions = decisions
        self.graph = FlowNetwork()
        self._counters: Dict[str, int] = {}
        self._used: set = set()

    def fresh(self, label: str) -> str:
        index = self._counters.get(label, 0)
        while True:
            node_id = f"{label}{_suffix(index)}"
            index += 1
            if node_id not in self._used:
                break
        self._counters[label] = index
        self._used.add(node_id)
        self.graph.add_node(node_id, label)
        return node_id

    def execute(
        self, node: SPTree, source, sink, path: DecisionKey
    ) -> SPTree:
        if node.kind is NodeType.Q:
            _, _, key = self.graph.add_edge(source, sink)
            ref = EdgeRef(
                source=source,
                sink=sink,
                source_label=node.source_label,
                sink_label=node.sink_label,
                key=key,
            )
            return SPTree(NodeType.Q, (), edge=ref, origin=node)

        if node.kind is NodeType.S:
            bounds = [source]
            for child in node.children[:-1]:
                bounds.append(self.fresh(child.sink_label))
            bounds.append(sink)
            children = tuple(
                self.execute(
                    child, bounds[i], bounds[i + 1], path + (("c", i),)
                )
                for i, child in enumerate(node.children)
            )
            return SPTree(NodeType.S, children, origin=node)

        if node.kind is NodeType.P:
            chosen = self.decisions.parallel(path, len(node.children))
            children = tuple(
                self.execute(
                    node.children[i], source, sink, path + (("c", i),)
                )
                for i in chosen
            )
            return SPTree(NodeType.P, children, origin=node)

        if node.kind is NodeType.F:
            copies = self.decisions.fork(path)
            children = tuple(
                self.execute(
                    node.children[0], source, sink, path + (("f", t),)
                )
                for t in range(copies)
            )
            return SPTree(NodeType.F, children, origin=node)

        iterations = self.decisions.loop(path)
        body = node.children[0]
        children: List[SPTree] = []
        iter_source = source
        for index in range(iterations):
            last = index == iterations - 1
            iter_sink = (
                sink if last else self.fresh(body.sink_label)
            )
            children.append(
                self.execute(
                    body, iter_source, iter_sink, path + (("l", index),)
                )
            )
            if not last:
                next_source = self.fresh(body.source_label)
                self.graph.add_edge(iter_sink, next_source)
                iter_source = next_source
        return SPTree(NodeType.L, tuple(children), origin=node)

    def run(self, name: str = "") -> WorkflowRun:
        root = self.spec.tree
        source = self.fresh(root.source_label)
        sink = self.fresh(root.sink_label)
        tree = self.execute(root, source, sink, ())
        self.graph.name = name
        if self.spec.has_ambiguous_branches:
            tree = None
        return WorkflowRun(self.spec, self.graph, tree=tree, name=name)


def materialize_run(
    spec, decisions: DecisionMap, name: str = ""
) -> WorkflowRun:
    """The run of ``spec`` that ``decisions`` describes.

    Consulted decisions are recorded back into ``decisions`` (defaults
    included), so after the call the map is the complete account of the
    run — exactly what :meth:`DecisionMap.mutated` needs to drift it.
    """
    return _DecisionExecutor(spec, decisions).run(name=name)
