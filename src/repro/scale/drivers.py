"""The three workloads that matter, driven against any workspace.

Given a built corpus (:mod:`repro.scale.build`), this module measures
what the ROADMAP's scale item actually gates on:

* **bulk ingest throughput** — a probe batch of fresh pipeline
  documents imported through the real interchange path, timed
  end-to-end (runs/s).  The probe lands under ``<prefix>-probe`` with
  epoch-numbered run names, so repeated driver passes keep ingesting
  *fresh* runs instead of measuring duplicate-detection;
* **cold/warm distance-matrix time** — an all-pairs matrix over the
  dedicated bounded ``<prefix>-matrix`` family (default 32 runs = 496
  pairs).  "Cold" means no distances priced yet this pass; on a store
  with a persistent cache a repeated pass is honest about that by also
  reporting the warm number, which is the steady-state serving shape;
* **indexed query latency** — representative ``QueryFilter`` shapes
  evaluated repeatedly against the matrix family, reported as
  p50/p95 milliseconds.

Everything goes through the ``WorkspaceAPI`` surface (``import_prov``,
``matrix``, ``query``, ``stats``), so the same driver measures a local
store, a remote server, or a sharded cluster unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api_types import QueryFilter
from repro.errors import NotFoundError, ReproError
from repro.obs.logging import get_logger
from repro.scale.workloads import make_workload

logger = get_logger("repro.scale.drivers")

#: Representative indexed-query shapes: kind-only (pure inverted-index
#: hit), label-touch, and a cost-bounded scan (exercises the bound
#: gate).  Kept declarative so they travel over HTTP unchanged.
DEFAULT_QUERY_SHAPES: Tuple[Tuple[str, QueryFilter], ...] = (
    ("kind", QueryFilter(kinds=("path-insertion", "path-deletion"))),
    ("touch", QueryFilter(touches=("g00", "g01"))),
    ("cost", QueryFilter(max_cost=2.5)),
)


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a non-empty sample."""
    if not samples:
        raise ReproError("cannot take a percentile of no samples")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered))))
    return ordered[rank]


@dataclass(frozen=True)
class DriverConfig:
    """Knobs for one driver pass."""

    prefix: str = "scale"
    seed: int = 20090329
    #: Fresh documents per ingest probe.
    probe_runs: int = 32
    #: Repeats per query shape for the latency distribution.
    query_repeats: int = 15
    #: Extra spec to time the matrix against (defaults to
    #: ``<prefix>-matrix``, the bounded family the builder creates).
    matrix_spec: Optional[str] = None

    def __post_init__(self):
        if self.probe_runs < 1 or self.query_repeats < 1:
            raise ReproError(
                "probe_runs and query_repeats must be >= 1"
            )


def _existing(workspace, spec_name: str) -> List[str]:
    try:
        return list(workspace.runs(spec_name))
    except NotFoundError:
        return []


def _drive_ingest(workspace, config: DriverConfig) -> dict:
    spec_name = f"{config.prefix}-probe"
    existing = set(_existing(workspace, spec_name))
    target = len(existing) + config.probe_runs
    workload = make_workload(
        "pipeline",
        spec_name,
        seed=config.seed,
        runs=target,
        stages=5,
        width=3,
    )
    pending = [
        index
        for index in range(target)
        if workload.location(index)[1] not in existing
    ][: config.probe_runs]
    if not pending:
        raise ReproError(
            f"ingest probe found no fresh indices under {spec_name!r}"
        )
    # Generation is not what we are measuring — materialise the batch
    # first, then time imports alone.
    documents = [workload.document(index) for index in pending]
    started = time.monotonic()
    for document in documents:
        workspace.import_prov(
            document.document, name=document.run_name, diff=False
        )
    seconds = time.monotonic() - started
    logger.info(
        "scale ingest probe: %d runs in %.2fs (%.1f runs/s)",
        len(documents),
        seconds,
        len(documents) / seconds if seconds else 0.0,
    )
    return {
        "spec": spec_name,
        "runs": len(documents),
        "seconds": round(seconds, 4),
        "runs_per_second": round(
            len(documents) / seconds if seconds else 0.0, 2
        ),
    }


def _drive_matrix(workspace, config: DriverConfig) -> dict:
    spec_name = config.matrix_spec or f"{config.prefix}-matrix"
    runs = _existing(workspace, spec_name)
    if len(runs) < 2:
        raise ReproError(
            f"matrix driver needs >= 2 runs under {spec_name!r}; "
            "build the corpus first (repro scale build)"
        )
    started = time.monotonic()
    cold = workspace.matrix(spec=spec_name)
    cold_seconds = time.monotonic() - started
    started = time.monotonic()
    warm = workspace.matrix(spec=spec_name)
    warm_seconds = time.monotonic() - started
    if cold.distances != warm.distances:
        raise ReproError(
            "warm matrix disagreed with cold matrix — cache defect"
        )
    logger.info(
        "scale matrix %s: %d runs, cold %.2fs, warm %.2fs",
        spec_name,
        len(runs),
        cold_seconds,
        warm_seconds,
    )
    return {
        "spec": spec_name,
        "runs": len(runs),
        "pairs": len(cold.distances),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
    }


def _drive_query(workspace, config: DriverConfig) -> dict:
    spec_name = config.matrix_spec or f"{config.prefix}-matrix"
    samples_ms: List[float] = []
    shapes: Dict[str, dict] = {}
    for label, shape in DEFAULT_QUERY_SHAPES:
        shape_samples: List[float] = []
        matched = 0
        for _ in range(config.query_repeats):
            started = time.monotonic()
            results = workspace.query(shape, spec=spec_name)
            shape_samples.append(
                (time.monotonic() - started) * 1000.0
            )
            matched = len(results)
        samples_ms.extend(shape_samples)
        shapes[label] = {
            "matched": matched,
            "p50_ms": round(percentile(shape_samples, 0.5), 3),
            "p95_ms": round(percentile(shape_samples, 0.95), 3),
        }
    # One *cold* bounded query over the freshly-probed runs: their
    # pairs are unpriced, so the packing lower bound can skip DPs
    # outright (``dp_skipped_by_bound``) — the fast path the stats
    # section of the report gates on.  The indexed p50/p95 above stay
    # warm-path numbers on purpose (the steady-state serving shape).
    probe_spec = f"{config.prefix}-probe"
    probe_runs = _existing(workspace, probe_spec)
    cold_bounded_ms = None
    if len(probe_runs) >= 2:
        # "Near-identical pairs" — a ceiling below the packing bound
        # of most distinct runs, so cold pairs get *skipped* by the
        # bound instead of priced (the dp_skipped_by_bound fast path).
        bounded = QueryFilter(max_cost=0.5)
        started = time.monotonic()
        workspace.query(
            bounded, spec=probe_spec, runs=probe_runs[-16:]
        )
        cold_bounded_ms = round(
            (time.monotonic() - started) * 1000.0, 3
        )
    report = {
        "spec": spec_name,
        "repeats": config.query_repeats,
        "p50_ms": round(percentile(samples_ms, 0.5), 3),
        "p95_ms": round(percentile(samples_ms, 0.95), 3),
        "cold_bounded_ms": cold_bounded_ms,
        "shapes": shapes,
    }
    logger.info(
        "scale query %s: p50 %.1fms p95 %.1fms",
        spec_name,
        report["p50_ms"],
        report["p95_ms"],
    )
    return report


def _stats_ratios(stats: Dict[str, float]) -> dict:
    """DP fast-path counters and ratios out of a ``/stats`` payload."""
    computed = float(stats.get("computed_pairs", 0) or 0)
    skipped = float(stats.get("dp_skipped_by_bound", 0) or 0)
    pruned = float(stats.get("dp_pruned_by_triangle", 0) or 0)
    attempted = computed + skipped
    return {
        "computed_pairs": int(computed),
        "dp_skipped_by_bound": int(skipped),
        "dp_pruned_by_triangle": int(pruned),
        "dp_skip_ratio": (
            round(skipped / attempted, 4) if attempted else 0.0
        ),
    }


def drive_workloads(
    workspace, config: Optional[DriverConfig] = None
) -> dict:
    """Run all three drivers and return one combined report dict."""
    config = config or DriverConfig()
    report = {
        "ingest": _drive_ingest(workspace, config),
        "matrix": _drive_matrix(workspace, config),
        "query": _drive_query(workspace, config),
    }
    stats = dict(workspace.stats)
    report["stats"] = _stats_ratios(stats)
    return report
