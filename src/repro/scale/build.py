"""Batched, resumable corpus materialisation through the import path.

The builder turns a :class:`BuildPlan` (total runs, family weights,
seed) into a concrete store by pushing every generated document through
``WorkspaceAPI.import_prov`` — locally that is
:meth:`repro.workspace.Workspace.import_prov`, remotely it is
``POST /prov/import``, so a corpus built against a cluster exercises
the full wire path.  There is deliberately *no* direct store write
anywhere in this module: the harness measures the system users get.

Resumability: document identity is a pure function of
``(plan.seed, family, index)``, and each document's destination
``(spec_name, run_name)`` is computable without generating it.  The
builder lists what the target already holds and skips those indices,
so a build interrupted at run 6,000 of 10,000 resumes where it left
off — and re-running a completed build is a cheap no-op scan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import NotFoundError, ReproError
from repro.obs.logging import get_logger
from repro.scale.workloads import (
    GeneratedDocument,
    WorkloadModel,
    make_workload,
)

logger = get_logger("repro.scale.build")

#: Default corpus composition.  Weights are fractions of
#: ``BuildPlan.runs``; pipeline dominates (as it does in real
#: workflow corpora), with meaningful adversarial and drift minorities.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "pipeline": 0.4,
    "evolving": 0.25,
    "adversarial": 0.2,
    "mixed": 0.15,
}


@dataclass(frozen=True)
class BuildPlan:
    """What to build: size, composition, naming, batching."""

    runs: int = 1000
    seed: int = 20090329  # ICDE 2009 opened March 29.
    prefix: str = "scale"
    weights: Optional[Dict[str, float]] = None
    #: Size of the dedicated bounded matrix/query spec (a pipeline
    #: family of its own).  Kept small because the drivers time an
    #: all-pairs matrix over it: 32 runs = 496 pairs.
    matrix_runs: int = 32
    batch: int = 64

    def __post_init__(self):
        if self.runs < 1:
            raise ReproError("a build plan needs runs >= 1")
        if self.batch < 1:
            raise ReproError("a build plan needs batch >= 1")
        weights = self.weights or DEFAULT_WEIGHTS
        unknown = set(weights) - set(DEFAULT_WEIGHTS)
        if unknown:
            raise ReproError(
                f"unknown workload families in weights: "
                f"{', '.join(sorted(unknown))}"
            )
        total = sum(weights.values())
        if total <= 0:
            raise ReproError("family weights must sum to > 0")

    def family_runs(self) -> Dict[str, int]:
        """Per-family run counts (largest-remainder apportionment)."""
        weights = self.weights or DEFAULT_WEIGHTS
        total = sum(weights.values())
        shares = {
            family: self.runs * weight / total
            for family, weight in weights.items()
            if weight > 0
        }
        counts = {f: int(share) for f, share in shares.items()}
        leftover = self.runs - sum(counts.values())
        by_remainder = sorted(
            shares,
            key=lambda f: (counts[f] - shares[f], f),
        )
        for family in by_remainder[:leftover]:
            counts[family] += 1
        return {f: n for f, n in counts.items() if n > 0}

    def workloads(self) -> List[WorkloadModel]:
        """The workload instances this plan materialises, in order.

        Includes the dedicated ``<prefix>-matrix`` pipeline family the
        drivers time their distance matrix and queries against.
        """
        models: List[WorkloadModel] = []
        for family, runs in sorted(self.family_runs().items()):
            models.append(
                make_workload(
                    family,
                    f"{self.prefix}-{family}",
                    seed=self.seed,
                    runs=runs,
                )
            )
        if self.matrix_runs > 0:
            models.append(
                make_workload(
                    "pipeline",
                    f"{self.prefix}-matrix",
                    seed=self.seed,
                    runs=self.matrix_runs,
                    stages=5,
                    width=3,
                )
            )
        return models


@dataclass
class BuildReport:
    """What a build did: per-family counts, skips, rates, SP-izer load."""

    plan_runs: int = 0
    imported: int = 0
    skipped: int = 0
    seconds: float = 0.0
    families: Dict[str, int] = field(default_factory=dict)
    foreign_documents: int = 0
    non_sp_documents: int = 0
    forced_serializations: int = 0

    @property
    def runs_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.imported / self.seconds

    def to_dict(self) -> dict:
        return {
            "plan_runs": self.plan_runs,
            "imported": self.imported,
            "skipped": self.skipped,
            "seconds": round(self.seconds, 3),
            "runs_per_second": round(self.runs_per_second, 2),
            "families": dict(sorted(self.families.items())),
            "foreign_documents": self.foreign_documents,
            "non_sp_documents": self.non_sp_documents,
            "forced_serializations": self.forced_serializations,
            "forced_serialization_ratio": (
                round(
                    self.non_sp_documents / self.foreign_documents, 4
                )
                if self.foreign_documents
                else 0.0
            ),
        }


def _report_fields(result) -> Tuple[bool, int]:
    """(was_non_sp, forced_serialisation_count) from either import
    return shape — the local ``ImportResult`` carries a live
    ``NormalizationReport``; the remote ``ImportSummary`` its dict."""
    report = getattr(result, "report", None)
    if report is None:
        return False, 0
    if isinstance(report, dict):
        forced = report.get("forced_serializations", [])
        was_sp = report.get("was_series_parallel", True)
        return (not was_sp), len(forced)
    forced = getattr(report, "forced_serializations", [])
    was_sp = getattr(report, "was_series_parallel", True)
    return (not was_sp), len(forced)


class CorpusBuilder:
    """Materialise a :class:`BuildPlan` against any workspace target."""

    def __init__(self, workspace, plan: BuildPlan):
        self.workspace = workspace
        self.plan = plan

    # -- resume bookkeeping -------------------------------------------
    def _existing_runs(self, spec_name: str) -> Set[str]:
        try:
            return set(self.workspace.runs(spec_name))
        except NotFoundError:
            return set()

    def _known_specs(self) -> Set[str]:
        return set(self.workspace.specifications())

    # -- the build loop -----------------------------------------------
    def build(self) -> BuildReport:
        report = BuildReport(plan_runs=self.plan.runs)
        started = time.monotonic()
        specs = self._known_specs()
        shared_runs: Dict[str, Set[str]] = {}
        imported_since_log = 0
        for model in self.plan.workloads():
            family_imported = 0
            for index in range(model.runs):
                spec_name, run_name = model.location(index)
                if spec_name not in shared_runs:
                    shared_runs[spec_name] = (
                        self._existing_runs(spec_name)
                        if spec_name in specs
                        else set()
                    )
                if run_name in shared_runs[spec_name]:
                    report.skipped += 1
                    continue
                document = model.document(index)
                self._import(document, report)
                shared_runs[spec_name].add(run_name)
                specs.add(spec_name)
                family_imported += 1
                imported_since_log += 1
                if imported_since_log >= self.plan.batch:
                    imported_since_log = 0
                    elapsed = time.monotonic() - started
                    logger.info(
                        "scale build: %d imported, %d skipped "
                        "(%.1f runs/s, family=%s)",
                        report.imported,
                        report.skipped,
                        report.imported / elapsed if elapsed else 0.0,
                        model.family,
                    )
            report.families[model.name] = family_imported
        report.seconds = time.monotonic() - started
        logger.info(
            "scale build done: %d imported, %d skipped in %.1fs "
            "(%.1f runs/s)",
            report.imported,
            report.skipped,
            report.seconds,
            report.runs_per_second,
        )
        return report

    def _import(
        self, document: GeneratedDocument, report: BuildReport
    ) -> None:
        # Foreign documents carry their own unique spec name (their
        # derived specification is isomorphic to the run); embedded-plan
        # documents name their family specification inside the plan.
        spec_name = (
            document.spec_name
            if document.kind == "foreign"
            else None
        )
        result = self.workspace.import_prov(
            document.document,
            name=document.run_name,
            spec_name=spec_name,
            diff=False,
        )
        report.imported += 1
        if document.kind == "foreign":
            report.foreign_documents += 1
            non_sp, forced = _report_fields(result)
            if non_sp:
                report.non_sp_documents += 1
            report.forced_serializations += forced
