"""Seeded workload models for realistic provenance corpora.

Pipeline-centric provenance studies (Groth et al.; HyProv's workflow
traces) show real scientific-workflow provenance is dominated by a few
shapes the paper's six ~50-run workflows never stress at scale:

* **pipeline** — deep staged DAGs with wide fan-out/fan-in per stage
  (Montage mosaics, quantum-espresso runs): a serial backbone of
  parallel stages, branches forking into replicated copies and looping
  over convergence steps.  Emitted as embedded-plan PROV-JSON so every
  run of a family lands under one shared specification — the shape the
  distance matrix, analytics and query engine operate on.
* **adversarial** — layered non-SP DAGs built around the N-shaped
  forbidden minor (crossing fan-in between consecutive layers plus
  skip-level edges).  Emitted as *foreign* PROV-JSON: each document
  takes the normalisation path, stressing the SP-izer and its
  forced-serialisation report.
* **evolving** — a corpus where run ``k+1`` is a *bounded mutation* of
  run ``k`` (citation-graph / snowballing-like drift), realised through
  :class:`~repro.scale.evolve.DecisionMap` mutation chains.
* **mixed** — a heterogeneous ingest stream interleaving
  mixed-granularity pipeline runs with foreign adversarial documents,
  the closest model of a production corpus boundary.

Determinism contract: every generator is a pure function of
``(family, name, seed, index)`` — the same seed yields *byte-identical*
PROV-JSON, which is what makes corpus builds resumable and the
regression gate reproducible.  All documents enter stores through
``import_document`` / ``POST /prov/import``; nothing writes to a store
directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError, SpecificationError
from repro.graphs.flow_network import FlowNetwork
from repro.interchange.convert import export_run_document
from repro.scale.evolve import DecisionMap, materialize_run
from repro.workflow.specification import WorkflowSpecification

__all__ = [
    "WORKLOAD_FAMILIES",
    "GeneratedDocument",
    "WorkloadModel",
    "PipelineWorkload",
    "AdversarialWorkload",
    "EvolvingWorkload",
    "MixedWorkload",
    "make_workload",
    "pipeline_specification",
    "adversarial_document",
]


# ---------------------------------------------------------------------
# Specification shapes
# ---------------------------------------------------------------------
def pipeline_specification(
    name: str,
    stages: int = 8,
    width: int = 4,
    chain: int = 2,
    seed: int = 0,
    fork_fraction: float = 0.35,
    loop_fraction: float = 0.2,
) -> WorkflowSpecification:
    """A deep staged fan-out/fan-in SP specification (Montage-like).

    A serial backbone of ``stages`` parallel blocks between gate nodes;
    stage ``i`` fans out into up to ``width`` branches (occasionally
    collapsing to a single-branch gather stage, the mosaic/coadd step),
    each branch a serial chain of up to ``chain`` modules.  Chains of
    length >= 2 become fork or loop elements with the given fractions,
    so runs replicate branches in parallel (forks) and iterate
    convergence steps in series (loops).  Deterministic for a fixed
    ``(name, seed)``.
    """
    if stages < 1 or width < 1 or chain < 1:
        raise SpecificationError(
            "stages, width and chain must all be >= 1"
        )
    rng = random.Random(f"{seed}|spec|{name}")
    graph = FlowNetwork(name=name)
    gates = [f"g{i:02d}" for i in range(stages + 1)]
    for gate in gates:
        graph.add_node(gate)
    forks: List[List[str]] = []
    loops: List[List[str]] = []
    for i in range(stages):
        fan_out = (
            1
            if width > 1 and rng.random() < 0.2
            else rng.randint(min(2, width), width)
        )
        for j in range(fan_out):
            depth = rng.randint(1, chain)
            labels = [
                f"s{i:02d}b{j}n{k}" for k in range(depth)
            ]
            for label in labels:
                graph.add_node(label)
            previous = gates[i]
            for label in labels:
                graph.add_edge(previous, label)
                previous = label
            graph.add_edge(previous, gates[i + 1])
            if depth >= 2:
                roll = rng.random()
                if roll < fork_fraction:
                    forks.append(labels)
                elif roll < fork_fraction + loop_fraction:
                    loops.append(labels)
    return WorkflowSpecification(
        graph, forks=forks, loops=loops, name=name
    )


#: Mixed-granularity tiers: the same specification executed coarsely
#: (minimal replication) through bushily (heavy fan-out), modelling
#: corpora that mix smoke runs with production campaigns.
GRANULARITY_TIERS: Dict[str, Dict[str, float]] = {
    "sparse": {
        "prob_parallel": 0.75,
        "max_fork": 1,
        "prob_fork": 0.0,
        "max_loop": 1,
        "prob_loop": 0.0,
    },
    "standard": {
        "prob_parallel": 0.9,
        "max_fork": 2,
        "prob_fork": 0.35,
        "max_loop": 2,
        "prob_loop": 0.3,
    },
    "bushy": {
        "prob_parallel": 0.98,
        "max_fork": 4,
        "prob_fork": 0.55,
        "max_loop": 3,
        "prob_loop": 0.45,
    },
}


# ---------------------------------------------------------------------
# Foreign (non-SP) document shapes
# ---------------------------------------------------------------------
def adversarial_document(
    seed: str,
    width: int = 4,
    depth: int = 6,
    skip_probability: float = 0.25,
    entity_ratio: float = 0.5,
) -> dict:
    """A layered non-SP PROV-JSON document (normalisation stress).

    ``width`` x ``depth`` activities; consecutive layers connect with
    the crossing pattern ``i -> i`` and ``i -> i+1`` — every adjacent
    column pair embeds the N-shaped forbidden minor, so the document is
    never series-parallel for ``width >= 2`` — plus seeded skip-level
    edges that deepen the layering conflicts the SP-izer must serialise.
    Each dependency is expressed either directly (``wasInformedBy``) or
    through a mediating entity (``wasGeneratedBy`` + ``used``), chosen
    per edge, so both extraction channels of the importer run at scale.
    """
    if width < 1 or depth < 2:
        raise ReproError(
            "adversarial documents need width >= 1 and depth >= 2"
        )
    rng = random.Random(f"{seed}|doc")
    layers = [
        [f"ex:L{level:02d}n{i}" for i in range(width)]
        for level in range(depth)
    ]
    edges: List[Tuple[str, str]] = []
    for level in range(depth - 1):
        for i in range(width):
            edges.append((layers[level][i], layers[level + 1][i]))
            if i + 1 < width:
                edges.append(
                    (layers[level][i], layers[level + 1][i + 1])
                )
    for level in range(depth - 2):
        for i in range(width):
            if rng.random() < skip_probability:
                edges.append(
                    (
                        layers[level][i],
                        layers[level + 2][rng.randrange(width)],
                    )
                )
    document: dict = {
        "prefix": {"ex": "urn:repro:scale:"},
        "activity": {
            node: {"prov:label": node.split(":", 1)[1]}
            for layer in layers
            for node in layer
        },
        "entity": {},
        "used": {},
        "wasGeneratedBy": {},
        "wasInformedBy": {},
    }
    for index, (upstream, downstream) in enumerate(edges):
        if rng.random() < entity_ratio:
            entity = f"ex:d{index:04d}"
            document["entity"][entity] = {}
            document["wasGeneratedBy"][f"_:g{index}"] = {
                "prov:entity": entity,
                "prov:activity": upstream,
            }
            document["used"][f"_:u{index}"] = {
                "prov:activity": downstream,
                "prov:entity": entity,
            }
        else:
            document["wasInformedBy"][f"_:w{index}"] = {
                "prov:informed": downstream,
                "prov:informant": upstream,
            }
    return document


# ---------------------------------------------------------------------
# Workload models
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratedDocument:
    """One corpus entry: a PROV-JSON document plus its destination.

    ``kind`` is ``"embedded-plan"`` (exact import under the shared
    family specification) or ``"foreign"`` (normalisation path; the
    builder passes ``spec_name`` to the importer so each foreign
    document derives its own uniquely-named specification).
    """

    index: int
    family: str
    spec_name: str
    run_name: str
    kind: str
    document: dict


class WorkloadModel:
    """Base contract: deterministic documents addressed by index.

    ``location(index)`` is cheap (names only — what the resumable
    builder checks against the store); ``document(index)`` generates.
    Indices must be visited in ascending order — the evolving family
    carries chain state forward.
    """

    family = "abstract"

    def __init__(self, name: str, seed: int, runs: int):
        if runs < 0:
            raise ReproError("a workload cannot have negative runs")
        self.name = name
        self.seed = seed
        self.runs = runs

    def location(self, index: int) -> Tuple[str, str]:
        raise NotImplementedError

    def document(self, index: int) -> GeneratedDocument:
        raise NotImplementedError

    def describe(self) -> dict:
        """Knobs for reports and docs (stable, JSON-safe)."""
        return {
            "family": self.family,
            "name": self.name,
            "seed": self.seed,
            "runs": self.runs,
        }

    def documents(
        self, start: int = 0
    ) -> Iterator[GeneratedDocument]:
        for index in range(start, self.runs):
            yield self.document(index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.runs:
            raise ReproError(
                f"{self.family} workload {self.name!r} has "
                f"{self.runs} runs; index {index} is out of range"
            )


class PipelineWorkload(WorkloadModel):
    """Deep staged pipelines under one shared specification."""

    family = "pipeline"

    def __init__(
        self,
        name: str,
        seed: int,
        runs: int,
        stages: int = 8,
        width: int = 4,
        chain: int = 2,
        tiers: Optional[Tuple[str, ...]] = None,
    ):
        super().__init__(name, seed, runs)
        self.stages = stages
        self.width = width
        self.chain = chain
        self.tiers = tuple(tiers or tuple(GRANULARITY_TIERS))
        for tier in self.tiers:
            if tier not in GRANULARITY_TIERS:
                raise ReproError(f"unknown granularity tier {tier!r}")
        self.spec = pipeline_specification(
            name,
            stages=stages,
            width=width,
            chain=chain,
            seed=seed,
        )

    def describe(self) -> dict:
        base = super().describe()
        base.update(
            stages=self.stages,
            width=self.width,
            chain=self.chain,
            tiers=list(self.tiers),
            spec_edges=self.spec.num_edges,
        )
        return base

    def location(self, index: int) -> Tuple[str, str]:
        self._check_index(index)
        return self.name, f"r{index:05d}"

    def document(self, index: int) -> GeneratedDocument:
        spec_name, run_name = self.location(index)
        tier = self.tiers[
            random.Random(f"{self.seed}|tier|{index}").randrange(
                len(self.tiers)
            )
        ]
        decisions = DecisionMap(
            seed=f"{self.seed}|{self.name}|run|{index}",
            **GRANULARITY_TIERS[tier],
        )
        run = materialize_run(self.spec, decisions, name=run_name)
        return GeneratedDocument(
            index=index,
            family=self.family,
            spec_name=spec_name,
            run_name=run_name,
            kind="embedded-plan",
            document=export_run_document(run),
        )


class AdversarialWorkload(WorkloadModel):
    """Foreign non-SP documents, one derived specification each."""

    family = "adversarial"

    def __init__(
        self,
        name: str,
        seed: int,
        runs: int,
        width: int = 4,
        depth: int = 6,
        skip_probability: float = 0.25,
    ):
        super().__init__(name, seed, runs)
        self.width = width
        self.depth = depth
        self.skip_probability = skip_probability

    def describe(self) -> dict:
        base = super().describe()
        base.update(
            width=self.width,
            depth=self.depth,
            skip_probability=self.skip_probability,
        )
        return base

    def location(self, index: int) -> Tuple[str, str]:
        self._check_index(index)
        return f"{self.name}-a{index:05d}", f"adv{index:05d}"

    def document(self, index: int) -> GeneratedDocument:
        spec_name, run_name = self.location(index)
        rng = random.Random(f"{self.seed}|shape|{index}")
        width = rng.randint(2, max(2, self.width))
        depth = rng.randint(3, max(3, self.depth))
        return GeneratedDocument(
            index=index,
            family=self.family,
            spec_name=spec_name,
            run_name=run_name,
            kind="foreign",
            document=adversarial_document(
                f"{self.seed}|{self.name}|{index}",
                width=width,
                depth=depth,
                skip_probability=self.skip_probability,
            ),
        )


class EvolvingWorkload(WorkloadModel):
    """A drift chain: run ``k+1`` mutates run ``k``'s decisions.

    Models snowballing-style corpora where each campaign run is a
    bounded edit of the previous one.  The chain is materialised
    incrementally (ascending index access); resuming a build replays
    the cheap decision chain without re-ingesting stored runs.
    """

    family = "evolving"

    def __init__(
        self,
        name: str,
        seed: int,
        runs: int,
        stages: int = 6,
        width: int = 3,
        chain: int = 2,
        mutation_budget: int = 3,
    ):
        super().__init__(name, seed, runs)
        if mutation_budget < 1:
            raise ReproError("mutation_budget must be >= 1")
        self.mutation_budget = mutation_budget
        self.spec = pipeline_specification(
            name,
            stages=stages,
            width=width,
            chain=chain,
            seed=seed,
        )
        self._decisions = DecisionMap(
            seed=f"{seed}|{name}|evolve",
            **GRANULARITY_TIERS["standard"],
        )
        self._materialised = -1
        self._current = None

    def describe(self) -> dict:
        base = super().describe()
        base.update(
            mutation_budget=self.mutation_budget,
            spec_edges=self.spec.num_edges,
        )
        return base

    def location(self, index: int) -> Tuple[str, str]:
        self._check_index(index)
        return self.name, f"e{index:05d}"

    def _ensure(self, index: int) -> None:
        if index < self._materialised:
            # Random access backwards: replay the chain from scratch.
            self._decisions = DecisionMap(
                seed=f"{self.seed}|{self.name}|evolve",
                **GRANULARITY_TIERS["standard"],
            )
            self._materialised = -1
            self._current = None
        while self._materialised < index:
            step = self._materialised + 1
            if step > 0:
                self._decisions = self._decisions.mutated(
                    step, budget=self.mutation_budget
                )
            self._current = materialize_run(
                self.spec,
                self._decisions,
                name=self.location(step)[1],
            )
            self._materialised = step

    def document(self, index: int) -> GeneratedDocument:
        spec_name, run_name = self.location(index)
        self._ensure(index)
        return GeneratedDocument(
            index=index,
            family=self.family,
            spec_name=spec_name,
            run_name=run_name,
            kind="embedded-plan",
            document=export_run_document(self._current),
        )


class MixedWorkload(WorkloadModel):
    """Heterogeneous ingest stream: pipeline runs + foreign documents.

    Each index independently (seeded) lands either as a
    mixed-granularity run of the workload's own pipeline specification
    or as a foreign adversarial document, modelling the mixed corpus
    boundary a production import endpoint actually sees.
    """

    family = "mixed"

    def __init__(
        self,
        name: str,
        seed: int,
        runs: int,
        foreign_ratio: float = 0.35,
        stages: int = 6,
        width: int = 3,
        chain: int = 2,
    ):
        super().__init__(name, seed, runs)
        if not 0.0 <= foreign_ratio <= 1.0:
            raise ReproError("foreign_ratio must be in [0, 1]")
        self.foreign_ratio = foreign_ratio
        self.spec = pipeline_specification(
            name,
            stages=stages,
            width=width,
            chain=chain,
            seed=seed,
        )

    def describe(self) -> dict:
        base = super().describe()
        base.update(
            foreign_ratio=self.foreign_ratio,
            spec_edges=self.spec.num_edges,
        )
        return base

    def _is_foreign(self, index: int) -> bool:
        return (
            random.Random(f"{self.seed}|mix|{index}").random()
            < self.foreign_ratio
        )

    def location(self, index: int) -> Tuple[str, str]:
        self._check_index(index)
        if self._is_foreign(index):
            return f"{self.name}-f{index:05d}", f"mf{index:05d}"
        return self.name, f"m{index:05d}"

    def document(self, index: int) -> GeneratedDocument:
        spec_name, run_name = self.location(index)
        if self._is_foreign(index):
            rng = random.Random(f"{self.seed}|mixshape|{index}")
            return GeneratedDocument(
                index=index,
                family=self.family,
                spec_name=spec_name,
                run_name=run_name,
                kind="foreign",
                document=adversarial_document(
                    f"{self.seed}|{self.name}|foreign|{index}",
                    width=rng.randint(2, 4),
                    depth=rng.randint(3, 6),
                ),
            )
        tier_names = tuple(GRANULARITY_TIERS)
        tier = tier_names[
            random.Random(f"{self.seed}|mixtier|{index}").randrange(
                len(tier_names)
            )
        ]
        decisions = DecisionMap(
            seed=f"{self.seed}|{self.name}|mixrun|{index}",
            **GRANULARITY_TIERS[tier],
        )
        run = materialize_run(self.spec, decisions, name=run_name)
        return GeneratedDocument(
            index=index,
            family=self.family,
            spec_name=spec_name,
            run_name=run_name,
            kind="embedded-plan",
            document=export_run_document(run),
        )


WORKLOAD_FAMILIES: Dict[str, type] = {
    PipelineWorkload.family: PipelineWorkload,
    AdversarialWorkload.family: AdversarialWorkload,
    EvolvingWorkload.family: EvolvingWorkload,
    MixedWorkload.family: MixedWorkload,
}


def make_workload(
    family: str, name: str, seed: int, runs: int, **knobs
) -> WorkloadModel:
    """Instantiate a registered workload family by name."""
    try:
        factory = WORKLOAD_FAMILIES[family]
    except KeyError:
        raise ReproError(
            f"unknown workload family {family!r}; available: "
            f"{', '.join(sorted(WORKLOAD_FAMILIES))}"
        ) from None
    return factory(name, seed, runs, **knobs)
