"""``repro`` — command-line access to a workflow store's corpus.

Installed as a console script (``[project.scripts]`` in
``pyproject.toml``); also runnable as ``python -m repro.cli``.
Subcommands over a store directory (the layout
:class:`~repro.io.store.WorkflowStore` maintains) — or, with
``--remote URL``, over a running ``repro serve`` endpoint:

.. code-block:: sh

    repro diff   STORE SPEC RUN_A RUN_B [--cost unit|length|power:E] [--ops]
                 [--backend serial|thread|process] [--jobs N]
    repro matrix STORE SPEC [--cost ...] [--json]
                 [--backend serial|thread|process] [--jobs N]
    repro query  STORE SPEC [--kind K] [--touches L] [--min-cost X]
                 [--max-cost X] [--min-ops N] [--max-ops N]
                 [--histogram] [--churn] [--json]
    repro import STORE DOC.json [--name RUN] [--spec-name NAME] [--json]
    repro export STORE SPEC RUN [--output FILE] [--script RUN_B]
    repro tail   STORE [--follow] [--interval S] [--json]
    repro serve  STORE [--host H] [--port N] [--workers N]
                 [--backend serial|thread|process] [--jobs N]
                 [--log-level L] [--log-format json|text|off]
                 [--drain-timeout S] [--max-body-bytes N]
    repro scale build STORE [--runs N] [--seed N] [--prefix P]
                 [--matrix-runs N] [--json]
    repro scale run   STORE [--prefix P] [--seed N] [--probe-runs N]
                 [--query-repeats N] [--json]

Every subcommand is a thin shell over the
:class:`repro.api_types.WorkspaceAPI` protocol: a local
:class:`repro.Workspace` (configured through
:class:`repro.ReproConfig`, sharing the corpus's persistent caches
under ``STORE/index/``) or a :class:`repro.client.RemoteWorkspace`
when ``--remote URL`` replaces the STORE argument — ``repro diff
--remote http://host:8321 SPEC A B`` runs the same code path against a
server.  ``serve`` hosts a store over HTTP
(:mod:`repro.service`); ``--backend``/``--jobs`` pick where cold
batches execute (``process`` runs the O(|E|³) DP on every core).
``import`` ingests a PROV-JSON/OPM document (SP-izing foreign graphs,
with a report of any forced serialisations) and computes the new run's
distances to the corpus; ``export`` writes a stored run — or, with
``--script``, the edit script between two runs — back out as
PROV-JSON.  ``tail`` shows the live analytics of every *open*
streaming-ingestion session (nearest run, medoid distance bound,
outlier score, divergence flags) — snapshot by default, ``--follow``
to refresh until interrupted.

Exit codes are stable: ``0`` on success, ``1`` for any
:class:`~repro.errors.ReproError` (missing run, malformed document,
unreachable server, ...), ``2`` for command-line usage errors
(argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Union

from repro import __version__
from repro.api_types import QueryFilter
from repro.backends.base import BACKEND_NAMES
from repro.client import RemoteWorkspace
from repro.config import ReproConfig
from repro.core.kernel import KERNEL_NAMES
from repro.costs.base import CostModel
from repro.costs.standard import UnitCost, cost_from_spec
from repro.errors import CostModelError, ReproError
from repro.obs.logging import LOG_FORMATS, LOG_LEVELS
from repro.workspace import Workspace

#: What a subcommand operates on: local store or remote endpoint.
AnyWorkspace = Union[Workspace, RemoteWorkspace]


def _cost_model(text: str) -> CostModel:
    """Parse ``unit``, ``length``, or ``power:<epsilon>``."""
    try:
        return cost_from_spec(text)
    except CostModelError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _store_dir(text: str) -> Path:
    path = Path(text)
    if not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"store directory {text!r} does not exist"
        )
    return path


def _build_filter(args: argparse.Namespace) -> QueryFilter:
    """The declarative filter the query flags describe."""
    return QueryFilter(
        kinds=tuple(args.kind or ()),
        touches=tuple(args.touches or ()),
        min_cost=args.min_cost,
        max_cost=args.max_cost,
        min_ops=args.min_ops,
        max_ops=args.max_ops,
    )


# -- subcommands --------------------------------------------------------
def _workspace(args: argparse.Namespace) -> AnyWorkspace:
    """The workspace a subcommand operates on, built from its flags.

    ``--remote URL`` selects a :class:`RemoteWorkspace` (the STORE
    positional must then be omitted); otherwise a local
    :class:`Workspace` over the STORE directory.
    """
    remote = getattr(args, "remote", None)
    store = getattr(args, "store", None)
    if remote:
        if store is not None:
            raise ReproError(
                "pass either a STORE directory or --remote URL, "
                "not both"
            )
        return RemoteWorkspace(remote, cost=args.cost)
    if store is None:
        raise ReproError(
            "a STORE directory is required (or pass --remote URL)"
        )
    # Environment (``REPRO_*``) fills whatever the flags left unset;
    # explicit flags always win (from_env skips None overrides).
    return Workspace(
        store,
        ReproConfig.from_env(
            cost=args.cost,
            backend=getattr(args, "backend", None),
            jobs=getattr(args, "jobs", None),
            kernel=getattr(args, "kernel", None),
        ),
    )


def _cmd_diff(args: argparse.Namespace) -> int:
    outcome = _workspace(args).diff(
        args.run_a, args.run_b, spec=args.spec
    )
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"delta({args.run_a}, {args.run_b}) = {outcome.distance:g} "
        f"under {outcome.cost_model} ({outcome.op_count} ops)"
    )
    if args.ops:
        for position, op in enumerate(outcome.operations, start=1):
            print(f"  {position:3d}. {op}")
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    workspace = _workspace(args)
    matrix = workspace.matrix(spec=args.spec)
    if args.json:
        print(
            json.dumps(matrix.to_dict(), indent=2, sort_keys=True)
        )
        return 0
    names = matrix.runs
    width = max([4] + [len(name) for name in names])
    header = " " * (width + 1) + " ".join(
        f"{name:>{width}}" for name in names
    )
    print(header)
    for a in names:
        cells = []
        for b in names:
            if a == b:
                cells.append(f"{0.0:>{width}g}")
            else:
                value = matrix.get((a, b), matrix.get((b, a), 0.0))
                cells.append(f"{value:>{width}g}")
        print(f"{a:>{width}} " + " ".join(cells))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    workspace = _workspace(args)
    filter = _build_filter(args)
    docs = workspace.query(filter, spec=args.spec, cost=args.cost)
    # Aggregates and the match count cover the full result set; --limit
    # only truncates what is displayed.
    shown_docs = docs if args.limit is None else docs[: args.limit]
    if args.json:
        payload = {
            "spec": args.spec,
            "cost_model": args.cost.name,
            "predicate": filter.describe(),
            "total_matches": len(docs),
            "matches": [
                {
                    "run_a": doc.run_a,
                    "run_b": doc.run_b,
                    "distance": doc.distance,
                    "op_count": doc.op_count,
                }
                for doc in shown_docs
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"{len(docs)} matching pair(s) for {filter.describe()} "
        f"under {args.cost.name}"
        + (
            f" (showing {len(shown_docs)})"
            if len(shown_docs) < len(docs)
            else ""
        )
    )
    for doc in shown_docs:
        print(
            f"  {doc.run_a} -> {doc.run_b}: "
            f"distance {doc.distance:g}, {doc.op_count} ops"
        )
    if args.histogram:
        from repro.query.aggregate import op_kind_histogram

        print("operation kinds:")
        for kind, count in sorted(op_kind_histogram(docs).items()):
            print(f"  {kind}: {count}")
    if args.churn:
        from repro.query.aggregate import module_churn

        print("module churn:")
        for entry in module_churn(docs)[:10]:
            print(
                f"  {entry.label}: {entry.operations} ops, "
                f"cost {entry.total_cost:g} across {entry.pairs} pairs"
            )
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    workspace = _workspace(args)
    if isinstance(workspace, RemoteWorkspace):
        return _import_remote(workspace, args)
    result, distances = workspace.import_prov(
        args.document,
        name=args.name,
        spec_name=args.spec_name,
        diff=True,
        cost=args.cost,
    )
    report = result.report
    if args.json:
        payload = {
            "spec": result.spec.name,
            "run": result.run.name,
            "origin": result.origin,
            "nodes": result.run.num_nodes,
            "edges": result.run.num_edges,
            "report": report.to_dict(),
            "new_pairs": {
                f"{a}|{b}": value for (a, b), value in distances.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"imported run {result.run.name!r} "
        f"({result.run.num_nodes} nodes, {result.run.num_edges} edges) "
        f"into specification {result.spec.name!r} [{result.origin}]"
    )
    for line in report.summary_lines():
        print(f"  {line}")
    print(f"  distances to existing corpus: {len(distances)} pair(s)")
    return 0


def _import_remote(
    workspace: RemoteWorkspace, args: argparse.Namespace
) -> int:
    """``repro import --remote``: POST the document, print the summary."""
    summary = workspace.import_prov(
        args.document,
        name=args.name,
        spec_name=args.spec_name,
        diff=True,
        cost=args.cost,
    )
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"imported run {summary.run_name!r} "
        f"({summary.nodes} nodes, {summary.edges} edges) "
        f"into specification {summary.spec_name!r} [{summary.origin}]"
    )
    for line in summary.report_lines:
        print(f"  {line}")
    print(
        f"  distances to existing corpus: "
        f"{len(summary.new_pairs)} pair(s)"
    )
    return 0


def _render_live(status) -> str:
    """One open session as a human-readable ``tail`` line."""
    flag = ""
    if status.flagged:
        flag = f"  ⚑ DIVERGING (since seq {status.flagged_at_seq})"
    elif status.threshold is not None:
        flag = f"  (threshold {status.threshold:g})"
    nearest = (
        f"nearest {status.nearest_run} >= {status.nearest_bound:g}"
        if status.nearest_run
        else "no corpus baseline"
    )
    medoid = (
        f", medoid {status.medoid_run} >= {status.medoid_bound:g}"
        if status.medoid_run
        else ""
    )
    return (
        f"{status.session}: {status.spec_name}/{status.run_name} "
        f"[{status.mode}] seq {status.seq}, "
        f"{status.activities} activities / {status.edges} edges — "
        f"{nearest}{medoid}, outlier {status.outlier_score:g}{flag}"
    )


def _cmd_tail(args: argparse.Namespace) -> int:
    """``repro tail``: live view of open streaming sessions."""
    import time as _time

    workspace = _workspace(args)
    while True:
        sessions = workspace.stream_live()
        if args.json:
            print(
                json.dumps(
                    [status.to_dict() for status in sessions],
                    indent=2,
                    sort_keys=True,
                )
            )
        elif not sessions:
            print("no open streaming sessions")
        else:
            for status in sessions:
                print(_render_live(status))
        if not args.follow:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: host a store over HTTP until stopped.

    SIGTERM and SIGINT trigger a graceful drain: the listener stops
    accepting, in-flight requests get ``--drain-timeout`` seconds to
    finish, and a final stats line is logged.  A second signal hard
    exits immediately.
    """
    import os
    import signal
    import threading

    config = ReproConfig.from_env(
        cost=args.cost,
        backend=args.backend,
        jobs=args.jobs,
        kernel=getattr(args, "kernel", None),
        log_level=args.log_level,
        log_format=args.log_format,
        max_body_bytes=args.max_body_bytes,
        workers=getattr(args, "workers", None),
    )
    if config.workers >= 1:
        from repro.cluster.server import ClusterServer

        server = ClusterServer(
            args.store, config, host=args.host, port=args.port
        )
    else:
        from repro.service.server import DiffServer

        server = DiffServer(
            args.store, config, host=args.host, port=args.port
        )
    stop_threads: List[threading.Thread] = []
    signals_seen = {"count": 0}

    def _drain(signum, frame):
        signals_seen["count"] += 1
        if signals_seen["count"] > 1:
            # Second signal: the operator means it.  Skip the drain.
            os._exit(1)
        # stop() must not run on this (the serving) thread: shutdown()
        # would deadlock against the serve_forever loop it waits on.
        worker = threading.Thread(
            target=server.stop,
            args=(args.drain_timeout,),
            name="repro-drain",
            daemon=True,
        )
        stop_threads.append(worker)
        worker.start()

    previous = {
        sig: signal.signal(sig, _drain)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(
        f"serving {args.store} at {server.url} "
        "(SIGTERM/Ctrl-C drains and stops)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - non-main-thread sig
        print("shutting down")
    finally:
        server.stop(args.drain_timeout)
        for worker in stop_threads:
            worker.join(timeout=args.drain_timeout + 5)
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    workspace = _workspace(args)
    if args.script:
        text = json.dumps(
            workspace.export_script(
                args.run, args.script, spec=args.spec, cost=args.cost
            ),
            indent=2,
            sort_keys=True,
        )
    else:
        text = workspace.export_prov(args.run, spec=args.spec)
    if args.output:
        try:
            Path(args.output).write_text(text + "\n", encoding="utf8")
        except OSError as exc:
            raise ReproError(
                f"cannot write {args.output!r}: {exc}"
            ) from None
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_scale_build(args: argparse.Namespace) -> int:
    """``repro scale build``: materialise a seeded corpus.

    Batched, resumable, progress-logged: interrupting and re-running
    picks up where the build stopped, and a completed build re-runs as
    a cheap skip-scan.  Works against a local store directory or (with
    ``--remote``) a running diff server / cluster — every document
    enters through ``import_prov`` / ``POST /prov/import``.
    """
    from repro.scale.build import BuildPlan, CorpusBuilder

    workspace = _workspace(args)
    plan = BuildPlan(
        runs=args.runs,
        seed=args.seed,
        prefix=args.prefix,
        matrix_runs=args.matrix_runs,
        batch=args.batch,
    )
    report = CorpusBuilder(workspace, plan).build()
    payload = report.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"built {payload['imported']} run(s) "
        f"({payload['skipped']} already present) in "
        f"{payload['seconds']:g}s — "
        f"{payload['runs_per_second']:g} runs/s"
    )
    for family, count in payload["families"].items():
        print(f"  {family}: {count} imported")
    if payload["foreign_documents"]:
        print(
            f"  foreign documents: {payload['foreign_documents']} "
            f"({payload['non_sp_documents']} non-SP, "
            f"{payload['forced_serializations']} forced "
            "serialisations)"
        )
    return 0


def _cmd_scale_run(args: argparse.Namespace) -> int:
    """``repro scale run``: drive ingest/matrix/query workloads.

    Requires a corpus built by ``repro scale build`` with the same
    ``--prefix``.  Prints throughput/latency results; ``--json`` emits
    the full report (the shape ``bench_scale.py`` commits as
    ``BENCH_scale.json``).
    """
    from repro.scale.drivers import DriverConfig, drive_workloads

    workspace = _workspace(args)
    config = DriverConfig(
        prefix=args.prefix,
        seed=args.seed,
        probe_runs=args.probe_runs,
        query_repeats=args.query_repeats,
    )
    report = drive_workloads(workspace, config)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    ingest = report["ingest"]
    matrix = report["matrix"]
    query = report["query"]
    stats = report["stats"]
    print(
        f"ingest: {ingest['runs']} run(s) in {ingest['seconds']:g}s "
        f"— {ingest['runs_per_second']:g} runs/s"
    )
    print(
        f"matrix [{matrix['spec']}]: {matrix['runs']} runs / "
        f"{matrix['pairs']} pairs — cold {matrix['cold_seconds']:g}s, "
        f"warm {matrix['warm_seconds']:g}s"
    )
    print(
        f"query  [{query['spec']}]: p50 {query['p50_ms']:g}ms, "
        f"p95 {query['p95_ms']:g}ms over {query['repeats']} repeats"
    )
    print(
        f"dp fast paths: {stats['dp_skipped_by_bound']} skipped by "
        f"bound, {stats['dp_pruned_by_triangle']} pruned by triangle "
        f"(skip ratio {stats['dp_skip_ratio']:g})"
    )
    return 0


# -- wiring -------------------------------------------------------------
def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Differencing provenance in scientific workflows: diff, "
            "distance matrices, and edit-script queries over a store "
            "or a remote diff server."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "store",
            type=_store_dir,
            nargs="?",
            default=None,
            help="workflow store directory (omit with --remote)",
        )
        sub.add_argument("spec", help="specification name")
        sub.add_argument(
            "--cost",
            type=_cost_model,
            default=UnitCost(),
            help="cost model: unit, length, or power:E (default unit)",
        )
        sub.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )
        sub.add_argument(
            "--remote",
            metavar="URL",
            default=None,
            help="operate on a running `repro serve` endpoint "
            "instead of a local store directory",
        )

    def backend_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--backend",
            choices=list(BACKEND_NAMES),
            default=None,
            help="where cold diff batches execute (default thread, or "
            "REPRO_BACKEND; process uses every core)",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="parallelism of the backend (default: auto)",
        )
        sub.add_argument(
            "--kernel",
            choices=list(KERNEL_NAMES),
            default=None,
            help="DP convolution kernel (default auto, or "
            "REPRO_KERNEL: numpy when importable, else python)",
        )

    diff = commands.add_parser(
        "diff", help="edit distance and script between two stored runs"
    )
    common(diff)
    diff.add_argument("run_a")
    diff.add_argument("run_b")
    diff.add_argument(
        "--ops", action="store_true", help="print every path operation"
    )
    backend_flags(diff)
    diff.set_defaults(func=_cmd_diff)

    matrix = commands.add_parser(
        "matrix", help="all-pairs distance matrix of a specification"
    )
    common(matrix)
    backend_flags(matrix)
    matrix.set_defaults(func=_cmd_matrix)

    query = commands.add_parser(
        "query", help="search the corpus's edit scripts with predicates"
    )
    common(query)
    query.add_argument(
        "--kind",
        action="append",
        metavar="KIND",
        help="require an operation of this kind (repeatable, OR-ed)",
    )
    query.add_argument(
        "--touches",
        action="append",
        metavar="LABEL",
        help="require an operation touching this label (repeatable)",
    )
    query.add_argument("--min-cost", type=float, default=None)
    query.add_argument("--max-cost", type=float, default=None)
    query.add_argument("--min-ops", type=int, default=None)
    query.add_argument("--max-ops", type=int, default=None)
    query.add_argument(
        "--limit", type=int, default=None, help="show at most N matches"
    )
    query.add_argument(
        "--histogram",
        action="store_true",
        help="also print the operation-kind histogram",
    )
    query.add_argument(
        "--churn",
        action="store_true",
        help="also print the per-module churn ranking",
    )
    query.set_defaults(func=_cmd_query)

    imp = commands.add_parser(
        "import",
        help="ingest a PROV-JSON/OPM provenance document into a store",
    )
    # The store is created on demand: importing into a fresh directory
    # is the natural first step of a new corpus.
    imp.add_argument(
        "store",
        type=Path,
        nargs="?",
        default=None,
        help="workflow store directory (created; omit with --remote)",
    )
    imp.add_argument(
        "--remote",
        metavar="URL",
        default=None,
        help="import into a running `repro serve` endpoint instead",
    )
    imp.add_argument(
        "document", help="PROV-JSON (or OPM dialect) file to import"
    )
    imp.add_argument(
        "--name", default="", help="run name (defaults from the document)"
    )
    imp.add_argument(
        "--spec-name",
        default=None,
        help="specification name for foreign documents (default "
        "'imported'; embedded plans keep their own name)",
    )
    imp.add_argument(
        "--cost",
        type=_cost_model,
        default=UnitCost(),
        help="cost model for the new run's corpus distances",
    )
    imp.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    imp.set_defaults(func=_cmd_import)

    exp = commands.add_parser(
        "export",
        help="write a stored run (or an edit script) as PROV-JSON",
    )
    exp.add_argument(
        "store", type=_store_dir, help="workflow store directory"
    )
    exp.add_argument("spec", help="specification name")
    exp.add_argument("run", help="run to export")
    exp.add_argument(
        "--script",
        metavar="RUN_B",
        default=None,
        help="export the edit script from RUN to RUN_B instead",
    )
    exp.add_argument(
        "--cost",
        type=_cost_model,
        default=UnitCost(),
        help="cost model for --script (default unit)",
    )
    exp.add_argument(
        "--output", "-o", default=None, help="write to a file"
    )
    exp.set_defaults(func=_cmd_export)

    tail = commands.add_parser(
        "tail",
        help="live analytics of open streaming-ingestion sessions",
    )
    tail.add_argument(
        "store",
        type=_store_dir,
        nargs="?",
        default=None,
        help="workflow store directory (omit with --remote)",
    )
    tail.add_argument(
        "--remote",
        metavar="URL",
        default=None,
        help="watch a running `repro serve` endpoint instead",
    )
    tail.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep refreshing until interrupted",
    )
    tail.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between refreshes with --follow (default 2)",
    )
    tail.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    tail.set_defaults(func=_cmd_tail, cost=None)

    srv = commands.add_parser(
        "serve",
        help="serve a workflow store over HTTP (the diff service)",
    )
    # Created on demand: serving an empty directory is a valid way to
    # start a corpus — clients register and import over the wire.
    srv.add_argument(
        "store", type=Path, help="workflow store directory (created)"
    )
    srv.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    srv.add_argument(
        "--port",
        type=int,
        default=8321,
        metavar="N",
        help="bind port (default 8321; 0 picks a free port)",
    )
    srv.add_argument(
        "--cost",
        type=_cost_model,
        default=None,
        help="server-side default cost model "
        "(default unit, or REPRO_COST)",
    )
    backend_flags(srv)
    srv.add_argument(
        "--log-level",
        choices=list(LOG_LEVELS),
        default=None,
        help="logging threshold (default info, or REPRO_LOG_LEVEL)",
    )
    srv.add_argument(
        "--log-format",
        choices=list(LOG_FORMATS),
        default=None,
        help="log output format (default text, or REPRO_LOG_FORMAT; "
        "json emits one object per line, off silences)",
    )
    srv.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="serve through N sharded worker processes behind a "
        "routing parent (default 0 = single process, or "
        "REPRO_WORKERS)",
    )
    srv.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="seconds to wait for in-flight requests on shutdown "
        "(default 10)",
    )
    srv.add_argument(
        "--max-body-bytes",
        type=int,
        default=None,
        metavar="N",
        help="refuse request bodies larger than N bytes with a 413 "
        "(default 64 MiB, or REPRO_MAX_BODY_BYTES)",
    )
    srv.set_defaults(func=_cmd_serve)

    scale = commands.add_parser(
        "scale",
        help="build and drive 10³–10⁴-run benchmark corpora",
    )
    scale_commands = scale.add_subparsers(
        dest="scale_command", required=True
    )

    def scale_common(sub: argparse.ArgumentParser) -> None:
        # Created on demand, like `import`: building into a fresh
        # directory is the normal first step.
        sub.add_argument(
            "store",
            type=Path,
            nargs="?",
            default=None,
            help="workflow store directory (created; omit with "
            "--remote)",
        )
        sub.add_argument(
            "--remote",
            metavar="URL",
            default=None,
            help="target a running `repro serve` endpoint (single "
            "process or cluster) instead of a local store",
        )
        sub.add_argument(
            "--prefix",
            default="scale",
            help="corpus naming prefix (default 'scale')",
        )
        sub.add_argument(
            "--seed",
            type=int,
            default=20090329,
            metavar="N",
            help="generator seed (same seed => byte-identical corpus)",
        )
        sub.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )

    build = scale_commands.add_parser(
        "build",
        help="materialise a seeded corpus (batched, resumable)",
    )
    scale_common(build)
    build.add_argument(
        "--runs",
        type=int,
        default=1000,
        metavar="N",
        help="corpus size across families (default 1000)",
    )
    build.add_argument(
        "--matrix-runs",
        type=int,
        default=32,
        metavar="N",
        help="size of the dedicated matrix/query family (default 32)",
    )
    build.add_argument(
        "--batch",
        type=int,
        default=64,
        metavar="N",
        help="progress-log every N imports (default 64)",
    )
    backend_flags(build)
    build.set_defaults(func=_cmd_scale_build, cost=UnitCost())

    run = scale_commands.add_parser(
        "run",
        help="drive ingest/matrix/query workloads against a corpus",
    )
    scale_common(run)
    run.add_argument(
        "--probe-runs",
        type=int,
        default=32,
        metavar="N",
        help="fresh documents per ingest probe (default 32)",
    )
    run.add_argument(
        "--query-repeats",
        type=int,
        default=15,
        metavar="N",
        help="repeats per query shape for p50/p95 (default 15)",
    )
    backend_flags(run)
    run.set_defaults(func=_cmd_scale_run, cost=UnitCost())

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point; returns the process exit code.

    Exit codes are part of the CLI contract: ``0`` success, ``1`` any
    :class:`ReproError`, ``2`` usage errors (argparse), ``141`` broken
    pipe.
    """
    parser = _parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe early —
        # the conventional exit, not a traceback.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
