"""``repro`` — command-line access to a workflow store's corpus.

Installed as a console script (``[project.scripts]`` in
``pyproject.toml``); also runnable as ``python -m repro.cli``.  Three
subcommands over a store directory (the layout
:class:`~repro.io.store.WorkflowStore` maintains):

.. code-block:: sh

    repro diff   STORE SPEC RUN_A RUN_B [--cost unit|length|power:E] [--ops]
                 [--backend serial|thread|process] [--jobs N]
    repro matrix STORE SPEC [--cost ...] [--json]
                 [--backend serial|thread|process] [--jobs N]
    repro query  STORE SPEC [--kind K] [--touches L] [--min-cost X]
                 [--max-cost X] [--min-ops N] [--max-ops N]
                 [--histogram] [--churn] [--json]
    repro import STORE DOC.json [--name RUN] [--spec-name NAME] [--json]
    repro export STORE SPEC RUN [--output FILE] [--script RUN_B]

Every subcommand is a thin shell over a :class:`repro.Workspace`
configured through :class:`repro.ReproConfig`, so they share the
corpus's persistent caches under ``STORE/index/`` — a second invocation
of the same query answers from the warm index without recomputing a
single diff.  ``--backend``/``--jobs`` pick where cold batches execute
(``process`` runs the O(|E|³) DP on every core).  ``import`` ingests a
PROV-JSON/OPM document (SP-izing foreign graphs, with a report of any
forced serialisations) and computes the new run's distances to the
corpus; ``export`` writes a stored run — or, with ``--script``, the
edit script between two runs — back out as PROV-JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.backends.base import BACKEND_NAMES
from repro.config import ReproConfig
from repro.costs.base import CostModel
from repro.costs.standard import LengthCost, PowerCost, UnitCost
from repro.errors import ReproError
from repro.query.predicates import Predicate, Q
from repro.workspace import Workspace


def _cost_model(text: str) -> CostModel:
    """Parse ``unit``, ``length``, or ``power:<epsilon>``."""
    lowered = text.strip().lower()
    if lowered == "unit":
        return UnitCost()
    if lowered == "length":
        return LengthCost()
    if lowered.startswith("power:"):
        try:
            return PowerCost(float(lowered.split(":", 1)[1]))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid power-cost epsilon in {text!r}"
            )
    raise argparse.ArgumentTypeError(
        f"unknown cost model {text!r} (expected unit, length, or power:E)"
    )


def _store_dir(text: str) -> Path:
    path = Path(text)
    if not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"store directory {text!r} does not exist"
        )
    return path


def _build_predicate(args: argparse.Namespace) -> Optional[Predicate]:
    """AND together the predicate flags given on the command line."""
    parts: List[Predicate] = []
    if args.kind:
        parts.append(Q.op_kind(*args.kind))
    if args.touches:
        parts.append(Q.touches(*args.touches))
    if args.min_cost is not None or args.max_cost is not None:
        parts.append(Q.cost(min=args.min_cost, max=args.max_cost))
    if args.min_ops is not None or args.max_ops is not None:
        parts.append(Q.op_count(min=args.min_ops, max=args.max_ops))
    if not parts:
        return None
    predicate = parts[0]
    for part in parts[1:]:
        predicate = predicate & part
    return predicate


# -- subcommands --------------------------------------------------------
def _workspace(args: argparse.Namespace) -> Workspace:
    """The workspace a subcommand operates on, built from its flags."""
    return Workspace(
        args.store,
        ReproConfig(
            cost=args.cost,
            backend=getattr(args, "backend", "thread"),
            jobs=getattr(args, "jobs", None),
        ),
    )


def _cmd_diff(args: argparse.Namespace) -> int:
    outcome = _workspace(args).diff(
        args.run_a, args.run_b, spec=args.spec
    )
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"delta({args.run_a}, {args.run_b}) = {outcome.distance:g} "
        f"under {args.cost.name} ({outcome.op_count} ops)"
    )
    if args.ops:
        for position, op in enumerate(outcome.operations, start=1):
            print(f"  {position:3d}. {op}")
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    workspace = _workspace(args)
    matrix = workspace.matrix(spec=args.spec)
    if args.json:
        payload = {
            "spec": args.spec,
            "cost_model": args.cost.name,
            "distances": {
                f"{a}|{b}": value for (a, b), value in matrix.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    names = workspace.runs(spec=args.spec)
    width = max([4] + [len(name) for name in names])
    header = " " * (width + 1) + " ".join(
        f"{name:>{width}}" for name in names
    )
    print(header)
    for a in names:
        cells = []
        for b in names:
            if a == b:
                cells.append(f"{0.0:>{width}g}")
            else:
                value = matrix.get((a, b), matrix.get((b, a), 0.0))
                cells.append(f"{value:>{width}g}")
        print(f"{a:>{width}} " + " ".join(cells))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    workspace = _workspace(args)
    predicate = _build_predicate(args)
    docs = workspace.query(predicate, spec=args.spec, cost=args.cost)
    # Aggregates and the match count cover the full result set; --limit
    # only truncates what is displayed.
    shown_docs = docs if args.limit is None else docs[: args.limit]
    if args.json:
        payload = {
            "spec": args.spec,
            "cost_model": args.cost.name,
            "predicate": predicate.describe() if predicate else "*",
            "total_matches": len(docs),
            "matches": [
                {
                    "run_a": doc.run_a,
                    "run_b": doc.run_b,
                    "distance": doc.distance,
                    "op_count": doc.op_count,
                }
                for doc in shown_docs
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    shown = predicate.describe() if predicate else "*"
    print(
        f"{len(docs)} matching pair(s) for {shown} "
        f"under {args.cost.name}"
        + (
            f" (showing {len(shown_docs)})"
            if len(shown_docs) < len(docs)
            else ""
        )
    )
    for doc in shown_docs:
        print(f"  {doc}")
    if args.histogram:
        from repro.query.aggregate import op_kind_histogram

        print("operation kinds:")
        for kind, count in sorted(op_kind_histogram(docs).items()):
            print(f"  {kind}: {count}")
    if args.churn:
        from repro.query.aggregate import module_churn

        print("module churn:")
        for entry in module_churn(docs)[:10]:
            print(
                f"  {entry.label}: {entry.operations} ops, "
                f"cost {entry.total_cost:g} across {entry.pairs} pairs"
            )
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    result, distances = _workspace(args).import_prov(
        args.document,
        name=args.name,
        spec_name=args.spec_name,
        diff=True,
        cost=args.cost,
    )
    report = result.report
    if args.json:
        payload = {
            "spec": result.spec.name,
            "run": result.run.name,
            "origin": result.origin,
            "nodes": result.run.num_nodes,
            "edges": result.run.num_edges,
            "report": report.to_dict(),
            "new_pairs": {
                f"{a}|{b}": value for (a, b), value in distances.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"imported run {result.run.name!r} "
        f"({result.run.num_nodes} nodes, {result.run.num_edges} edges) "
        f"into specification {result.spec.name!r} [{result.origin}]"
    )
    for line in report.summary_lines():
        print(f"  {line}")
    print(f"  distances to existing corpus: {len(distances)} pair(s)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    workspace = _workspace(args)
    if args.script:
        text = json.dumps(
            workspace.export_script(
                args.run, args.script, spec=args.spec, cost=args.cost
            ),
            indent=2,
            sort_keys=True,
        )
    else:
        text = workspace.export_prov(args.run, spec=args.spec)
    if args.output:
        try:
            Path(args.output).write_text(text + "\n", encoding="utf8")
        except OSError as exc:
            raise ReproError(
                f"cannot write {args.output!r}: {exc}"
            ) from None
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


# -- wiring -------------------------------------------------------------
def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Differencing provenance in scientific workflows: diff, "
            "distance matrices, and edit-script queries over a store."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "store", type=_store_dir, help="workflow store directory"
        )
        sub.add_argument("spec", help="specification name")
        sub.add_argument(
            "--cost",
            type=_cost_model,
            default=UnitCost(),
            help="cost model: unit, length, or power:E (default unit)",
        )
        sub.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )

    def backend_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--backend",
            choices=list(BACKEND_NAMES),
            default="thread",
            help="where cold diff batches execute (default thread; "
            "process uses every core)",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="parallelism of the backend (default: auto)",
        )

    diff = commands.add_parser(
        "diff", help="edit distance and script between two stored runs"
    )
    common(diff)
    diff.add_argument("run_a")
    diff.add_argument("run_b")
    diff.add_argument(
        "--ops", action="store_true", help="print every path operation"
    )
    backend_flags(diff)
    diff.set_defaults(func=_cmd_diff)

    matrix = commands.add_parser(
        "matrix", help="all-pairs distance matrix of a specification"
    )
    common(matrix)
    backend_flags(matrix)
    matrix.set_defaults(func=_cmd_matrix)

    query = commands.add_parser(
        "query", help="search the corpus's edit scripts with predicates"
    )
    common(query)
    query.add_argument(
        "--kind",
        action="append",
        metavar="KIND",
        help="require an operation of this kind (repeatable, OR-ed)",
    )
    query.add_argument(
        "--touches",
        action="append",
        metavar="LABEL",
        help="require an operation touching this label (repeatable)",
    )
    query.add_argument("--min-cost", type=float, default=None)
    query.add_argument("--max-cost", type=float, default=None)
    query.add_argument("--min-ops", type=int, default=None)
    query.add_argument("--max-ops", type=int, default=None)
    query.add_argument(
        "--limit", type=int, default=None, help="show at most N matches"
    )
    query.add_argument(
        "--histogram",
        action="store_true",
        help="also print the operation-kind histogram",
    )
    query.add_argument(
        "--churn",
        action="store_true",
        help="also print the per-module churn ranking",
    )
    query.set_defaults(func=_cmd_query)

    imp = commands.add_parser(
        "import",
        help="ingest a PROV-JSON/OPM provenance document into a store",
    )
    # The store is created on demand: importing into a fresh directory
    # is the natural first step of a new corpus.
    imp.add_argument(
        "store", type=Path, help="workflow store directory (created)"
    )
    imp.add_argument(
        "document", help="PROV-JSON (or OPM dialect) file to import"
    )
    imp.add_argument(
        "--name", default="", help="run name (defaults from the document)"
    )
    imp.add_argument(
        "--spec-name",
        default=None,
        help="specification name for foreign documents (default "
        "'imported'; embedded plans keep their own name)",
    )
    imp.add_argument(
        "--cost",
        type=_cost_model,
        default=UnitCost(),
        help="cost model for the new run's corpus distances",
    )
    imp.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    imp.set_defaults(func=_cmd_import)

    exp = commands.add_parser(
        "export",
        help="write a stored run (or an edit script) as PROV-JSON",
    )
    exp.add_argument(
        "store", type=_store_dir, help="workflow store directory"
    )
    exp.add_argument("spec", help="specification name")
    exp.add_argument("run", help="run to export")
    exp.add_argument(
        "--script",
        metavar="RUN_B",
        default=None,
        help="export the edit script from RUN to RUN_B instead",
    )
    exp.add_argument(
        "--cost",
        type=_cost_model,
        default=UnitCost(),
        help="cost model for --script (default unit)",
    )
    exp.add_argument(
        "--output", "-o", default=None, help="write to a file"
    )
    exp.set_defaults(func=_cmd_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point; returns the process exit code."""
    parser = _parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe early —
        # the conventional exit, not a traceback.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
