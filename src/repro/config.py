"""Typed configuration for a :class:`~repro.workspace.Workspace`.

One dataclass carries every knob the layered subsystems used to take
separately — cost model, execution backend, parallelism, cache sizing,
persistence — so a workspace (and the CLI) wires store, diff service,
query engine and view layers consistently from a single object::

    from repro import ReproConfig, Workspace
    ws = Workspace(path, ReproConfig(backend="process", jobs=8))

Configs are plain frozen dataclasses: build variants with
:func:`dataclasses.replace` and pass them around freely — a config
never holds live resources (the backend is constructed on demand by
:meth:`ReproConfig.make_backend`, unless the caller supplies an
instance to share).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.backends.base import (
    BACKEND_NAMES,
    ExecutorBackend,
    make_backend,
)
from repro.costs.base import CostModel
from repro.costs.standard import UnitCost
from repro.errors import ReproError


@dataclass(frozen=True)
class ReproConfig:
    """Everything a workspace needs to wire its subsystems.

    Attributes
    ----------
    cost:
        Default cost model ``γ`` for every operation that accepts one
        (each call can still override it per invocation).
    backend:
        Execution substrate for cold batches: ``"serial"``,
        ``"thread"``, ``"process"``, or an
        :class:`~repro.backends.base.ExecutorBackend` instance (shared
        as-is, e.g. to reuse one process pool across workspaces).
    jobs:
        Parallelism for a backend given by name; ``None`` picks for the
        machine.  Must be ``None`` when ``backend`` is an instance.
    cache_size:
        Bound of the in-memory distance/script cache tiers.
    persistent:
        When ``False`` the workspace keeps all derived state (caches,
        fingerprints, indexes) in memory only — nothing lands under
        ``<store>/index/``.
    record_intermediates:
        Whether :meth:`Workspace.view` diffs keep per-operation graph
        snapshots (needed for stepping through intermediate states).
    """

    cost: CostModel = field(default_factory=UnitCost)
    backend: Union[str, ExecutorBackend] = "thread"
    jobs: Optional[int] = None
    cache_size: int = 4096
    persistent: bool = True
    record_intermediates: bool = True

    def __post_init__(self):
        if self.jobs is not None and self.jobs < 1:
            raise ReproError(
                f"ReproConfig.jobs must be >= 1, got {self.jobs}"
            )
        if isinstance(self.backend, ExecutorBackend):
            # Enforce the documented contract at construction, where
            # the mistake is made — not later at Workspace() time.
            if self.jobs is not None:
                raise ReproError(
                    "ReproConfig.jobs must be None when backend is an "
                    "already-constructed instance "
                    f"({self.backend.describe()} carries its own width)"
                )
        elif str(self.backend).strip().lower() not in BACKEND_NAMES:
            raise ReproError(
                f"unknown backend {self.backend!r} "
                f"(expected one of {', '.join(BACKEND_NAMES)} "
                "or an ExecutorBackend instance)"
            )

    def make_backend(self) -> ExecutorBackend:
        """Resolve :attr:`backend`/:attr:`jobs` to a live backend."""
        return make_backend(self.backend, self.jobs)
