"""Typed configuration for a :class:`~repro.workspace.Workspace`.

One dataclass carries every knob the layered subsystems used to take
separately — cost model, execution backend, parallelism, cache sizing,
persistence — so a workspace (and the CLI) wires store, diff service,
query engine and view layers consistently from a single object::

    from repro import ReproConfig, Workspace
    ws = Workspace(path, ReproConfig(backend="process", jobs=8))

Configs are plain frozen dataclasses: build variants with
:func:`dataclasses.replace` and pass them around freely — a config
never holds live resources (the backend is constructed on demand by
:meth:`ReproConfig.make_backend`, unless the caller supplies an
instance to share).

Deployments configure through the environment instead of code:
:meth:`ReproConfig.from_env` reads the ``REPRO_*`` variables
(``REPRO_COST``, ``REPRO_BACKEND``, ``REPRO_JOBS``,
``REPRO_CACHE_SIZE``, ``REPRO_LOG_LEVEL``, ``REPRO_LOG_FORMAT``,
``REPRO_METRICS``, ``REPRO_MAX_BODY_BYTES``, ``REPRO_KERNEL``,
``REPRO_WORKERS``), with
keyword overrides — the CLI's flags — taking precedence over the
environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro.backends.base import (
    BACKEND_NAMES,
    ExecutorBackend,
    make_backend,
)
from repro.core.kernel import KERNEL_NAMES
from repro.costs.base import CostModel
from repro.costs.standard import UnitCost, cost_from_spec
from repro.errors import ReproError
from repro.obs.logging import LOG_FORMATS, LOG_LEVELS

#: Truthy/falsy spellings accepted by boolean ``REPRO_*`` variables.
_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def _env_bool(name: str, raw: str) -> bool:
    word = raw.strip().lower()
    if word in _TRUE_WORDS:
        return True
    if word in _FALSE_WORDS:
        return False
    raise ReproError(
        f"{name} must be a boolean "
        f"(one of {', '.join(sorted(_TRUE_WORDS | _FALSE_WORDS))}), "
        f"got {raw!r}"
    )


def _env_int(name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ReproError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


@dataclass(frozen=True)
class ReproConfig:
    """Everything a workspace needs to wire its subsystems.

    Attributes
    ----------
    cost:
        Default cost model ``γ`` for every operation that accepts one
        (each call can still override it per invocation).
    backend:
        Execution substrate for cold batches: ``"serial"``,
        ``"thread"``, ``"process"``, or an
        :class:`~repro.backends.base.ExecutorBackend` instance (shared
        as-is, e.g. to reuse one process pool across workspaces).
    jobs:
        Parallelism for a backend given by name; ``None`` picks for the
        machine.  Must be ``None`` when ``backend`` is an instance.
    cache_size:
        Bound of the in-memory distance/script cache tiers.
    persistent:
        When ``False`` the workspace keeps all derived state (caches,
        fingerprints, indexes) in memory only — nothing lands under
        ``<store>/index/``.
    record_intermediates:
        Whether :meth:`Workspace.view` diffs keep per-operation graph
        snapshots (needed for stepping through intermediate states).
    log_level:
        Threshold of the ``repro`` logger hierarchy (``debug`` ..
        ``critical``); applied by :class:`~repro.service.server.DiffServer`
        through :func:`repro.obs.logging.configure_logging`.
    log_format:
        Log output format: ``json`` (structured, one object per line),
        ``text`` (human-readable), or ``off`` (silent — the test
        fixtures' setting).
    metrics:
        Whether the workspace collects metrics.  ``False`` hands the
        stack a disabled :class:`~repro.obs.metrics.MetricsRegistry`
        whose updates are no-ops.
    max_body_bytes:
        Ceiling on an HTTP request body the diff server will accept
        (both ``Content-Length`` and chunked transfers); larger bodies
        are refused with a structured ``413`` envelope *without being
        read*.  Default 64 MiB.
    kernel:
        DP convolution kernel (:data:`repro.core.kernel.KERNEL_NAMES`):
        ``"auto"`` (numpy when importable, pure Python otherwise),
        ``"python"`` (the bit-identical oracle), or ``"numpy"``
        (vectorised; an error when numpy is absent).
    workers:
        Server worker processes for ``repro serve``.  ``0`` (the
        default) serves single-process; ``N >= 1`` pre-forks ``N``
        sharded worker processes behind a routing parent
        (:class:`~repro.cluster.server.ClusterServer`).  Ignored by
        non-serving workspaces.
    """

    cost: CostModel = field(default_factory=UnitCost)
    backend: Union[str, ExecutorBackend] = "thread"
    jobs: Optional[int] = None
    cache_size: int = 4096
    persistent: bool = True
    record_intermediates: bool = True
    log_level: str = "info"
    log_format: str = "text"
    metrics: bool = True
    max_body_bytes: int = 64 * 1024 * 1024
    kernel: str = "auto"
    workers: int = 0

    def __post_init__(self):
        if str(self.log_format).strip().lower() not in LOG_FORMATS:
            raise ReproError(
                f"unknown log format {self.log_format!r} "
                f"(expected one of {', '.join(LOG_FORMATS)})"
            )
        if str(self.log_level).strip().lower() not in LOG_LEVELS:
            raise ReproError(
                f"unknown log level {self.log_level!r} "
                f"(expected one of {', '.join(LOG_LEVELS)})"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ReproError(
                f"ReproConfig.jobs must be >= 1, got {self.jobs}"
            )
        if self.max_body_bytes < 1:
            raise ReproError(
                "ReproConfig.max_body_bytes must be >= 1, "
                f"got {self.max_body_bytes}"
            )
        if self.workers < 0:
            raise ReproError(
                f"ReproConfig.workers must be >= 0, got {self.workers}"
            )
        if str(self.kernel).strip().lower() not in KERNEL_NAMES:
            raise ReproError(
                f"unknown kernel {self.kernel!r} "
                f"(expected one of {', '.join(KERNEL_NAMES)})"
            )
        if isinstance(self.backend, ExecutorBackend):
            # Enforce the documented contract at construction, where
            # the mistake is made — not later at Workspace() time.
            if self.jobs is not None:
                raise ReproError(
                    "ReproConfig.jobs must be None when backend is an "
                    "already-constructed instance "
                    f"({self.backend.describe()} carries its own width)"
                )
        elif str(self.backend).strip().lower() not in BACKEND_NAMES:
            raise ReproError(
                f"unknown backend {self.backend!r} "
                f"(expected one of {', '.join(BACKEND_NAMES)} "
                "or an ExecutorBackend instance)"
            )

    def make_backend(self) -> ExecutorBackend:
        """Resolve :attr:`backend`/:attr:`jobs` to a live backend."""
        return make_backend(self.backend, self.jobs)

    @classmethod
    def from_env(
        cls,
        env: Optional[Mapping[str, str]] = None,
        **overrides,
    ) -> "ReproConfig":
        """A config from ``REPRO_*`` environment variables.

        ``env`` defaults to :data:`os.environ`; keyword ``overrides``
        (the CLI's explicit flags) win over the environment, which wins
        over the dataclass defaults.  Malformed values raise
        :class:`~repro.errors.ReproError` naming the variable — a
        typo'd deployment must fail at startup, not fall back silently.
        """
        source = os.environ if env is None else env
        values: dict = {}
        if source.get("REPRO_COST"):
            values["cost"] = cost_from_spec(source["REPRO_COST"])
        if source.get("REPRO_BACKEND"):
            values["backend"] = source["REPRO_BACKEND"].strip().lower()
        if source.get("REPRO_JOBS"):
            values["jobs"] = _env_int("REPRO_JOBS", source["REPRO_JOBS"])
        if source.get("REPRO_CACHE_SIZE"):
            values["cache_size"] = _env_int(
                "REPRO_CACHE_SIZE", source["REPRO_CACHE_SIZE"]
            )
        if source.get("REPRO_LOG_LEVEL"):
            values["log_level"] = (
                source["REPRO_LOG_LEVEL"].strip().lower()
            )
        if source.get("REPRO_LOG_FORMAT"):
            values["log_format"] = (
                source["REPRO_LOG_FORMAT"].strip().lower()
            )
        if source.get("REPRO_METRICS"):
            values["metrics"] = _env_bool(
                "REPRO_METRICS", source["REPRO_METRICS"]
            )
        if source.get("REPRO_MAX_BODY_BYTES"):
            values["max_body_bytes"] = _env_int(
                "REPRO_MAX_BODY_BYTES", source["REPRO_MAX_BODY_BYTES"]
            )
        if source.get("REPRO_KERNEL"):
            values["kernel"] = source["REPRO_KERNEL"].strip().lower()
        if source.get("REPRO_WORKERS"):
            values["workers"] = _env_int(
                "REPRO_WORKERS", source["REPRO_WORKERS"]
            )
        for key, value in overrides.items():
            if value is not None:
                values[key] = value
        return cls(**values)
