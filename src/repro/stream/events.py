"""The streaming-ingestion event model and NDJSON framing.

A run enters the workspace *while it executes* as an append-only
sequence of four event kinds, all addressed to one **session** (one
session = one open run):

========== =========================================================
kind       meaning
========== =========================================================
run_open   start (or resume) a session: spec name, run name, optional
           divergence threshold.  Always sequence number 1.
activity   one module invocation: node id plus display label.
edge       one dependency: ``src`` executed before ``dst``.
run_close  the run is complete — validate/normalise, enter the corpus.
========== =========================================================

Sequence numbers are **monotonic and contiguous** per session, starting
at 1 with ``run_open``.  Replayed frames (``seq`` at or below the acked
prefix) are acknowledged idempotently, frames that skip ahead are
rejected — which makes at-least-once delivery over a lossy transport
behave as exactly-once ingestion.  The resume contract and backpressure
semantics are documented in ``docs/STREAMING.md``.

Events travel as NDJSON (one JSON object per line) over
``POST /stream/events``; the server answers with one
:class:`StreamAck` per session, carrying the acknowledged sequence
number, a :class:`LiveStatus` analytics snapshot while the run is open,
and an :class:`~repro.api_types.ImportSummary` once it closes.

Everything here follows the :mod:`repro.api_types` conventions:
versioned payloads (``"v"``), strict ``from_dict`` raising
:class:`~repro.errors.StreamProtocolError` on malformed frames, and
deterministic ``to_dict`` output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.api_types import ImportSummary, WIRE_VERSION
from repro.errors import StreamProtocolError

#: Schema version of every streaming payload (events, acks, live view).
STREAM_WIRE_VERSION = WIRE_VERSION

KIND_RUN_OPEN = "run_open"
KIND_ACTIVITY = "activity"
KIND_EDGE = "edge"
KIND_RUN_CLOSE = "run_close"

#: Every event kind, in protocol order.
EVENT_KINDS = (KIND_RUN_OPEN, KIND_ACTIVITY, KIND_EDGE, KIND_RUN_CLOSE)

#: Session modes a ``run_open`` may request (see
#: :mod:`repro.stream.hub`): ``auto`` validates when the specification
#: is registered and derives otherwise.
SESSION_MODES = ("auto", "validated", "derive")


def _frame_error(message: str, line: Optional[int] = None) -> StreamProtocolError:
    prefix = f"frame {line}: " if line is not None else ""
    return StreamProtocolError(prefix + message)


def _require_str(payload: dict, key: str, line: Optional[int]) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise _frame_error(
            f"event field {key!r} must be a non-empty string, "
            f"got {value!r}",
            line,
        )
    return value


def _require_seq(payload: dict, line: Optional[int]) -> int:
    value = payload.get("seq")
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise _frame_error(
            f"event field 'seq' must be a positive integer, got {value!r}",
            line,
        )
    return value


@dataclass(frozen=True)
class RunOpen:
    """Open (or resume) a streaming session.  Always ``seq == 1``.

    ``threshold`` arms the live divergence flag: once the session's
    label-surplus lower bound to its *nearest* corpus run exceeds it,
    the run is flagged — before ``run_close``, while it still executes.
    ``None`` leaves flagging disarmed (the bounds are still reported).

    ``mode`` picks how ``run_close`` enters the corpus: ``validated``
    (the streamed graph must be a run of the registered specification),
    ``derive`` (the incremental normaliser's derived specification, as
    a whole-document import would), or ``auto`` — validated when the
    specification is registered, derive otherwise.  Streams aimed at a
    corpus whose specification was itself *derived* by earlier imports
    should say ``derive`` explicitly.
    """

    session: str
    spec_name: str
    run_name: str
    seq: int = 1
    threshold: Optional[float] = None
    mode: str = "auto"
    kind: str = field(default=KIND_RUN_OPEN, init=False)

    def to_dict(self) -> dict:
        return {
            "v": STREAM_WIRE_VERSION,
            "kind": KIND_RUN_OPEN,
            "session": self.session,
            "seq": self.seq,
            "spec": self.spec_name,
            "run": self.run_name,
            "threshold": self.threshold,
            "mode": self.mode,
        }


@dataclass(frozen=True)
class ActivityEvent:
    """One module invocation: node ``id`` plus display ``label``.

    An empty label defaults to the id's local name, exactly as the
    whole-document importer labels undeclared activities.
    """

    session: str
    seq: int
    node: str
    label: str = ""
    kind: str = field(default=KIND_ACTIVITY, init=False)

    def to_dict(self) -> dict:
        return {
            "v": STREAM_WIRE_VERSION,
            "kind": KIND_ACTIVITY,
            "session": self.session,
            "seq": self.seq,
            "id": self.node,
            "label": self.label,
        }


@dataclass(frozen=True)
class EdgeEvent:
    """One dependency: activity ``src`` executed before ``dst``."""

    session: str
    seq: int
    src: str
    dst: str
    kind: str = field(default=KIND_EDGE, init=False)

    def to_dict(self) -> dict:
        return {
            "v": STREAM_WIRE_VERSION,
            "kind": KIND_EDGE,
            "session": self.session,
            "seq": self.seq,
            "src": self.src,
            "dst": self.dst,
        }


@dataclass(frozen=True)
class RunClose:
    """The run is complete: validate/normalise and enter the corpus."""

    session: str
    seq: int
    kind: str = field(default=KIND_RUN_CLOSE, init=False)

    def to_dict(self) -> dict:
        return {
            "v": STREAM_WIRE_VERSION,
            "kind": KIND_RUN_CLOSE,
            "session": self.session,
            "seq": self.seq,
        }


#: Any streaming event.
StreamEvent = Union[RunOpen, ActivityEvent, EdgeEvent, RunClose]


def event_from_dict(
    payload: Any, line: Optional[int] = None
) -> StreamEvent:
    """Decode one event frame; strict, with the frame number in errors.

    Raises :class:`~repro.errors.StreamProtocolError` on anything that
    is not a well-formed event of a known kind and version — malformed
    frames must fail loudly, never half-apply.
    """
    if not isinstance(payload, dict):
        raise _frame_error(
            f"event frame must be a JSON object, got {type(payload).__name__}",
            line,
        )
    if payload.get("v") != STREAM_WIRE_VERSION:
        raise _frame_error(
            f"unsupported stream schema version {payload.get('v')!r} "
            f"(this peer speaks v{STREAM_WIRE_VERSION})",
            line,
        )
    kind = payload.get("kind")
    session = _require_str(payload, "session", line)
    seq = _require_seq(payload, line)
    if kind == KIND_RUN_OPEN:
        if seq != 1:
            raise _frame_error(
                f"run_open must carry seq 1, got {seq}", line
            )
        threshold = payload.get("threshold")
        if threshold is not None:
            if isinstance(threshold, bool) or not isinstance(
                threshold, (int, float)
            ):
                raise _frame_error(
                    f"run_open 'threshold' must be a number or null, "
                    f"got {threshold!r}",
                    line,
                )
            threshold = float(threshold)
        mode = payload.get("mode", "auto")
        if mode not in SESSION_MODES:
            raise _frame_error(
                f"run_open 'mode' must be one of "
                f"{', '.join(SESSION_MODES)}, got {mode!r}",
                line,
            )
        return RunOpen(
            session=session,
            spec_name=_require_str(payload, "spec", line),
            run_name=_require_str(payload, "run", line),
            seq=seq,
            threshold=threshold,
            mode=mode,
        )
    if kind == KIND_ACTIVITY:
        label = payload.get("label", "")
        if not isinstance(label, str):
            raise _frame_error(
                f"activity 'label' must be a string, got {label!r}", line
            )
        return ActivityEvent(
            session=session,
            seq=seq,
            node=_require_str(payload, "id", line),
            label=label,
        )
    if kind == KIND_EDGE:
        return EdgeEvent(
            session=session,
            seq=seq,
            src=_require_str(payload, "src", line),
            dst=_require_str(payload, "dst", line),
        )
    if kind == KIND_RUN_CLOSE:
        return RunClose(session=session, seq=seq)
    raise _frame_error(
        f"unknown event kind {kind!r} "
        f"(expected one of {', '.join(EVENT_KINDS)})",
        line,
    )


# -- NDJSON framing -----------------------------------------------------
def encode_events(events: List[StreamEvent]) -> bytes:
    """Frame events as NDJSON: one compact JSON object per line."""
    return b"".join(
        json.dumps(
            event.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf8")
        + b"\n"
        for event in events
    )


def decode_events(data: bytes) -> List[StreamEvent]:
    """Parse an NDJSON body into events; 1-based frame numbers in errors.

    Blank lines are permitted (a trailing newline is the normal case).
    The first malformed frame aborts the whole parse — the transport
    applies *nothing* from a batch it could not fully decode ahead of
    sequencing, so a framing bug never half-ingests.
    """
    try:
        text = data.decode("utf8")
    except UnicodeDecodeError as exc:
        raise StreamProtocolError(
            f"stream body is not valid UTF-8: {exc}"
        ) from None
    events: List[StreamEvent] = []
    for number, raw_line in enumerate(text.split("\n"), start=1):
        line = raw_line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise _frame_error(
                f"not valid JSON: {exc}", number
            ) from None
        events.append(event_from_dict(payload, line=number))
    if not events:
        raise StreamProtocolError(
            "stream body contains no event frames"
        )
    return events


# -- live analytics snapshots -------------------------------------------
@dataclass
class LiveStatus:
    """One open session's analytics against the frozen corpus.

    The bounds are **label-surplus lower bounds**: for every corpus run
    ``R``, ``sum(max(0, open[l] - R[l]))`` over labels ``l`` — every
    instance the open run has already streamed beyond ``R``'s label
    multiset must be removed by some path operation.  Under the length
    cost model this is a sound lower bound on the final edit distance
    however the run completes (each deletion/contraction of a path
    with ``k`` surplus interior instances costs at least ``k``); under
    unit cost it is a divergence heuristic.  The bound is monotone
    non-decreasing as events arrive, so a threshold crossing is final.
    """

    session: str
    spec_name: str
    run_name: str
    seq: int
    activities: int
    edges: int
    mode: str  #: ``validated`` (spec known) or ``derive`` (foreign)
    nearest_run: Optional[str] = None
    nearest_bound: float = 0.0
    medoid_run: Optional[str] = None
    medoid_bound: float = 0.0
    outlier_score: float = 0.0  #: mean bound over the corpus
    threshold: Optional[float] = None
    flagged: bool = False
    flagged_at_seq: Optional[int] = None
    #: The partial normalisation report of the incrementally maintained
    #: SP-tree (``was_series_parallel``, forced serialisations so far).
    sp_report: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "v": STREAM_WIRE_VERSION,
            "session": self.session,
            "spec": self.spec_name,
            "run": self.run_name,
            "seq": self.seq,
            "activities": self.activities,
            "edges": self.edges,
            "mode": self.mode,
            "nearest_run": self.nearest_run,
            "nearest_bound": self.nearest_bound,
            "medoid_run": self.medoid_run,
            "medoid_bound": self.medoid_bound,
            "outlier_score": self.outlier_score,
            "threshold": self.threshold,
            "flagged": self.flagged,
            "flagged_at_seq": self.flagged_at_seq,
            "sp_report": dict(self.sp_report),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "LiveStatus":
        if not isinstance(payload, dict) or payload.get("v") != (
            STREAM_WIRE_VERSION
        ):
            raise StreamProtocolError(
                "malformed LiveStatus payload (bad envelope)"
            )
        try:
            return cls(
                session=str(payload["session"]),
                spec_name=str(payload["spec"]),
                run_name=str(payload["run"]),
                seq=int(payload["seq"]),
                activities=int(payload["activities"]),
                edges=int(payload["edges"]),
                mode=str(payload["mode"]),
                nearest_run=payload.get("nearest_run"),
                nearest_bound=float(payload.get("nearest_bound", 0.0)),
                medoid_run=payload.get("medoid_run"),
                medoid_bound=float(payload.get("medoid_bound", 0.0)),
                outlier_score=float(payload.get("outlier_score", 0.0)),
                threshold=(
                    None
                    if payload.get("threshold") is None
                    else float(payload["threshold"])
                ),
                flagged=bool(payload.get("flagged", False)),
                flagged_at_seq=(
                    None
                    if payload.get("flagged_at_seq") is None
                    else int(payload["flagged_at_seq"])
                ),
                sp_report=dict(payload.get("sp_report", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamProtocolError(
                f"malformed LiveStatus payload: {exc}"
            ) from None


# -- acknowledgements ---------------------------------------------------
@dataclass
class StreamAck:
    """The server's answer to a batch of one session's events.

    ``acked_seq`` is the contiguous prefix the server has applied — the
    client may drop every buffered event at or below it, and resumes
    from ``acked_seq + 1`` after a transport failure.  ``duplicates``
    counts idempotently replayed frames in the batch.  While the
    session is open, ``live`` carries the analytics snapshot; once
    closed, ``result`` carries the import summary (normalisation
    report plus the newcomer's corpus distances).
    """

    session: str
    acked_seq: int
    status: str  #: ``open`` or ``closed``
    resumed: bool = False
    duplicates: int = 0
    live: Optional[LiveStatus] = None
    result: Optional[ImportSummary] = None

    def to_dict(self) -> dict:
        return {
            "v": STREAM_WIRE_VERSION,
            "session": self.session,
            "acked_seq": self.acked_seq,
            "status": self.status,
            "resumed": self.resumed,
            "duplicates": self.duplicates,
            "live": None if self.live is None else self.live.to_dict(),
            "result": (
                None if self.result is None else self.result.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "StreamAck":
        if not isinstance(payload, dict) or payload.get("v") != (
            STREAM_WIRE_VERSION
        ):
            raise StreamProtocolError(
                "malformed StreamAck payload (bad envelope)"
            )
        try:
            return cls(
                session=str(payload["session"]),
                acked_seq=int(payload["acked_seq"]),
                status=str(payload["status"]),
                resumed=bool(payload.get("resumed", False)),
                duplicates=int(payload.get("duplicates", 0)),
                live=(
                    None
                    if payload.get("live") is None
                    else LiveStatus.from_dict(payload["live"])
                ),
                result=(
                    None
                    if payload.get("result") is None
                    else ImportSummary.from_dict(payload["result"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamProtocolError(
                f"malformed StreamAck payload: {exc}"
            ) from None


def events_from_document(
    doc,
    session: str,
    spec_name: str,
    run_name: str,
    threshold: Optional[float] = None,
    mode: str = "auto",
) -> List[StreamEvent]:
    """Event-ize a :class:`~repro.interchange.prov_json.ProvDocument`.

    The canonical whole-document → event-stream embedding: activities
    in :meth:`~repro.interchange.prov_json.ProvDocument.activity_ids`
    order (labels resolved the way the importer would), then one edge
    event per deduplicated dependency pair in
    :meth:`~repro.interchange.prov_json.ProvDocument.dependency_pairs`
    order.  Streaming these events ingests bit-identically to importing
    the document whole — the property the Hypothesis suite pins down.
    """
    from repro.interchange.prov_json import activity_label

    events: List[StreamEvent] = [
        RunOpen(
            session=session,
            spec_name=spec_name,
            run_name=run_name,
            threshold=threshold,
            mode=mode,
        )
    ]
    seq = 1
    for activity in doc.activity_ids():
        seq += 1
        events.append(
            ActivityEvent(
                session=session,
                seq=seq,
                node=activity,
                label=activity_label(doc, activity),
            )
        )
    for src, dst in doc.dependency_pairs():
        seq += 1
        events.append(
            EdgeEvent(session=session, seq=seq, src=src, dst=dst)
        )
    events.append(RunClose(session=session, seq=seq + 1))
    return events
