"""The streaming client: buffer, flush, retry, resume.

:class:`StreamSession` is transport-agnostic: it is constructed with a
``send`` callable that takes one NDJSON-framed batch (bytes) and
returns the server's :class:`~repro.stream.events.StreamAck` — either
the in-process hub (:meth:`Workspace.stream`) or an HTTP POST
(:meth:`RemoteWorkspace.stream`).  Everything protocol-shaped lives
here, once:

* **sequence numbering** — events are stamped with contiguous sequence
  numbers as they are recorded;
* **buffering** — events accumulate in an outbox and go out in batches
  of ``batch_size`` (or on an explicit :meth:`flush`);
* **retry and resume** — a :class:`~repro.errors.TransportError` (the
  server was unreachable; nothing is known about what it applied)
  triggers a bounded retry that re-handshakes with the session's
  ``run_open`` frame and replays the unacknowledged suffix.  The
  server acknowledges replayed frames idempotently, so at-least-once
  delivery lands as exactly-once ingestion.

Application errors (an :class:`~repro.errors.ReproError` decoded from
a structured error envelope, or raised directly by the in-process hub)
are **not** retried — the server is telling the client its stream is
wrong, and repeating it will not help.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, List, Optional

from repro.errors import ReproError, TransportError
from repro.stream.events import (
    ActivityEvent,
    EdgeEvent,
    LiveStatus,
    RunClose,
    RunOpen,
    StreamAck,
    StreamEvent,
    encode_events,
)

#: Process-wide source of distinct default session ids.
_session_ids = itertools.count(1)
_session_id_lock = threading.Lock()


def _default_session_id(spec_name: str, run_name: str) -> str:
    with _session_id_lock:
        number = next(_session_ids)
    return f"{spec_name}/{run_name}#{number}"


class StreamSession:
    """One open run, streamed event by event.

    Use as a context manager::

        with workspace.stream("PA", "r05", threshold=4.0) as stream:
            stream.activity("a1", "align")
            stream.edge("a1", "a2")
            ...
            summary = stream.close_run()

    ``close_run`` flushes, closes the session and returns the final
    :class:`~repro.stream.events.StreamAck` (whose ``result`` carries
    the import summary and the newcomer's corpus distances).  Leaving
    the ``with`` block without closing flushes the outbox but leaves
    the session open server-side — a later session object with the
    same ``session_id`` may resume it.
    """

    def __init__(
        self,
        send: Callable[[bytes], StreamAck],
        spec_name: str,
        run_name: str,
        session_id: Optional[str] = None,
        threshold: Optional[float] = None,
        mode: str = "auto",
        batch_size: int = 64,
        max_retries: int = 3,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._send = send
        self.spec_name = spec_name
        self.run_name = run_name
        self.session_id = session_id or _default_session_id(
            spec_name, run_name
        )
        self.threshold = threshold
        self.mode = mode
        self.batch_size = batch_size
        self.max_retries = max_retries
        self._open_event = RunOpen(
            session=self.session_id,
            spec_name=spec_name,
            run_name=run_name,
            threshold=threshold,
            mode=mode,
        )
        #: Events recorded but not yet acknowledged (the run_open
        #: handshake rides along until its ack arrives).
        self._outbox: List[StreamEvent] = [self._open_event]
        self._next_seq = 2
        self._last_ack: Optional[StreamAck] = None
        self.closed = False
        #: Transport retries that actually happened (for tests/benchmarks).
        self.retries = 0

    # -- recording events --------------------------------------------------
    def _record(self, event: StreamEvent) -> None:
        if self.closed:
            raise ReproError(
                f"stream session {self.session_id!r} is closed"
            )
        self._outbox.append(event)
        if len(self._outbox) >= self.batch_size:
            self.flush()

    def activity(self, node: str, label: str = "") -> None:
        """Record one module invocation."""
        self._record(
            ActivityEvent(
                session=self.session_id,
                seq=self._next_seq,
                node=node,
                label=label,
            )
        )
        self._next_seq += 1

    def edge(self, src: str, dst: str) -> None:
        """Record one dependency: ``src`` executed before ``dst``."""
        self._record(
            EdgeEvent(
                session=self.session_id,
                seq=self._next_seq,
                src=src,
                dst=dst,
            )
        )
        self._next_seq += 1

    # -- wire I/O ----------------------------------------------------------
    def flush(self) -> Optional[StreamAck]:
        """Send the outbox; returns the latest ack (None before any I/O).

        Retries up to ``max_retries`` times on transport failure, each
        time re-handshaking with the session's ``run_open`` frame and
        replaying everything the server has not acknowledged.
        """
        if not self._outbox:
            return self._last_ack
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            batch = list(self._outbox)
            if attempt > 0 and not isinstance(batch[0], RunOpen):
                # Resume handshake: replay run_open so a server that
                # lost us (or that we lost mid-batch) re-anchors the
                # session before the unacknowledged suffix.
                batch.insert(0, self._open_event)
            try:
                ack = self._send(encode_events(batch))
            except TransportError:
                if attempt + 1 == attempts:
                    raise
                self.retries += 1
                continue
            self._last_ack = ack
            self._outbox = [
                event
                for event in self._outbox
                if event.seq > ack.acked_seq
            ]
            return ack
        raise AssertionError("unreachable")  # pragma: no cover

    def status(self) -> Optional[LiveStatus]:
        """Flush, then return the server's live analytics snapshot."""
        ack = self.flush()
        return None if ack is None else ack.live

    @property
    def acked_seq(self) -> int:
        """The contiguous prefix the server has acknowledged."""
        return 0 if self._last_ack is None else self._last_ack.acked_seq

    @property
    def pending(self) -> int:
        """Events recorded but not yet acknowledged."""
        return len(self._outbox)

    def close_run(self) -> StreamAck:
        """Close the run: the server validates/normalises and prices it.

        Returns the final ack; ``ack.result`` is the
        :class:`~repro.api_types.ImportSummary` with the newcomer's
        corpus distances.
        """
        if self.closed:
            raise ReproError(
                f"stream session {self.session_id!r} is already closed"
            )
        self._record(
            RunClose(session=self.session_id, seq=self._next_seq)
        )
        self._next_seq += 1
        ack = self.flush()
        assert ack is not None
        if ack.status != "closed":
            raise ReproError(
                f"server did not close session {self.session_id!r}: "
                f"ack status {ack.status!r}"
            )
        self.closed = True
        return ack

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self.closed:
            self.flush()
