"""Incremental SP-ization: extend a partial SP-tree per event batch.

The whole-document importer (:func:`repro.interchange.normalize.
normalize_document`) derives everything from scratch: dependency DAG,
cycle check, longest-path layering, reachability for the
forced-serialisation report.  For a run arriving as an event stream
that is O(full graph) per event batch — so this module maintains the
expensive intermediate state **incrementally**:

* the accumulated :class:`~repro.interchange.prov_json.ProvDocument`
  (each ``activity`` event a declaration, each ``edge`` event one
  ``wasInformedBy`` relation in arrival order);
* **longest-path depths** (the SP-ization layer assignment), relaxed
  by worklist on each new dependency pair;
* **forward and backward reachability closures**, extended per edge —
  which also makes cycle rejection an O(1) set test *at event time*
  instead of a whole-graph Kahn pass at close;
* the raw/deduplicated edge accounting of the normalisation report.

:meth:`IncrementalNormalizer.snapshot` then assembles the normalised
run through the *same* ``_assemble`` tail the whole-document importer
uses, injecting the maintained depths and reachability so the layering
and the forced-serialisation scan skip their recomputation.  Injected
depths are uniformly shifted (+1 when the graph has a real unique
source) relative to the source-seeded computation; the layer partition
is shift-invariant, so the output is **bit-identical** to importing
the accumulated document whole — the invariant the Hypothesis property
suite (``tests/stream/test_stream_property.py``) pins down.

A snapshot of an *open* run is a valid normalised run of its partial
derived specification — the live SP-tree view ``GET /stream/live``
serves — and :meth:`finish` is simply the final snapshot.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InterchangeError
from repro.interchange.normalize import (
    NormalizationReport,
    NormalizedImport,
    _assemble,
)
from repro.interchange.prov_json import (
    ProvDocument,
    ProvRelation,
    local_name,
)


class IncrementalNormalizer:
    """Maintain a foreign run's SP embedding as events arrive.

    Parameters mirror :func:`normalize_document`: ``name`` names the
    derived specification, ``run_name`` the run (defaulting to
    ``name``).
    """

    def __init__(self, name: str = "imported", run_name: str = ""):
        self.name = name
        self.run_name = run_name
        self.doc = ProvDocument()
        #: Deduplicated dependency pairs in first-arrival order.
        self._pairs: List[Tuple[str, str]] = []
        self._pair_set: Set[Tuple[str, str]] = set()
        self._succ: Dict[str, Set[str]] = {}
        #: Longest-path depth, parentless nodes at 1 (a uniform +1
        #: shift against the synthetic-source-seeded computation when
        #: the graph has a real unique source — layering-invariant).
        self._depth: Dict[str, int] = {}
        #: Exclusive forward reachability: ``reach[a]`` = reachable
        #: *from* ``a``; ``coreach[a]`` = nodes that reach ``a``.
        self._reach: Dict[str, Set[str]] = {}
        self._coreach: Dict[str, Set[str]] = {}
        #: Raw dependency-bearing relations seen (incl. duplicates and
        #: self-dependencies) — the report's deduplication accounting.
        self._raw_edges = 0
        self._label_counts: Counter = Counter()
        self._snapshot_cache: Optional[NormalizedImport] = None

    # -- event application ----------------------------------------------
    def _ensure(self, node: str) -> None:
        if node not in self._depth:
            self._depth[node] = 1
            self._succ[node] = set()
            self._reach[node] = set()
            self._coreach[node] = set()

    def add_activity(self, node: str, label: str = "") -> None:
        """Declare one activity (idempotent for an identical redeclare).

        Redeclaring an id with a *different* label is refused — the
        stream would otherwise silently disagree with itself about what
        executed.
        """
        effective = label or local_name(node)
        if node in self.doc.activities:
            existing = self.effective_label(node)
            if existing != effective:
                raise InterchangeError(
                    f"activity {node!r} redeclared with label "
                    f"{effective!r} (was {existing!r})"
                )
            return
        attrs: Dict[str, object] = {}
        if label:
            attrs["repro:label"] = label
        previously_referenced = node in self._depth
        if previously_referenced:
            # Referenced-only activities were counted under their local
            # name; the declaration may rename them.
            old = local_name(node)
            if old != effective:
                self._label_counts[old] -= 1
                if self._label_counts[old] <= 0:
                    del self._label_counts[old]
                self._label_counts[effective] += 1
        else:
            self._label_counts[effective] += 1
        self.doc.activities[node] = attrs
        self._ensure(node)
        self._snapshot_cache = None

    def add_edge(self, src: str, dst: str) -> None:
        """Record one dependency ``src`` before ``dst``.

        Duplicates and self-dependencies are recorded (they feed the
        report's raw-edge accounting) but do not change the DAG, as in
        :meth:`ProvDocument.dependency_pairs`.  An edge that would
        close a cycle between distinct activities is rejected
        immediately — an O(1) reachability test, where the whole-
        document importer only discovers the cycle at import time.
        """
        for node in (src, dst):
            if node not in self._depth:
                # Referenced-only activity: labelled by local name,
                # exactly as the whole-document importer labels ids
                # that appear in relations without a declaration.
                self._ensure(node)
                self._label_counts[local_name(node)] += 1
        if src != dst and src in self._reach[dst]:
            raise InterchangeError(
                f"dependency {src!r} -> {dst!r} would close a cycle; "
                "cannot interpret the stream as a workflow run"
            )
        # The relation lands in the accumulated document regardless —
        # arrival order is the document's relation order.
        self.doc.relations.append(
            ProvRelation(kind="wasInformedBy", subject=dst, object=src)
        )
        self._raw_edges += 1
        self._snapshot_cache = None
        pair = (src, dst)
        if src == dst or pair in self._pair_set:
            return
        self._pair_set.add(pair)
        self._pairs.append(pair)
        self._succ[src].add(dst)
        # Reachability closure: everything at or upstream of ``src``
        # now reaches everything at or downstream of ``dst``.
        ancestors = {src} | self._coreach[src]
        descendants = {dst} | self._reach[dst]
        for node in ancestors:
            self._reach[node] |= descendants
        for node in descendants:
            self._coreach[node] |= ancestors
        # Longest-path relaxation by worklist.
        proposed = self._depth[src] + 1
        if proposed > self._depth[dst]:
            self._depth[dst] = proposed
            stack = [dst]
            while stack:
                node = stack.pop()
                base = self._depth[node] + 1
                for other in self._succ[node]:
                    if base > self._depth[other]:
                        self._depth[other] = base
                        stack.append(other)

    # -- introspection ----------------------------------------------------
    @property
    def num_activities(self) -> int:
        return len(self._depth)

    @property
    def num_edges(self) -> int:
        """Deduplicated dependency pairs (the DAG's edge count)."""
        return len(self._pairs)

    def effective_label(self, node: str) -> str:
        """The label the importer would give ``node`` right now."""
        from repro.interchange.prov_json import activity_label

        return activity_label(self.doc, node)

    def label_counts(self) -> Counter:
        """Multiset of effective activity labels streamed so far.

        Maintained incrementally; feeds the live label-surplus bounds.
        (Raw labels — the derived specification may still rename
        duplicates ``base~N`` at assembly time.)
        """
        return Counter(self._label_counts)

    # -- assembly ----------------------------------------------------------
    def snapshot(self) -> NormalizedImport:
        """The accumulated events as a normalised run, right now.

        Bit-identical to ``normalize_document`` over the accumulated
        document; the layering and forced-serialisation scan reuse the
        incrementally maintained depths and reachability instead of
        recomputing.  Cached until the next event.
        """
        if self._snapshot_cache is not None:
            return self._snapshot_cache
        activities = self.doc.activity_ids()
        if not activities:
            raise InterchangeError(
                "stream session has no activities to normalise"
            )
        pairs = self.doc.dependency_pairs()
        report = NormalizationReport()
        report.deduplicated_edges = max(0, self._raw_edges - len(pairs))
        result = _assemble(
            self.doc,
            activities,
            pairs,
            report,
            self.name,
            self.run_name,
            depths=self._depth,
            reach=self._reach,
        )
        self._snapshot_cache = result
        return result

    def finish(self) -> NormalizedImport:
        """The final snapshot (the ``run_close`` assembly)."""
        return self.snapshot()
