"""The server side of streaming ingestion: sessions, sequencing, analytics.

A :class:`StreamHub` owns every open streaming session of one
workspace.  It enforces the event protocol (contiguous sequence
numbers, idempotent replay, resume-by-``run_open``), feeds each
session's :class:`~repro.stream.incremental.IncrementalNormalizer`,
maintains **online analytics** for the open run against the frozen
corpus, and — on ``run_close`` — folds the finished run into the
corpus through the existing incremental
:meth:`~repro.corpus.service.DiffService.add_run`.

**Nothing is persisted before close.**  An open (or abandoned, or
errored) session lives entirely in hub memory; queries, listings and
diffs never see a half-ingested run.  A failed close (validation or
conflict) does not advance the sequence number, so the client can
repair and retry the same ``run_close``.

Two session modes, chosen at ``run_open``:

* ``validated`` — the named specification is registered: the streamed
  node/edge graph is validated as a :class:`WorkflowRun` of it at
  close (the monitor-a-running-campaign scenario, where forks and
  loops repeat module labels);
* ``derive`` — a foreign stream: the incremental normaliser's derived
  specification is used, exactly as a whole-document import would.

``mode="auto"`` (the default) picks ``validated`` when the
specification is registered.  Foreign streams aimed at a corpus whose
specification was itself *derived* by an earlier import should pass
``mode="derive"`` explicitly.

Analytics are **label-surplus lower bounds** (see
:class:`~repro.stream.events.LiveStatus`): cheap fingerprint-style
bounds kept per corpus run, updated in O(corpus) per event — no DP
runs while a session is open.  Because the bound is monotone
non-decreasing, a run whose nearest-run bound crosses the session
threshold is **provably diverging no matter how it completes** (under
the length cost model), and is flagged before its ``run_close``.

Every mutation updates the hub's counters and the ``stream_*`` metric
families in the same locked region, so ``GET /stats`` (via
:meth:`summary`) and ``GET /metrics`` always agree.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.api_types import ImportSummary, StreamSummary
from repro.errors import (
    ConflictError,
    NotFoundError,
    ReproError,
    StreamProtocolError,
)
from repro.graphs.flow_network import FlowNetwork
from repro.interchange.prov_json import local_name
from repro.obs.runmeta import capture_run_metadata
from repro.stream.events import (
    ActivityEvent,
    EdgeEvent,
    LiveStatus,
    RunClose,
    RunOpen,
    StreamAck,
    StreamEvent,
)
from repro.stream.incremental import IncrementalNormalizer
from repro.workflow.run import WorkflowRun

#: Closed sessions retained for idempotent replay of their final ack.
MAX_CLOSED_RETAINED = 64

MODE_AUTO = "auto"
MODE_VALIDATED = "validated"
MODE_DERIVE = "derive"
SESSION_MODES = (MODE_AUTO, MODE_VALIDATED, MODE_DERIVE)


class _Session:
    """One open streaming session (all state in hub memory)."""

    def __init__(
        self,
        open_event: RunOpen,
        mode: str,
        corpus_counters: Dict[str, Counter],
        medoid_run: Optional[str],
    ):
        self.open_payload = open_event.to_dict()
        self.session_id = open_event.session
        self.spec_name = open_event.spec_name
        self.run_name = open_event.run_name
        self.threshold = open_event.threshold
        self.mode = mode
        self.last_seq = 1
        self.normalizer = IncrementalNormalizer(
            name=open_event.spec_name, run_name=open_event.run_name
        )
        #: Frozen corpus view: per-run label multisets at open time.
        self.corpus_counters = corpus_counters
        self.medoid_run = medoid_run
        #: Label-surplus bound per corpus run, maintained per event.
        self.bounds: Dict[str, int] = {
            name: 0 for name in corpus_counters
        }
        self.open_counts: Counter = Counter()
        self._counted_nodes = set()
        self.flagged = False
        self.flagged_at_seq: Optional[int] = None
        self.opened_meta = capture_run_metadata(origin="stream")

    # -- online bounds ---------------------------------------------------
    def count_node(self, node: str) -> None:
        """Fold one new activity instance into the live bounds."""
        if node in self._counted_nodes:
            return
        self._counted_nodes.add(node)
        label = self.normalizer.effective_label(node)
        self.open_counts[label] += 1
        count = self.open_counts[label]
        for run_name, counters in self.corpus_counters.items():
            if count > counters.get(label, 0):
                self.bounds[run_name] += 1

    def reconcile_bounds(self) -> None:
        """Recompute bounds exactly from the normaliser's label multiset.

        The per-event update can go momentarily stale when a
        referenced-only activity is later declared under a different
        label; acks reconcile so the reported numbers are exact.
        """
        open_counts = self.normalizer.label_counts()
        self.open_counts = open_counts
        for run_name, counters in self.corpus_counters.items():
            self.bounds[run_name] = sum(
                max(0, count - counters.get(label, 0))
                for label, count in open_counts.items()
            )

    def nearest(self) -> Tuple[Optional[str], float]:
        if not self.bounds:
            return None, 0.0
        name = min(self.bounds, key=lambda n: (self.bounds[n], n))
        return name, float(self.bounds[name])

    def check_flag(self, seq: int) -> bool:
        """Arm the divergence flag; True when it fires *now*."""
        if self.flagged or self.threshold is None or not self.bounds:
            return False
        _, bound = self.nearest()
        if bound > self.threshold:
            self.flagged = True
            self.flagged_at_seq = seq
            return True
        return False

    def live_status(self) -> LiveStatus:
        self.reconcile_bounds()
        self.check_flag(self.last_seq)
        nearest_run, nearest_bound = self.nearest()
        outlier = (
            sum(self.bounds.values()) / len(self.bounds)
            if self.bounds
            else 0.0
        )
        sp_report: dict = {}
        if self.normalizer.num_activities:
            snapshot = self.normalizer.snapshot()
            sp_report = snapshot.report.to_dict()
        return LiveStatus(
            session=self.session_id,
            spec_name=self.spec_name,
            run_name=self.run_name,
            seq=self.last_seq,
            activities=self.normalizer.num_activities,
            edges=self.normalizer.num_edges,
            mode=self.mode,
            nearest_run=nearest_run,
            nearest_bound=nearest_bound,
            medoid_run=self.medoid_run,
            medoid_bound=(
                float(self.bounds[self.medoid_run])
                if self.medoid_run in self.bounds
                else 0.0
            ),
            outlier_score=float(outlier),
            threshold=self.threshold,
            flagged=self.flagged,
            flagged_at_seq=self.flagged_at_seq,
            sp_report=sp_report,
        )


class StreamHub:
    """Every open streaming session of one workspace, lock-disciplined.

    One coarse lock serialises event application (the corpus service
    below has its own monitor); reads (:meth:`live`, :meth:`summary`)
    take the same lock briefly.  Shared by the in-process
    :meth:`Workspace.stream` transport and the HTTP route, so both
    faces see one session namespace.
    """

    def __init__(self, workspace):
        self.workspace = workspace
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[str, _Session]" = OrderedDict()
        #: Closed sessions: id -> (open payload, final ack), bounded.
        self._closed: "OrderedDict[str, Tuple[dict, StreamAck]]" = (
            OrderedDict()
        )
        self._counters = {
            "sessions_opened": 0,
            "events_ingested": 0,
            "runs_closed": 0,
            "resumed": 0,
            "duplicates": 0,
            "rejected_frames": 0,
            "flagged": 0,
        }
        metrics = workspace.metrics
        self._events_metric = metrics.counter(
            "stream_events_total",
            "Streaming events ingested, by event kind.",
        )
        self._opened_metric = metrics.counter(
            "stream_sessions_opened_total",
            "Streaming sessions opened.",
        )
        self._closed_metric = metrics.counter(
            "stream_runs_closed_total",
            "Streamed runs completed and folded into the corpus.",
        )
        self._resumed_metric = metrics.counter(
            "stream_resumed_total",
            "Session resumes (run_open replays onto live sessions).",
        )
        self._duplicates_metric = metrics.counter(
            "stream_duplicates_total",
            "Idempotently replayed event frames.",
        )
        self._rejected_metric = metrics.counter(
            "stream_rejected_frames_total",
            "Event frames rejected by the protocol, by error type.",
        )
        self._flags_metric = metrics.counter(
            "stream_flags_total",
            "Open runs flagged as diverging before run_close.",
        )
        metrics.gauge(
            "stream_open_sessions",
            "Streaming sessions currently open.",
        ).set_function(self.open_sessions)

    # -- introspection ----------------------------------------------------
    def open_sessions(self) -> int:
        with self._lock:
            return len(self._sessions)

    def summary(self) -> StreamSummary:
        """The hub's counters as a typed :class:`StreamSummary`."""
        with self._lock:
            return StreamSummary(
                open_sessions=len(self._sessions),
                **self._counters,
            )

    def live(self) -> List[LiveStatus]:
        """Analytics snapshots of every open session, oldest first."""
        with self._lock:
            return [
                session.live_status()
                for session in self._sessions.values()
            ]

    # -- event application ------------------------------------------------
    def apply(self, event: StreamEvent) -> StreamAck:
        """Apply one event (see :meth:`apply_batch`)."""
        return self.apply_batch([event])

    def apply_batch(self, events: List[StreamEvent]) -> StreamAck:
        """Apply a batch of events; one ack for the batch's session.

        All events of a batch must address one session (the client
        sends one POST per session).  Events apply in order; the first
        protocol violation aborts the batch with a
        :class:`~repro.errors.StreamProtocolError` (or a more specific
        :class:`~repro.errors.ReproError`), leaving the already-applied
        prefix acknowledged — the client re-handshakes with
        ``run_open`` and resumes from the acked sequence number.
        """
        if not events:
            raise StreamProtocolError("empty event batch")
        session_ids = {event.session for event in events}
        if len(session_ids) != 1:
            raise StreamProtocolError(
                "one batch must address one session, got "
                + ", ".join(sorted(repr(s) for s in session_ids))
            )
        with self._lock:
            ack: Optional[StreamAck] = None
            duplicates = 0
            resumed = False
            try:
                for event in events:
                    ack = self._apply_locked(event)
                    duplicates += ack.duplicates
                    resumed = resumed or ack.resumed
            except ReproError:
                self._counters["rejected_frames"] += 1
                self._rejected_metric.inc()
                raise
            ack.duplicates = duplicates
            ack.resumed = resumed
            return ack

    def _apply_locked(self, event: StreamEvent) -> StreamAck:
        if isinstance(event, RunOpen):
            return self._open(event)
        session = self._sessions.get(event.session)
        if session is None:
            return self._event_without_session(event)
        if event.seq <= session.last_seq:
            # Idempotent replay of an already-applied frame.
            self._counters["duplicates"] += 1
            self._duplicates_metric.inc()
            return self._ack(session, duplicates=1)
        if event.seq != session.last_seq + 1:
            raise StreamProtocolError(
                f"session {event.session!r}: out-of-order seq "
                f"{event.seq} (expected {session.last_seq + 1}; "
                f"resume from the last acknowledged frame)"
            )
        if isinstance(event, RunClose):
            return self._close(session, event)
        if isinstance(event, ActivityEvent):
            session.normalizer.add_activity(event.node, event.label)
            session.count_node(event.node)
        elif isinstance(event, EdgeEvent):
            session.normalizer.add_edge(event.src, event.dst)
            session.count_node(event.src)
            session.count_node(event.dst)
        else:  # pragma: no cover - event_from_dict is exhaustive
            raise StreamProtocolError(
                f"unknown event kind {event.kind!r}"
            )
        session.last_seq = event.seq
        self._counters["events_ingested"] += 1
        self._events_metric.inc(kind=event.kind)
        if session.check_flag(event.seq):
            self._counters["flagged"] += 1
            self._flags_metric.inc()
        return self._ack(session)

    def _event_without_session(self, event: StreamEvent) -> StreamAck:
        retained = self._closed.get(event.session)
        if retained is not None:
            _, final_ack = retained
            if event.seq <= final_ack.acked_seq:
                # Replay of a frame the closed session already applied:
                # answer with the cached final ack.
                self._counters["duplicates"] += 1
                self._duplicates_metric.inc()
                return self._copy_final(final_ack, duplicates=1)
            raise StreamProtocolError(
                f"session {event.session!r} is closed "
                f"(final seq {final_ack.acked_seq}); open a new "
                "session to stream another run"
            )
        raise StreamProtocolError(
            f"no open session {event.session!r}; send run_open first"
        )

    # -- open / resume -----------------------------------------------------
    def _open(self, event: RunOpen) -> StreamAck:
        existing = self._sessions.get(event.session)
        if existing is not None:
            if existing.open_payload != event.to_dict():
                raise ConflictError(
                    f"session {event.session!r} is already open with "
                    "a different run_open payload"
                )
            self._counters["resumed"] += 1
            self._resumed_metric.inc()
            return self._ack(existing, resumed=True)
        retained = self._closed.get(event.session)
        if retained is not None:
            open_payload, final_ack = retained
            if open_payload != event.to_dict():
                raise ConflictError(
                    f"session id {event.session!r} was already used "
                    "by a different run"
                )
            self._counters["resumed"] += 1
            self._resumed_metric.inc()
            return self._copy_final(final_ack, resumed=True)
        mode = self._resolve_mode(event)
        corpus_counters, medoid_run = self._corpus_view(event)
        session = _Session(event, mode, corpus_counters, medoid_run)
        self._sessions[event.session] = session
        self._counters["sessions_opened"] += 1
        self._counters["events_ingested"] += 1
        self._opened_metric.inc()
        self._events_metric.inc(kind=event.kind)
        return self._ack(session)

    def _resolve_mode(self, event: RunOpen) -> str:
        mode = event.mode
        spec_known = event.spec_name in set(
            self.workspace.specifications()
        )
        if mode == MODE_AUTO:
            return MODE_VALIDATED if spec_known else MODE_DERIVE
        if mode == MODE_VALIDATED and not spec_known:
            raise NotFoundError(
                f"no stored specification named {event.spec_name!r} "
                "to validate the streamed run against"
            )
        return mode

    def _corpus_view(
        self, event: RunOpen
    ) -> Tuple[Dict[str, Counter], Optional[str]]:
        """Freeze the corpus for a new session's online bounds."""
        spec_known = event.spec_name in set(
            self.workspace.specifications()
        )
        if not spec_known:
            return {}, None
        run_names = self.workspace.runs(spec=event.spec_name)
        if event.run_name in run_names:
            raise ConflictError(
                f"run {event.run_name!r} already exists for "
                f"specification {event.spec_name!r}"
            )
        counters: Dict[str, Counter] = {}
        for name in run_names:
            run = self.workspace.run(name, spec=event.spec_name)
            counters[name] = Counter(run.graph.labels().values())
        medoid_run: Optional[str] = None
        if len(run_names) == 1:
            medoid_run = run_names[0]
        elif len(run_names) >= 2:
            medoid_run = self.workspace.medoid(spec=event.spec_name)[0]
        return counters, medoid_run

    # -- close -------------------------------------------------------------
    def _close(
        self, session: _Session, event: RunClose
    ) -> StreamAck:
        """Validate/normalise, enter the corpus, retire the session.

        Raises (validation failure, specification conflict) leave the
        sequence number untouched: the half-closed run stays invisible
        and the client may repair state and retry the close.
        """
        meta = capture_run_metadata(
            origin="stream", started=session.opened_meta.started
        )
        if session.mode == MODE_VALIDATED:
            run, report_dict, report_lines = self._validated_run(session)
        else:
            result = session.normalizer.finish()
            run = result.run
            report_dict = result.report.to_dict()
            report_lines = list(result.report.summary_lines())
        distances = self.workspace.service.add_run(
            run, cost=self.workspace.config.cost, meta=meta
        )
        summary = ImportSummary(
            spec_name=run.spec.name,
            run_name=run.name,
            origin="stream",
            nodes=run.graph.num_nodes,
            edges=run.graph.num_edges,
            report=report_dict,
            report_lines=report_lines,
            new_pairs=dict(distances),
        )
        session.last_seq = event.seq
        self._counters["events_ingested"] += 1
        self._counters["runs_closed"] += 1
        self._events_metric.inc(kind=event.kind)
        self._closed_metric.inc()
        final_ack = StreamAck(
            session=session.session_id,
            acked_seq=session.last_seq,
            status="closed",
            result=summary,
        )
        del self._sessions[session.session_id]
        self._closed[session.session_id] = (
            session.open_payload,
            final_ack,
        )
        while len(self._closed) > MAX_CLOSED_RETAINED:
            self._closed.popitem(last=False)
        return self._copy_final(final_ack)

    def _validated_run(self, session: _Session):
        """Build and validate the streamed graph as a run of the
        registered specification (``validated`` mode)."""
        spec = self.workspace.specification(session.spec_name)
        normalizer = session.normalizer
        graph = FlowNetwork(name=session.run_name)
        doc = normalizer.doc
        for node in doc.activity_ids():
            graph.add_node(node, normalizer.effective_label(node))
        for relation in doc.relations:
            graph.add_edge(relation.object, relation.subject)
        run = WorkflowRun(spec, graph, name=session.run_name)
        lines = [
            f"validated against registered specification "
            f"{session.spec_name!r}"
        ]
        return run, {}, lines

    # -- ack assembly ------------------------------------------------------
    def _ack(
        self,
        session: _Session,
        duplicates: int = 0,
        resumed: bool = False,
    ) -> StreamAck:
        return StreamAck(
            session=session.session_id,
            acked_seq=session.last_seq,
            status="open",
            resumed=resumed,
            duplicates=duplicates,
            live=session.live_status(),
        )

    @staticmethod
    def _copy_final(
        final_ack: StreamAck,
        duplicates: int = 0,
        resumed: bool = False,
    ) -> StreamAck:
        return StreamAck(
            session=final_ack.session,
            acked_seq=final_ack.acked_seq,
            status=final_ack.status,
            resumed=resumed,
            duplicates=duplicates,
            result=final_ack.result,
        )
