"""Streaming ingestion: live provenance events over open sessions.

The subsystem has four layers:

* :mod:`repro.stream.events` — the versioned event model (``run_open``,
  ``activity``, ``edge``, ``run_close``), NDJSON framing, acks and the
  live analytics snapshot;
* :mod:`repro.stream.incremental` — incremental SP-ization: the
  normaliser state (depths, reachability, dedup accounting) extended
  per event instead of rebuilt per batch;
* :mod:`repro.stream.hub` — the server side: per-session state,
  sequencing/idempotent replay/resume, online nearest/medoid/outlier
  bounds against the frozen corpus, and corpus entry on ``run_close``;
* :mod:`repro.stream.client` — the buffering, retrying
  :class:`StreamSession` client shared by the in-process and HTTP
  transports.

See ``docs/STREAMING.md`` for the protocol contract.
"""

from repro.stream.events import (
    STREAM_WIRE_VERSION,
    ActivityEvent,
    EdgeEvent,
    LiveStatus,
    RunClose,
    RunOpen,
    StreamAck,
    decode_events,
    encode_events,
    event_from_dict,
    events_from_document,
)
from repro.stream.incremental import IncrementalNormalizer
from repro.stream.hub import StreamHub
from repro.stream.client import StreamSession

__all__ = [
    "STREAM_WIRE_VERSION",
    "ActivityEvent",
    "EdgeEvent",
    "IncrementalNormalizer",
    "LiveStatus",
    "RunClose",
    "RunOpen",
    "StreamAck",
    "StreamHub",
    "StreamSession",
    "decode_events",
    "encode_events",
    "event_from_dict",
    "events_from_document",
]
