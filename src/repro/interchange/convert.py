"""Import/export between :class:`WorkflowRun` and PROV-JSON documents.

Export (:func:`export_run_document`) renders a run as an idiomatic
PROV-JSON graph — one ``activity`` per module invocation, one ``entity``
per dataflow edge, linked through ``wasGeneratedBy`` / ``used`` — with
**stable ids**: the same run always serialises to byte-identical JSON,
and node instance ids survive the trip (``run:getGOAnnot-a``).  The
workflow specification rides along as a ``prov:Plan`` entity carrying
its XML serialisation, which is what makes the round trip *exact*: a
re-import rebuilds the very same specification and validates the run
graph against it, instead of re-deriving an approximate one.

Import (:func:`import_document`) handles both worlds:

* documents carrying our plan entity take the **exact** path —
  spec from the embedded XML, run graph from the entity/edge encoding,
  full run validation, empty normalisation report;
* foreign documents take the **normalisation** path of
  :mod:`repro.interchange.normalize` — dependency DAG, synthetic
  terminals, SP-ization with a forced-serialisation report, derived
  specification.

Edit scripts export too (:func:`export_script_document`): operations
become a ``wasInformedBy``-chained activity sequence deriving the
target run entity from the source one — the provenance *of the diff
itself*.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InterchangeError, ReproError
from repro.graphs.flow_network import FlowNetwork
from repro.interchange.normalize import (
    NormalizationReport,
    NormalizedImport,
    normalize_document,
)
from repro.interchange.prov_json import (
    ProvDocument,
    ProvRelation,
    document_to_mapping,
    load_prov_source,
)
from repro.io.xml_io import specification_from_xml, specification_to_xml
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

#: Document prefixes used by the writer (reader treats them as opaque).
PREFIXES = {
    "repro": "urn:repro:vocab:",
    "run": "urn:repro:instance:",
    "data": "urn:repro:dataflow:",
    "plan": "urn:repro:plan:",
    "op": "urn:repro:edit-op:",
}

PLAN_TYPE = "prov:Plan"
MODULE_TYPE = "repro:ModuleExecution"
RUN_TYPE = "repro:Run"
OPERATION_TYPE = "repro:PathOperation"
SPEC_ATTRIBUTE = "repro:specification"


@dataclass
class ImportResult:
    """Outcome of importing one PROV document.

    ``origin`` is ``"embedded-plan"`` for exact reconstructions of our
    own exports and ``"normalized"`` for foreign documents that went
    through SP-ization.
    """

    run: WorkflowRun
    spec: WorkflowSpecification
    report: NormalizationReport
    origin: str
    activity_nodes: Dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------
def _edge_entity_id(index: int, u, v) -> str:
    return f"data:e{index:04d}_{u}__{v}"


def export_run_document(
    run: WorkflowRun, include_spec: bool = True
) -> dict:
    """Render a run as a PROV-JSON mapping (deterministic, stable ids).

    ``include_spec=False`` omits the ``prov:Plan`` entity, producing a
    document indistinguishable from foreign provenance — useful for
    exercising the normalisation path with known inputs.
    """
    doc = ProvDocument(prefixes=dict(PREFIXES))
    graph = run.graph
    for node in graph.nodes():
        doc.activities[f"run:{node}"] = {
            "prov:type": MODULE_TYPE,
            "repro:label": graph.label(node),
        }
    for index, (u, v, key) in enumerate(graph.edges()):
        entity_id = _edge_entity_id(index, u, v)
        doc.entities[entity_id] = {
            "prov:type": "repro:Dataflow",
            "repro:key": key,
        }
        doc.relations.append(
            ProvRelation(
                "wasGeneratedBy", entity_id, f"run:{u}"
            )
        )
        doc.relations.append(
            ProvRelation("used", f"run:{v}", entity_id)
        )
    if include_spec:
        doc.entities["plan:specification"] = {
            "prov:type": PLAN_TYPE,
            "repro:spec_name": run.spec.name,
            "repro:run_name": run.name,
            SPEC_ATTRIBUTE: specification_to_xml(run.spec),
        }
    return document_to_mapping(doc)


def export_run_json(run: WorkflowRun, include_spec: bool = True) -> str:
    """Deterministic PROV-JSON text for a run."""
    return json.dumps(
        export_run_document(run, include_spec=include_spec),
        indent=2,
        sort_keys=True,
    )


def export_script_document(
    operations,
    distance: float,
    run_a: str,
    run_b: str,
    spec_name: str = "",
) -> dict:
    """Render an edit script as PROV: the provenance of a diff.

    The target run entity ``wasDerivedFrom`` the source run entity;
    each path operation is an activity carrying its kind/cost/length
    and label path, chained by ``wasInformedBy`` in application order.
    """
    doc = ProvDocument(prefixes=dict(PREFIXES))
    source_id = f"run:{run_a}"
    target_id = f"run:{run_b}"
    doc.entities[source_id] = {"prov:type": RUN_TYPE}
    doc.entities[target_id] = {"prov:type": RUN_TYPE}
    previous: Optional[str] = None
    for position, op in enumerate(operations, start=1):
        op_id = f"op:{position:04d}"
        doc.activities[op_id] = {
            "prov:type": OPERATION_TYPE,
            "repro:kind": op.kind,
            "repro:cost": op.cost,
            "repro:length": op.length,
            "repro:path": " -> ".join(op.path_labels),
        }
        doc.relations.append(ProvRelation("used", op_id, source_id))
        if previous is not None:
            doc.relations.append(
                ProvRelation("wasInformedBy", op_id, previous)
            )
        previous = op_id
    if previous is not None:
        doc.relations.append(
            ProvRelation("wasGeneratedBy", target_id, previous)
        )
    doc.relations.append(
        ProvRelation(
            "wasDerivedFrom",
            target_id,
            source_id,
            attributes={
                "repro:distance": distance,
                "repro:spec": spec_name,
                "repro:operations": len(doc.activities),
            },
        )
    )
    return document_to_mapping(doc)


# ---------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------
def _find_plan(doc: ProvDocument) -> Optional[Tuple[str, dict]]:
    for entity_id, attrs in doc.entities.items():
        if isinstance(attrs.get(SPEC_ATTRIBUTE), str):
            return entity_id, attrs
    return None


def _exact_import(
    doc: ProvDocument, plan_attrs: dict, run_name: str
) -> ImportResult:
    """Rebuild a run exported by :func:`export_run_document`."""
    try:
        spec = specification_from_xml(plan_attrs[SPEC_ATTRIBUTE])
    except ReproError as exc:
        raise InterchangeError(
            f"embedded specification is invalid: {exc}"
        ) from exc

    graph = FlowNetwork(
        name=run_name
        or str(plan_attrs.get("repro:run_name", "") or "imported")
    )
    node_ids: Dict[str, str] = {}
    for activity_id, attrs in doc.activities.items():
        label = attrs.get("repro:label")
        if not isinstance(label, str) or not label:
            raise InterchangeError(
                f"activity {activity_id!r} lacks the repro:label "
                "attribute required by the embedded-plan encoding"
            )
        # Strip exactly the writer's ``run:`` prefix — nothing more.
        # Node ids may themselves contain ``:`` (a normalised import
        # keeps qualified activity ids like ``ex:step`` as node ids),
        # so a general local-name split would corrupt or collide them.
        node = (
            activity_id[len("run:"):]
            if activity_id.startswith("run:")
            else activity_id
        )
        node_ids[activity_id] = node
        graph.add_node(node, label)

    generators = doc.generators()
    users: Dict[str, List[str]] = {}
    for rel in doc.relations_of("used"):
        users.setdefault(rel.object, []).append(rel.subject)
    for entity_id in sorted(doc.entities):
        attrs = doc.entities[entity_id]
        if isinstance(attrs.get(SPEC_ATTRIBUTE), str):
            continue  # the plan entity is not a dataflow edge
        producer = generators.get(entity_id)
        consumers = users.get(entity_id, [])
        if producer is None or not consumers:
            raise InterchangeError(
                f"dataflow entity {entity_id!r} is missing its "
                "wasGeneratedBy/used statements"
            )
        key = attrs.get("repro:key")
        for consumer in consumers:
            if producer not in node_ids or consumer not in node_ids:
                raise InterchangeError(
                    f"dataflow entity {entity_id!r} references an "
                    "undeclared activity"
                )
            graph.add_edge(
                node_ids[producer],
                node_ids[consumer],
                key if isinstance(key, int) else None,
            )

    try:
        run = WorkflowRun(spec, graph, name=graph.name)
    except ReproError as exc:
        raise InterchangeError(
            f"embedded-plan document is not a valid run of its own "
            f"specification: {exc}"
        ) from exc
    return ImportResult(
        run=run,
        spec=spec,
        report=NormalizationReport(),
        origin="embedded-plan",
        activity_nodes={
            activity: node for activity, node in node_ids.items()
        },
    )


def import_document(
    source,
    run_name: str = "",
    spec_name: Optional[str] = None,
) -> ImportResult:
    """Import a PROV-JSON/OPM document as a workflow run.

    ``source`` may be a decoded mapping, JSON text, or a file path.
    ``run_name`` overrides the stored run name; ``spec_name`` overrides
    the derived specification name on the normalisation path (it never
    renames an embedded plan — the plan's identity is part of the
    round-trip contract).
    """
    doc = load_prov_source(source)
    plan = _find_plan(doc)
    if plan is not None:
        return _exact_import(doc, plan[1], run_name)
    normalized: NormalizedImport = normalize_document(
        doc,
        name=spec_name or "imported",
        run_name=run_name,
    )
    return ImportResult(
        run=normalized.run,
        spec=normalized.spec,
        report=normalized.report,
        origin="normalized",
        activity_nodes=normalized.activity_nodes,
    )
