"""Mapping foreign entity/activity graphs onto the SP ``Run`` model.

The paper's differ consumes *series-parallel* runs of an SP-workflow
specification; a foreign PROV document yields an arbitrary activity DAG.
:func:`normalize_document` bridges the gap in four explicit steps:

1. **Dependency DAG** — activities become module invocations, the
   document's dependency relation (``wasInformedBy`` plus the
   ``used`` ∘ ``wasGeneratedBy`` dataflow join) becomes the edge set.
   Cycles are rejected: cyclic provenance is not a run of anything.
2. **Flow-network closure** — documents with several initial or final
   activities (or a single isolated one) get synthetic ``__source__`` /
   ``__sink__`` terminals so Definition 3.1 holds.
3. **SP-ization** — if the DAG is already series-parallel it is kept
   verbatim.  Otherwise it is rebuilt as a *level graph*: activities are
   placed on longest-path layers, consecutive layers are bridged
   (through synthetic ``__join_N__`` junctions where both sides branch),
   and every original dependency is preserved because every activity of
   layer ``i`` reaches every activity of layer ``j > i``.  The price is
   over-ordering: previously incomparable activities on different
   layers become ordered.  Those pairs are reported explicitly as
   **forced serialisations** — the importer never silently invents
   ordering.
4. **Specification derivation** — the normalised graph, with activity
   labels made unique (collisions renamed and reported), *is* its own
   specification: every module appears once, no forks or loops, and the
   imported run is the full execution.  Two imports agree on a
   specification exactly when their normalised shapes agree, which is
   what lets the corpus service fingerprint and diff them.

The output bundles the run, the derived specification, and a
:class:`NormalizationReport` so callers (and the CLI) can show exactly
how faithful the embedding is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InterchangeError
from repro.graphs.decomposition import is_series_parallel
from repro.graphs.flow_network import FlowNetwork
from repro.interchange.prov_json import (
    ProvDocument,
    activity_label,
)
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

SYNTHETIC_SOURCE = "__source__"
SYNTHETIC_SINK = "__sink__"
_JUNCTION_FORMAT = "__join_{index}__"


def _fresh_name(base: str, taken) -> str:
    """``base`` or the first ``base~N`` not colliding with ``taken``.

    Synthetic terminals and junctions share the activity namespace in
    the normalised graph; an adversarial document that declares an
    activity literally named ``__source__`` must not fuse with it.
    """
    name = base
    counter = 1
    while name in taken:
        counter += 1
        name = f"{base}~{counter}"
    return name


@dataclass
class NormalizationReport:
    """What the normaliser did to make a foreign graph series-parallel.

    ``forced_serializations`` lists activity-id pairs ``(a, b)`` that
    were *incomparable* in the source document but are ordered
    ``a before b`` in the normalised run — the information the paper's
    differ would otherwise silently invent.  An empty list together
    with ``was_series_parallel`` means the embedding is exact.
    """

    was_series_parallel: bool = True
    synthetic_source: Optional[str] = None
    synthetic_sink: Optional[str] = None
    junctions: List[str] = field(default_factory=list)
    forced_serializations: List[Tuple[str, str]] = field(
        default_factory=list
    )
    renamed_labels: Dict[str, str] = field(default_factory=dict)
    deduplicated_edges: int = 0

    @property
    def exact(self) -> bool:
        """True when the run's dependency relation equals the source's."""
        return not self.forced_serializations

    def to_dict(self) -> dict:
        return {
            "was_series_parallel": self.was_series_parallel,
            "synthetic_source": self.synthetic_source,
            "synthetic_sink": self.synthetic_sink,
            "junctions": list(self.junctions),
            "forced_serializations": [
                list(pair) for pair in self.forced_serializations
            ],
            "renamed_labels": dict(self.renamed_labels),
            "deduplicated_edges": self.deduplicated_edges,
        }

    def summary_lines(self) -> List[str]:
        lines = [
            "series-parallel: "
            + ("yes" if self.was_series_parallel else "no (SP-ized)")
        ]
        if self.synthetic_source or self.synthetic_sink:
            added = [
                name
                for name in (self.synthetic_source, self.synthetic_sink)
                if name
            ]
            lines.append(f"synthetic terminals: {', '.join(added)}")
        if self.junctions:
            lines.append(f"junction nodes: {len(self.junctions)}")
        if self.forced_serializations:
            lines.append(
                f"forced serialisations: "
                f"{len(self.forced_serializations)}"
            )
            for a, b in self.forced_serializations[:5]:
                lines.append(f"  {a} before {b}")
            if len(self.forced_serializations) > 5:
                lines.append(
                    f"  ... and "
                    f"{len(self.forced_serializations) - 5} more"
                )
        if self.renamed_labels:
            lines.append(
                f"renamed duplicate labels: {len(self.renamed_labels)}"
            )
        return lines


@dataclass
class NormalizedImport:
    """A foreign document embedded into the SP run model."""

    run: WorkflowRun
    spec: WorkflowSpecification
    report: NormalizationReport
    #: original activity id -> node id in ``run.graph``
    activity_nodes: Dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------
# Dependency DAG construction
# ---------------------------------------------------------------------
def _unique_labels(
    doc: ProvDocument,
    activities: List[str],
    report: NormalizationReport,
    reserved,
) -> Dict[str, str]:
    """Assign a unique specification label to every activity.

    Labels default to the activity's declared label (or id local name);
    collisions — with each other or with the ``reserved`` synthetic
    names — get a ``~N`` suffix, recorded in the report, so the derived
    specification's unique-label invariant holds.
    """
    labels: Dict[str, str] = {}
    used = set(reserved)
    for activity in activities:
        base = activity_label(doc, activity)
        label = base
        counter = 1
        while label in used:
            counter += 1
            label = f"{base}~{counter}"
        if label != base:
            report.renamed_labels[activity] = label
        used.add(label)
        labels[activity] = label
    return labels


def _dependency_dag(
    doc: ProvDocument, report: NormalizationReport
) -> Tuple[List[str], List[Tuple[str, str]]]:
    """Activities plus deduplicated dependency edges; rejects cycles."""
    activities = doc.activity_ids()
    if not activities:
        raise InterchangeError(
            "provenance document contains no activities to import"
        )
    pairs = doc.dependency_pairs()
    raw_count = 0
    for rel in doc.relations:
        if rel.kind in ("wasInformedBy", "used"):
            raw_count += 1
    report.deduplicated_edges = max(0, raw_count - len(pairs))

    # Cycle check: Kahn's traversal leaves cyclic activities unordered.
    order = _topological(activities, pairs)
    if len(order) != len(activities):
        cyclic = sorted(set(activities) - set(order))
        raise InterchangeError(
            "provenance dependencies are cyclic (activities "
            f"{', '.join(cyclic[:4])}{'...' if len(cyclic) > 4 else ''} "
            "remain); cannot interpret the document as a workflow run"
        )
    return activities, pairs


def _reachability(
    activities: List[str], pairs: List[Tuple[str, str]]
) -> Dict[str, set]:
    """``{activity: set of activities reachable from it}`` (exclusive)."""
    succ: Dict[str, List[str]] = {a: [] for a in activities}
    for a, b in pairs:
        succ[a].append(b)
    reach: Dict[str, set] = {}

    def visit(start: str) -> set:
        if start in reach:
            return reach[start]
        seen: set = set()
        stack = list(succ[start])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succ[node])
        reach[start] = seen
        return seen

    for activity in activities:
        visit(activity)
    return reach


# ---------------------------------------------------------------------
# SP-ization
# ---------------------------------------------------------------------
def _layered_sp_edges(
    activities: List[str],
    pairs: List[Tuple[str, str]],
    source: str,
    sink: str,
    report: NormalizationReport,
    depths: Optional[Dict[str, int]] = None,
    reach: Optional[Dict[str, set]] = None,
) -> List[Tuple[str, str]]:
    """Rebuild a non-SP DAG as a series of parallel layers.

    Interior activities are grouped by longest-path depth; consecutive
    groups are bridged directly when either side is a single node, and
    through a fresh junction when both sides branch.  The result is a
    series composition of parallel bundles — always SP — whose order
    relation is a superset of the input's (every original dependency
    survives transitively; the additions are reported).

    ``depths``/``reach`` let a caller inject precomputed longest-path
    depths and forward-reachability sets (the streaming layer maintains
    both incrementally).  Injected depths may be *uniformly shifted*
    relative to the source-seeded computation below — the layer
    partition is shift-invariant — and both mappings only need to cover
    the interior activities the layering and the forced-serialisation
    scan actually query.
    """
    taken = set(activities)
    interior = [a for a in activities if a not in (source, sink)]
    if depths is None:
        preds: Dict[str, List[str]] = {a: [] for a in activities}
        for a, b in pairs:
            preds[b].append(a)

        depth: Dict[str, int] = {source: 0}

        def compute_depth(node: str) -> int:
            if node in depth:
                return depth[node]
            value = 1 + max(
                (compute_depth(p) for p in preds[node]), default=0
            )
            depth[node] = value
            return value

        # Iterative guard not needed: the DAG was cycle-checked and
        # import sizes are document-scale, but recursion depth equals
        # the longest path; process deepest-last via a topological pass
        # instead.
        order = _topological(activities, pairs)
        for node in order:
            compute_depth(node)
    else:
        depth = depths

    layers: Dict[int, List[str]] = {}
    for node in interior:
        layers.setdefault(depth[node], []).append(node)
    groups: List[List[str]] = [[source]]
    for level in sorted(layers):
        groups.append(layers[level])
    groups.append([sink])

    edges: List[Tuple[str, str]] = []
    junction_index = 0
    for left, right in zip(groups, groups[1:]):
        if len(left) == 1:
            edges.extend((left[0], node) for node in right)
        elif len(right) == 1:
            edges.extend((node, right[0]) for node in left)
        else:
            junction_index += 1
            junction = _fresh_name(
                _JUNCTION_FORMAT.format(index=junction_index), taken
            )
            taken.add(junction)
            report.junctions.append(junction)
            edges.extend((node, junction) for node in left)
            edges.extend((junction, node) for node in right)

    # Report the orderings the layering invented: pairs on different
    # layers that were incomparable in the source document.
    if reach is None:
        reach = _reachability(activities, pairs)
    for i, left in enumerate(groups[1:-1], start=1):
        for right in groups[i + 1 : -1]:
            for a in left:
                for b in right:
                    if b not in reach[a] and a not in reach[b]:
                        report.forced_serializations.append((a, b))
    return edges


def _topological(
    activities: List[str], pairs: List[Tuple[str, str]]
) -> List[str]:
    indegree = {a: 0 for a in activities}
    succ: Dict[str, List[str]] = {a: [] for a in activities}
    for a, b in pairs:
        succ[a].append(b)
        indegree[b] += 1
    queue = [a for a in activities if indegree[a] == 0]
    order: List[str] = []
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        order.append(node)
        for other in succ[node]:
            indegree[other] -= 1
            if indegree[other] == 0:
                queue.append(other)
    return order


def _close_terminals(
    activities: List[str],
    pairs: List[Tuple[str, str]],
    report: NormalizationReport,
) -> Tuple[List[str], List[Tuple[str, str]], str, str]:
    """Ensure a unique source and sink (adding synthetics as needed)."""
    has_in = {b for _, b in pairs}
    has_out = {a for a, _ in pairs}
    sources = [a for a in activities if a not in has_in]
    sinks = [a for a in activities if a not in has_out]
    taken = set(activities)

    nodes = list(activities)
    edges = list(pairs)
    if len(sources) == 1 and len(sinks) == 1 and sources != sinks:
        return nodes, edges, sources[0], sinks[0]

    if len(sources) == 1 and sources == sinks:
        # A single isolated activity: wrap it between both terminals.
        sole = sources[0]
        synth_source = _fresh_name(SYNTHETIC_SOURCE, taken)
        synth_sink = _fresh_name(SYNTHETIC_SINK, taken)
        nodes = [synth_source, sole, synth_sink]
        edges = [(synth_source, sole), (sole, synth_sink)]
        report.synthetic_source = synth_source
        report.synthetic_sink = synth_sink
        return nodes, edges, synth_source, synth_sink

    if len(sources) == 1:
        source = sources[0]
    else:
        source = _fresh_name(SYNTHETIC_SOURCE, taken)
        taken.add(source)
        nodes.insert(0, source)
        edges.extend((source, a) for a in sources)
        report.synthetic_source = source
    if len(sinks) == 1:
        sink = sinks[0]
    else:
        sink = _fresh_name(SYNTHETIC_SINK, taken)
        taken.add(sink)
        nodes.append(sink)
        edges.extend((a, sink) for a in sinks)
        report.synthetic_sink = sink
    return nodes, edges, source, sink


# ---------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------
def normalize_document(
    doc: ProvDocument,
    name: str = "imported",
    run_name: str = "",
) -> NormalizedImport:
    """Embed a foreign PROV document into the SP run model.

    ``name`` names the derived specification (and defaults the run
    name); the returned :class:`NormalizedImport` carries the validated
    run, the derived specification, the normalisation report, and the
    activity-to-node mapping for provenance-preserving round trips.
    """
    report = NormalizationReport()
    activities, pairs = _dependency_dag(doc, report)
    return _assemble(doc, activities, pairs, report, name, run_name)


def _assemble(
    doc: ProvDocument,
    activities: List[str],
    pairs: List[Tuple[str, str]],
    report: NormalizationReport,
    name: str,
    run_name: str,
    depths: Optional[Dict[str, int]] = None,
    reach: Optional[Dict[str, set]] = None,
) -> NormalizedImport:
    """Close terminals, SP-ize if needed, and derive spec + run.

    The tail of :func:`normalize_document`, shared with the streaming
    layer: that caller arrives with an incrementally-maintained
    dependency DAG plus precomputed ``depths``/``reach`` (forwarded to
    :func:`_layered_sp_edges`), and must produce output bit-identical
    to a whole-document import of the accumulated events.
    """
    nodes, edges, source, sink = _close_terminals(
        activities, pairs, report
    )

    candidate = FlowNetwork(name=name)
    for node in nodes:
        candidate.add_node(node)
    for a, b in edges:
        candidate.add_edge(a, b)
    candidate.validate_flow_network()

    if not is_series_parallel(candidate):
        report.was_series_parallel = False
        edges = _layered_sp_edges(
            nodes, edges, source, sink, report,
            depths=depths, reach=reach,
        )
        ordered = _topological(
            nodes + report.junctions,
            edges,
        )
        nodes = ordered

    synthetics = [
        name
        for name in (report.synthetic_source, report.synthetic_sink)
        if name
    ] + report.junctions
    activity_set = set(activities)
    labels = _unique_labels(
        doc,
        [n for n in nodes if n in activity_set],
        report,
        reserved=synthetics,
    )
    for synthetic in synthetics:
        labels[synthetic] = synthetic

    spec_graph = FlowNetwork(name=name)
    run_graph = FlowNetwork(name=run_name or name)
    for node in nodes:
        label = labels[node]
        spec_graph.add_node(label, label)
        run_graph.add_node(node, label)
    for a, b in edges:
        spec_graph.add_edge(labels[a], labels[b])
        run_graph.add_edge(a, b)

    spec = WorkflowSpecification(spec_graph, name=name)
    run = WorkflowRun(spec, run_graph, name=run_name or name)
    return NormalizedImport(
        run=run,
        spec=spec,
        report=report,
        activity_nodes={a: a for a in activities if a in labels},
    )
