"""PROV-JSON / OPM document model, parser and serialiser.

Real provenance arrives as W3C PROV-style *entity/activity* graphs, not
as the SP run graphs of the paper.  This module reads the two dialects
we care about into one neutral :class:`ProvDocument`:

* **PROV-JSON** (the W3C member submission): top-level sections
  ``entity`` / ``activity`` / ``used`` / ``wasGeneratedBy`` /
  ``wasInformedBy`` / ``wasDerivedFrom``, each a JSON object mapping
  statement ids to attribute objects with ``prov:``-prefixed roles.
* The **OPM dialect** used by older workflow systems: ``artifact`` for
  entity, ``process`` for activity, ``wasTriggeredBy`` for
  ``wasInformedBy``, and ``cause`` / ``effect`` role names instead of
  ``prov:entity`` / ``prov:activity``.

Only the *dependency-bearing* statements are modelled; agents,
attributions and other PROV statements are preserved-by-ignoring (they
do not affect the activity dependency relation the differ consumes).

Everything raised here is :class:`~repro.errors.InterchangeError`, so
callers (CLI, store ingest) can turn any malformed input into a clean
diagnostic instead of a traceback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import InterchangeError

#: Section aliases: foreign name -> canonical PROV-JSON section.
_SECTION_ALIASES = {
    "entity": "entity",
    "artifact": "entity",  # OPM
    "activity": "activity",
    "process": "activity",  # OPM
}

#: Relation sections: canonical kind -> (subject roles, object roles).
#: The *subject* is the downstream element (generated entity / informed
#: activity), the *object* the upstream one, per the PROV-DM reading
#: "subject relation object" (e.g. ``used(activity, entity)``).
_RELATION_ROLES = {
    "used": (("prov:activity", "activity", "effect"),
             ("prov:entity", "entity", "cause")),
    "wasGeneratedBy": (("prov:entity", "entity", "effect"),
                       ("prov:activity", "activity", "cause")),
    "wasInformedBy": (("prov:informed", "informed", "effect"),
                      ("prov:informant", "informant", "cause")),
    "wasDerivedFrom": (
        ("prov:generatedEntity", "generatedEntity", "effect"),
        ("prov:usedEntity", "usedEntity", "cause"),
    ),
}

#: Foreign relation-section names accepted as aliases.
_RELATION_ALIASES = {
    "used": "used",
    "wasGeneratedBy": "wasGeneratedBy",
    "wasInformedBy": "wasInformedBy",
    "wasTriggeredBy": "wasInformedBy",  # OPM
    "wasDerivedFrom": "wasDerivedFrom",
}


@dataclass
class ProvRelation:
    """One dependency-bearing statement: ``kind(subject, object)``."""

    kind: str
    subject: str
    object: str
    attributes: Dict[str, object] = field(default_factory=dict)


@dataclass
class ProvDocument:
    """A parsed PROV-JSON/OPM document (dependency-bearing subset)."""

    prefixes: Dict[str, str] = field(default_factory=dict)
    entities: Dict[str, Dict[str, object]] = field(default_factory=dict)
    activities: Dict[str, Dict[str, object]] = field(default_factory=dict)
    relations: List[ProvRelation] = field(default_factory=list)

    # -- convenience views ----------------------------------------------
    def relations_of(self, kind: str) -> List[ProvRelation]:
        return [rel for rel in self.relations if rel.kind == kind]

    def generators(self) -> Dict[str, str]:
        """``{entity: generating activity}`` (first generation wins)."""
        result: Dict[str, str] = {}
        for rel in self.relations_of("wasGeneratedBy"):
            result.setdefault(rel.subject, rel.object)
        return result

    def dependency_pairs(self) -> List[Tuple[str, str]]:
        """Activity dependencies ``(upstream, downstream)``, deduplicated.

        Two channels produce dependencies:

        * ``wasInformedBy(a2, a1)`` — a direct ``a1 -> a2`` edge;
        * ``used(a2, e)`` joined with ``wasGeneratedBy(e, a1)`` — the
          dataflow reading: ``a2`` consumed what ``a1`` produced.

        Self-dependencies are dropped (an activity trivially "depends"
        on itself when it reads back its own output); genuine cycles
        between *distinct* activities are left in and rejected later by
        the normaliser.  Order is first-appearance, so imports are
        deterministic for a fixed document.
        """
        pairs: List[Tuple[str, str]] = []
        seen = set()

        def add(upstream: str, downstream: str) -> None:
            if upstream == downstream:
                return
            pair = (upstream, downstream)
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)

        for rel in self.relations_of("wasInformedBy"):
            add(rel.object, rel.subject)
        generators = self.generators()
        for rel in self.relations_of("used"):
            producer = generators.get(rel.object)
            if producer is not None:
                add(producer, rel.subject)
        return pairs

    def activity_ids(self) -> List[str]:
        """Every activity id, declared or merely referenced, in
        first-appearance order (declarations first)."""
        ordered = list(self.activities)
        known = set(ordered)
        for rel in self.relations:
            mentioned: Tuple[str, ...]
            if rel.kind == "wasInformedBy":
                mentioned = (rel.object, rel.subject)
            elif rel.kind == "used":
                mentioned = (rel.subject,)
            elif rel.kind == "wasGeneratedBy":
                mentioned = (rel.object,)
            else:
                mentioned = ()
            for name in mentioned:
                if name not in known:
                    known.add(name)
                    ordered.append(name)
        return ordered


def local_name(identifier: str) -> str:
    """The prefix-less part of a qualified id (``run:2a`` -> ``2a``)."""
    _, _, local = identifier.rpartition(":")
    return local or identifier


def activity_label(
    doc: ProvDocument, activity_id: str
) -> str:
    """Display label for an activity: ``repro:label``, ``prov:label``,
    or the id's local name, in that order."""
    attrs = doc.activities.get(activity_id, {})
    for key in ("repro:label", "prov:label"):
        value = attrs.get(key)
        if isinstance(value, str) and value:
            return value
        # PROV-JSON allows attribute values as {"$": ..., "type": ...}.
        if isinstance(value, dict) and isinstance(value.get("$"), str):
            return value["$"]
    return local_name(activity_id)


# ---------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------
def _require_object(value, context: str) -> dict:
    if not isinstance(value, dict):
        raise InterchangeError(
            f"{context} must be a JSON object, got "
            f"{type(value).__name__}"
        )
    return value


def _role_value(record: dict, roles: Tuple[str, ...], context: str) -> str:
    for role in roles:
        value = record.get(role)
        if isinstance(value, str) and value:
            return value
    raise InterchangeError(
        f"{context} is missing a usable endpoint (tried roles "
        f"{', '.join(roles)})"
    )


def parse_prov_json(source) -> ProvDocument:
    """Parse PROV-JSON (or the OPM dialect) into a :class:`ProvDocument`.

    ``source`` may be a JSON text or an already-decoded ``dict``.
    Unknown top-level sections are ignored; the recognised ones are
    validated strictly enough that every later stage can assume
    well-typed ids.  Raises :class:`InterchangeError` on any problem.
    """
    if isinstance(source, (str, bytes)):
        try:
            source = json.loads(source)
        except ValueError as exc:
            raise InterchangeError(
                f"provenance document is not valid JSON: {exc}"
            ) from None
    document = _require_object(source, "provenance document")

    doc = ProvDocument()
    prefix = document.get("prefix", {})
    if prefix:
        doc.prefixes = {
            str(name): str(iri)
            for name, iri in _require_object(prefix, "'prefix'").items()
        }

    for section_name, canonical in _SECTION_ALIASES.items():
        section = document.get(section_name)
        if section is None:
            continue
        target = doc.entities if canonical == "entity" else doc.activities
        for identifier, attrs in _require_object(
            section, f"section {section_name!r}"
        ).items():
            attrs = _require_object(
                attrs if attrs is not None else {},
                f"{section_name} {identifier!r}",
            )
            target.setdefault(str(identifier), dict(attrs))

    for section_name, kind in _RELATION_ALIASES.items():
        section = document.get(section_name)
        if section is None:
            continue
        subject_roles, object_roles = _RELATION_ROLES[kind]
        for statement_id, record in _require_object(
            section, f"section {section_name!r}"
        ).items():
            record = _require_object(
                record, f"{section_name} {statement_id!r}"
            )
            context = f"{section_name} statement {statement_id!r}"
            doc.relations.append(
                ProvRelation(
                    kind=kind,
                    subject=_role_value(record, subject_roles, context),
                    object=_role_value(record, object_roles, context),
                    attributes={
                        key: value
                        for key, value in record.items()
                        if key not in subject_roles + object_roles
                    },
                )
            )

    if not doc.activities and not any(
        rel.kind in ("wasInformedBy", "used", "wasGeneratedBy")
        for rel in doc.relations
    ):
        raise InterchangeError(
            "provenance document declares no activities (or processes) "
            "and no dependency statements"
        )
    return doc


# ---------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------
def document_to_mapping(doc: ProvDocument) -> dict:
    """Render a :class:`ProvDocument` back to PROV-JSON structure.

    Statement ids are minted deterministically (``_:<kind><index>``), so
    serialising the same document twice yields byte-identical JSON.
    """
    payload: Dict[str, dict] = {}
    if doc.prefixes:
        payload["prefix"] = dict(sorted(doc.prefixes.items()))
    if doc.entities:
        payload["entity"] = {
            name: dict(attrs) for name, attrs in doc.entities.items()
        }
    if doc.activities:
        payload["activity"] = {
            name: dict(attrs) for name, attrs in doc.activities.items()
        }
    counters: Dict[str, int] = {}
    for rel in doc.relations:
        subject_roles, object_roles = _RELATION_ROLES[rel.kind]
        counters[rel.kind] = counters.get(rel.kind, 0) + 1
        record = {
            subject_roles[0]: rel.subject,
            object_roles[0]: rel.object,
        }
        record.update(rel.attributes)
        payload.setdefault(rel.kind, {})[
            f"_:{rel.kind}{counters[rel.kind]}"
        ] = record
    return payload


def document_to_json(doc: ProvDocument) -> str:
    """Deterministic PROV-JSON text for a document."""
    return json.dumps(
        document_to_mapping(doc), indent=2, sort_keys=True
    )


def load_prov_source(source) -> ProvDocument:
    """Resolve the importer's polymorphic ``source`` into a document.

    Accepts an already-decoded ``dict``, a JSON text, or a filesystem
    path (``pathlib.Path``, or a string that does not start like JSON).
    File errors surface as :class:`InterchangeError` so the CLI exits
    with a message instead of a traceback.
    """
    from pathlib import Path

    if isinstance(source, Path) or (
        isinstance(source, str)
        and not source.lstrip().startswith(("{", "["))
    ):
        path = Path(source)
        if not path.exists():
            raise InterchangeError(
                f"provenance document {str(path)!r} does not exist"
            )
        try:
            text = path.read_text(encoding="utf8")
        except OSError as exc:
            raise InterchangeError(
                f"cannot read provenance document {str(path)!r}: {exc}"
            ) from None
        return parse_prov_json(text)
    return parse_prov_json(source)
