"""Provenance interchange: PROV-JSON/OPM import and export.

The bridge between the paper's series-parallel run model and the
entity/activity provenance graphs real systems emit.  See
:mod:`repro.interchange.prov_json` (document model + dialects),
:mod:`repro.interchange.normalize` (SP-ization of foreign DAGs), and
:mod:`repro.interchange.convert` (run/script import–export).
"""

from repro.interchange.convert import (
    ImportResult,
    export_run_document,
    export_run_json,
    export_script_document,
    import_document,
)
from repro.interchange.normalize import (
    NormalizationReport,
    NormalizedImport,
    normalize_document,
)
from repro.interchange.prov_json import (
    ProvDocument,
    ProvRelation,
    document_to_json,
    document_to_mapping,
    parse_prov_json,
)

__all__ = [
    "ImportResult",
    "NormalizationReport",
    "NormalizedImport",
    "ProvDocument",
    "ProvRelation",
    "document_to_json",
    "document_to_mapping",
    "export_run_document",
    "export_run_json",
    "export_script_document",
    "import_document",
    "normalize_document",
    "parse_prov_json",
]
