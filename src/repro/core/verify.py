"""End-to-end verification of a diff result (the library's self-check).

``verify_diff`` re-derives every guarantee the paper proves about the
output of the differencing pipeline and reports them in one
:class:`VerificationReport`:

1. the mapping is **well-formed** (Definition 5.1) and its first-principles
   cost (Eqs. 2-3, recomputed from the deletion tables) equals the
   reported distance;
2. the edit script's **total cost equals the distance** (Lemma 5.1);
3. applying the script yields a run **equivalent to run 2**;
4. optionally, **every intermediate graph is a valid run** of the
   specification (the defining property of path edit operations) — this
   re-runs Algorithms 2/5 per operation and is therefore O(ops · |E|).

Downstream systems embedding the differ can call this after every diff in
a paranoid mode, or sample it in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.api import DiffResult
from repro.core.mapping import validate_well_formed
from repro.errors import ReproError
from repro.sptree.annotate_run import annotate_run_tree

_TOLERANCE = 1e-7


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_diff`; ``ok`` iff ``problems`` is empty."""

    checks_run: List[str] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_on_failure(self) -> None:
        """Raise :class:`ReproError` listing all problems found."""
        if self.problems:
            raise ReproError(
                "diff verification failed: " + "; ".join(self.problems)
            )

    def __str__(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"verification {status} ({len(self.checks_run)} checks)"]
        lines.extend(f"  problem: {p}" for p in self.problems)
        return "\n".join(lines)


def verify_diff(
    result: DiffResult, check_intermediates: bool = False
) -> VerificationReport:
    """Re-derive the paper's guarantees for a computed diff.

    Parameters
    ----------
    result:
        A :class:`~repro.core.api.DiffResult`.  Script checks are skipped
        (and noted) when the diff was computed with ``with_script=False``.
    check_intermediates:
        Also validate every intermediate graph as a run of the
        specification (requires the diff to have been computed with
        ``record_intermediates=True`` or ``validate_intermediates=True``).
    """
    report = VerificationReport()

    # 1. Mapping well-formedness and cost.
    report.checks_run.append("mapping-well-formed")
    try:
        validate_well_formed(
            result.mapping, result.run1.tree, result.run2.tree
        )
    except ReproError as exc:
        report.problems.append(f"mapping is not well-formed: {exc}")

    report.checks_run.append("mapping-cost")
    if abs(result.mapping.cost - result.distance) > _TOLERANCE:
        report.problems.append(
            f"mapping cost {result.mapping.cost} != distance "
            f"{result.distance}"
        )

    # 2. Distance sanity.
    report.checks_run.append("distance-non-negative")
    if result.distance < -_TOLERANCE:
        report.problems.append(f"negative distance {result.distance}")

    report.checks_run.append("zero-iff-equivalent")
    equivalent = (
        result.run1.tree.structure_key()
        == result.run2.tree.structure_key()
    )
    if equivalent != (abs(result.distance) <= _TOLERANCE):
        report.problems.append(
            "distance-zero does not coincide with run equivalence"
        )

    if result.script is None:
        report.checks_run.append("script-skipped")
        return report

    # 3. Script realises the distance.
    report.checks_run.append("script-cost")
    if abs(result.script.total_cost - result.distance) > _TOLERANCE:
        report.problems.append(
            f"script cost {result.script.total_cost} != distance "
            f"{result.distance}"
        )

    report.checks_run.append("script-target")
    if (
        result.script.final_tree.structure_key()
        != result.run2.tree.structure_key()
    ):
        report.problems.append(
            "applying the script does not produce run 2"
        )

    report.checks_run.append("operation-costs")
    for index, op in enumerate(result.script.operations, start=1):
        expected = result.cost_model.path_cost(
            op.length, op.source_label, op.sink_label
        )
        if abs(expected - op.cost) > _TOLERANCE:
            report.problems.append(
                f"operation {index} cost {op.cost} != "
                f"γ({op.length}, {op.source_label}, {op.sink_label}) = "
                f"{expected}"
            )

    # 4. Intermediate validity (the defining property of path edits).
    if check_intermediates:
        report.checks_run.append("intermediate-validity")
        graphs = result.script.intermediate_graphs
        if graphs is None:
            report.problems.append(
                "intermediates were not recorded; re-run diff_runs with "
                "record_intermediates=True"
            )
        else:
            spec = result.run1.spec
            for index, graph in enumerate(graphs, start=1):
                try:
                    annotate_run_tree(spec, graph)
                except ReproError as exc:
                    report.problems.append(
                        f"intermediate {index} is not a valid run: {exc}"
                    )
    return report
