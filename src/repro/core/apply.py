"""Mutable run-tree mirror and graph materialisation for edit scripts.

Edit scripts transform one run into another through a sequence of
elementary operations.  The immutable :class:`~repro.sptree.nodes.SPTree`
is unsuitable for step-by-step transformation, so the script engine works
on a *mirror*: a mutable tree of :class:`MNode` objects, one per original
tree node, that supports detaching and attaching subtrees.

After each operation the mirror can be *frozen* back to an immutable
annotated SP-tree and materialised as a run graph.  Freezing assigns
concrete node-instance ids top-down: surviving instances keep their
original ids wherever possible (``preferred`` ids), while inserted
interiors and rewired boundaries receive fresh ids — mirroring how the
paper's operations create new instances (``2b``, ``4c``, … in Fig. 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import EditScriptError
from repro.sptree.nodes import EdgeRef, NodeType, SPTree


class MNode:
    """A mutable mirror node.

    Attributes
    ----------
    kind / origin:
        Copied from the mirrored tree node (``origin`` points into the
        specification tree).
    children:
        Mutable child list.
    source_label / sink_label:
        Terminal labels — invariants of the node (Section IV-D).
    pref_source / pref_sink:
        Preferred instance ids (the original ids; hints for freezing).
    """

    __slots__ = (
        "kind",
        "origin",
        "children",
        "parent",
        "source_label",
        "sink_label",
        "pref_source",
        "pref_sink",
    )

    def __init__(
        self,
        kind: NodeType,
        origin: Optional[SPTree],
        source_label: str,
        sink_label: str,
        pref_source=None,
        pref_sink=None,
    ):
        self.kind = kind
        self.origin = origin
        self.children: List["MNode"] = []
        self.parent: Optional["MNode"] = None
        self.source_label = source_label
        self.sink_label = sink_label
        self.pref_source = pref_source
        self.pref_sink = pref_sink

    # -- structure -------------------------------------------------------
    @property
    def degree(self) -> int:
        return len(self.children)

    @property
    def is_true(self) -> bool:
        return len(self.children) > 1

    def attach(self, child: "MNode", index: Optional[int] = None) -> None:
        if child.parent is not None:
            raise EditScriptError("node is already attached")
        if index is None:
            index = len(self.children)
        self.children.insert(index, child)
        child.parent = self

    def detach(self) -> None:
        if self.parent is None:
            raise EditScriptError("cannot detach an unattached node")
        self.parent.children.remove(self)
        self.parent = None

    def is_branch_free(self) -> bool:
        """No true P/F/L node in the current subtree (Definition 4.1)."""
        if self.kind in (NodeType.P, NodeType.F, NodeType.L) and self.is_true:
            return False
        return all(child.is_branch_free() for child in self.children)

    def leaf_labels(self) -> List[Tuple[str, str]]:
        """Label pairs of the current leaves, left to right."""
        if self.kind is NodeType.Q:
            return [(self.source_label, self.sink_label)]
        result: List[Tuple[str, str]] = []
        for child in self.children:
            result.extend(child.leaf_labels())
        return result

    def leaf_count(self) -> int:
        if self.kind is NodeType.Q:
            return 1
        return sum(child.leaf_count() for child in self.children)

    def path_node_labels(self) -> List[str]:
        """Node labels along the (branch-free) subtree's path."""
        pairs = self.leaf_labels()
        if not pairs:
            return []
        labels = [pairs[0][0]]
        for _, sink in pairs:
            labels.append(sink)
        return labels

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MNode({self.kind.value}, degree={self.degree})"


def build_mirror(tree: SPTree) -> Tuple[MNode, Dict[int, MNode]]:
    """Mirror an annotated run tree; returns (root, original-id -> MNode)."""
    registry: Dict[int, MNode] = {}

    def visit(node: SPTree) -> MNode:
        mirror = MNode(
            node.kind,
            node.origin,
            node.source_label,
            node.sink_label,
            pref_source=node.source,
            pref_sink=node.sink,
        )
        registry[id(node)] = mirror
        for child in node.children:
            mirror.attach(visit(child))
        return mirror

    return visit(tree), registry


def mirror_from_fragment(
    fragment: SPTree, registry: Optional[Dict[int, MNode]] = None
) -> MNode:
    """Mirror an immutable fragment (witness subtree) into MNodes."""

    def visit(node: SPTree) -> MNode:
        mirror = MNode(
            node.kind,
            node.origin,
            node.source_label,
            node.sink_label,
            pref_source=node.source,
            pref_sink=node.sink,
        )
        if registry is not None:
            registry[id(node)] = mirror
        for child in node.children:
            mirror.attach(visit(child))
        return mirror

    return visit(fragment)


class IdAllocator:
    """Fresh instance-id allocation (``label`` + spreadsheet suffix)."""

    def __init__(self, used: Optional[Set] = None):
        self._used: Set = set(used or ())
        self._counters: Dict[str, int] = {}

    def reserve(self, node_id) -> None:
        self._used.add(node_id)

    def fresh(self, label: str):
        index = self._counters.get(label, 0)
        while True:
            suffix = _suffix(index)
            index += 1
            candidate = f"{label}{suffix}"
            if candidate not in self._used:
                break
        self._counters[label] = index
        self._used.add(candidate)
        return candidate


def _suffix(index: int) -> str:
    letters = []
    index += 1
    while index:
        index, rem = divmod(index - 1, 26)
        letters.append(chr(ord("a") + rem))
    return "".join(reversed(letters))


class MirrorFreezer:
    """Freeze a mirror into an immutable annotated SP-tree.

    Instance ids are assigned top-down: the root keeps the original run's
    terminals, series cut points and loop boundaries keep their preferred
    ids when still unclaimed, and everything else gets fresh ids.
    """

    def __init__(self, allocator: Optional[IdAllocator] = None):
        self.allocator = allocator or IdAllocator()
        self._claimed: Set = set()

    def freeze(self, root: MNode, source_id, sink_id) -> SPTree:
        self._claimed = {source_id, sink_id}
        self.allocator.reserve(source_id)
        self.allocator.reserve(sink_id)
        return self._freeze(root, source_id, sink_id)

    def _claim(self, preferred, label: str):
        if preferred is not None and preferred not in self._claimed:
            self._claimed.add(preferred)
            self.allocator.reserve(preferred)
            return preferred
        fresh = self.allocator.fresh(label)
        self._claimed.add(fresh)
        return fresh

    def _freeze(self, node: MNode, source_id, sink_id) -> SPTree:
        if node.kind is NodeType.Q:
            ref = EdgeRef(
                source=source_id,
                sink=sink_id,
                source_label=node.source_label,
                sink_label=node.sink_label,
                key=0,
            )
            return SPTree(NodeType.Q, (), edge=ref, origin=node.origin)

        if not node.children:
            raise EditScriptError(
                f"mirror {node.kind} node has no children at freeze time"
            )

        if node.kind is NodeType.S:
            bounds = [source_id]
            for child in node.children[:-1]:
                bounds.append(self._claim(child.pref_sink, child.sink_label))
            bounds.append(sink_id)
            children = tuple(
                self._freeze(child, bounds[i], bounds[i + 1])
                for i, child in enumerate(node.children)
            )
            return SPTree(NodeType.S, children, origin=node.origin)

        if node.kind in (NodeType.P, NodeType.F):
            children = tuple(
                self._freeze(child, source_id, sink_id)
                for child in node.children
            )
            return SPTree(node.kind, children, origin=node.origin)

        # L node: iterations joined by implicit edges between fresh/kept
        # boundary instances.
        count = len(node.children)
        children = []
        iter_source = source_id
        for index, child in enumerate(node.children):
            last = index == count - 1
            iter_sink = (
                sink_id
                if last
                else self._claim(child.pref_sink, child.sink_label)
            )
            children.append(self._freeze(child, iter_source, iter_sink))
            if not last:
                next_child = node.children[index + 1]
                iter_source = self._claim(
                    next_child.pref_source, next_child.source_label
                )
        return SPTree(NodeType.L, tuple(children), origin=node.origin)
